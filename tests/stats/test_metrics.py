"""Tests for metrics and timing instrumentation."""

import time

import pytest

from repro.stats.metrics import (
    DepthReport,
    TimingBreakdown,
    mean_depths,
    mean_timing,
)
from repro.stats.timing import ComponentTimer


class TestDepthReport:
    def test_sum(self):
        assert DepthReport(3, 4).sum_depths == 7

    def test_add(self):
        combined = DepthReport(1, 2) + DepthReport(10, 20)
        assert combined == DepthReport(11, 22)

    def test_mean(self):
        mean = mean_depths([DepthReport(10, 0), DepthReport(20, 10)])
        assert mean == DepthReport(15, 5)

    def test_mean_rounds(self):
        mean = mean_depths([DepthReport(1, 0), DepthReport(2, 0)])
        assert mean.left in (1, 2)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean_depths([])


class TestTimingBreakdown:
    def test_other_derived(self):
        timing = TimingBreakdown(io=1.0, bound=2.0, total=5.0)
        assert timing.other == pytest.approx(2.0)

    def test_other_clamped_nonnegative(self):
        timing = TimingBreakdown(io=3.0, bound=3.0, total=5.0)
        assert timing.other == 0.0

    def test_add_and_scale(self):
        a = TimingBreakdown(1, 2, 4)
        b = TimingBreakdown(0.5, 0.5, 1)
        assert (a + b).total == pytest.approx(5.0)
        assert a.scaled(2).io == pytest.approx(2.0)

    def test_mean(self):
        mean = mean_timing([TimingBreakdown(1, 1, 3), TimingBreakdown(3, 1, 5)])
        assert mean.io == pytest.approx(2.0)
        assert mean.total == pytest.approx(4.0)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean_timing([])


class TestComponentTimer:
    def test_accumulates(self):
        timer = ComponentTimer()
        with timer.measure("io"):
            time.sleep(0.01)
        with timer.measure("io"):
            time.sleep(0.01)
        assert timer.total("io") >= 0.02
        assert timer.total("bound") == 0.0

    def test_disabled_timer_measures_nothing(self):
        timer = ComponentTimer(enabled=False)
        with timer.measure("io"):
            time.sleep(0.005)
        assert timer.total("io") == 0.0

    def test_exception_still_accumulates_elapsed(self):
        timer = ComponentTimer()
        with pytest.raises(RuntimeError):
            with timer.measure("io"):
                time.sleep(0.01)
                raise RuntimeError("boom")
        assert timer.total("io") >= 0.01
        assert "io" in timer.totals()

    def test_disabled_records_nothing_at_all(self):
        timer = ComponentTimer(enabled=False)
        with timer.measure("io"):
            time.sleep(0.002)
        with timer.measure("bound"):
            pass
        assert timer.totals() == {}
        assert not timer.enabled

    def test_enabled_toggle(self):
        timer = ComponentTimer(enabled=False)
        timer.enabled = True
        with timer.measure("io"):
            pass
        assert timer.totals() != {}

    def test_shared_tracer_merges_spans(self):
        from repro.obs.span import Tracer

        tracer = Tracer()
        timer = ComponentTimer(tracer=tracer)
        with timer.measure("io"):
            pass
        assert timer.tracer is tracer
        assert tracer.count("io") == 1

    def test_reset(self):
        timer = ComponentTimer()
        with timer.measure("x"):
            pass
        timer.reset()
        assert timer.totals() == {}
