"""Tests for bound-evolution tracing."""

import math

import pytest

from repro.core.operators import frpa, hrjn_star
from repro.data.workload import random_instance
from repro.stats.trace import BoundTrace


@pytest.fixture
def instance():
    return random_instance(
        n_left=300, n_right=300, e_left=2, e_right=2,
        num_keys=30, k=5, cut=0.5, seed=0,
    )


class TestBoundTrace:
    def test_records_every_pull(self, instance):
        trace = BoundTrace()
        operator = frpa(instance, trace=trace)
        operator.top_k(5)
        assert len(trace) == operator.pulls
        assert trace.entries[0].pull == 1
        assert trace.entries[-1].pull == operator.pulls

    def test_bounds_non_increasing_for_frpa(self, instance):
        trace = BoundTrace()
        frpa(instance, trace=trace).top_k(5)
        finite = [b for b in trace.bounds() if math.isfinite(b)]
        assert all(a >= b - 1e-9 for a, b in zip(finite, finite[1:]))

    def test_pulls_per_side_sums(self, instance):
        trace = BoundTrace()
        operator = hrjn_star(instance, trace=trace)
        operator.top_k(5)
        left, right = trace.pulls_per_side()
        assert left == operator.depths().left
        assert right == operator.depths().right

    def test_bound_at_emission(self, instance):
        trace = BoundTrace()
        operator = frpa(instance, trace=trace)
        results = operator.top_k(3)
        bound = trace.bound_at_emission(1)
        assert bound is not None
        # When the first result became emittable, its score beat the bound.
        assert results[0].score >= bound - 1e-9

    def test_bound_at_emission_missing(self):
        assert BoundTrace().bound_at_emission(1) is None

    def test_sparkline_shape(self, instance):
        trace = BoundTrace()
        frpa(instance, trace=trace).top_k(5)
        line = trace.sparkline(width=40)
        assert 0 < len(line) <= 40
        assert set(line) <= set(BoundTrace._BLOCKS)

    def test_sparkline_empty(self):
        assert BoundTrace().sparkline() == ""

    def test_summary_mentions_pulls(self, instance):
        trace = BoundTrace()
        frpa(instance, trace=trace).top_k(2)
        summary = trace.summary()
        assert "pulls:" in summary
        assert "bound:" in summary

    def test_summary_empty(self):
        assert BoundTrace().summary() == "empty trace"

    def test_corner_bound_stays_above_fr_bound(self, instance):
        """The FR bound is tighter: pointwise <= the corner bound trace."""
        fr_trace, corner_trace = BoundTrace(), BoundTrace()
        frpa(instance, trace=fr_trace).top_k(5)
        hrjn_star(instance, trace=corner_trace).top_k(5)
        # Compare over the shared prefix of pulls; pulling orders differ,
        # so this is a sanity check on magnitudes, not a theorem.
        shared = min(len(fr_trace), len(corner_trace))
        fr_final = fr_trace.bounds()[shared - 1]
        corner_final = corner_trace.bounds()[shared - 1]
        assert fr_final <= corner_final + 1e-9
