"""Tests for bound-evolution tracing."""

import math

import pytest

from repro.core.operators import frpa, hrjn_star
from repro.data.workload import random_instance
from repro.stats.trace import BoundTrace


@pytest.fixture
def instance():
    return random_instance(
        n_left=300, n_right=300, e_left=2, e_right=2,
        num_keys=30, k=5, cut=0.5, seed=0,
    )


class TestBoundTrace:
    def test_records_every_pull(self, instance):
        trace = BoundTrace()
        operator = frpa(instance, trace=trace)
        operator.top_k(5)
        assert len(trace) == operator.pulls
        assert trace.entries[0].pull == 1
        assert trace.entries[-1].pull == operator.pulls

    def test_bounds_non_increasing_for_frpa(self, instance):
        trace = BoundTrace()
        frpa(instance, trace=trace).top_k(5)
        finite = [b for b in trace.bounds() if math.isfinite(b)]
        assert all(a >= b - 1e-9 for a, b in zip(finite, finite[1:]))

    def test_pulls_per_side_sums(self, instance):
        trace = BoundTrace()
        operator = hrjn_star(instance, trace=trace)
        operator.top_k(5)
        left, right = trace.pulls_per_side()
        assert left == operator.depths().left
        assert right == operator.depths().right

    def test_bound_at_emission(self, instance):
        trace = BoundTrace()
        operator = frpa(instance, trace=trace)
        results = operator.top_k(3)
        bound = trace.bound_at_emission(1)
        assert bound is not None
        # When the first result became emittable, its score beat the bound.
        assert results[0].score >= bound - 1e-9

    def test_bound_at_emission_empty_trace(self):
        assert BoundTrace().bound_at_emission(1) is None

    def test_bound_at_emission_n_larger_than_emitted(self, instance):
        trace = BoundTrace()
        results = frpa(instance, trace=trace).top_k(3)
        # More results than any pull ever saw emitted -> no matching entry.
        assert trace.bound_at_emission(len(results) + 1) is None

    def test_bound_at_emission_each_result_ordered(self, instance):
        trace = BoundTrace()
        frpa(instance, trace=trace).top_k(3)
        # The final result(s) may drain from the buffer after the last
        # pull, so only query emission counts a pull actually recorded.
        recorded = max(entry.emitted for entry in trace.entries)
        bounds = [trace.bound_at_emission(n) for n in range(1, recorded + 1)]
        assert all(b is not None for b in bounds)
        # Later results become emittable at (weakly) lower bounds.
        assert all(a >= b - 1e-9 for a, b in zip(bounds, bounds[1:]))

    def test_sparkline_shape(self, instance):
        trace = BoundTrace()
        frpa(instance, trace=trace).top_k(5)
        line = trace.sparkline(width=40)
        assert 0 < len(line) <= 40
        assert set(line) <= set(BoundTrace._BLOCKS)

    def test_sparkline_empty(self):
        assert BoundTrace().sparkline() == ""

    def test_sparkline_last_sample_is_final_bound(self):
        # 100 strictly decreasing bounds downsampled to width 7: the right
        # edge must correspond to the final (minimum) bound value.
        trace = BoundTrace()
        for pull in range(1, 101):
            trace.record(pull, pull % 2, 100.0 - pull, 0, 0)
        line = trace.sparkline(width=7)
        assert len(line) == 7
        assert line[-1] == BoundTrace._BLOCKS[0]
        assert line[0] == BoundTrace._BLOCKS[-1]

    def test_sparkline_width_one(self):
        trace = BoundTrace()
        for pull in range(1, 10):
            trace.record(pull, 0, 10.0 - pull, 0, 0)
        assert len(trace.sparkline(width=1)) == 1

    def test_sparkline_records_obs_events(self):
        from repro.obs import Observability

        class Capture:
            def __init__(self):
                self.records = []

            def export(self, record):
                self.records.append(record)

            def close(self):
                pass

        capture = Capture()
        obs = Observability(exporters=[capture])
        trace = BoundTrace(obs=obs, operator="X")
        trace.record(1, 0, float("inf"), 0, 0)
        trace.record(2, 1, 1.5, 1, 1)
        events = [r for r in capture.records if r.get("name") == "bound_trace"]
        assert [e["pull"] for e in events] == [1, 2]
        assert events[0]["bound"] is None  # infinity is not JSON-friendly
        assert events[1]["bound"] == 1.5
        assert events[1]["op"] == "X"

    def test_summary_mentions_pulls(self, instance):
        trace = BoundTrace()
        frpa(instance, trace=trace).top_k(2)
        summary = trace.summary()
        assert "pulls:" in summary
        assert "bound:" in summary

    def test_summary_empty(self):
        assert BoundTrace().summary() == "empty trace"

    def test_corner_bound_stays_above_fr_bound(self, instance):
        """The FR bound is tighter: pointwise <= the corner bound trace."""
        fr_trace, corner_trace = BoundTrace(), BoundTrace()
        frpa(instance, trace=fr_trace).top_k(5)
        hrjn_star(instance, trace=corner_trace).top_k(5)
        # Compare over the shared prefix of pulls; pulling orders differ,
        # so this is a sanity check on magnitudes, not a theorem.
        shared = min(len(fr_trace), len(corner_trace))
        fr_final = fr_trace.bounds()[shared - 1]
        corner_final = corner_trace.bounds()[shared - 1]
        assert fr_final <= corner_final + 1e-9
