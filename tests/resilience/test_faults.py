"""Unit tests for the fault-injection primitives."""

from __future__ import annotations

import pytest

from repro.data.workload import random_instance
from repro.errors import ShardError, WorkerLost
from repro.exec.worker import ShardWorker
from repro.resilience import (
    FAULT_KINDS,
    NO_FAULTS,
    FaultPlan,
    FaultSpec,
    InjectingWorker,
    RequestChaos,
    RetryPolicy,
    call_with_retry,
)


def make_worker(shard: int = 0) -> ShardWorker:
    instance = random_instance(
        n_left=80, n_right=80, e_left=2, e_right=2, num_keys=8, k=5, seed=7
    )
    return ShardWorker(shard, instance, "FRPA")


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor-strike", 0)

    def test_rejects_negative_depth_and_delay(self):
        with pytest.raises(ValueError):
            FaultSpec("delay", 0, at_pull=-1)
        with pytest.raises(ValueError):
            FaultSpec("delay", 0, delay=-0.1)

    def test_all_declared_kinds_construct(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind, 0).kind == kind


class TestFaultPlan:
    def test_empty_plan_is_falsy_and_schedules_nothing(self):
        assert not NO_FAULTS
        assert NO_FAULTS.for_shard(0) == ()

    def test_for_shard_filters_and_orders_by_depth(self):
        plan = FaultPlan((
            FaultSpec("transient", 1, 30),
            FaultSpec("worker-kill", 0, 10),
            FaultSpec("transient", 0, 5),
        ))
        schedule = plan.for_shard(0)
        assert [f.at_pull for f in schedule] == [5, 10]
        assert all(f.shard == 0 for f in schedule)

    def test_random_plan_is_seed_deterministic(self):
        a = FaultPlan.random(42, shards=4)
        b = FaultPlan.random(42, shards=4)
        c = FaultPlan.random(43, shards=4)
        assert a == b
        assert a != c

    def test_random_plan_guarantees_a_depth_zero_fault(self):
        for seed in range(5):
            plan = FaultPlan.random(seed, shards=3)
            assert any(f.shard == 0 and f.at_pull == 0 for f in plan.faults)

    def test_plans_are_picklable(self):
        import pickle

        plan = FaultPlan.random(1, shards=2)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestInjectingWorker:
    def test_no_schedule_is_transparent(self):
        plain, wrapped = make_worker(), InjectingWorker(make_worker(), [])
        a, b = plain.advance(16), wrapped.advance(16)
        assert a == b
        assert wrapped.pulls == plain.pulls

    def test_lost_kinds_raise_worker_lost_before_advancing(self):
        for kind in ("worker-kill", "pipe-drop"):
            worker = InjectingWorker(make_worker(), [FaultSpec(kind, 0, 0)])
            with pytest.raises(WorkerLost):
                worker.advance(8)
            assert worker.pulls == 0  # fault fired pre-advance

    def test_transient_raises_shard_error_and_consumes_the_fault(self):
        schedule = [FaultSpec("transient", 0, 0)]
        worker = InjectingWorker(make_worker(), schedule)
        with pytest.raises(ShardError):
            worker.advance(8)
        assert schedule == []  # consumed: a clean re-issue succeeds
        outcome = worker.advance(8)
        assert outcome.pulls > 0

    def test_delay_fires_through_injected_sleep(self):
        slept = []
        worker = InjectingWorker(
            make_worker(),
            [FaultSpec("delay", 0, 0, delay=0.5)],
            sleep=slept.append,
        )
        worker.advance(8)
        assert slept == [0.5]

    def test_fault_waits_for_its_pull_depth(self):
        schedule = [FaultSpec("transient", 0, 10)]
        worker = InjectingWorker(make_worker(), schedule)
        worker.advance(4)   # checked at pulls=0 < 10: nothing fires
        worker.advance(8)   # checked at pulls=4 < 10: still nothing
        assert schedule
        assert worker.pulls >= 10
        with pytest.raises(ShardError):
            worker.advance(8)  # checked at pulls >= 10: fires


class TestRetryPolicy:
    def test_delays_grow_then_cap(self):
        import random

        policy = RetryPolicy(
            max_attempts=8, base_delay=0.01, multiplier=2.0,
            max_delay=0.05, jitter=0.0,
        )
        rng = random.Random(0)
        delays = [policy.delay(a, rng) for a in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_stays_within_fraction(self):
        import random

        policy = RetryPolicy(base_delay=0.01, jitter=0.25)
        rng = random.Random(0)
        for attempt in range(1, 20):
            delay = policy.delay(1, rng)
            assert 0.0075 <= delay <= 0.0125

    def test_call_with_retry_retries_then_succeeds(self):
        import random

        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ShardError("transient")
            return "ok"

        slept = []
        result = call_with_retry(
            flaky,
            policy=RetryPolicy(max_attempts=5, jitter=0.0),
            rng=random.Random(0),
            sleep=slept.append,
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert len(slept) == 2

    def test_call_with_retry_reraises_at_the_cap(self):
        import random

        def always_fails():
            raise ShardError("still broken")

        with pytest.raises(ShardError):
            call_with_retry(
                always_fails,
                policy=RetryPolicy(max_attempts=3, jitter=0.0),
                rng=random.Random(0),
                sleep=lambda _: None,
            )


class TestRequestChaos:
    def test_zero_rates_are_a_strict_noop(self):
        chaos = RequestChaos(seed=0)
        for _ in range(50):
            assert chaos.intercept({"verb": "submit"}) is None
        assert chaos.injected_errors == 0

    def test_error_injection_is_retryable_and_seeded(self):
        a = RequestChaos(seed=1, error_rate=0.5, sleep=lambda _: None)
        b = RequestChaos(seed=1, error_rate=0.5, sleep=lambda _: None)
        responses_a = [a.intercept({"verb": "poll"}) for _ in range(40)]
        responses_b = [b.intercept({"verb": "poll"}) for _ in range(40)]
        assert responses_a == responses_b
        injected = [r for r in responses_a if r is not None]
        assert injected and a.injected_errors == len(injected)
        assert all(r["retryable"] and not r["ok"] for r in injected)

    def test_only_configured_verbs_are_intercepted(self):
        chaos = RequestChaos(seed=0, error_rate=1.0)
        assert chaos.intercept({"verb": "shutdown"}) is None
        assert chaos.intercept({"verb": "submit"}) is not None

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            RequestChaos(error_rate=1.5)
