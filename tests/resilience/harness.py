"""Chaos-test harness: the pytest face of :mod:`repro.resilience.chaos`.

The heavy lifting (seed workloads, seeded fault schedules, bit-identity
verification against the fault-free serial run) lives in the library so
``python -m repro chaos`` and the pytest suite share one implementation.
This module re-exports that core plus the parametrization matrices the
chaos tests iterate over, so tests read as one line per axis:

    @pytest.mark.parametrize("workload", CHAOS_WORKLOADS)
    @pytest.mark.parametrize("shards", CHAOS_SHARDS)
    ...
    def test_case(workload, shards, backend, kind):
        assert_chaos_case(workload, shards, backend, kind)
"""

from __future__ import annotations

from repro.resilience import (  # noqa: F401 - re-exported for the suite
    CHAOS_KINDS,
    SEED_WORKLOADS,
    ChaosCase,
    chaos_plan,
    chaos_run,
    emission_view,
    reference_run,
    seed_instance,
)

#: The acceptance matrix: every seed workload × shard counts {2, 4} ×
#: both parallel backends × every result-affecting fault kind.
CHAOS_WORKLOADS = SEED_WORKLOADS
CHAOS_SHARDS = (2, 4)
CHAOS_BACKENDS = ("thread", "process")


def assert_chaos_case(
    workload: str,
    shards: int,
    backend: str,
    kind: str,
    *,
    seed: int = 0,
    operator: str = "FRPA",
) -> ChaosCase:
    """Run one chaos case and assert the resilience invariant.

    The faulted run must be bit-identical (scores, emission order,
    canonical identities) to the fault-free serial-backend run, and at
    least one injected fault must actually have fired — a chaos test
    whose fault never triggers is vacuous, so it fails loudly instead.
    """
    case = chaos_run(workload, shards, backend, kind, seed=seed, operator=operator)
    assert case.matched, (
        f"{workload} x{shards} on {backend} under {kind}: results diverged "
        f"from the fault-free run (respawns={case.respawns}, "
        f"retries={case.retries}, degraded={case.degraded})"
    )
    assert case.fired > 0, (
        f"{workload} x{shards} on {backend} under {kind}: no injected "
        f"fault fired — the case is vacuous"
    )
    if kind in ("worker-kill", "pipe-drop"):
        assert case.respawns > 0, "lost-worker fault fired without a respawn"
    return case
