"""ResultCache under faults: only DONE sessions may write entries."""

from __future__ import annotations

from repro.errors import ShardError
from repro.service import QueryService
from repro.service.session import QuerySession, SessionState
from tests.service.conftest import make_spec


class DyingOperator:
    """Emits a few real results, then dies with a transient-looking error.

    Models an operator whose backend lost a worker and exhausted its
    recovery budget mid-query: the prefix it produced is genuine, but the
    query did not complete — caching that prefix as if it were the
    longest-known answer would poison later lookups.
    """

    def __init__(self, inner, die_after: int) -> None:
        self._inner = inner
        self._die_after = die_after
        self._emitted = 0
        self.closed = False

    @property
    def pulls(self) -> int:
        return self._inner.pulls

    def try_next(self, max_pulls=None):
        if self._emitted >= self._die_after:
            raise ShardError("shard 0 lost beyond recovery", shard=0)
        outcome = self._inner.try_next(max_pulls=max_pulls)
        if outcome is not None and outcome.__class__.__name__ == "JoinResult":
            self._emitted += 1
        return outcome

    def depths(self):
        return self._inner.depths()

    def close(self) -> None:
        self.closed = True


def test_failed_session_writes_nothing_to_the_cache():
    spec = make_spec()
    service = QueryService(cache_capacity=8, quantum=16)
    key = spec.fingerprint()

    dying = DyingOperator(spec.build_operator(), die_after=3)
    session = QuerySession("f1", dying, spec.k, quantum=16, cache_key=key)
    service.scheduler.submit(session)
    while session.live:
        service.tick()

    assert session.state is SessionState.FAILED
    assert session.results, "the dying operator emitted a real prefix"
    assert len(service.cache) == 0, "a FAILED session must not write the cache"
    assert service.cache.lookup(key, 1) is None
    assert dying.closed, "an uncached operator must be released"


def test_retried_query_caches_only_the_clean_run():
    """Fail once, retry clean: the cache holds exactly the DONE answer."""
    spec = make_spec()
    service = QueryService(cache_capacity=8, quantum=16)
    key = spec.fingerprint()

    dying = DyingOperator(spec.build_operator(), die_after=2)
    failed = QuerySession("f2", dying, spec.k, quantum=16, cache_key=key)
    service.scheduler.submit(failed)
    while failed.live:
        service.tick()
    assert failed.state is SessionState.FAILED
    assert len(service.cache) == 0

    # The retry goes through the normal submission path: a cache miss, a
    # fresh operator, a clean run to DONE — and only then a cache write.
    retry_id = service.submit(spec)
    retried = service.scheduler.drain(retry_id)
    assert retried.state is SessionState.DONE
    assert not retried.from_cache
    assert len(service.cache) == 1
    cached = service.cache.lookup(key, spec.k)
    assert cached is not None
    assert [r.score for r in cached] == [r.score for r in retried.results[: spec.k]]

    # And the poisoning really would have been visible: the FAILED prefix
    # was shorter than the full answer.
    assert len(failed.results) < len(cached)

    # Third submission: a pure cache hit, zero pulls.
    hit_id = service.submit(spec)
    hit = service.scheduler.find(hit_id)
    assert hit.from_cache and hit.state is SessionState.DONE
    assert hit.pulls == 0
    assert [r.score for r in hit.answer()] == [r.score for r in cached]


def test_budget_exhausted_done_prefix_still_caches():
    """Graceful DONE-with-partial (budget) is cacheable — FAILED is not.

    The distinction the fault tests enforce is *clean* vs *dirty* ends,
    not complete vs partial: a budget-exhausted session ended cleanly and
    its prefix is the true longest-known prefix.
    """
    spec = make_spec()
    service = QueryService(cache_capacity=8, quantum=16)
    sid = service.submit(spec, max_pulls=24)
    session = service.scheduler.drain(sid)
    assert session.state is SessionState.DONE
    assert session.budget_exhausted
    assert len(service.cache) == 1
