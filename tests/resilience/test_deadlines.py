"""Session-level deadlines: graceful expiry swept by the scheduler."""

from __future__ import annotations

from repro.obs import Observability
from repro.service.scheduler import Scheduler
from repro.service.session import QuerySession, SessionState
from tests.service.conftest import make_spec


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_session(session_id: str, clock, *, deadline=None, k: int = 10):
    spec = make_spec(k=k)
    return QuerySession(
        session_id, spec.build_operator(), k,
        quantum=8, deadline=deadline, clock=clock,
    )


class TestSessionDeadline:
    def test_no_deadline_never_expires(self):
        clock = ManualClock()
        session = make_session("a", clock)
        clock.now = 1e9
        assert not session.check_deadline()
        assert session.live

    def test_deadline_is_relative_to_submission(self):
        clock = ManualClock()
        clock.now = 100.0
        session = make_session("a", clock, deadline=2.0)
        clock.now = 101.9
        assert not session.check_deadline()
        clock.now = 102.0
        assert session.check_deadline()
        assert session.state is SessionState.DONE
        assert session.deadline_exceeded
        assert session.snapshot()["deadline_exceeded"]

    def test_expiry_keeps_the_partial_prefix(self):
        clock = ManualClock()
        session = make_session("a", clock, deadline=5.0)
        session.step()  # RUNNING with some prefix under way
        clock.now = 5.0
        assert session.check_deadline()
        assert session.state is SessionState.DONE
        # The expiry is graceful: whatever prefix exists stays available.
        assert session.answer() == session.results[: session.k]

    def test_terminal_sessions_ignore_deadlines(self):
        clock = ManualClock()
        session = make_session("a", clock, deadline=1.0)
        session.cancel()
        clock.now = 10.0
        assert not session.check_deadline()
        assert session.state is SessionState.CANCELLED
        assert not session.deadline_exceeded


class TestSchedulerSweep:
    def test_sweep_expires_live_sessions(self):
        clock = ManualClock()
        obs = Observability()
        scheduler = Scheduler(obs=obs)
        doomed = make_session("doomed", clock, deadline=1.0)
        steady = make_session("steady", clock)
        scheduler.submit(doomed)
        scheduler.submit(steady)
        clock.now = 2.0
        scheduler.tick()
        assert doomed.state is SessionState.DONE
        assert doomed.deadline_exceeded
        assert doomed in scheduler.finished_sessions
        assert steady in scheduler.live_sessions
        assert obs.metrics.value("service_deadline_expirations_total") == 1

    def test_sweep_expires_queued_sessions_too(self):
        clock = ManualClock()
        scheduler = Scheduler(max_live=1)
        live = make_session("live", clock)
        queued = make_session("queued", clock, deadline=0.5)
        scheduler.submit(live)
        scheduler.submit(queued)
        assert scheduler.queued_sessions == [queued]
        clock.now = 1.0
        scheduler.tick()
        assert queued.state is SessionState.DONE
        assert queued.deadline_exceeded
        assert not scheduler.queued_sessions
        # The expired queued session never consumed a pull.
        assert queued.pulls == 0

    def test_expired_sessions_free_admission_slots(self):
        clock = ManualClock()
        scheduler = Scheduler(max_live=1)
        doomed = make_session("doomed", clock, deadline=1.0)
        waiting = make_session("waiting", clock)
        scheduler.submit(doomed)
        scheduler.submit(waiting)
        clock.now = 2.0
        scheduler.tick()
        assert waiting in scheduler.live_sessions

    def test_run_until_complete_with_mixed_deadlines(self):
        clock = ManualClock()
        scheduler = Scheduler()
        expired = make_session("expired", clock, deadline=0.0)
        normal = make_session("normal", clock, k=5)
        clock.now = 0.5
        scheduler.submit(expired)
        scheduler.submit(normal)
        finished = scheduler.run_until_complete()
        assert set(finished) == {expired, normal}
        assert expired.deadline_exceeded
        assert not normal.deadline_exceeded
        assert len(normal.answer()) == 5
