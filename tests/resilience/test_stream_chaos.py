"""Streaming under chaos: faults mid-stream never corrupt the sequence.

Each case streams a session over a server whose request layer injects
errors on submit/poll/stream AND whose exec backend suffers seeded
worker faults, verifying on the raw (no client dedup) stream that every
event arrives exactly once, in order, bit-identical to the fault-free
serial run — already-streamed prefixes survive respawn-replay.
"""

import pytest

from repro.resilience import stream_chaos_run

pytestmark = pytest.mark.chaos


@pytest.mark.parametrize("backend,kind", [
    ("thread", "transient"),
    ("thread", "pipe-drop"),
    ("process", "worker-kill"),
])
def test_stream_is_exactly_once_under_faults(backend, kind):
    case = stream_chaos_run("uniform", 2, backend, kind, seed=0)
    assert case.matched, "streamed sequence diverged from the serial oracle"
    assert case.fired > 0, "no fault fired — vacuous case"
    assert case.kind == f"{kind}+stream"


def test_dense_request_chaos_is_ridden_through():
    # Half of all submit/poll/stream requests answered with injected
    # faults: the client's re-attach loop must absorb a dense schedule,
    # not just a single blip.
    case = stream_chaos_run(
        "anticorrelated", 2, "thread", "transient", seed=1, error_rate=0.5,
    )
    assert case.matched
    assert case.injected > 0, "request chaos never fired — vacuous case"
