"""The chaos acceptance matrix (quarantinable via ``-m chaos``).

Every seed workload × shard counts {2, 4} × both parallel backends ×
every result-affecting fault kind: the faulted run must be bit-identical
to the fault-free run with at least one fault actually fired.  These
tests spawn process children and respawn them on purpose, so they carry
the ``chaos`` marker — CI runs them in a dedicated step and a flaky
environment can quarantine them with ``-m "not chaos"`` without touching
the deterministic suite.
"""

from __future__ import annotations

import pytest

from tests.resilience.harness import (
    CHAOS_BACKENDS,
    CHAOS_KINDS,
    CHAOS_SHARDS,
    CHAOS_WORKLOADS,
    assert_chaos_case,
    chaos_run,
)

pytestmark = pytest.mark.chaos


@pytest.mark.parametrize("kind", CHAOS_KINDS)
@pytest.mark.parametrize("backend", CHAOS_BACKENDS)
@pytest.mark.parametrize("shards", CHAOS_SHARDS)
@pytest.mark.parametrize("workload", CHAOS_WORKLOADS)
def test_chaos_matrix(workload, shards, backend, kind):
    assert_chaos_case(workload, shards, backend, kind)


def test_chaos_runs_are_seed_reproducible():
    a = chaos_run("uniform", 2, "thread", "worker-kill", seed=9)
    b = chaos_run("uniform", 2, "thread", "worker-kill", seed=9)
    assert (a.respawns, a.retries, a.matched) == (b.respawns, b.retries, b.matched)


def test_chaos_suite_entrypoint_smoke():
    from repro.resilience import run_chaos_suite

    cases = run_chaos_suite(
        workloads=("uniform",), shards=(2,), backends=("thread",),
        kinds=("transient",),
    )
    assert len(cases) == 1 and cases[0].ok


class TestReshardChaos:
    """Faults fired DURING a live re-shard migration must not break the
    bit-identity invariant: the adaptive engine replays the emitted prefix
    on the new topology under fault injection and must land exactly where
    the fault-free serial run lands."""

    @pytest.mark.parametrize("kind", ("transient", "worker-kill"))
    @pytest.mark.parametrize("backend", CHAOS_BACKENDS)
    def test_fault_during_migration(self, backend, kind):
        from repro.resilience import reshard_chaos_run

        case = reshard_chaos_run("uniform", 2, backend, kind)
        assert case.matched, (
            f"reshard under {kind} on {backend}: results diverged "
            f"(respawns={case.respawns}, retries={case.retries})"
        )
        assert case.reshards == 1
        assert case.fired > 0, "no injected fault fired during migration"

    def test_skewed_workload_reshard_under_fault(self):
        from repro.resilience import reshard_chaos_run

        case = reshard_chaos_run("zipf", 4, "thread", "worker-kill", seed=2)
        assert case.ok and case.reshards == 1

    def test_suite_entrypoint_grows_reshard_leg(self):
        from repro.resilience import run_chaos_suite

        cases = run_chaos_suite(
            workloads=("uniform",), shards=(2,), backends=("thread",),
            kinds=("transient",), reshard=True,
        )
        assert len(cases) == 2
        assert all(c.ok for c in cases)
        assert any(c.kind.endswith("+reshard") for c in cases)
