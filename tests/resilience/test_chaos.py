"""The chaos acceptance matrix (quarantinable via ``-m chaos``).

Every seed workload × shard counts {2, 4} × both parallel backends ×
every result-affecting fault kind: the faulted run must be bit-identical
to the fault-free run with at least one fault actually fired.  These
tests spawn process children and respawn them on purpose, so they carry
the ``chaos`` marker — CI runs them in a dedicated step and a flaky
environment can quarantine them with ``-m "not chaos"`` without touching
the deterministic suite.
"""

from __future__ import annotations

import pytest

from tests.resilience.harness import (
    CHAOS_BACKENDS,
    CHAOS_KINDS,
    CHAOS_SHARDS,
    CHAOS_WORKLOADS,
    assert_chaos_case,
    chaos_run,
)

pytestmark = pytest.mark.chaos


@pytest.mark.parametrize("kind", CHAOS_KINDS)
@pytest.mark.parametrize("backend", CHAOS_BACKENDS)
@pytest.mark.parametrize("shards", CHAOS_SHARDS)
@pytest.mark.parametrize("workload", CHAOS_WORKLOADS)
def test_chaos_matrix(workload, shards, backend, kind):
    assert_chaos_case(workload, shards, backend, kind)


def test_chaos_runs_are_seed_reproducible():
    a = chaos_run("uniform", 2, "thread", "worker-kill", seed=9)
    b = chaos_run("uniform", 2, "thread", "worker-kill", seed=9)
    assert (a.respawns, a.retries, a.matched) == (b.respawns, b.retries, b.matched)


def test_chaos_suite_entrypoint_smoke():
    from repro.resilience import run_chaos_suite

    cases = run_chaos_suite(
        workloads=("uniform",), shards=(2,), backends=("thread",),
        kinds=("transient",),
    )
    assert len(cases) == 1 and cases[0].ok
