"""Cancellation racing recovery: no orphaned children, clean CANCELLED state."""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.data.workload import random_instance
from repro.exec import ExecConfig, ShardedRankJoin
from repro.obs import Observability
from repro.resilience import FaultPlan, FaultSpec, ResilienceConfig, RetryPolicy
from repro.service import QueryService
from repro.service.session import QuerySession, SessionState

FAST_RETRY = RetryPolicy(max_attempts=6, base_delay=0.0005, max_delay=0.005)


def make_instance():
    return random_instance(
        n_left=300, n_right=300, e_left=2, e_right=2,
        num_keys=30, k=10, seed=17,
    )


def wait_for_no_children(timeout: float = 10.0) -> list:
    """Poll ``multiprocessing.active_children`` until empty (it also joins
    finished children), returning whatever is still alive at the deadline."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        children = multiprocessing.active_children()
        if not children:
            return []
        time.sleep(0.02)
    return multiprocessing.active_children()


@pytest.mark.chaos
def test_cancel_mid_respawn_leaves_no_orphans():
    """Cancel a session between respawns of its process workers.

    The fault plan schedules kills beyond the cancellation point, so at
    cancel time the engine holds live children *and* an unfinished
    recovery schedule.  Cancellation must land the session in CANCELLED,
    and retiring it must terminate every child process.
    """
    instance = make_instance()
    # Kill early and often: the first advance already costs a respawn,
    # and more kills remain scheduled whenever the cancel lands.
    plan = FaultPlan(tuple(
        FaultSpec("worker-kill", shard, depth)
        for shard in (0, 1)
        for depth in (0, 5, 40, 80, 160)
    ))
    obs = Observability()
    config = ExecConfig(
        shards=2, backend="process",
        resilience=ResilienceConfig(plan=plan, retry=FAST_RETRY,
                                    max_respawns=50, degrade=False),
    )
    engine = ShardedRankJoin(instance, "FRPA", config=config, obs=obs)
    service = QueryService(cache_capacity=0)
    session = QuerySession("c1", engine, instance.k, quantum=8)
    service.scheduler.submit(session)

    # Step until at least one respawn happened (recovery is in flight).
    for _ in range(200):
        if obs.metrics.value("worker_respawns_total"):
            break
        if not service.tick():
            break
    assert obs.metrics.value("worker_respawns_total"), (
        "fault plan never triggered a respawn; the race is not exercised"
    )
    assert session.live, "session drained before cancellation could race it"

    assert service.cancel("c1")
    assert session.state is SessionState.CANCELLED
    # Retiring a CANCELLED session must have closed the engine (the
    # service releases operators it does not check into the cache).
    assert engine._closed

    leftovers = wait_for_no_children()
    assert not leftovers, f"orphaned child processes: {leftovers}"


@pytest.mark.chaos
def test_cancelled_session_with_results_is_not_cached():
    """A cancelled faulted run leaves nothing behind — no cache, no children."""
    instance = make_instance()
    plan = FaultPlan((FaultSpec("worker-kill", 0, 0),))
    config = ExecConfig(
        shards=2, backend="process",
        resilience=ResilienceConfig(plan=plan, retry=FAST_RETRY),
    )
    engine = ShardedRankJoin(instance, "FRPA", config=config)
    service = QueryService(cache_capacity=8)
    session = QuerySession(
        "c2", engine, instance.k, quantum=4, cache_key="faulted-query",
    )
    service.scheduler.submit(session)
    while session.live and not session.results:
        service.tick()
    service.cancel("c2")
    assert session.state is SessionState.CANCELLED
    assert len(service.cache) == 0
    assert engine._closed
    assert not wait_for_no_children()
