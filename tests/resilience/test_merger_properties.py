"""Property test: the merge gate stays closed over unknown frontiers.

The resilience invariant leans entirely on one property of
:class:`~repro.exec.merge.GlobalTopKMerger`: a candidate is released only
when **every** live shard's frontier lies strictly below it.  A shard
that is mid-respawn contributes no new outcome, so its frontier is
*unknown* — the gate must keep using the most conservative information it
has (``+inf`` before the shard ever reported, its last reported frontier
after), and never release a candidate such a shard could still beat or
tie.  Hypothesis drives randomized offer/silence schedules against that
invariant.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pbrj import SCORE_EPS
from repro.core.tuples import JoinResult, RankTuple
from repro.exec.merge import GlobalTopKMerger
from repro.exec.worker import AdvanceOutcome


def make_result(score: float, tag: int) -> JoinResult:
    half = score / 2.0
    return JoinResult.combine(
        RankTuple(key=tag, scores=(half,)),
        RankTuple(key=tag, scores=(score - half,)),
        score,
    )


def make_outcome(shard: int, scores, frontier: float,
                 exhausted: bool = False) -> AdvanceOutcome:
    return AdvanceOutcome(
        shard=shard,
        results=tuple(make_result(s, i) for i, s in enumerate(scores)),
        pulls=max(1, len(scores)),
        depth_left=1,
        depth_right=1,
        frontier=frontier,
        exhausted=exhausted,
    )


scores_strategy = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=5,
)


@settings(max_examples=150, deadline=None)
@given(
    n_shards=st.integers(min_value=2, max_value=5),
    data=st.data(),
)
def test_gate_never_releases_over_an_unknown_frontier(n_shards, data):
    merger = GlobalTopKMerger(list(range(n_shards)))
    # A non-empty subset of shards is "respawning": they never report
    # this round, so their frontier is unknown (still +inf).
    silent = data.draw(
        st.sets(st.integers(0, n_shards - 1), min_size=1, max_size=n_shards),
        label="silent shards",
    )
    for shard in range(n_shards):
        if shard in silent:
            continue
        scores = data.draw(scores_strategy, label=f"scores[{shard}]")
        frontier = data.draw(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            label=f"frontier[{shard}]",
        )
        merger.offer(make_outcome(shard, scores, frontier))
    # Shards that never reported keep frontier = +inf, which dominates
    # every finite candidate: nothing may be released.
    assert merger.pop_ready() is None
    # And every silent shard is required to advance before anything can.
    if merger.pending_candidates:
        assert silent <= set(merger.blocking_shards())


@settings(max_examples=150, deadline=None)
@given(
    n_shards=st.integers(min_value=2, max_value=4),
    data=st.data(),
)
def test_every_release_clears_all_live_frontiers(n_shards, data):
    """Any result the gate does release beats every live frontier."""
    merger = GlobalTopKMerger(list(range(n_shards)))
    rounds = data.draw(st.integers(min_value=1, max_value=4), label="rounds")
    frontiers: dict[int, float] = {}
    for _ in range(rounds):
        for shard in range(n_shards):
            if data.draw(st.booleans(), label=f"advance[{shard}]"):
                scores = data.draw(scores_strategy, label=f"scores[{shard}]")
                new_frontier = data.draw(
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    label=f"frontier[{shard}]",
                )
                # Frontiers are non-increasing in a real run.
                frontier = min(new_frontier, frontiers.get(shard, float("inf")))
                frontiers[shard] = frontier
                merger.offer(make_outcome(shard, scores, frontier))
        while (released := merger.pop_ready()) is not None:
            for shard in range(n_shards):
                if shard not in frontiers:
                    raise AssertionError(
                        f"released score {released.score} while shard {shard} "
                        f"never reported a frontier"
                    )
            live = [
                merger.frontier_of(s) for s in merger.live_shards
            ]
            assert all(f < released.score - SCORE_EPS for f in live), (
                f"released {released.score} although a live frontier "
                f"{max(live)} could still beat or tie it"
            )


def test_last_known_frontier_guards_a_respawning_shard():
    """Mid-respawn, a shard's last reported frontier still gates releases."""
    merger = GlobalTopKMerger([0, 1])
    # Shard 1 reported frontier 50.0, then died; it is respawning and
    # contributes nothing further this round.
    merger.offer(make_outcome(1, [], 50.0))
    # Shard 0 produces a candidate below that stale frontier.
    merger.offer(make_outcome(0, [49.0], 10.0))
    assert merger.pop_ready() is None  # shard 1 could still beat 49.0
    assert merger.blocking_shards() == [1]
    # The respawned shard 1 re-reports (replay gives the same state it
    # died with, then progresses past the candidate).
    merger.offer(make_outcome(1, [], 40.0))
    released = merger.pop_ready()
    assert released is not None and released.score == 49.0
