"""Client-side resilience: backed-off waiting and retryable request chaos."""

from __future__ import annotations

import contextlib
import threading
import types

import pytest

from repro.service import (
    QueryService,
    RankJoinServer,
    ServiceClient,
    ServiceError,
)
from repro.resilience import RequestChaos
from tests.service.conftest import make_instance

INSTANCE = make_instance(seed=3, n=200, num_keys=20, k=10)
RELATIONS = {"lineitem": INSTANCE.left, "orders": INSTANCE.right}


class FakeClock:
    """Virtual time: sleeps advance the clock instead of burning CPU."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class ScriptedClient(ServiceClient):
    """A client whose ``poll`` is served from a script, not a socket.

    Scripts a *legacy* server: the ``stream`` verb is unknown, so these
    tests pin down the geometric-backoff fallback path ``wait`` takes
    when it cannot ride the stream.
    """

    def __init__(self, clock: FakeClock, done_at: float) -> None:
        super().__init__("nowhere", 0)
        self._clock = clock
        self._done_at = done_at
        self.polls = 0

    def poll(self, session_id: str) -> dict:
        self.polls += 1
        state = "DONE" if self._clock.now >= self._done_at else "RUNNING"
        return {"session": session_id, "state": state}

    def stream_raw(self, session_id: str, *, from_index: int = 0):
        raise ServiceError("unknown verb 'stream'")
        yield  # pragma: no cover - generator marker


@pytest.fixture
def virtual_time(monkeypatch):
    clock = FakeClock()
    monkeypatch.setattr(
        "repro.service.client.time",
        types.SimpleNamespace(monotonic=clock.monotonic, sleep=clock.sleep),
    )
    return clock


class TestWaitBackoff:
    def test_slow_session_costs_logarithmic_then_bounded_polls(self, virtual_time):
        """A 10-virtual-second session must not be busy-polled.

        With the pre-backoff fixed 10ms interval this session would cost
        ~1000 poll round-trips; geometric backoff to a 250ms ceiling
        bounds it to a few dozen.
        """
        client = ScriptedClient(virtual_time, done_at=10.0)
        snapshot = client.wait(
            "s1", timeout=60.0, interval=0.01, sleep=virtual_time.sleep
        )
        assert snapshot["state"] == "DONE"
        assert client.polls < 80, f"{client.polls} polls — still busy-polling"
        assert client.polls > 5
        # Never spins: every sleep is at least the base interval, the
        # delays ramp monotonically, and the ceiling is respected.
        assert min(virtual_time.sleeps) >= 0.01
        assert max(virtual_time.sleeps) <= 0.25
        assert virtual_time.sleeps == sorted(virtual_time.sleeps)

    def test_fast_session_returns_without_sleeping(self, virtual_time):
        client = ScriptedClient(virtual_time, done_at=0.0)
        snapshot = client.wait("s1", timeout=5.0, sleep=virtual_time.sleep)
        assert snapshot["state"] == "DONE"
        assert client.polls == 1
        assert virtual_time.sleeps == []

    def test_timeout_still_raises(self, virtual_time):
        client = ScriptedClient(virtual_time, done_at=1e9)
        with pytest.raises(TimeoutError):
            client.wait("s1", timeout=2.0, sleep=virtual_time.sleep)


@contextlib.contextmanager
def running_server(chaos=None):
    service = QueryService(quantum=16)
    server = RankJoinServer(service, RELATIONS, port=0, chaos=chaos)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(timeout=10.0), "server never became ready"
    try:
        yield server
    finally:
        if thread.is_alive():
            with contextlib.suppress(OSError, ConnectionError, ServiceError):
                with ServiceClient(server.host, server.port) as client:
                    client.shutdown()
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "server thread failed to shut down"


class PatientClient(ServiceClient):
    """Raises the per-request retry budget to outlast dense chaos."""

    def request(self, payload: dict, *, max_retries: int = 10) -> dict:
        return super().request(payload, max_retries=max_retries)


class TestRequestChaosEndToEnd:
    def test_client_rides_through_injected_request_faults(self):
        """Seeded request chaos: every verb still completes via retries.

        With seed 4 the first several RNG draws sit below the 0.4 error
        rate, so the very first submit is answered with injected faults
        repeatedly — the retry loop must absorb a burst, not just a
        single blip.
        """
        chaos = RequestChaos(seed=4, error_rate=0.4, sleep=lambda _: None)
        with running_server(chaos=chaos) as server:
            with PatientClient(server.host, server.port) as client:
                final = client.run(
                    left="lineitem", right="orders", k=5, timeout=30.0,
                )
        assert final["state"] == "DONE"
        assert len(final["scores"]) == 5
        assert chaos.injected_errors > 0, "chaos never fired — vacuous test"

    def test_injected_fault_is_marked_retryable(self):
        chaos = RequestChaos(seed=0, error_rate=1.0, verbs=("poll",))
        with running_server(chaos=chaos) as server:
            with ServiceClient(server.host, server.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.poll("s1")
        assert excinfo.value.retryable

    def test_real_errors_are_not_retried(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.poll("no-such-session")
        assert not excinfo.value.retryable
