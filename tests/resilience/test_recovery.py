"""Recovery machinery: retry, respawn with replay, graceful degradation."""

from __future__ import annotations

import pytest

from repro.data.workload import random_instance
from repro.errors import ShardError
from repro.exec import ExecConfig, ShardedRankJoin
from repro.obs import Observability
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    ResilientBackend,
    RetryPolicy,
)
from repro.resilience.chaos import emission_view, reference_run

FAST_RETRY = RetryPolicy(max_attempts=6, base_delay=0.0005, max_delay=0.005)


def make_instance(seed: int = 11, k: int = 10):
    return random_instance(
        n_left=240, n_right=240, e_left=2, e_right=2,
        num_keys=24, k=k, seed=seed,
    )


def faulted_run(instance, *, backend, plan, shards=2, max_respawns=3,
                degrade=True, operator="FRPA"):
    obs = Observability()
    config = ExecConfig(
        shards=shards, backend=backend,
        resilience=ResilienceConfig(
            plan=plan, retry=FAST_RETRY,
            max_respawns=max_respawns, degrade=degrade,
        ),
    )
    with ShardedRankJoin(instance, operator, config=config, obs=obs) as engine:
        results = engine.top_k(instance.k)
        return results, engine.snapshot(), obs


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
class TestRespawnReplay:
    def test_single_kill_preserves_results_and_order(self, backend):
        instance = make_instance()
        reference = emission_view(reference_run(instance, 2))
        results, snapshot, obs = faulted_run(
            instance, backend=backend, plan=FaultPlan.single("worker-kill"),
        )
        assert emission_view(results) == reference
        assert obs.metrics.value("worker_respawns_total") == 1
        assert not snapshot["degraded"]

    def test_kill_at_depth_replays_recorded_history(self, backend):
        # A mid-stream kill forces a replay of several recorded quanta,
        # not just a fresh start.
        instance = make_instance()
        reference = emission_view(reference_run(instance, 2))
        plan = FaultPlan((
            FaultSpec("worker-kill", 0, 10),
            FaultSpec("worker-kill", 1, 15),
        ))
        results, _, obs = faulted_run(instance, backend=backend, plan=plan)
        assert emission_view(results) == reference
        assert obs.metrics.value("worker_respawns_total") == 2

    def test_repeated_kills_on_one_shard(self, backend):
        instance = make_instance()
        reference = emission_view(reference_run(instance, 2))
        # Shallow depths: after the first respawn replays to one quantum
        # (32 pulls), the remaining kills fire back to back inside the
        # same recovery loop — three respawns even on a short run.
        plan = FaultPlan(tuple(
            FaultSpec("worker-kill", 0, depth) for depth in (0, 5, 10)
        ))
        results, _, obs = faulted_run(
            instance, backend=backend, plan=plan, max_respawns=5,
        )
        assert emission_view(results) == reference
        assert obs.metrics.value("worker_respawns_total") == 3

    def test_transient_faults_retry_in_place(self, backend):
        instance = make_instance()
        reference = emission_view(reference_run(instance, 2))
        plan = FaultPlan((
            FaultSpec("transient", 0, 0),
            FaultSpec("transient", 1, 30),
        ))
        results, _, obs = faulted_run(instance, backend=backend, plan=plan)
        assert emission_view(results) == reference
        assert obs.metrics.value("resilience_retries_total", kind="transient") == 2
        # Transients never cost a respawn.
        assert not obs.metrics.value("worker_respawns_total")


class TestDegradation:
    def test_process_degrades_to_thread_and_finishes(self):
        instance = make_instance()
        reference = emission_view(reference_run(instance, 2))
        # One more kill than max_respawns allows on shard 0 → exactly one
        # tier drop, with nothing left to kill on the lower tier.
        plan = FaultPlan(tuple(
            FaultSpec("worker-kill", 0, depth) for depth in (0, 5, 10)
        ))
        results, snapshot, obs = faulted_run(
            instance, backend="process", plan=plan, max_respawns=2,
        )
        assert emission_view(results) == reference
        assert snapshot["degraded"]
        assert snapshot["backend_tier"] == "thread"
        assert obs.metrics.value("resilience_degrades_total") == 1

    def test_thread_degrades_to_serial_floor(self):
        instance = make_instance()
        reference = emission_view(reference_run(instance, 2))
        plan = FaultPlan(tuple(
            FaultSpec("worker-kill", 0, depth) for depth in (0, 10, 20, 30)
        ))
        results, snapshot, _ = faulted_run(
            instance, backend="thread", plan=plan, max_respawns=2,
        )
        assert emission_view(results) == reference
        assert snapshot["degraded"]
        assert snapshot["backend_tier"] == "serial"

    def test_degrade_false_keeps_respawning_on_the_same_tier(self):
        instance = make_instance()
        reference = emission_view(reference_run(instance, 2))
        plan = FaultPlan(tuple(
            FaultSpec("worker-kill", 0, depth) for depth in (0, 5, 10, 15, 20)
        ))
        results, snapshot, obs = faulted_run(
            instance, backend="thread", plan=plan,
            max_respawns=1, degrade=False,
        )
        assert emission_view(results) == reference
        assert not snapshot["degraded"]
        assert snapshot["backend_tier"] == "thread"
        assert obs.metrics.value("worker_respawns_total") == 5

    def test_transient_storm_exhausts_retry_budget(self):
        instance = make_instance()
        storm = FaultPlan(tuple(
            FaultSpec("transient", 0, 0) for _ in range(10)
        ))
        config = ExecConfig(
            shards=2, backend="serial",
            resilience=ResilienceConfig(
                plan=storm,
                retry=RetryPolicy(max_attempts=3, base_delay=0.0001),
            ),
        )
        engine = ShardedRankJoin(instance, "FRPA", config=config)
        with engine:
            with pytest.raises(ShardError):
                engine.top_k(instance.k)


class TestResilientBackendDirect:
    def test_no_plan_is_transparent(self):
        instance = make_instance()
        reference = emission_view(reference_run(instance, 2))
        config = ExecConfig(shards=2, backend="thread",
                            resilience=ResilienceConfig())
        with ShardedRankJoin(instance, "FRPA", config=config) as engine:
            assert emission_view(engine.top_k(instance.k)) == reference
            assert not engine.degraded
            assert engine.snapshot()["backend_tier"] == "thread"

    def test_replay_log_records_only_successful_quanta(self):
        from repro.exec.backends import make_backend
        from repro.exec.worker import ShardWorker

        instance = make_instance()
        worker = ShardWorker(0, instance, "FRPA")
        plan = FaultPlan((FaultSpec("transient", 0, 0),))
        backend = ResilientBackend(
            make_backend("serial"),
            config=ResilienceConfig(plan=plan, retry=FAST_RETRY),
            sleep=lambda _: None,
        )
        backend.start([worker])
        outcomes = backend.advance([(0, 8)])
        assert len(outcomes) == 1 and outcomes[0].pulls > 0
        # One successful quantum recorded — the failed attempt is not.
        assert backend._log[0] == [8]
        backend.advance([(0, 8)])
        assert backend._log[0] == [8, 8]
        backend.close()

    def test_respawn_counter_is_per_shard(self):
        instance = make_instance()
        plan = FaultPlan((
            FaultSpec("worker-kill", 0, 0),
            FaultSpec("worker-kill", 1, 0),
            FaultSpec("worker-kill", 1, 25),
        ))
        obs = Observability()
        config = ExecConfig(
            shards=2, backend="thread",
            resilience=ResilienceConfig(plan=plan, retry=FAST_RETRY,
                                        max_respawns=5),
        )
        with ShardedRankJoin(instance, "FRPA", config=config, obs=obs) as engine:
            engine.top_k(instance.k)
            backend = engine._backend
            assert backend.respawns == {0: 1, 1: 2}
        assert obs.metrics.value("worker_respawns_total") == 3
