"""Scheduler: policies, admission control, fairness and determinism.

The load-bearing property (ISSUE acceptance): interleaving N sessions
under the scheduler never changes any query's top-K answer or its
sumDepths relative to running the same queries serially.
"""

import json

import pytest

from repro.obs import Observability
from repro.service import (
    BoundGapPolicy,
    DeadlinePolicy,
    QueryService,
    QuerySession,
    RoundRobinPolicy,
    Scheduler,
    SessionState,
    make_policy,
)

from tests.service.conftest import make_spec, serial_answer

#: A mixed workload: different seeds, k's, and operators.
WORKLOAD = [
    dict(seed=0, k=5, operator="FRPA"),
    dict(seed=1, k=8, operator="HRJN*"),
    dict(seed=2, k=3, operator="HRJN"),
    dict(seed=3, k=10, operator="FRPA_RR"),
    dict(seed=4, k=6, operator="FRPA"),
    dict(seed=5, k=4, operator="HRJN*"),
]


def serialize(results):
    """Byte-exact form of an answer (scores at full float precision)."""
    return json.dumps(
        [[r.score, repr(r.left.key), repr(r.right.key)] for r in results]
    ).encode()


class TestDeterminism:
    @pytest.mark.parametrize("policy", ["round-robin", "deadline", "bound-gap"])
    def test_interleaved_equals_serial(self, policy):
        specs = [make_spec(**w) for w in WORKLOAD]
        service = QueryService(
            policy=policy, max_live=3, quantum=8, cache_capacity=0
        )
        session_ids = [service.submit(spec) for spec in specs]
        service.run_until_complete()
        for spec, session_id in zip(specs, session_ids):
            session = service.session(session_id)
            expected_results, reference = serial_answer(spec)
            assert session.state is SessionState.DONE
            # Byte-identical results…
            assert serialize(session.answer()) == serialize(expected_results)
            # …and identical work: sumDepths == serial sumDepths.
            assert sum(session.depths()) == sum(
                [reference.depths().left, reference.depths().right]
            )
            assert session.pulls == reference.pulls

    def test_round_robin_twice_is_identical(self):
        def run_once():
            specs = [make_spec(**w) for w in WORKLOAD[:4]]
            service = QueryService(policy="round-robin", max_live=4,
                                   quantum=8, cache_capacity=0)
            ids = [service.submit(s) for s in specs]
            service.run_until_complete()
            return b"".join(
                serialize(service.session(i).answer()) for i in ids
            )

        assert run_once() == run_once()


class TestFairness:
    def test_round_robin_interleaves_sessions(self):
        # With equal quanta, no session should finish only after every
        # other session has fully finished pulling — progress alternates.
        specs = [make_spec(seed=s, k=10) for s in range(3)]
        scheduler = Scheduler(policy="round-robin", max_live=3)
        sessions = [
            QuerySession(f"s{i}", spec.build_operator(), spec.k, quantum=4)
            for i, spec in enumerate(specs)
        ]
        for session in sessions:
            scheduler.submit(session)
        # After 3 ticks every session has been stepped exactly once.
        for _ in range(3):
            scheduler.tick()
        stepped = [s.steps for s in sessions]
        assert stepped == [1, 1, 1]


class TestAdmissionControl:
    def test_excess_sessions_queue(self):
        specs = [make_spec(seed=s, k=3) for s in range(4)]
        service = QueryService(max_live=2, quantum=8, cache_capacity=0)
        for spec in specs:
            service.submit(spec)
        assert len(service.scheduler.live_sessions) == 2
        assert len(service.scheduler.queued_sessions) == 2

    def test_queue_drains_as_sessions_finish(self):
        specs = [make_spec(seed=s, k=3) for s in range(4)]
        service = QueryService(max_live=1, quantum=32, cache_capacity=0)
        ids = [service.submit(spec) for spec in specs]
        service.run_until_complete()
        assert all(
            service.session(i).state is SessionState.DONE for i in ids
        )

    def test_cancel_live_session_frees_admission_slot(self):
        specs = [make_spec(seed=s, k=10) for s in range(2)]
        service = QueryService(max_live=1, quantum=4, cache_capacity=0)
        first, second = (service.submit(spec) for spec in specs)
        service.tick()  # first session starts running
        assert service.session(second) in service.scheduler.queued_sessions
        assert service.cancel(first)
        # The queued session was admitted by the cancellation.
        assert service.session(second) in service.scheduler.live_sessions
        service.run_until_complete()
        assert service.session(first).state is SessionState.CANCELLED
        assert service.session(second).state is SessionState.DONE

    def test_cancel_queued_session(self):
        service = QueryService(max_live=1, quantum=4, cache_capacity=0)
        first = service.submit(make_spec(seed=0, k=5))
        second = service.submit(make_spec(seed=1, k=5))
        assert service.cancel(second)
        assert service.session(second).state is SessionState.CANCELLED
        service.run_until_complete()
        assert service.session(first).state is SessionState.DONE

    def test_cancel_unknown_session(self):
        service = QueryService(cache_capacity=0)
        assert service.cancel("s999") is False


class TestPolicies:
    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("fifo")

    def test_make_policy_passes_instances_through(self):
        policy = RoundRobinPolicy()
        assert make_policy(policy) is policy

    def test_deadline_policy_prefers_earliest_deadline(self):
        spec = make_spec()
        urgent = QuerySession("a", spec.build_operator(), 3, deadline=1.0)
        lax = QuerySession("b", spec.build_operator(), 3, deadline=9.0)
        none = QuerySession("c", spec.build_operator(), 3)
        assert DeadlinePolicy().choose([lax, none, urgent]) is urgent

    def test_deadline_policy_breaks_ties_by_priority(self):
        spec = make_spec()
        high = QuerySession("a", spec.build_operator(), 3, priority=0)
        low = QuerySession("b", spec.build_operator(), 3, priority=5)
        assert DeadlinePolicy().choose([low, high]) is high

    def test_bound_gap_policy_prefers_near_finished(self):
        spec = make_spec(k=5)
        fresh = QuerySession("a", spec.build_operator(), 5, quantum=4)
        advanced = QuerySession("b", spec.build_operator(), 5, quantum=4)
        while not advanced.results:
            advanced.step()  # has buffered/emitted progress → smaller gap
        chosen = BoundGapPolicy().choose([fresh, advanced])
        assert chosen is advanced


class TestObservability:
    def test_scheduler_metrics(self):
        obs = Observability()
        service = QueryService(max_live=2, quantum=8, cache_capacity=0, obs=obs)
        ids = [service.submit(make_spec(seed=s, k=3)) for s in range(3)]
        assert obs.metrics.value("service_queue_depth") == 1
        service.run_until_complete()
        assert obs.metrics.value("service_queue_depth") == 0
        assert obs.metrics.value(
            "service_sessions_total", state="DONE"
        ) == len(ids)
        assert obs.metrics.value(
            "service_pulls_total", policy="round-robin"
        ) == sum(service.session(i).pulls for i in ids)
        latency = obs.metrics.histogram(
            "service_session_seconds", policy="round-robin"
        )
        assert latency.count == len(ids)
