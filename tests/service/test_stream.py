"""The ``stream`` verb: results pushed the moment the merge gate frees them.

Covers the wire contract (sequential indexes, release-order scores, the
terminal ``done`` snapshot), cursor resume, and the client-side
``wait``-rides-the-stream fast path with its poll-loop fallback.
"""

import threading

import pytest

from repro.service import ServiceClient, ServiceError

from tests.service.test_server import REFERENCE_SCORES, running_server

ROUNDED_REFERENCE = [round(s, 6) for s in REFERENCE_SCORES]


def split_events(events):
    """Partition a consumed stream into (result events, done event)."""
    assert events, "stream produced no events"
    done = events[-1]
    assert done.get("event") == "done", f"stream did not end in done: {done}"
    results = events[:-1]
    assert all(e.get("event") == "result" for e in results)
    return results, done


class TestStreamVerb:
    def test_results_stream_in_release_order(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                sid = client.submit(left="lineitem", right="orders", k=8)
                events = list(client.stream(sid))
        results, done = split_events(events)
        assert [e["index"] for e in results] == list(range(8))
        assert [e["score"] for e in results] == ROUNDED_REFERENCE[:8]
        # The pushed sequence IS the final answer, in order.
        assert done["state"] == "DONE"
        assert done["scores"] == ROUNDED_REFERENCE[:8]

    def test_release_timestamps_are_monotone(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                sid = client.submit(left="lineitem", right="orders", k=10)
                events = list(client.stream(sid))
        results, _ = split_events(events)
        stamps = [e["ts"] for e in results]
        assert stamps == sorted(stamps)

    def test_stream_resumes_from_cursor(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                sid = client.submit(left="lineitem", right="orders", k=8)
                client.wait(sid)
                events = list(client.stream(sid, from_index=5))
        results, done = split_events(events)
        assert [e["index"] for e in results] == [5, 6, 7]
        assert [e["score"] for e in results] == ROUNDED_REFERENCE[5:8]
        assert done["scores"] == ROUNDED_REFERENCE[:8]

    def test_streaming_a_finished_session_replays_everything(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                final = client.run(left="lineitem", right="orders", k=5)
                events = list(client.stream(final["session"]))
        results, done = split_events(events)
        assert [e["score"] for e in results] == final["scores"]
        assert done["scores"] == final["scores"]

    def test_unknown_session_is_clean_error(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                with pytest.raises(ServiceError, match="no session"):
                    list(client.stream("s999"))

    def test_concurrent_streams_of_one_live_session_agree(self):
        """Two clients riding the same live session see identical events."""
        sequences: dict[int, list] = {}
        errors: list[Exception] = []

        def consume(slot: int, sid: str):
            try:
                with ServiceClient(server.host, server.port) as client:
                    sequences[slot] = [
                        e["score"] for e in client.stream(sid)
                        if e.get("event") == "result"
                    ]
            except Exception as exc:  # surfaced to the main thread below
                errors.append(exc)

        with running_server(quantum=4) as server:
            with ServiceClient(server.host, server.port) as submitter:
                sid = submitter.submit(left="lineitem", right="orders", k=12)
                threads = [
                    threading.Thread(target=consume, args=(slot, sid))
                    for slot in range(2)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30.0)
        assert not errors, errors
        assert sequences[0] == sequences[1] == ROUNDED_REFERENCE[:12]


class PollCountingClient(ServiceClient):
    def __init__(self, host, port):
        super().__init__(host, port)
        self.polls = 0
        self.stream_requests = 0

    def poll(self, session_id):
        self.polls += 1
        return super().poll(session_id)

    def stream_raw(self, session_id, *, from_index=0):
        self.stream_requests += 1
        return super().stream_raw(session_id, from_index=from_index)


class LegacyServerClient(PollCountingClient):
    """Acts like a client talking to a server without the stream verb."""

    def stream_raw(self, session_id, *, from_index=0):
        self.stream_requests += 1
        raise ServiceError("unknown verb 'stream'")
        yield  # pragma: no cover - generator marker


class TestWaitRidesStream:
    def test_wait_uses_stream_and_never_polls(self):
        with running_server() as server:
            with PollCountingClient(server.host, server.port) as client:
                sid = client.submit(left="lineitem", right="orders", k=6)
                final = client.wait(sid)
        assert final["state"] == "DONE"
        assert final["scores"] == ROUNDED_REFERENCE[:6]
        assert client.stream_requests >= 1
        assert client.polls == 0, "wait fell back to polling a streaming server"

    def test_wait_falls_back_to_polling_on_legacy_server(self):
        with running_server() as server:
            with LegacyServerClient(server.host, server.port) as client:
                sid = client.submit(left="lineitem", right="orders", k=6)
                final = client.wait(sid)
                assert client._stream_supported is False
                first_attempts = client.stream_requests
                # A second wait goes straight to the poll loop.
                again = client.wait(sid)
        assert final["state"] == "DONE"
        assert final["scores"] == ROUNDED_REFERENCE[:6]
        assert client.polls >= 2
        assert first_attempts == 1
        assert client.stream_requests == 1
        assert again["scores"] == final["scores"]
