"""QuerySession: pull-quantum stepping, states, budgets, cancellation."""

import pytest

from repro.core.stepping import PENDING
from repro.errors import BudgetExhausted
from repro.service import QuerySession, SessionState

from tests.service.conftest import make_spec, serial_answer


def make_session(spec, **kwargs):
    kwargs.setdefault("quantum", 16)
    return QuerySession("s1", spec.build_operator(), spec.k, **kwargs)


class TestStepping:
    def test_initial_state_is_pending(self):
        session = make_session(make_spec())
        assert session.state is SessionState.PENDING
        assert session.live and not session.done

    def test_first_step_transitions_to_running(self):
        session = make_session(make_spec())
        session.step()
        assert session.state in (SessionState.RUNNING, SessionState.DONE)
        assert session.started_at is not None

    def test_each_step_spends_at_most_one_quantum(self):
        session = make_session(make_spec(), quantum=7)
        while session.live:
            before = session.pulls
            session.step()
            assert session.pulls - before <= 7

    def test_runs_to_completion_with_serial_answer(self):
        spec = make_spec()
        expected, reference = serial_answer(spec)
        session = make_session(spec).run_to_completion()
        assert session.state is SessionState.DONE
        assert [r.score for r in session.answer()] == [r.score for r in expected]
        assert session.pulls == reference.pulls

    def test_step_on_terminal_session_is_noop(self):
        session = make_session(make_spec()).run_to_completion()
        pulls = session.pulls
        assert session.step() is False
        assert session.pulls == pulls

    def test_latency_recorded_on_finish(self):
        session = make_session(make_spec()).run_to_completion()
        assert session.latency is not None and session.latency >= 0.0

    def test_small_join_exhausts_before_k(self):
        spec = make_spec(k=10, n=20)
        session = make_session(spec, quantum=8).run_to_completion()
        _, reference = serial_answer(spec)
        assert session.state is SessionState.DONE
        assert len(session.results) == len(reference.emitted_results)


class TestBudget:
    def test_budget_exhaustion_is_graceful_partial_answer(self):
        spec = make_spec()
        session = make_session(spec, max_pulls=10).run_to_completion()
        assert session.state is SessionState.DONE
        assert session.budget_exhausted
        assert session.pulls <= 10
        assert len(session.answer()) < spec.k  # partial, not an exception

    def test_strict_answer_raises_budget_exhausted(self):
        session = make_session(make_spec(), max_pulls=5).run_to_completion()
        with pytest.raises(BudgetExhausted):
            session.answer(strict=True)

    def test_partial_results_drained_without_budget(self):
        # Whatever became provable within the budget is still delivered.
        spec = make_spec()
        _, reference = serial_answer(spec)
        generous = reference.pulls - 1
        session = make_session(spec, max_pulls=generous).run_to_completion()
        assert session.budget_exhausted
        assert session.pulls <= generous

    def test_sufficient_budget_completes_normally(self):
        spec = make_spec()
        _, reference = serial_answer(spec)
        session = make_session(spec, max_pulls=reference.pulls)
        session.run_to_completion()
        assert not session.budget_exhausted
        assert len(session.answer()) == spec.k


class TestCancellation:
    def test_cancel_mid_query(self):
        session = make_session(make_spec(), quantum=4)
        session.step()
        assert session.cancel()
        assert session.state is SessionState.CANCELLED
        assert session.done

    def test_cancel_terminal_session_returns_false(self):
        session = make_session(make_spec()).run_to_completion()
        assert session.cancel() is False
        assert session.state is SessionState.DONE


class TestFailure:
    def test_operator_exception_fails_session(self):
        class Exploding:
            pulls = 0

            def try_next(self, max_pulls=None):
                raise RuntimeError("boom")

        session = QuerySession("s1", Exploding(), 5, quantum=4)
        session.step()
        assert session.state is SessionState.FAILED
        assert "boom" in session.error


class TestSnapshot:
    def test_snapshot_is_json_friendly(self):
        import json

        session = make_session(make_spec()).run_to_completion()
        payload = session.snapshot()
        json.dumps(payload)  # must not raise
        assert payload["state"] == "DONE"
        assert payload["complete"] is True
        assert len(payload["scores"]) == session.k
        assert payload["pulls"] == session.pulls

    def test_pending_sentinel_identity(self):
        # The module-level sentinel is falsy but distinct from None.
        assert not PENDING
        assert PENDING is not None
