"""Per-tenant admission quotas: token buckets, service wiring, the wire.

Unit tests run under an injectable virtual clock (no sleeping); the
over-the-wire tests check the reject shape (``throttled`` +
``retry_after``) and that a backed-off client rides through throttling.
"""

import time

import pytest

from repro.errors import QuotaExceeded
from repro.service import ServiceClient, ServiceError, TenantQuotas, TokenBucket

from tests.service.test_server import running_server


class Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_starts_full_and_spends_down_to_empty(self):
        clock = Clock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
        assert bucket.tokens == 3.0
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry_after = bucket.try_acquire()
        assert retry_after == pytest.approx(0.1)  # 1 token at 10/s

    def test_refills_at_rate_and_caps_at_burst(self):
        clock = Clock()
        bucket = TokenBucket(rate=2.0, burst=4, clock=clock)
        for _ in range(4):
            bucket.try_acquire()
        clock.now = 1.0  # 2 tokens refilled
        assert bucket.tokens == pytest.approx(2.0)
        clock.now = 100.0  # refill never exceeds burst
        assert bucket.tokens == pytest.approx(4.0)

    def test_retry_after_is_exact_time_to_next_token(self):
        clock = Clock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        assert bucket.try_acquire() == 0.0
        clock.now = 0.1  # 0.4 tokens exist; 0.6 more needed at 4/s
        assert bucket.try_acquire() == pytest.approx(0.15)

    def test_rejects_nonsense_parameters(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=5)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestTenantQuotas:
    def test_buckets_are_lazy_and_isolated(self):
        clock = Clock()
        quotas = TenantQuotas(rate=5.0, burst=2, clock=clock)
        for _ in range(2):
            quotas.admit("alice")
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.admit("alice")
        assert excinfo.value.tenant == "alice"
        assert excinfo.value.retry_after == pytest.approx(0.2)
        # Alice's empty bucket says nothing about Bob's.
        quotas.admit("bob")

    def test_overrides_grant_bigger_allowances(self):
        clock = Clock()
        quotas = TenantQuotas(
            rate=1.0, burst=1, overrides={"batch": (100.0, 50.0)}, clock=clock
        )
        for _ in range(50):
            quotas.admit("batch")
        quotas.admit("interactive")
        with pytest.raises(QuotaExceeded):
            quotas.admit("interactive")

    def test_stats_report_tokens_and_throttle_counts(self):
        clock = Clock()
        quotas = TenantQuotas(rate=5.0, burst=2, clock=clock)
        quotas.admit("alice")
        for _ in range(3):
            with pytest.raises(QuotaExceeded):
                for _ in range(5):
                    quotas.admit("alice")
        stats = quotas.stats()
        assert stats["rate"] == 5.0 and stats["burst"] == 2.0
        assert stats["tenants"]["alice"] == 0.0
        assert stats["throttled"]["alice"] == 3


class TestQuotasOverTheWire:
    def test_over_quota_submit_is_rejected_with_retry_after(self):
        quotas = TenantQuotas(rate=0.5, burst=2)
        with running_server(quotas=quotas) as server:
            with ServiceClient(server.host, server.port) as client:
                for _ in range(2):
                    client.submit(left="lineitem", right="orders", k=2,
                                  tenant="alice")
                with pytest.raises(ServiceError, match="quota") as excinfo:
                    client.request({
                        "verb": "submit", "left": "lineitem",
                        "right": "orders", "k": 2, "tenant": "alice",
                    }, max_retries=0)
                # Another tenant is admitted while alice is throttled.
                client.submit(left="lineitem", right="orders", k=2,
                              tenant="bob")
                metrics = client.metrics()
                stats = client.stats()
        assert excinfo.value.retryable
        assert excinfo.value.retry_after == pytest.approx(2.0, rel=0.2)
        assert 'service_throttled_total{tenant="alice"} 1' in metrics
        assert stats["quotas"]["throttled"] == {"alice": 1}

    def test_client_backs_off_and_rides_through_throttling(self):
        sleeps: list[float] = []

        def recording_sleep(seconds: float) -> None:
            sleeps.append(seconds)
            time.sleep(seconds)  # real wait: the bucket must refill

        quotas = TenantQuotas(rate=50.0, burst=1)
        with running_server(quotas=quotas) as server:
            with ServiceClient(server.host, server.port) as client:
                client.submit(left="lineitem", right="orders", k=2, tenant="t")
                # Bucket empty: the reject carries retry_after and the
                # request layer sleeps exactly that hint, then succeeds.
                response = client.request(
                    {"verb": "submit", "left": "lineitem", "right": "orders",
                     "k": 2, "tenant": "t"},
                    max_retries=4, sleep=recording_sleep,
                )
        assert response["ok"] is True
        assert sleeps and all(0.0 < s <= 1.0 for s in sleeps)

    def test_no_quotas_means_no_throttling(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                for _ in range(10):
                    client.submit(left="lineitem", right="orders", k=1,
                                  tenant="alice")
                assert client.stats()["quotas"] is None
