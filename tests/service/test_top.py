"""Tests for the ``repro top`` dashboard: pure renderer + live loop."""

import io

from tests.service.test_server import running_server

from repro.service import ServiceClient
from repro.service.top import render_dashboard, run_top

STATS = {
    "scheduler": {
        "live": 1, "queued": 2, "finished": {"DONE": 3}, "pulls": 640,
        "policy": "round-robin",
    },
    "slo": {
        "session_seconds": {"p50": 0.002, "p95": 0.01, "p99": 1.5},
        "sessions_finished": 3,
        "cache_hit_ratio": 0.5,
        "shard_imbalance_max": 1.25,
    },
    "cache": {"entries": 2, "capacity": 128, "hits": 3, "misses": 3},
    "shards": {"0": 320, "1": 320},
    "sessions": [
        {"session": "q-1", "state": "RUNNING", "label": "hrjn k=10",
         "results": 4, "k": 10, "pulls": 320, "degraded": True,
         "plan": "pbrj/FRPA x4 skew/thread"},
    ],
}


class TestRenderDashboard:
    def test_renders_all_sections(self):
        screen = render_dashboard(STATS)
        assert "live=1 queued=2 finished=3" in screen
        assert "p50=2.0ms" in screen
        assert "p99=1.50s" in screen
        assert "hit-rate=50%" in screen
        assert "imbalance-max=1.25" in screen
        assert "q-1" in screen and "degraded" in screen

    def test_rates_diffed_against_previous_poll(self):
        previous = {"shards": {"0": 120, "1": 320}}
        screen = render_dashboard(STATS, previous, interval=2.0)
        assert "100/s" in screen  # (320 - 120) / 2.0
        assert "0/s" in screen

    def test_no_rate_without_previous(self):
        screen = render_dashboard(STATS)
        lines = [l for l in screen.splitlines() if l.strip().startswith("0 ")]
        assert lines and lines[0].rstrip().endswith("-")

    def test_empty_stats_do_not_crash(self):
        screen = render_dashboard({})
        assert "no sessions in flight" in screen

    def test_plan_column_rendered_per_session(self):
        screen = render_dashboard(STATS)
        assert "PLAN" in screen
        assert "pbrj/FRPA x4 skew/thread" in screen

    def test_missing_plan_renders_placeholder(self):
        stats = dict(STATS)
        stats["sessions"] = [
            {"session": "q-2", "state": "RUNNING", "label": "x",
             "results": 0, "k": 5, "pulls": 0, "degraded": False},
        ]
        screen = render_dashboard(stats)
        assert "?" in screen

    def test_draining_flag_in_title(self):
        screen = render_dashboard({"draining": True})
        assert "[DRAINING]" in screen


class TestRunTop:
    def test_two_iterations_against_live_server(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                client.run(left="lineitem", right="orders", k=5)
            out = io.StringIO()
            code = run_top(
                server.host, server.port,
                interval=0.01, iterations=2, out=out, clear=False,
                sleep=lambda _s: None,
            )
        assert code == 0
        text = out.getvalue()
        assert text.count("repro top") == 2
        assert "latency" in text

    def test_clear_sequence_emitted(self):
        with running_server() as server:
            out = io.StringIO()
            run_top(server.host, server.port, iterations=1, out=out,
                    sleep=lambda _s: None)
        assert out.getvalue().startswith("\x1b[2J\x1b[H")

    def test_unreachable_server_exits_2(self):
        out = io.StringIO()
        code = run_top("127.0.0.1", 1, iterations=1, out=out,
                       sleep=lambda _s: None)
        assert code == 2
