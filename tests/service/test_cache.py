"""ResultCache: LRU+TTL mechanics, prefix reuse, and prefix extension."""

import pytest

from repro.obs import Observability
from repro.relation import Relation
from repro.service import QueryService, QuerySpec, ResultCache, SessionState

from tests.service.conftest import make_instance, make_spec, serial_answer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCacheMechanics:
    def test_lookup_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.lookup("q1", 3) is None
        cache.store("q1", ["a", "b", "c"])
        assert cache.lookup("q1", 3) == ["a", "b", "c"]

    def test_prefix_reuse_smaller_k(self):
        cache = ResultCache(capacity=4)
        cache.store("q1", ["a", "b", "c"])
        assert cache.lookup("q1", 2) == ["a", "b"]
        assert cache.lookup("q1", 4) is None  # prefix too short

    def test_exhausted_entry_covers_any_k(self):
        cache = ResultCache(capacity=4)
        cache.store("q1", ["a", "b"], exhausted=True)
        assert cache.lookup("q1", 100) == ["a", "b"]

    def test_shorter_prefix_never_overwrites_longer(self):
        cache = ResultCache(capacity=4)
        cache.store("q1", ["a", "b", "c"])
        cache.store("q1", ["a"])  # late k'=1 session must not shrink entry
        assert cache.lookup("q1", 3) == ["a", "b", "c"]

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.store("q1", ["a"])
        cache.store("q2", ["b"])
        cache.lookup("q1", 1)  # refresh q1 → q2 is now least recent
        cache.store("q3", ["c"])
        assert cache.lookup("q2", 1) is None
        assert cache.lookup("q1", 1) == ["a"]
        assert cache.stats()["evictions"] == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl=10.0, clock=clock)
        cache.store("q1", ["a"])
        clock.now = 5.0
        assert cache.lookup("q1", 1) == ["a"]
        clock.now = 11.0
        assert cache.lookup("q1", 1) is None
        assert cache.stats()["expirations"] == 1

    def test_continuation_exclusive_checkout(self):
        cache = ResultCache(capacity=4)
        operator = object()
        cache.store("q1", ["a", "b"], operator=operator)
        prefix, checked_out = cache.take_continuation("q1")
        assert prefix == ["a", "b"] and checked_out is operator
        # Second checkout fails — the operator is gone from the entry…
        assert cache.take_continuation("q1") is None
        # …but prefix hits still work.
        assert cache.lookup("q1", 2) == ["a", "b"]

    def test_no_continuation_when_exhausted(self):
        cache = ResultCache(capacity=4)
        cache.store("q1", ["a"], exhausted=True, operator=object())
        assert cache.take_continuation("q1") is None

    def test_stats_and_hit_rate(self):
        cache = ResultCache(capacity=4)
        cache.store("q1", ["a"])
        cache.lookup("q1", 1)
        cache.lookup("q2", 1)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_invalidate_and_clear(self):
        cache = ResultCache(capacity=4)
        cache.store("q1", ["a"])
        assert cache.invalidate("q1") is True
        assert cache.invalidate("q1") is False
        cache.store("q2", ["b"])
        cache.clear()
        assert len(cache) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class _ClosableOperator:
    """Stand-in for a suspended sharded engine owning backend resources."""

    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class TestContinuationDisposal:
    """Every path dropping a continuation must close its operator.

    Suspended sharded operators own threads or child processes; a cache
    that silently forgets one orphans those workers (observed as leaked
    ``repro-shard-*`` children outliving a shut-down server).
    """

    def test_lru_eviction_closes_operator(self):
        cache = ResultCache(capacity=1)
        operator = _ClosableOperator()
        cache.store("q1", ["a"], operator=operator)
        cache.store("q2", ["b"])
        assert operator.closed

    def test_ttl_expiry_closes_operator(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl=10.0, clock=clock)
        operator = _ClosableOperator()
        cache.store("q1", ["a"], operator=operator)
        clock.now = 11.0
        assert cache.lookup("q1", 1) is None
        assert operator.closed

    def test_overwrite_closes_replaced_operator(self):
        cache = ResultCache(capacity=4)
        old = _ClosableOperator()
        cache.store("q1", ["a"], operator=old)
        new = _ClosableOperator()
        cache.store("q1", ["a", "b"], operator=new)
        assert old.closed and not new.closed

    def test_exhausted_overwrite_closes_operator(self):
        cache = ResultCache(capacity=4)
        operator = _ClosableOperator()
        cache.store("q1", ["a"], operator=operator)
        cache.store("q1", ["a", "b"], exhausted=True)
        assert operator.closed

    def test_invalidate_and_clear_and_close_dispose(self):
        cache = ResultCache(capacity=4)
        first, second, third = (_ClosableOperator() for _ in range(3))
        cache.store("q1", ["a"], operator=first)
        cache.invalidate("q1")
        assert first.closed
        cache.store("q2", ["b"], operator=second)
        cache.clear()
        assert second.closed
        cache.store("q3", ["c"], operator=third)
        cache.close()
        assert third.closed and len(cache) == 0

    def test_checked_out_continuation_is_not_double_closed(self):
        cache = ResultCache(capacity=4)
        operator = _ClosableOperator()
        cache.store("q1", ["a"], operator=operator)
        _, checked_out = cache.take_continuation("q1")
        cache.close()
        assert checked_out is operator and not operator.closed

    def test_service_close_disposes_cached_continuation(self):
        service = QueryService(quantum=64)
        spec = make_spec(k=4)
        service.run_query(spec)
        key = spec.fingerprint()
        peeked = service.cache.take_continuation(key)
        assert peeked is not None, "run left no continuation to protect"
        # Park it back, then close the service: the continuation must be
        # disposed (closed if it exposes close()) and the cache emptied.
        service.cache.store(key, peeked[0], operator=peeked[1])
        service.close()
        assert len(service.cache) == 0


class TestServiceCaching:
    def test_repeat_query_served_with_zero_pulls(self):
        spec = make_spec()
        obs = Observability()
        service = QueryService(obs=obs)
        first = service.run_query(spec)
        pulls_after_first = service.scheduler.stats()["pulls"]
        second = service.run_query(spec)
        assert [r.score for r in second] == [r.score for r in first]
        # The repeat cost zero pulls and registered as a cache hit.
        assert service.scheduler.stats()["pulls"] == pulls_after_first
        assert obs.metrics.value("service_cache_hits_total") == 1
        session = service.scheduler.finished_sessions[-1]
        assert session.from_cache and session.pulls == 0

    def test_prefix_reuse_smaller_k_through_service(self):
        instance = make_instance()
        big = QuerySpec(relations=(instance.left, instance.right), k=10)
        small = QuerySpec(relations=(instance.left, instance.right), k=4)
        service = QueryService()
        full = service.run_query(big)
        pulls = service.scheduler.stats()["pulls"]
        head = service.run_query(small)
        assert [r.score for r in head] == [r.score for r in full[:4]]
        assert service.scheduler.stats()["pulls"] == pulls  # zero new pulls

    def test_prefix_extension_resumes_suspended_operator(self):
        instance = make_instance()
        base = QuerySpec(relations=(instance.left, instance.right), k=10)
        wider = QuerySpec(relations=(instance.left, instance.right), k=15)
        service = QueryService()
        service.run_query(base)
        pulls_for_base = service.scheduler.stats()["pulls"]
        extended = service.run_query(wider)
        marginal = service.scheduler.stats()["pulls"] - pulls_for_base
        # Correct answer…
        expected, reference = serial_answer(wider)
        assert [r.score for r in extended] == [r.score for r in expected]
        # …for strictly fewer pulls than computing k=15 from scratch.
        assert 0 < marginal < reference.pulls
        # The longer prefix is cached now: the k=15 repeat is free.
        before = service.scheduler.stats()["pulls"]
        service.run_query(wider)
        assert service.scheduler.stats()["pulls"] == before

    def test_permuted_relations_share_cache_entry(self):
        instance = make_instance()
        shuffled = Relation(
            "lineitem-permuted", list(reversed(instance.left.tuples))
        )
        spec_a = QuerySpec(relations=(instance.left, instance.right), k=5)
        spec_b = QuerySpec(relations=(shuffled, instance.right), k=5)
        assert spec_a.fingerprint() == spec_b.fingerprint()
        service = QueryService()
        first = service.run_query(spec_a)
        second = service.run_query(spec_b)
        assert [r.score for r in second] == [r.score for r in first]
        session = service.scheduler.finished_sessions[-1]
        assert session.from_cache

    def test_cache_disabled_recomputes(self):
        spec = make_spec()
        service = QueryService(cache_capacity=0)
        service.run_query(spec)
        pulls = service.scheduler.stats()["pulls"]
        service.run_query(spec)
        assert service.scheduler.stats()["pulls"] == 2 * pulls

    def test_failed_sessions_are_not_cached(self):
        spec = make_spec()
        service = QueryService()
        key = spec.fingerprint()

        session_id = service.submit(spec)
        session = service.session(session_id)

        class Exploding:
            pulls = 0

            def try_next(self, max_pulls=None):
                raise RuntimeError("boom")

        session.operator = Exploding()
        service.run_until_complete()
        assert session.state is SessionState.FAILED
        assert service.cache.lookup(key, 1) is None


class TestPlanAwareCacheKeys:
    """Auto specs key the cache by their *resolved* plan (PR 8 follow-up).

    A pinned :class:`QuerySpec` and an ``auto`` spec the planner resolves
    to the same plan must hit the same :class:`ResultCache` entry — in
    both directions.  Likewise a kernel pin: every kernel tier (and
    size-aware ``auto`` dispatch) is bit-identical by contract, so the
    kernel axis must be invisible to the cache key.
    """

    @staticmethod
    def _auto_and_pinned():
        instance = make_instance()
        auto_spec = QuerySpec(
            relations=(instance.left, instance.right),
            k=10,
            algorithm="auto",
            shards="auto",
        )
        resolved = auto_spec.resolve()
        # An independent, fully static spec describing the same plan —
        # built from scratch, not by aliasing the resolved object.
        pinned = QuerySpec(
            relations=auto_spec.relations,
            k=auto_spec.k,
            algorithm=resolved.algorithm,
            operator=resolved.operator,
            shards=resolved.shards,
            exec_backend=resolved.exec_backend,
            partitioner=resolved.partitioner,
        )
        assert not pinned.is_auto
        return auto_spec, pinned

    def test_auto_resolves_to_pinned_fingerprint(self):
        auto_spec, pinned = self._auto_and_pinned()
        assert auto_spec.fingerprint() == pinned.fingerprint()

    def test_pinned_run_warms_cache_for_auto(self):
        auto_spec, pinned = self._auto_and_pinned()
        obs = Observability()
        service = QueryService(obs=obs)
        first = service.run_query(pinned)
        pulls = service.scheduler.stats()["pulls"]
        second = service.run_query(auto_spec)
        assert [r.score for r in second] == [r.score for r in first]
        assert service.scheduler.stats()["pulls"] == pulls  # zero new pulls
        assert obs.metrics.value("service_cache_hits_total") == 1
        assert service.scheduler.finished_sessions[-1].from_cache

    def test_auto_run_warms_cache_for_pinned(self):
        auto_spec, pinned = self._auto_and_pinned()
        service = QueryService()
        first = service.run_query(auto_spec)
        pulls = service.scheduler.stats()["pulls"]
        second = service.run_query(pinned)
        assert [r.score for r in second] == [r.score for r in first]
        assert service.scheduler.stats()["pulls"] == pulls
        assert service.scheduler.finished_sessions[-1].from_cache

    def test_kernel_pin_is_cache_invisible(self):
        # Kernel tiers are bit-identical, so a run pinned to the Python
        # reference must warm the cache for an auto-dispatch run.
        instance = make_instance()
        pinned = QuerySpec(
            relations=(instance.left, instance.right), k=10, kernel="python"
        )
        dispatched = QuerySpec(
            relations=(instance.left, instance.right), k=10, kernel="auto"
        )
        inherited = QuerySpec(
            relations=(instance.left, instance.right), k=10
        )
        assert pinned.fingerprint() == dispatched.fingerprint()
        assert pinned.fingerprint() == inherited.fingerprint()
        service = QueryService()
        first = service.run_query(pinned)
        pulls = service.scheduler.stats()["pulls"]
        second = service.run_query(dispatched)
        assert [r.score for r in second] == [r.score for r in first]
        assert service.scheduler.stats()["pulls"] == pulls
        assert service.scheduler.finished_sessions[-1].from_cache


class TestSharedTier:
    """The cross-process disk tier behind the serve fleet."""

    def test_write_through_and_cross_instance_hit(self, tmp_path):
        writer = ResultCache(capacity=4, shared_dir=tmp_path)
        writer.store("q1", ["a", "b", "c"])
        # A different cache instance (another worker, in the fleet) finds
        # the prefix on disk and promotes it into its own memory.
        reader = ResultCache(capacity=4, shared_dir=tmp_path)
        assert reader.lookup("q1", 3) == ["a", "b", "c"]
        assert reader.stats()["shared_hits"] == 1
        assert reader.stats()["hits"] == 1
        # Second lookup is a plain memory hit — the disk is not re-read.
        assert reader.lookup("q1", 2) == ["a", "b"]
        assert reader.stats()["shared_hits"] == 1

    def test_shorter_prefix_never_overwrites_longer_on_disk(self, tmp_path):
        a = ResultCache(capacity=4, shared_dir=tmp_path)
        b = ResultCache(capacity=4, shared_dir=tmp_path)
        a.store("q1", ["a", "b", "c"])
        b.store("q1", ["a"])  # late short answer must not shrink the file
        fresh = ResultCache(capacity=4, shared_dir=tmp_path)
        assert fresh.lookup("q1", 3) == ["a", "b", "c"]

    def test_promotion_drops_stale_continuation(self, tmp_path):
        """Regression: adopting a longer shared prefix must invalidate a
        continuation suspended at the old shorter prefix, or a later
        extension re-emits results the operator already produced."""

        class Closeable:
            closed = False

            def close(self):
                self.closed = True

        operator = Closeable()
        cache = ResultCache(capacity=4, shared_dir=tmp_path)
        cache.store("q1", ["a", "b"], operator=operator)
        # Another worker publishes a longer prefix for the same query.
        other = ResultCache(capacity=4, shared_dir=tmp_path)
        other.store("q1", ["a", "b", "c", "d"])
        # This worker misses in memory for k=4, promotes the shared
        # prefix — and must NOT hand back the operator positioned at 2.
        assert cache.lookup("q1", 4) == ["a", "b", "c", "d"]
        assert cache.take_continuation("q1") is None
        assert operator.closed

    def test_exhausted_travels_through_the_shared_tier(self, tmp_path):
        a = ResultCache(capacity=4, shared_dir=tmp_path)
        a.store("q1", ["a", "b"], exhausted=True)
        b = ResultCache(capacity=4, shared_dir=tmp_path)
        assert b.lookup("q1", 100) == ["a", "b"]

    def test_shared_ttl_expires_on_wall_clock(self, tmp_path, monkeypatch):
        import repro.service.cache as cache_module

        now = [1000.0]
        monkeypatch.setattr(cache_module.time, "time", lambda: now[0])
        a = ResultCache(capacity=4, ttl=10.0, shared_dir=tmp_path)
        a.store("q1", ["a"])
        now[0] = 1020.0
        b = ResultCache(capacity=4, ttl=10.0, shared_dir=tmp_path)
        assert b.lookup("q1", 1) is None
        assert not list(tmp_path.glob("*.pkl")), "expired file not reaped"

    def test_corrupt_shared_file_is_a_clean_miss(self, tmp_path):
        (tmp_path / "q1.pkl").write_bytes(b"not a pickle")
        cache = ResultCache(capacity=4, shared_dir=tmp_path)
        assert cache.lookup("q1", 1) is None
