"""Shared fixtures for the service-layer tests: small deterministic queries."""

from __future__ import annotations

import pytest

from repro.data.workload import random_instance
from repro.service import QuerySpec


def make_instance(seed: int = 0, *, n: int = 300, num_keys: int = 30, k: int = 10):
    return random_instance(
        n_left=n, n_right=n, e_left=2, e_right=2,
        num_keys=num_keys, k=k, seed=seed,
    )


def make_spec(seed: int = 0, *, k: int = 10, operator: str = "FRPA", n: int = 300):
    instance = make_instance(seed, n=n, k=k)
    return QuerySpec(
        relations=(instance.left, instance.right), k=k, operator=operator
    )


@pytest.fixture
def spec():
    return make_spec()


def serial_answer(spec: QuerySpec):
    """Reference execution: a fresh operator run to top-k serially."""
    operator = spec.build_operator()
    results = operator.top_k(spec.k)
    return results, operator
