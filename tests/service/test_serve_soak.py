"""Soak tier: hundreds of concurrent streaming sessions over the fleet.

Quarantined behind the ``soak`` marker (like ``chaos``): run with
``-m soak``, exclude with ``-m "not soak"``.  The contract under load is
exactly the single-query contract — every streamed prefix bit-identical
to the serial oracle, strictly sequential indexes, and zero leaked
worker processes at teardown.
"""

import multiprocessing
import threading

import pytest

from repro.service import ServiceClient

from tests.service.test_fleet import running_fleet
from tests.service.test_stream import ROUNDED_REFERENCE

pytestmark = pytest.mark.soak

SESSIONS = 208
THREADS = 16


def test_soak_200_concurrent_streaming_sessions():
    failures: list[str] = []
    finished = [0] * THREADS

    def worker(slot: int):
        try:
            with ServiceClient(fleet.host, fleet.port, timeout=120.0) as client:
                for j in range(SESSIONS // THREADS):
                    i = slot * (SESSIONS // THREADS) + j
                    k = (i % 20) + 1
                    sid = client.submit(
                        left="lineitem", right="orders", k=k,
                        tenant=f"tenant-{i % 8}",
                    )
                    scores, indexes, done = [], [], None
                    for event in client.stream(sid):
                        if event["event"] == "result":
                            scores.append(event["score"])
                            indexes.append(event["index"])
                        else:
                            done = event
                    # Every streamed prefix is the serial oracle prefix,
                    # pushed in order with no gap, dup, or reorder.
                    if indexes != list(range(len(scores))):
                        failures.append(f"{sid}: indexes {indexes}")
                    for length in range(1, len(scores) + 1):
                        if scores[:length] != ROUNDED_REFERENCE[:length]:
                            failures.append(
                                f"{sid}: prefix {length} diverges: "
                                f"{scores[:length]}"
                            )
                            break
                    if done is None or done["state"] != "DONE":
                        failures.append(f"{sid}: bad terminal event {done}")
                    elif done["scores"] != scores:
                        failures.append(f"{sid}: done != streamed")
                    elif len(scores) != k:
                        failures.append(f"{sid}: {len(scores)}/{k} results")
                    finished[slot] += 1
        except Exception as exc:  # surfaced to the main thread below
            failures.append(f"worker {slot}: {type(exc).__name__}: {exc}")

    with running_fleet(workers=2) as fleet:
        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=240.0)
        alive = [t for t in threads if t.is_alive()]
        with ServiceClient(fleet.host, fleet.port) as client:
            stats = client.stats()
    # The context manager has already asserted a clean front-end exit and
    # zero leaked fleet workers; re-check the whole process table here so
    # a leak from *this* load pattern names the test, not the teardown.
    assert multiprocessing.active_children() == []
    assert not alive, f"{len(alive)} client threads hung"
    assert not failures, failures[:10]
    assert sum(finished) == SESSIONS
    assert stats["slo"]["sessions_finished"] >= SESSIONS
    assert stats["fleet"]["alive"] == 2
