"""Graceful shutdown: drain live sessions, reject submits, flush obs.

Also covers the ``shards`` field over the wire (``--shards`` on the
serve CLI maps to ``default_shards`` here).
"""

import contextlib
import threading

import pytest

from repro.obs import Observability
from repro.service import (
    QueryService,
    RankJoinServer,
    ServiceClient,
    ServiceError,
    SessionState,
)

from tests.service.test_server import REFERENCE_SCORES, RELATIONS


@contextlib.contextmanager
def running_server(*, default_shards=1, **service_kwargs):
    service_kwargs.setdefault("quantum", 16)
    service = QueryService(**service_kwargs)
    server = RankJoinServer(
        service, RELATIONS, port=0, default_shards=default_shards
    )
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(timeout=10.0), "server never became ready"
    try:
        yield server, thread
    finally:
        if thread.is_alive():
            server.begin_shutdown()
            server.begin_shutdown()  # escalate so a failing test can't hang
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "server thread failed to shut down"


class TestGracefulShutdown:
    def test_idle_server_exits_after_begin_shutdown(self):
        with running_server() as (server, thread):
            server.begin_shutdown()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert server.draining is True

    def test_draining_rejects_new_submits(self):
        with running_server(quantum=4) as (server, thread):
            with ServiceClient(server.host, server.port) as client:
                sid = client.submit(left="lineitem", right="orders", k=20)
                server.begin_shutdown()
                assert client.stats()["draining"] is True
                with pytest.raises(ServiceError, match="draining"):
                    client.submit(left="lineitem", right="orders", k=3)
                # The in-flight session still runs to completion.  The
                # server exits the moment it finishes, so the final poll
                # may race the socket teardown; the authoritative check
                # is the server-side session state below.
                final = None
                with contextlib.suppress(OSError, ConnectionError,
                                         ServiceError):
                    final = client.wait(sid, timeout=30.0)
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            session = server.service.scheduler.find(sid)
            assert session is not None
            assert session.state is SessionState.DONE
            assert [round(r.score, 6) for r in session.results] \
                == [round(s, 6) for s in REFERENCE_SCORES[:20]]
            if final is not None:
                assert final["state"] == "DONE"

    def test_second_shutdown_call_stops_immediately(self):
        with running_server(quantum=1) as (server, thread):
            with ServiceClient(server.host, server.port) as client:
                client.submit(left="lineitem", right="orders", k=20)
                server.begin_shutdown()
                server.begin_shutdown()
            thread.join(timeout=10.0)
            assert not thread.is_alive()

    def test_obs_exporters_flushed_on_exit(self):
        obs = Observability()
        flushed = threading.Event()
        original_flush = obs.flush

        def recording_flush(*args, **kwargs):
            result = original_flush(*args, **kwargs)
            flushed.set()
            return result

        obs.flush = recording_flush
        with running_server(obs=obs) as (server, thread):
            with ServiceClient(server.host, server.port) as client:
                client.run(left="lineitem", right="orders", k=3)
            server.begin_shutdown()
            thread.join(timeout=10.0)
        assert flushed.is_set()


class TestShardsOverTheWire:
    def test_request_level_shards_preserve_the_answer(self):
        with running_server() as (server, _):
            with ServiceClient(server.host, server.port) as client:
                final = client.run(
                    left="lineitem", right="orders", k=6, shards=4,
                )
        assert final["state"] == "DONE"
        assert final["scores"] == [round(s, 6) for s in REFERENCE_SCORES[:6]]

    def test_default_shards_apply_to_every_query(self):
        with running_server(default_shards=4) as (server, _):
            with ServiceClient(server.host, server.port) as client:
                assert client.stats()["default_shards"] == 4
                final = client.run(left="lineitem", right="orders", k=6)
        assert final["state"] == "DONE"
        assert final["scores"] == [round(s, 6) for s in REFERENCE_SCORES[:6]]

    def test_explicit_shards_one_overrides_default(self):
        with running_server(default_shards=4) as (server, _):
            with ServiceClient(server.host, server.port) as client:
                final = client.run(
                    left="lineitem", right="orders", k=4, shards=1,
                )
        assert final["scores"] == [round(s, 6) for s in REFERENCE_SCORES[:4]]
