"""Wire-level tests for the live telemetry plane: metrics verb, SLO stats."""

from tests.service.test_server import running_server

from repro.service import ServiceClient

REQUIRED_FAMILIES = (
    "service_sessions_total",
    "service_session_seconds",
    "service_pulls_total",
    "service_queue_depth",
    "slo_session_seconds",
)


class TestMetricsVerb:
    def test_exposition_contains_required_families(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                client.run(left="lineitem", right="orders", k=5)
                text = client.metrics()
        for family in REQUIRED_FAMILIES:
            assert family in text, f"missing metric family {family}"
        assert "# TYPE service_session_seconds histogram" in text
        assert 'slo_session_seconds{quantile="0.95"}' in text

    def test_sharded_query_exposes_worker_counters(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                client.run(
                    left="lineitem", right="orders", k=5,
                    shards=2, backend="thread",
                )
                text = client.metrics()
        assert "exec_shard_pulls_total" in text
        assert 'worker_pulls_total{shard="0"}' in text
        assert 'worker_pulls_total{shard="1"}' in text


class TestStatsTelemetry:
    def test_stats_carry_slo_shards_and_sessions(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                client.run(
                    left="lineitem", right="orders", k=5,
                    shards=2, backend="thread",
                )
                stats = client.stats()
        slo = stats["slo"]
        percentiles = slo["session_seconds"]
        assert set(percentiles) == {"p50", "p95", "p99"}
        assert all(p is not None and p > 0 for p in percentiles.values())
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]
        assert slo["sessions_finished"] >= 1
        # Per-shard cumulative pull counters, keyed by shard label.
        assert set(stats["shards"]) == {"0", "1"}
        assert all(pulls > 0 for pulls in stats["shards"].values())
        assert stats["sessions"] == []  # nothing in flight after run()

    def test_live_sessions_listed(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                session_id = client.submit(
                    left="lineitem", right="orders", k=5, max_pulls=1,
                )
                stats = client.stats()
                client.cancel(session_id)
        listed = {s["session"] for s in stats["sessions"]}
        assert session_id in listed
        (brief,) = [s for s in stats["sessions"] if s["session"] == session_id]
        assert set(brief) >= {"session", "state", "label", "results", "k",
                              "pulls", "degraded"}


class TestSubmitTrace:
    def test_submit_response_echoes_trace_id(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                client.submit(left="lineitem", right="orders", k=5)
                assert client.last_trace
                assert len(client.last_trace) == 16  # 8 bytes hex
