"""ServeFleet integration: routing, namespacing, shared cache, shutdown.

Each test boots a real multi-process fleet (fork-context workers behind
the asyncio front-end) on an ephemeral port and asserts the worker
processes are fully reaped at teardown.
"""

import contextlib
import multiprocessing
import threading

import pytest

from repro.service import ServeFleet, ServiceClient, ServiceError, TenantQuotas

from tests.service.test_server import REFERENCE_SCORES, RELATIONS

ROUNDED_REFERENCE = [round(s, 6) for s in REFERENCE_SCORES]


@contextlib.contextmanager
def running_fleet(workers=2, **kwargs):
    kwargs.setdefault("service_kwargs", {"quantum": 16})
    fleet = ServeFleet(RELATIONS, workers=workers, port=0, **kwargs)
    thread = threading.Thread(target=fleet.run, daemon=True)
    thread.start()
    assert fleet.ready.wait(timeout=60.0), "fleet never became ready"
    try:
        yield fleet
    finally:
        if thread.is_alive():
            with contextlib.suppress(OSError, ConnectionError, ServiceError):
                with ServiceClient(fleet.host, fleet.port) as client:
                    client.shutdown()
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "fleet front-end failed to shut down"
    leaked = [p for p in multiprocessing.active_children()
              if p.name.startswith("repro-fleet")]
    assert leaked == [], f"worker processes leaked: {leaked}"


class TestFleet:
    def test_round_trip_namespacing_and_stats(self):
        with running_fleet(workers=2) as fleet:
            with ServiceClient(fleet.host, fleet.port) as client:
                finals = [
                    client.run(left="lineitem", right="orders", k=5,
                               worker=worker)
                    for worker in range(2)
                ]
                stats = client.stats()
        # Both workers compute the identical answer, under fleet-wide ids.
        assert {f["session"] for f in finals} == {"w0:s1", "w1:s1"}
        for final in finals:
            assert final["state"] == "DONE"
            assert final["scores"] == ROUNDED_REFERENCE[:5]
        assert stats["fleet"]["workers"] == 2
        assert stats["fleet"]["alive"] == 2
        assert len(stats["workers"]) == 2
        # Merged view: both workers' retired sessions are counted.
        assert stats["slo"]["sessions_finished"] == 2

    def test_stream_through_the_front_end(self):
        with running_fleet(workers=2) as fleet:
            with ServiceClient(fleet.host, fleet.port) as client:
                sid = client.submit(left="lineitem", right="orders", k=8)
                events = list(client.stream(sid))
        assert events[-1]["event"] == "done"
        assert events[-1]["session"] == sid
        results = events[:-1]
        assert [e["index"] for e in results] == list(range(8))
        assert [e["score"] for e in results] == ROUNDED_REFERENCE[:8]

    def test_shared_cache_spans_workers(self):
        with running_fleet(workers=2) as fleet:
            with ServiceClient(fleet.host, fleet.port) as client:
                first = client.run(left="lineitem", right="orders", k=12,
                                   operator="HRJN", worker=0)
                assert first["from_cache"] is False
                second = client.run(left="lineitem", right="orders", k=12,
                                    operator="HRJN", worker=1)
                stats = client.stats()
        # Worker 1 never computed this query: it found worker 0's answer
        # in the cross-process disk tier.
        assert second["scores"] == first["scores"]
        assert second["from_cache"] is True
        assert second["pulls"] == 0
        assert stats["cache"]["shared_hits"] >= 1

    def test_front_end_quotas_throttle_before_routing(self):
        quotas = TenantQuotas(rate=0.5, burst=2)
        with running_fleet(workers=2, quotas=quotas) as fleet:
            with ServiceClient(fleet.host, fleet.port) as client:
                for _ in range(2):
                    client.submit(left="lineitem", right="orders", k=2,
                                  tenant="alice")
                with pytest.raises(ServiceError, match="quota") as excinfo:
                    client.request({
                        "verb": "submit", "left": "lineitem",
                        "right": "orders", "k": 2, "tenant": "alice",
                    }, max_retries=0)
                metrics = client.metrics()
                stats = client.stats()
        assert excinfo.value.retryable
        assert excinfo.value.retry_after is not None
        assert 'service_throttled_total{tenant="alice"} 1' in metrics
        # The rejection must be counted in the merged stats view too —
        # the front-end admits through TenantQuotas.admit(), not the
        # raw bucket, so `throttled` and the metric stay in step.
        assert stats["fleet"]["quotas"]["throttled"] == {"alice": 1}
