"""Hypothesis properties of result release moments.

The streaming contract rests on ``QuerySession.released_at``: one stamp
per result, nondecreasing, bounded by the session's finish time, and the
emission (release) order equal to the serial oracle's top-k order — for
every shard count and exec backend.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import QueryService, QuerySpec, SessionState

from tests.service.conftest import make_instance


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=20),
    k=st.integers(min_value=1, max_value=12),
    shards=st.sampled_from([1, 2, 4]),
    backend=st.sampled_from(["serial", "thread"]),
)
def test_release_moments_align_with_the_oracle(seed, k, shards, backend):
    instance = make_instance(seed=seed, n=120, num_keys=12, k=k)
    oracle = [
        round(r.score, 6)
        for r in QuerySpec(
            relations=(instance.left, instance.right), k=k
        ).build_operator().top_k(k)
    ]
    service = QueryService(quantum=8, cache_capacity=0)
    session_id = service.submit(QuerySpec(
        relations=(instance.left, instance.right), k=k,
        shards=shards, exec_backend=backend,
    ))
    session = service.scheduler.drain(session_id)
    try:
        assert session.state is SessionState.DONE

        # Release order IS the oracle order: the streamed sequence equals
        # the final top-k, element for element.
        assert [round(r.score, 6) for r in session.results[:k]] == oracle

        # One release stamp per result, nondecreasing, and every stamp
        # falls inside the session's lifetime — no event can carry a
        # timestamp after the DONE moment.
        assert len(session.released_at) == len(session.results)
        assert session.released_at == sorted(session.released_at)
        assert all(ts >= session.submitted_at for ts in session.released_at)
        assert all(ts <= session.finished_at for ts in session.released_at)

        if session.results:
            assert session.time_to_first is not None
            assert 0.0 <= session.time_to_first <= session.latency
    finally:
        service.close()
