"""End-to-end socket tests: RankJoinServer + ServiceClient.

Each test boots a real server on an ephemeral port in a daemon thread,
talks to it over TCP, and asserts a clean shutdown (the server thread
terminates once asked to stop).
"""

import contextlib
import json
import socket
import threading

import pytest

from repro.obs import Observability
from repro.service import (
    QueryService,
    QuerySpec,
    RankJoinServer,
    ServiceClient,
    ServiceError,
)

from tests.service.conftest import make_instance

INSTANCE = make_instance(seed=0, n=200, num_keys=20, k=20)
RELATIONS = {"lineitem": INSTANCE.left, "orders": INSTANCE.right}

#: Serial reference: top-20 scores; the expected top-k is its prefix.
REFERENCE_SCORES = [
    r.score
    for r in QuerySpec(
        relations=(INSTANCE.left, INSTANCE.right), k=20
    ).build_operator().top_k(20)
]


@contextlib.contextmanager
def running_server(**service_kwargs):
    service_kwargs.setdefault("quantum", 16)
    service = QueryService(**service_kwargs)
    server = RankJoinServer(service, RELATIONS, port=0)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(timeout=10.0), "server never became ready"
    try:
        yield server
    finally:
        if thread.is_alive():
            with contextlib.suppress(OSError, ConnectionError, ServiceError):
                with ServiceClient(server.host, server.port) as client:
                    client.shutdown()
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "server thread failed to shut down"


class TestProtocol:
    def test_submit_poll_round_trip(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                final = client.run(left="lineitem", right="orders", k=5)
        assert final["state"] == "DONE"
        assert final["complete"] is True
        assert final["scores"] == [round(s, 6) for s in REFERENCE_SCORES[:5]]
        assert final["pulls"] > 0

    def test_stats_include_scheduler_cache_and_relations(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                client.run(left="lineitem", right="orders", k=3)
                stats = client.stats()
        assert stats["scheduler"]["policy"] == "round-robin"
        assert stats["cache"]["entries"] == 1
        assert stats["relations"] == {"lineitem": 200, "orders": 200}

    def test_cancel_over_the_wire(self):
        with running_server(max_live=1) as server:
            with ServiceClient(server.host, server.port) as client:
                sid = client.submit(left="lineitem", right="orders", k=20,
                                    operator="HRJN")
                assert client.cancel(sid) is True
                final = client.wait(sid)
        assert final["state"] == "CANCELLED"

    def test_unknown_verb_is_clean_error(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                with pytest.raises(ServiceError, match="unknown verb"):
                    client.request({"verb": "frobnicate"})

    def test_unknown_relation_is_clean_error(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                with pytest.raises(ServiceError, match="unknown relations"):
                    client.submit(left="nope", right="orders", k=3)

    def test_unknown_session_is_clean_error(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                with pytest.raises(ServiceError, match="no session"):
                    client.poll("s999")

    def test_invalid_json_line(self):
        with running_server() as server:
            with socket.create_connection(
                (server.host, server.port), timeout=10.0
            ) as sock:
                handle = sock.makefile("rwb")
                handle.write(b"this is not json\n")
                handle.flush()
                response = json.loads(handle.readline())
        assert response["ok"] is False
        assert "invalid JSON" in response["error"]

    def test_weighted_scoring_over_the_wire(self):
        with running_server() as server:
            with ServiceClient(server.host, server.port) as client:
                final = client.run(
                    left="lineitem", right="orders", k=3,
                    weights=[[2.0, 1.0], [1.0, 0.5]],
                )
        assert final["state"] == "DONE" and len(final["scores"]) == 3


class TestConcurrency:
    def test_twenty_concurrent_clients(self):
        results: dict[int, dict] = {}
        errors: list[Exception] = []

        def query(k: int):
            try:
                with ServiceClient(server.host, server.port) as client:
                    results[k] = client.run(
                        left="lineitem", right="orders", k=k, timeout=60.0
                    )
            except Exception as exc:  # surfaced to the main thread below
                errors.append(exc)

        with running_server(max_live=6) as server:
            threads = [
                threading.Thread(target=query, args=(k,))
                for k in range(1, 21)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)

        assert not errors, errors
        assert len(results) == 20
        for k, final in results.items():
            assert final["state"] == "DONE", (k, final)
            # Interleaving (and opportunistic cache prefix reuse) never
            # changes any query's answer: always the serial top-k prefix.
            assert final["scores"] == [round(s, 6) for s in REFERENCE_SCORES[:k]]


class TestCachingOverTheWire:
    def test_repeat_query_is_cache_hit_with_zero_pulls(self):
        obs = Observability()
        with running_server(obs=obs) as server:
            with ServiceClient(server.host, server.port) as client:
                first = client.run(left="lineitem", right="orders", k=8)
                assert first["from_cache"] is False and first["pulls"] > 0
                second = client.run(left="lineitem", right="orders", k=8)
        assert second["state"] == "DONE"
        assert second["scores"] == first["scores"]
        assert second["from_cache"] is True
        assert second["pulls"] == 0
        assert obs.metrics.value("service_cache_hits_total") == 1
