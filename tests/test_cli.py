"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestInfo:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "FRPA" in out
        assert "repro" in out


class TestRun:
    def test_run_operator(self, capsys):
        assert main(["run", "FRPA", "--scale", "0.0003", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "top scores" in out
        assert "sumDepths" in out or "depths" in out

    def test_unknown_operator(self, capsys):
        assert main(["run", "NOPE", "--scale", "0.0003"]) == 2
        assert "unknown operator" in capsys.readouterr().out


class TestCompare:
    def test_compare_all(self, capsys):
        assert main(["compare", "--scale", "0.0003", "--k", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("HRJN*", "PBRJ_FR^RR", "FRPA", "a-FRPA"):
            assert name in out


class TestFigures:
    def test_single_figure(self, capsys):
        assert main(["figures", "11", "--scale", "0.0003", "--seeds", "1"]) == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "99", "--scale", "0.0003"]) == 2
        assert "unknown figure" in capsys.readouterr().out

    def test_save_json(self, tmp_path, capsys):
        assert main([
            "figures", "11", "--scale", "0.0003", "--seeds", "1",
            "--out", str(tmp_path), "--format", "json",
        ]) == 0
        saved = list(tmp_path.glob("*.json"))
        assert len(saved) == 1
        payload = json.loads(saved[0].read_text())
        assert payload["headers"][0] == "L0"

    def test_save_csv(self, tmp_path, capsys):
        assert main([
            "figures", "11", "--scale", "0.0003", "--seeds", "1",
            "--out", str(tmp_path), "--format", "csv",
        ]) == 0
        saved = list(tmp_path.glob("*.csv"))
        assert len(saved) == 1
        assert saved[0].read_text().startswith("L0,")
