"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.obs import read_events, reconstruct_timing


class TestInfo:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "FRPA" in out
        assert "repro" in out


class TestRun:
    def test_run_operator(self, capsys):
        assert main(["run", "FRPA", "--scale", "0.0003", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "top scores" in out
        assert "sumDepths" in out or "depths" in out

    def test_unknown_operator(self, capsys):
        assert main(["run", "NOPE", "--scale", "0.0003"]) == 2
        assert "unknown operator" in capsys.readouterr().out

    def test_obs_out_writes_event_stream(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main([
            "run", "FRPA", "--scale", "0.0003", "--k", "3",
            "--obs-out", str(path),
        ]) == 0
        assert str(path) in capsys.readouterr().out
        events = read_events(path)
        types = {e["type"] for e in events}
        assert {"meta", "event", "span", "metric"} <= types
        meta = next(e for e in events if e["type"] == "meta")
        assert meta["command"] == "run"
        run = next(e for e in events if e.get("name") == "run")
        assert run["operator"] == "FRPA"
        # The stream reconstructs the printed Figure 2(b) breakdown.
        rebuilt = reconstruct_timing(events, op="FRPA")
        assert rebuilt["total"] == pytest.approx(run["timing"]["total"])
        assert rebuilt["io"] == pytest.approx(run["timing"]["io"])


class TestCompare:
    def test_compare_all(self, capsys):
        assert main(["compare", "--scale", "0.0003", "--k", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("HRJN*", "PBRJ_FR^RR", "FRPA", "a-FRPA"):
            assert name in out


class TestWorkloadFile:
    """--workload error handling: nonzero exit + one-line error, no traceback."""

    def test_run_with_valid_workload_file(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({"scale": 0.0003, "k": 3, "e": 2}))
        assert main(["run", "FRPA", "--workload", str(path)]) == 0
        assert "top scores" in capsys.readouterr().out

    def test_workload_file_overrides_flags(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({"scale": 0.0003, "k": 2}))
        # The file wins over the (conflicting) --k flag.
        assert main(["run", "FRPA", "--workload", str(path), "--k", "9"]) == 0
        out = capsys.readouterr().out
        assert "top scores" in out and "K=2" in out

    @pytest.mark.parametrize("command", ["run", "compare"])
    def test_missing_workload_file(self, command, tmp_path, capsys):
        argv = [command, "--workload", str(tmp_path / "missing.json")]
        if command == "run":
            argv.insert(1, "FRPA")
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: cannot read workload file")
        assert len(captured.err.strip().splitlines()) == 1  # no traceback
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("command", ["run", "compare"])
    def test_malformed_workload_file(self, command, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        argv = [command, "--workload", str(path)]
        if command == "run":
            argv.insert(1, "FRPA")
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "not valid JSON" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_keys_rejected(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({"scale": 0.0003, "kk": 3}))
        assert main(["run", "FRPA", "--workload", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown keys" in err and "'kk'" in err

    def test_non_numeric_values_rejected(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({"scale": "big"}))
        assert main(["run", "FRPA", "--workload", str(path)]) == 2
        err = capsys.readouterr().err
        assert "must be a number" in err


class TestFigures:
    def test_single_figure(self, capsys):
        assert main(["figures", "11", "--scale", "0.0003", "--seeds", "1"]) == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "99", "--scale", "0.0003"]) == 2
        assert "unknown figure" in capsys.readouterr().out

    def test_invalid_name_rejected_before_any_work(self, capsys):
        # One bad name in a batch aborts the whole request up front —
        # the valid figure must NOT have been generated first.
        assert main(["figures", "11", "99", "--scale", "0.0003"]) == 2
        out = capsys.readouterr().out
        assert "unknown figure '99'" in out
        assert "Figure 11" not in out

    def test_multiple_valid_names(self, capsys):
        assert main([
            "figures", "11", "12", "--scale", "0.0003", "--seeds", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "Figure 12" in out

    def test_save_json(self, tmp_path, capsys):
        assert main([
            "figures", "11", "--scale", "0.0003", "--seeds", "1",
            "--out", str(tmp_path), "--format", "json",
        ]) == 0
        saved = list(tmp_path.glob("*.json"))
        assert len(saved) == 1
        payload = json.loads(saved[0].read_text())
        assert payload["headers"][0] == "L0"

    def test_save_csv(self, tmp_path, capsys):
        assert main([
            "figures", "11", "--scale", "0.0003", "--seeds", "1",
            "--out", str(tmp_path), "--format", "csv",
        ]) == 0
        saved = list(tmp_path.glob("*.csv"))
        assert len(saved) == 1
        assert saved[0].read_text().startswith("L0,")

    def test_obs_out_records_figure_tables(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main([
            "figures", "11", "--scale", "0.0003", "--seeds", "1",
            "--obs-out", str(path),
        ]) == 0
        events = read_events(path)
        figures = [e for e in events if e.get("name") == "figure"]
        assert [f["figure"] for f in figures] == ["11"]
        assert figures[0]["table"]["headers"][0] == "L0"


class TestTrace:
    def test_trace_prints_spans_and_bound_evolution(self, capsys):
        assert main(["trace", "FRPA", "--scale", "0.0003", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "bound evolution" in out
        assert "pulls:" in out
        assert "get_next" in out
        assert "pulls_total" in out
        assert "sumDepths=" in out

    def test_trace_unknown_operator(self, capsys):
        assert main(["trace", "NOPE", "--scale", "0.0003"]) == 2
        assert "unknown operator" in capsys.readouterr().out

    def test_trace_pulls_streams_per_pull_events(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main([
            "trace", "FRPA", "--scale", "0.0003", "--k", "3",
            "--obs-out", str(path), "--pulls",
        ]) == 0
        events = read_events(path)
        pulls = [e for e in events if e.get("name") == "bound_trace"]
        assert len(pulls) > 0
        assert [e["pull"] for e in pulls] == list(range(1, len(pulls) + 1))


class TestAlgorithm:
    """--algorithm selects the evaluation core; unknown names exit 2."""

    def test_run_with_anyk(self, capsys):
        assert main([
            "run", "--algorithm", "anyk", "--scale", "0.0003", "--k", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "top scores" in out
        assert "AnyK" in out

    def test_anyk_matches_pbrj_scores(self, capsys):
        assert main(["run", "FRPA", "--scale", "0.0003", "--k", "3"]) == 0
        pbrj_out = capsys.readouterr().out
        assert main([
            "run", "--algorithm", "anyk", "--scale", "0.0003", "--k", "3",
        ]) == 0
        anyk_out = capsys.readouterr().out
        pick = lambda text: next(  # noqa: E731
            line for line in text.splitlines() if "top scores" in line
        )
        assert pick(anyk_out).split(":", 1)[1] == pick(pbrj_out).split(":", 1)[1]

    def test_unknown_algorithm_flag_exits_2(self, capsys):
        assert main([
            "run", "--algorithm", "lawler", "--scale", "0.0003",
        ]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: unknown algorithm")
        assert "'lawler'" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_unknown_algorithm_in_workload_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({"scale": 0.0003, "algorithm": "lawler"}))
        assert main(["run", "FRPA", "--workload", str(path)]) == 2
        captured = capsys.readouterr()
        assert "unknown algorithm" in captured.err
        assert "'lawler'" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_workload_file_algorithm_wins(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({"scale": 0.0003, "k": 2, "algorithm": "anyk"}))
        assert main(["run", "FRPA", "--workload", str(path)]) == 0
        assert "AnyK" in capsys.readouterr().out

    def test_serve_rejects_unknown_algorithm(self, capsys):
        assert main(["serve", "--algorithm", "nope", "--scale", "0.0003"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_sharded_anyk_run(self, capsys):
        assert main([
            "run", "--algorithm", "anyk", "--scale", "0.0003", "--k", "3",
            "--shards", "2",
        ]) == 0
        assert "top scores" in capsys.readouterr().out


class TestPlanAuto:
    def test_run_plan_auto(self, capsys):
        assert main([
            "run", "--plan", "auto", "--scale", "0.0003", "--k", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "top scores" in out
        assert "planning" in out
        assert "est cost" in out  # the explainable candidate table
        assert "*" in out  # chosen-candidate marker

    def test_workload_file_auto_shards(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({
            "scale": 0.0003, "k": 3, "shards": "auto", "algorithm": "auto",
        }))
        assert main(["run", "FRPA", "--workload", str(path)]) == 0
        out = capsys.readouterr().out
        assert "top scores" in out and "planning" in out

    def test_workload_file_invalid_shards_exits_2(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({"scale": 0.0003, "shards": 0}))
        assert main(["run", "FRPA", "--workload", str(path)]) == 2
        captured = capsys.readouterr()
        assert "shards must be a positive integer or 'auto'" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_workload_file_invalid_exec_backend_exits_2(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({"scale": 0.0003, "exec_backend": "gpu"}))
        assert main(["run", "FRPA", "--workload", str(path)]) == 2
        captured = capsys.readouterr()
        assert "unknown exec_backend 'gpu'" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_workload_file_static_shards_adopted(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({
            "scale": 0.0003, "k": 3, "shards": 2, "exec_backend": "serial",
        }))
        assert main(["run", "FRPA", "--workload", str(path)]) == 0
        out = capsys.readouterr().out
        assert "top scores" in out
        assert "x2" in out  # sharded plan line mentions the shard count

    def test_figures_anyk_leg(self, capsys):
        assert main([
            "figures", "2", "--scale", "0.0003", "--seeds", "1",
            "--algorithm", "anyk",
        ]) == 0
        assert "AnyK" in capsys.readouterr().out
