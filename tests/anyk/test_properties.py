"""Property tests: any-k enumeration vs the oracle on random workloads.

The satellite contract: over random acyclic workloads *with duplicate
scores*, the enumeration must be (a) monotone non-increasing in score,
(b) duplicate-free, and (c) exactly equal — scores and canonical tie
order — to the oracle's top-K.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anyk import AnyKQuery, AnyKRankJoin
from repro.anyk.engine import _identity
from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.relation.relation import Relation

# Coarse score grid + tiny key/value domains: exact duplicate scores and
# exact tie groups are the common case, not the corner case.
score = st.sampled_from([0.0, 0.1, 0.25, 0.25, 0.5, 0.5, 0.75, 1.0])
small = st.integers(0, 2)


def binary_query(draw):
    def side(name):
        rows = draw(
            st.lists(st.tuples(small, score), min_size=1, max_size=12)
        )
        return Relation(
            name, [RankTuple(key=k, scores=(s,)) for k, s in rows]
        )

    return AnyKQuery.binary(side("L"), side("R"))


def chain_query(draw):
    def rel(name, attrs):
        rows = draw(
            st.lists(
                st.tuples(*([small] * len(attrs)), score),
                min_size=1, max_size=6,
            )
        )
        return Relation(
            name,
            [
                RankTuple(
                    key=i,
                    scores=(row[-1],),
                    payload=dict(zip(attrs, row[:-1])),
                )
                for i, row in enumerate(rows)
            ],
        )

    relations = (rel("A", ["x"]), rel("B", ["x", "y"]), rel("C", ["y"]))
    return AnyKQuery.chain(relations, ["x", "y"])


def oracle(query, scoring):
    """Full enumeration in the engine's canonical order: score desc, then
    the canonical content identity — the cross-core tie-order contract."""
    results = []
    for combo in itertools.product(*[rel.tuples for rel in query.relations]):
        ok = True
        for a, b, attr in query.join_on:
            left = combo[a].key if attr == "@key" else combo[a].payload[attr]
            right = combo[b].key if attr == "@key" else combo[b].payload[attr]
            if left != right:
                ok = False
                break
        if ok:
            vector = tuple(s for t in combo for s in t.scores)
            results.append((scoring(vector), combo))
    results.sort(key=lambda pair: (-pair[0], _identity(pair[1])))
    return results


def assert_enumeration_contract(query):
    scoring = SumScore()
    expected = oracle(query, scoring)
    emitted = list(AnyKRankJoin(query, scoring))

    scores = [r.score for r in emitted]
    # (a) monotone non-increasing.
    assert scores == sorted(scores, reverse=True)
    # (b) duplicate-free: no input-tuple combination emitted twice.  (By
    # object identity — relations may hold content-identical tuples, and
    # each occurrence is its own join result.)
    combos = [
        tuple(getattr(r, "tuples", None) or (r.left, r.right)) for r in emitted
    ]
    object_ids = [tuple(id(t) for t in combo) for combo in combos]
    assert len(set(object_ids)) == len(object_ids)
    identities = [_identity(combo) for combo in combos]
    # (c) exactly the oracle: scores bit-identical, ties in canonical order.
    assert scores == [s for s, __ in expected]
    assert identities == [_identity(combo) for __, combo in expected]


class TestEnumerationProperties:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_binary_matches_oracle(self, data):
        assert_enumeration_contract(binary_query(data.draw))

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_chain3_matches_oracle(self, data):
        assert_enumeration_contract(chain_query(data.draw))

    @given(data=st.data(), k=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_topk_is_a_prefix_of_the_full_enumeration(self, data, k):
        query = binary_query(data.draw)
        full = [r.score for r in AnyKRankJoin(query)]
        prefix = [r.score for r in AnyKRankJoin(query).top_k(k)]
        assert prefix == full[: min(k, len(full))]
