"""Any-k behind the service/exec layers, with zero changes to those layers.

The tentpole contract: ``QuerySpec(algorithm="anyk")`` routes the session,
scheduler, sharded engine and cache through :class:`AnyKRankJoin` exactly
as they drive a PBRJ operator — same budgets, same bit-identical sharded
answers, namespaced cache keys.
"""

import pytest

from repro.anyk import AnyKRankJoin
from repro.core.operators import ANYK_OPERATOR, make_operator, operator_names
from repro.data.workload import random_instance
from repro.errors import InstanceError
from repro.service import QuerySession, QuerySpec, SessionState


def make_spec(algorithm="anyk", n=80, k=8, **kwargs):
    instance = random_instance(
        n_left=n, n_right=n, e_left=1, e_right=1,
        num_keys=max(2, n // 10), k=k, seed=kwargs.pop("seed", 0),
    )
    return QuerySpec(
        relations=(instance.left, instance.right),
        k=k,
        algorithm=algorithm,
        **kwargs,
    )


class TestQuerySpec:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(InstanceError, match="unknown algorithm"):
            make_spec(algorithm="lawler")

    def test_anyk_spec_builds_an_anyk_operator(self):
        operator = make_spec().build_operator()
        assert isinstance(operator, AnyKRankJoin)

    def test_effective_operator(self):
        assert make_spec().effective_operator == ANYK_OPERATOR
        assert make_spec(algorithm="pbrj").effective_operator == "FRPA"

    def test_fingerprint_namespaces_the_core(self):
        anyk = make_spec()
        pbrj = make_spec(algorithm="pbrj")
        assert anyk.fingerprint() != pbrj.fingerprint()
        # ... and is stable for equal specs.
        assert anyk.fingerprint() == make_spec().fingerprint()

    def test_pbrj_fingerprints_unchanged_by_the_new_field(self):
        # Default-algorithm specs must keep their pre-anyk digests: the
        # algorithm marker is only appended for non-default cores.
        explicit = make_spec(algorithm="pbrj")
        assert ";algorithm" not in explicit.describe()
        assert explicit.fingerprint() == make_spec(algorithm="pbrj").fingerprint()


class TestOperatorRegistry:
    def test_make_operator_resolves_anyk(self):
        instance = random_instance(
            n_left=30, n_right=30, e_left=1, e_right=1,
            num_keys=3, k=3, seed=0,
        )
        operator = make_operator(ANYK_OPERATOR, instance)
        assert isinstance(operator, AnyKRankJoin)
        assert ANYK_OPERATOR in operator_names()

    def test_unknown_name_lists_both_families(self):
        instance = random_instance(
            n_left=10, n_right=10, e_left=1, e_right=1,
            num_keys=2, k=1, seed=0,
        )
        with pytest.raises(KeyError, match="AnyK"):
            make_operator("NOPE", instance)


class TestQuerySession:
    def test_runs_to_completion_matching_serial(self):
        spec = make_spec(k=10)
        serial = [r.score for r in spec.build_operator().top_k(10)]
        session = QuerySession(
            "s-anyk", spec.build_operator(), spec.k, quantum=16
        ).run_to_completion()
        assert session.state is SessionState.DONE
        assert [r.score for r in session.answer()] == serial

    def test_each_step_spends_at_most_one_quantum_plus_a_tie_batch(self):
        spec = make_spec(k=10, seed=3)
        session = QuerySession("s2", spec.build_operator(), spec.k, quantum=7)
        while session.live:
            before_pulls = session.pulls
            before_results = len(session.results)
            session.step()
            # The documented any-k quantum contract: a step may overshoot
            # only by the (indivisible) successor pops of one tie batch,
            # and such a step always produces a result.
            overshot = session.pulls - before_pulls > 7
            assert not overshot or len(session.results) > before_results

    def test_pending_steps_make_progress(self):
        spec = make_spec(k=5, seed=1)
        session = QuerySession("s3", spec.build_operator(), spec.k, quantum=3)
        steps = 0
        while session.live:
            session.step()
            steps += 1
            assert steps < 100_000
        assert session.state is SessionState.DONE


class TestShardedBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_equals_serial(self, shards):
        serial_spec = make_spec(k=12, n=120, seed=5)
        serial = serial_spec.build_operator().top_k(12)
        spec = make_spec(
            k=12, n=120, seed=5, shards=shards,
            exec_backend="thread" if shards > 1 else "thread",
        )
        results = spec.build_operator().top_k(12)
        assert [r.score for r in results] == [r.score for r in serial]

    def test_sharded_spec_routes_anyk_to_workers(self):
        spec = make_spec(k=6, n=60, seed=2, shards=2)
        engine = spec.build_operator()
        results = engine.top_k(6)
        assert len(results) == 6
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)
