"""AnyKRankJoin correctness and the ResumableOperator contract."""

import itertools

import pytest

from repro.anyk import AnyKQuery, AnyKRankJoin, anyk_from_chain, anyk_operator
from repro.core.naive import naive_top_k, top_scores
from repro.core.operators import make_operator
from repro.core.scoring import AverageScore, SumScore, WeightedSum
from repro.core.stepping import PENDING
from repro.core.tuples import RankTuple
from repro.data.workload import random_instance
from repro.errors import PullBudgetExceeded
from repro.relation.relation import Relation


def relation(name, rows):
    return Relation(
        name,
        [
            RankTuple(key=i, scores=scores, payload=dict(payload))
            for i, (payload, scores) in enumerate(rows)
        ],
    )


def brute_force(query, scoring):
    """All join results by full enumeration, scores sorted descending."""
    results = []
    for combo in itertools.product(*[rel.tuples for rel in query.relations]):
        ok = True
        for a, b, attr in query.join_on:
            left = combo[a].key if attr == "@key" else combo[a].payload[attr]
            right = combo[b].key if attr == "@key" else combo[b].payload[attr]
            if left != right:
                ok = False
                break
        if ok:
            vector = tuple(s for t in combo for s in t.scores)
            results.append(scoring(vector))
    return sorted(results, reverse=True)


@pytest.fixture
def chain4():
    a = relation("A", [({"x": 1}, (0.9,)), ({"x": 2}, (0.5,)), ({"x": 1}, (0.2,))])
    b = relation(
        "B",
        [({"x": 1, "y": 7}, (0.8,)), ({"x": 2, "y": 8}, (0.6,)),
         ({"x": 1, "y": 8}, (0.1,))],
    )
    c = relation(
        "C",
        [({"y": 7, "z": 3}, (0.4,)), ({"y": 8, "z": 4}, (0.3,)),
         ({"y": 7, "z": 4}, (0.7,))],
    )
    d = relation("D", [({"z": 3}, (0.5,)), ({"z": 4}, (0.9,))])
    return a, b, c, d


class TestBinaryCorrectness:
    def test_matches_oracle_scores_exactly(self):
        instance = random_instance(
            n_left=120, n_right=120, e_left=2, e_right=2,
            num_keys=12, k=15, cut=0.5, seed=3,
        )
        op = anyk_operator(instance)
        got = [r.score for r in op.top_k(15)]
        expected = top_scores(
            naive_top_k(instance.left.tuples, instance.right.tuples,
                        instance.scoring, 15)
        )
        # Bit-identical, not approx: the engine re-scores every result
        # through the same scoring call the PBRJ family uses.
        assert got == expected

    def test_matches_frpa_bit_identically(self):
        instance = random_instance(
            n_left=150, n_right=150, e_left=1, e_right=1,
            num_keys=10, k=20, seed=7,
        )
        anyk_scores = [r.score for r in anyk_operator(instance).top_k(20)]
        frpa_scores = [r.score for r in make_operator("FRPA", instance).top_k(20)]
        assert anyk_scores == frpa_scores

    def test_full_drain_equals_join_size(self):
        instance = random_instance(
            n_left=80, n_right=80, e_left=1, e_right=1,
            num_keys=8, k=1, seed=0,
        )
        drained = list(anyk_operator(instance))
        assert len(drained) == instance.join_size()

    def test_tie_order_is_canonical(self):
        # Many exact ties: output must still be sorted and deterministic.
        left = Relation(
            "L", [RankTuple(key=i % 3, scores=(round((i % 5) / 5, 3),))
                  for i in range(30)]
        )
        right = Relation(
            "R", [RankTuple(key=i % 3, scores=(round((i % 5) / 5, 3),))
                  for i in range(30)]
        )
        query = AnyKQuery.binary(left, right)
        runs = []
        for __ in range(2):
            results = list(AnyKRankJoin(query, SumScore()))
            runs.append([(r.score, repr(r.left.key), repr(r.right.key))
                         for r in results])
        assert runs[0] == runs[1]
        scores = [row[0] for row in runs[0]]
        assert scores == sorted(scores, reverse=True)

    @pytest.mark.parametrize("scoring", [
        SumScore(),
        WeightedSum([0.7, 0.3]),
        AverageScore(),
    ])
    def test_additive_scorings_match_oracle(self, scoring):
        instance = random_instance(
            n_left=60, n_right=60, e_left=1, e_right=1,
            num_keys=6, k=10, seed=5, scoring=scoring,
        )
        got = [r.score for r in anyk_operator(instance).top_k(10)]
        expected = top_scores(
            naive_top_k(instance.left.tuples, instance.right.tuples,
                        scoring, 10)
        )
        assert got == pytest.approx(expected, abs=1e-12)


class TestNaryCorrectness:
    def test_chain4_matches_multiway(self, chain4):
        attrs = ["x", "y", "z"]
        anyk = anyk_from_chain(chain4, attrs)
        from repro.core.multiway import multiway_rank_join

        reference = multiway_rank_join(list(chain4), attrs, SumScore())
        anyk_scores = [r.score for r in anyk]
        ref_scores = [r.score for r in reference]
        assert anyk_scores == ref_scores

    def test_chain4_matches_brute_force(self, chain4):
        query = AnyKQuery.chain(chain4, ["x", "y", "z"])
        got = [r.score for r in AnyKRankJoin(query)]
        assert got == pytest.approx(brute_force(query, SumScore()))

    def test_star3_matches_brute_force(self):
        center = relation(
            "hub",
            [({"x": 1, "y": 1}, (0.9,)), ({"x": 2, "y": 1}, (0.5,)),
             ({"x": 1, "y": 2}, (0.3,))],
        )
        s1 = relation("S1", [({"x": 1}, (0.4,)), ({"x": 2}, (0.8,))])
        s2 = relation("S2", [({"y": 1}, (0.6,)), ({"y": 2}, (0.2,))])
        query = AnyKQuery.star(center, [s1, s2], ["x", "y"])
        got = [r.score for r in AnyKRankJoin(query)]
        assert got == pytest.approx(brute_force(query, SumScore()))

    def test_triangle_matches_brute_force(self):
        a = relation(
            "A", [({"x": i % 3, "y": i % 2}, (i / 10,)) for i in range(6)]
        )
        b = relation(
            "B", [({"y": i % 2, "z": i % 3}, ((5 - i) / 10,)) for i in range(6)]
        )
        c = relation(
            "C", [({"z": i % 3, "x": i % 3}, (i / 12,)) for i in range(6)]
        )
        query = AnyKQuery(
            relations=(a, b, c),
            join_on=((0, 1, "y"), (1, 2, "z"), (0, 2, "x")),
        )
        got = [r.score for r in AnyKRankJoin(query)]
        assert got == pytest.approx(brute_force(query, SumScore()))

    def test_nary_results_expose_relation_ordered_tuples(self, chain4):
        anyk = anyk_from_chain(chain4, ["x", "y", "z"])
        result = anyk.get_next()
        assert len(result.tuples) == 4
        # Components come back in query-relation order regardless of the
        # internal join order the decomposition chose.
        assert [t.payload.get("x") is not None for t in result.tuples[:1]] == [True]


class TestResumability:
    def make(self, seed=2):
        instance = random_instance(
            n_left=90, n_right=90, e_left=1, e_right=1,
            num_keys=9, k=10, seed=seed,
        )
        return instance, anyk_operator(instance)

    def test_budgeted_stepping_equals_unbudgeted(self):
        instance, budgeted = self.make()
        reference = [r.score for r in anyk_operator(instance)]
        got = []
        while True:
            result = budgeted.try_next(max_pulls=5)
            if result is None:
                break
            if result is not PENDING:
                got.append(result.score)
        assert got == reference

    def test_pending_is_falsy_and_repeated(self):
        __, op = self.make()
        first = op.try_next(max_pulls=1)
        assert first is PENDING
        assert not first

    def test_zero_pull_drain(self):
        __, op = self.make()
        # Nothing buffered yet: zero pulls must do zero work.
        assert op.try_next(max_pulls=0) is PENDING
        assert op.pulls == 0
        op.get_next()  # builds the DP, buffers the first tie batch
        pulls = op.pulls
        while op.try_next(max_pulls=0) not in (None, PENDING):
            pass
        assert op.pulls == pulls  # drains cost nothing

    def test_pull_accounting_is_monotone(self):
        __, op = self.make()
        previous = 0
        for __ in range(50):
            result = op.try_next(max_pulls=7)
            assert op.pulls >= previous
            previous = op.pulls
            if result is None:
                break

    def test_top_k_is_history_retaining(self):
        __, op = self.make()
        first = op.top_k(5)
        again = op.top_k(5)
        assert [r.score for r in first] == [r.score for r in again]
        extended = op.top_k(8)
        assert [r.score for r in extended[:5]] == [r.score for r in first]

    def test_clone_fresh_restarts_from_scratch(self):
        __, op = self.make()
        expected = [r.score for r in op.top_k(6)]
        clone = op.clone_fresh()
        assert clone.pulls == 0
        assert [r.score for r in clone.top_k(6)] == expected

    def test_max_pulls_budget_raises(self):
        instance, __ = self.make()
        op = anyk_operator(instance, max_pulls=10)
        with pytest.raises(PullBudgetExceeded):
            op.top_k(50)


class TestFrontier:
    def test_frontier_is_conservative_then_exact(self):
        instance = random_instance(
            n_left=70, n_right=70, e_left=1, e_right=1,
            num_keys=7, k=5, seed=4,
        )
        op = anyk_operator(instance)
        assert op.frontier() == float("inf")
        scores = []
        while True:
            result = op.get_next()
            if result is None:
                break
            scores.append(result.score)
            # Every emitted result beats (or ties) whatever is left.
            assert op.frontier() <= result.score + 1e-9
        assert op.frontier() == float("-inf")
        assert scores == sorted(scores, reverse=True)

    def test_frontier_non_increasing(self):
        instance = random_instance(
            n_left=70, n_right=70, e_left=1, e_right=1,
            num_keys=7, k=5, seed=8,
        )
        op = anyk_operator(instance)
        op.get_next()
        previous = op.frontier()
        while op.get_next() is not None:
            current = op.frontier()
            assert current <= previous + 1e-9
            previous = current


class TestReporting:
    def test_depths_and_stats(self):
        instance = random_instance(
            n_left=50, n_right=40, e_left=1, e_right=1,
            num_keys=5, k=5, seed=1,
        )
        op = anyk_operator(instance)
        op.top_k(5)
        depths = op.depths()
        # The DP ingests both inputs completely.
        assert depths.left == 50 and depths.right == 40
        stats = op.stats()
        assert stats.operator == "AnyK"
        assert stats.results == 5
        assert stats.io_cost == 90.0
        assert stats.depths.sum_depths == 90

    def test_nary_depths_are_per_relation(self, chain4):
        op = anyk_from_chain(chain4, ["x", "y", "z"])
        op.get_next()
        assert op.depths() == [3, 3, 3, 2]
