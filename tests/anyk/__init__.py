"""Tests for the any-k ranked-enumeration core (:mod:`repro.anyk`)."""
