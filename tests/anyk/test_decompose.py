"""Join-tree decomposition: GYO ear removal, GHD bag merges, validation."""

import pytest

from repro.anyk import AnyKQuery, KEY_ATTR, decompose
from repro.core.scoring import MinScore, ProductScore, SumScore
from repro.core.tuples import RankTuple
from repro.errors import InstanceError
from repro.relation.relation import Relation


def relation(name, rows):
    """rows: list of (payload dict, scores tuple)."""
    return Relation(
        name,
        [
            RankTuple(key=i, scores=scores, payload=dict(payload))
            for i, (payload, scores) in enumerate(rows)
        ],
    )


def keyed(name, pairs):
    """pairs: list of (key, score)."""
    return Relation(name, [RankTuple(key=k, scores=(s,)) for k, s in pairs])


@pytest.fixture
def chain3():
    a = relation("A", [({"x": 1}, (0.9,)), ({"x": 2}, (0.5,))])
    b = relation("B", [({"x": 1, "y": 7}, (0.8,)), ({"x": 2, "y": 8}, (0.6,))])
    c = relation("C", [({"y": 7}, (0.4,)), ({"y": 8}, (0.3,))])
    return a, b, c


class TestQueryValidation:
    def test_needs_two_relations(self):
        r = keyed("R", [(1, 0.5)])
        with pytest.raises(InstanceError):
            AnyKQuery(relations=(r,), join_on=((0, 0, "x"),))

    def test_needs_a_condition(self):
        r, s = keyed("R", [(1, 0.5)]), keyed("S", [(1, 0.5)])
        with pytest.raises(InstanceError):
            AnyKQuery(relations=(r, s), join_on=())

    def test_rejects_out_of_range_index(self):
        r, s = keyed("R", [(1, 0.5)]), keyed("S", [(1, 0.5)])
        with pytest.raises(InstanceError):
            AnyKQuery(relations=(r, s), join_on=((0, 2, "x"),))

    def test_rejects_self_join_condition(self):
        r, s = keyed("R", [(1, 0.5)]), keyed("S", [(1, 0.5)])
        with pytest.raises(InstanceError):
            AnyKQuery(relations=(r, s), join_on=((1, 1, "x"),))

    def test_rejects_empty_attribute(self):
        r, s = keyed("R", [(1, 0.5)]), keyed("S", [(1, 0.5)])
        with pytest.raises(InstanceError):
            AnyKQuery(relations=(r, s), join_on=((0, 1, ""),))

    def test_chain_arity_check(self, chain3):
        with pytest.raises(InstanceError):
            AnyKQuery.chain(chain3, ["x"])

    def test_star_arity_check(self, chain3):
        a, b, c = chain3
        with pytest.raises(InstanceError):
            AnyKQuery.star(a, [b, c], ["x"])


class TestAcyclicDecomposition:
    def test_binary_is_two_nodes_width_one(self):
        left = keyed("L", [(1, 0.9), (2, 0.1)])
        right = keyed("R", [(1, 0.8)])
        tree = decompose(AnyKQuery.binary(left, right))
        assert tree.width == 1
        assert len(tree.root.children) == 1
        assert not tree.root.children[0].children
        # Binary joins connect on the key sentinel.
        assert tree.root.child_attrs == [(KEY_ATTR,)]

    def test_chain_is_a_path_of_singletons(self, chain3):
        tree = decompose(AnyKQuery.chain(chain3, ["x", "y"]))
        assert tree.width == 1
        depth, node = 0, tree.root
        while node.children:
            assert len(node.children) == 1
            assert len(node.members) == 1
            node = node.children[0]
            depth += 1
        assert depth == 2

    def test_star_center_has_all_satellites(self):
        center = relation(
            "hub", [({"x": 1, "y": 1, "z": 1}, (0.9,))]
        )
        sats = [
            relation("S1", [({"x": 1}, (0.1,))]),
            relation("S2", [({"y": 1}, (0.2,))]),
            relation("S3", [({"z": 1}, (0.3,))]),
        ]
        tree = decompose(AnyKQuery.star(center, sats, ["x", "y", "z"]))
        assert tree.width == 1
        # The center is adjacent to every satellite, wherever the root
        # landed: all satellite nodes are neighbours of the center node.
        nodes, stack = [], [(tree.root, None)]
        while stack:
            node, parent = stack.pop()
            nodes.append((node, parent))
            stack.extend((child, node) for child in node.children)
        hub = next(node for node, __ in nodes if node.members == (0,))
        neighbours = {child.members for child in hub.children}
        parent_of_hub = next(p for n, p in nodes if n is hub)
        if parent_of_hub is not None:
            neighbours.add(parent_of_hub.members)
        assert neighbours == {(1,), (2,), (3,)}

    def test_every_relation_appears_exactly_once(self, chain3):
        tree = decompose(AnyKQuery.chain(chain3, ["x", "y"]))
        seen = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            seen.extend(node.members)
            stack.extend(node.children)
        assert sorted(seen) == [0, 1, 2]


class TestCyclicDecomposition:
    def triangle(self):
        a = relation("A", [({"x": 1, "y": 1}, (0.9,)), ({"x": 2, "y": 2}, (0.5,))])
        b = relation("B", [({"y": 1, "z": 1}, (0.8,)), ({"y": 2, "z": 2}, (0.4,))])
        c = relation("C", [({"z": 1, "x": 1}, (0.7,)), ({"z": 2, "x": 2}, (0.3,))])
        return AnyKQuery(
            relations=(a, b, c),
            join_on=((0, 1, "y"), (1, 2, "z"), (0, 2, "x")),
        )

    def test_triangle_merges_into_width_two_bag(self):
        tree = decompose(self.triangle())
        assert tree.width == 2
        sizes = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            sizes.append(len(node.members))
            stack.extend(node.children)
        assert sorted(sizes) == [1, 2]

    def test_bag_tuples_satisfy_the_merged_conditions(self):
        tree = decompose(self.triangle())
        bag = tree.root if len(tree.root.members) == 2 else tree.root.children[0]
        assert len(bag.members) == 2
        # Both bag tuples honour the shared variable between the members.
        assert len(bag.tuples) == 2


class TestRejections:
    def test_disconnected_query_is_rejected(self):
        a = relation("A", [({"x": 1}, (0.9,))])
        b = relation("B", [({"x": 1, "y": 1}, (0.8,))])
        c = relation("C", [({"w": 1}, (0.7,))])
        d = relation("D", [({"w": 1}, (0.6,))])
        query = AnyKQuery(
            relations=(a, b, c, d),
            join_on=((0, 1, "x"), (2, 3, "w")),
        )
        with pytest.raises(InstanceError, match="disconnected"):
            decompose(query)

    @pytest.mark.parametrize("scoring", [MinScore(), ProductScore()])
    def test_non_additive_scoring_is_rejected(self, scoring, chain3):
        query = AnyKQuery.chain(chain3, ["x", "y"])
        with pytest.raises(InstanceError, match="additive"):
            decompose(query, scoring)

    def test_sum_score_is_accepted(self, chain3):
        tree = decompose(AnyKQuery.chain(chain3, ["x", "y"]), SumScore())
        assert tree.width == 1
