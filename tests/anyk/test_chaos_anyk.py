"""Chaos-matrix leg for the any-k core (quarantinable via ``-m chaos``).

Satellite contract: :class:`~repro.anyk.AnyKRankJoin` under worker-kill
and transient faults at shard counts {2, 4} must stay bit-identical to
the fault-free serial run — the same invariant the PBRJ chaos matrix
enforces, through the same harness, with only ``operator="AnyK"`` new.
"""

from __future__ import annotations

import pytest

from repro.core.operators import ANYK_OPERATOR
from tests.resilience.harness import assert_chaos_case

pytestmark = pytest.mark.chaos

ANYK_KINDS = ("worker-kill", "transient")


@pytest.mark.parametrize("kind", ANYK_KINDS)
@pytest.mark.parametrize("shards", (2, 4))
@pytest.mark.parametrize("workload", ("uniform", "zipf"))
def test_anyk_chaos_matrix_thread(workload, shards, kind):
    assert_chaos_case(workload, shards, "thread", kind, operator=ANYK_OPERATOR)


@pytest.mark.parametrize("kind", ANYK_KINDS)
def test_anyk_chaos_process_backend(kind):
    assert_chaos_case("uniform", 2, "process", kind, operator=ANYK_OPERATOR)
