"""The public API surface: everything advertised in __all__ exists and a
typical user journey works through top-level imports only."""

import importlib

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.geometry",
            "repro.relation",
            "repro.data",
            "repro.plan",
            "repro.stats",
            "repro.experiments",
            "repro.aggregation",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestUserJourney:
    def test_end_to_end_via_top_level_imports(self):
        instance = repro.lineitem_orders_instance(
            repro.WorkloadParams(e=1, k=3, scale=0.0002, seed=0)
        )
        operator = repro.a_frpa(instance)
        results = operator.top_k(3)
        assert len(results) == 3
        expected = repro.naive_top_k(
            instance.left.tuples, instance.right.tuples, instance.scoring, 3
        )
        assert [r.score for r in results] == pytest.approx(
            [r.score for r in expected]
        )
        stats = operator.stats()
        assert stats.sum_depths > 0

    def test_every_registered_operator_buildable(self):
        instance = repro.lineitem_orders_instance(
            repro.WorkloadParams(e=1, k=1, scale=0.0002, seed=0)
        )
        for name in repro.OPERATORS:
            operator = repro.make_operator(name, instance)
            assert operator.top_k(1)

    def test_docstrings_on_public_classes(self):
        for name in [
            "PBRJ", "CornerBound", "FRBound", "FRStarBound", "AFRBound",
            "RankJoinInstance", "Relation", "Pipeline", "RankQuery",
            "SumScore", "WorkloadParams",
        ]:
            obj = getattr(repro, name)
            assert obj.__doc__, f"{name} lacks a docstring"
