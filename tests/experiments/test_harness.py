"""Tests for the experiment harness (tiny scales: these must stay fast)."""

import pytest

from repro.data.workload import WorkloadParams, lineitem_orders_instance
from repro.experiments.harness import (
    AveragedResult,
    averaged_runs,
    run_comparison,
    run_operator,
)

TINY = WorkloadParams(e=1, c=0.5, z=0.5, k=3, scale=0.0002, seed=0)


@pytest.fixture(scope="module")
def instance():
    return lineitem_orders_instance(TINY)


class TestRunOperator:
    def test_returns_scores_and_stats(self, instance):
        result = run_operator("FRPA", instance)
        assert len(result.scores) == TINY.k
        assert result.stats.operator == "FRPA"
        assert result.sum_depths > 0
        assert not result.capped

    def test_k_override(self, instance):
        result = run_operator("HRJN*", instance, k=1)
        assert len(result.scores) == 1

    def test_pull_budget_marks_capped(self, instance):
        result = run_operator("HRJN*", instance, max_pulls=2)
        assert result.capped
        assert result.scores == ()

    def test_time_budget_marks_capped(self, instance):
        result = run_operator("PBRJ_FR^RR", instance, max_seconds=0.0)
        assert result.capped

    def test_operator_kwargs_forwarded(self, instance):
        result = run_operator(
            "a-FRPA", instance, operator_kwargs={"max_cr_size": 7}
        )
        assert len(result.scores) == TINY.k

    def test_all_operators_agree(self, instance):
        results = run_comparison(
            instance, ["HRJN", "HRJN*", "PBRJ_FR^RR", "FRPA", "a-FRPA"]
        )
        score_sets = {r.scores for r in results.values()}
        assert len(score_sets) == 1


class TestAveragedRuns:
    def test_averages_over_seeds(self):
        results = averaged_runs(TINY, ["HRJN*", "FRPA"], num_seeds=2)
        assert set(results) == {"HRJN*", "FRPA"}
        for res in results.values():
            assert isinstance(res, AveragedResult)
            assert res.runs == 2
            assert res.sum_depths > 0
            assert not res.capped

    def test_frpa_never_deeper_on_average(self):
        results = averaged_runs(TINY, ["HRJN*", "FRPA"], num_seeds=2)
        assert results["FRPA"].sum_depths <= results["HRJN*"].sum_depths

    def test_per_operator_budgets(self):
        results = averaged_runs(
            TINY,
            ["HRJN*", "FRPA"],
            num_seeds=1,
            operator_budgets={"FRPA": {"max_pulls": 1}},
        )
        assert results["FRPA"].capped
        assert not results["HRJN*"].capped

    def test_operator_kwargs_by_name(self):
        results = averaged_runs(
            TINY,
            ["a-FRPA"],
            num_seeds=1,
            operator_kwargs={"a-FRPA": {"max_cr_size": 5}},
        )
        assert not results["a-FRPA"].capped

    def test_capped_property_counts(self):
        result = AveragedResult(
            operator="x",
            depths=None,  # type: ignore[arg-type]
            timing=None,  # type: ignore[arg-type]
            io_cost=0.0,
            capped_runs=1,
            runs=3,
        )
        assert result.capped
