"""Smoke tests for figure experiments at miniature scale.

These verify every figure function runs end-to-end, produces the expected
columns and rows, and flags capped runs correctly.  The real shape
assertions live in benchmarks/ at realistic scale.
"""

import math

import pytest

from repro.experiments.figures import (
    FigureConfig,
    ablation_cover,
    ablation_pulling,
    figure_02,
    figure_10,
    figure_11,
    figure_12,
    figure_13,
    figure_14,
    figure_15,
    run_pipeline_query,
    skew_sweep,
)
from repro.data.workload import WorkloadParams

TINY = FigureConfig(scale=0.0003, num_seeds=1)


class TestFigureSmoke:
    def test_figure_02(self):
        table = figure_02(TINY)
        assert table.column("operator") == ["HRJN*", "PBRJ_FR^RR"]
        assert all(d > 0 for d in table.column("sumDepths"))

    def test_figure_10(self):
        table = figure_10(TINY, max_cr_sizes=(4, 64))
        assert len(table.rows) == 3  # two thresholds + FRPA reference
        assert table.rows[-1][0] == "FRPA"

    def test_figure_11(self):
        table = figure_11(TINY, resolutions=(8, 32))
        assert table.column("L0") == [8, 32]

    def test_figure_12(self):
        table = figure_12(TINY, cuts=(0.5, 1.0))
        assert table.column("c") == [0.5, 1.0]
        assert "HRJN*:sumDepths" in table.headers

    def test_figure_13_caps_e4(self):
        config = FigureConfig(scale=0.0003, num_seeds=1, exact_budget_s=0.0)
        table = figure_13(config, es=(1, 4))
        by_e = {row[0]: row for row in table.rows}
        index = table.headers.index("PBRJ_FR^RR:sumDepths")
        assert math.isnan(by_e[4][index])  # capped with a zero budget
        assert math.isnan(by_e[1][index])  # zero budget caps everything

    def test_figure_14(self):
        table = figure_14(TINY, ks=(1, 5))
        assert table.column("K") == [1, 5]

    def test_figure_15(self):
        table = figure_15(TINY, queries=("L⋈O",))
        assert table.column("query") == ["L⋈O"]
        assert table.rows[0][table.headers.index("a-FRPA:sumDepths")] > 0

    def test_skew_sweep(self):
        table = skew_sweep(TINY, zs=(0.0,))
        assert table.column("z") == [0.0]

    def test_ablation_cover(self):
        table = ablation_cover(TINY, max_cr_size=16)
        assert table.column("strategy") == ["adaptive", "frozen", "fixed-grid"]

    def test_ablation_pulling(self):
        table = ablation_pulling(TINY)
        names = set(table.column("operator"))
        assert names == {"FRPA", "FRPA_RR"}


class TestPipelineQueryRunner:
    def test_three_way_runs(self):
        params = WorkloadParams(e=1, c=0.5, z=0.5, k=2, scale=0.0003, seed=0)
        pipeline = run_pipeline_query("L⋈O⋈C", "a-FRPA", params)
        assert pipeline.sum_depths > 0
        assert len(pipeline.base_depths()) == 3

    def test_unknown_query_rejected(self):
        params = WorkloadParams(scale=0.0003)
        with pytest.raises(KeyError):
            run_pipeline_query("nope", "a-FRPA", params)


class TestModelTime:
    def test_model_time_uses_latency(self):
        fast = figure_02(FigureConfig(scale=0.0003, num_seeds=1, io_latency=0.0))
        slow = figure_02(FigureConfig(scale=0.0003, num_seeds=1, io_latency=1.0))
        fast_mt = fast.rows[0][fast.headers.index("model_time")]
        slow_mt = slow.rows[0][slow.headers.index("model_time")]
        assert slow_mt > fast_mt
