"""Tests for experiment tables and rendering."""


import pytest

from repro.experiments.report import ExperimentTable


@pytest.fixture
def table():
    t = ExperimentTable(
        title="Demo",
        headers=["op", "depth", "time"],
    )
    t.add_row("HRJN*", 100, 1.5)
    t.add_row("FRPA", 40, 0.25)
    return t


class TestExperimentTable:
    def test_column_extraction(self, table):
        assert table.column("op") == ["HRJN*", "FRPA"]
        assert table.column("depth") == [100, 40]

    def test_column_unknown_header(self, table):
        with pytest.raises(ValueError):
            table.column("nope")

    def test_render_contains_all_cells(self, table):
        rendered = table.render()
        for token in ("Demo", "HRJN*", "FRPA", "100", "40"):
            assert token in rendered

    def test_render_alignment(self, table):
        lines = table.render().splitlines()
        header_line = lines[2]
        separator = lines[3]
        assert len(header_line) == len(separator)

    def test_nan_rendered_as_dash(self):
        t = ExperimentTable(title="t", headers=["x"])
        t.add_row(float("nan"))
        assert "—" in t.render()

    def test_notes_appended(self, table):
        table.notes.append("hello note")
        assert "note: hello note" in table.render()

    def test_str_equals_render(self, table):
        assert str(table) == table.render()

    def test_float_formatting(self):
        t = ExperimentTable(title="t", headers=["small", "large"])
        t.add_row(0.123456, 12345.678)
        rendered = t.render()
        assert "0.1235" in rendered
        assert "12345.7" in rendered

    def test_empty_table_renders(self):
        t = ExperimentTable(title="empty", headers=["a"])
        assert "empty" in t.render()


class TestSerialization:
    def test_to_csv(self, table):
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "op,depth,time"
        assert "HRJN*,100,1.5" in csv_text

    def test_csv_nan_blank(self):
        t = ExperimentTable(title="t", headers=["x"])
        t.add_row(float("nan"))
        # csv quotes a lone empty field; the cell carries no value.
        assert t.to_csv().splitlines()[1] in ("", '""')

    def test_to_dict_nan_none(self):
        t = ExperimentTable(title="t", headers=["x"], notes=["n"])
        t.add_row(float("nan"))
        payload = t.to_dict()
        assert payload["rows"] == [[None]]
        assert payload["notes"] == ["n"]

    def test_save_by_extension(self, table, tmp_path):
        table.save(tmp_path / "t.txt")
        table.save(tmp_path / "t.csv")
        table.save(tmp_path / "t.json")
        assert (tmp_path / "t.txt").read_text().startswith("Demo")
        assert (tmp_path / "t.csv").read_text().startswith("op,")
        assert '"title": "Demo"' in (tmp_path / "t.json").read_text()


class TestChart:
    def test_bars_scale_to_peak(self, table):
        chart = table.chart("op", "depth", width=10)
        lines = chart.splitlines()
        assert "█" * 10 in lines[1]  # HRJN* = peak
        assert lines[2].count("█") == 4  # 40/100 of width

    def test_nan_bar_omitted(self):
        t = ExperimentTable(title="t", headers=["op", "d"])
        t.add_row("a", 5)
        t.add_row("b", float("nan"))
        chart = t.chart("op", "d")
        assert "—" in chart

    def test_all_nan_column(self):
        t = ExperimentTable(title="t", headers=["op", "d"])
        t.add_row("a", float("nan"))
        assert "no finite values" in t.chart("op", "d")
