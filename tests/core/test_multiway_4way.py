"""4-relation multiway chains: correctness and weighted scoring."""

import itertools

import numpy as np
import pytest

from repro.core.multiway import multiway_rank_join
from repro.core.multiway_fr import MultiwayFeasibleBound
from repro.core.scoring import SumScore, WeightedSum
from repro.core.tuples import RankTuple
from repro.relation.relation import Relation


def relation(name, rows, key_attr):
    return Relation(
        name,
        [RankTuple(key=p[key_attr], scores=s, payload=dict(p)) for p, s in rows],
    )


def random_4chain(seed, n=10, keys=3):
    rng = np.random.default_rng(seed)
    attrs = ["p", "q", "r"]

    def mk(name, left, right):
        rows = []
        for __ in range(n):
            payload = {}
            if left:
                payload[left] = int(rng.integers(0, keys))
            if right:
                payload[right] = int(rng.integers(0, keys))
            rows.append((payload, (float(rng.random()),)))
        return relation(name, rows, left or right)

    relations = [
        mk("A", None, "p"),
        mk("B", "p", "q"),
        mk("C", "q", "r"),
        mk("D", "r", None),
    ]
    return relations, attrs


def brute_force(relations, attrs, scoring):
    results = []
    for combo in itertools.product(*[rel.tuples for rel in relations]):
        if all(
            combo[i].payload[attr] == combo[i + 1].payload[attr]
            for i, attr in enumerate(attrs)
        ):
            results.append(scoring(tuple(s for t in combo for s in t.scores)))
    return sorted(results, reverse=True)


@pytest.mark.parametrize("seed", [0, 1, 2])
class TestFourWayCorrectness:
    def test_corner_bound(self, seed):
        relations, attrs = random_4chain(seed)
        operator = multiway_rank_join(relations, attrs, SumScore())
        got = [r.score for r in operator]
        assert got == pytest.approx(brute_force(relations, attrs, SumScore()))

    def test_feasible_bound(self, seed):
        relations, attrs = random_4chain(seed)
        operator = multiway_rank_join(
            relations, attrs, SumScore(), bound=MultiwayFeasibleBound()
        )
        got = [r.score for r in operator]
        assert got == pytest.approx(brute_force(relations, attrs, SumScore()))


class TestWeightedMultiway:
    def test_weighted_sum_4way(self):
        relations, attrs = random_4chain(5)
        scoring = WeightedSum([0.4, 0.3, 0.2, 0.1])
        operator = multiway_rank_join(
            relations, attrs, scoring, bound=MultiwayFeasibleBound()
        )
        got = [r.score for r in operator.top_k(6)]
        expected = brute_force(relations, attrs, scoring)[: len(got)]
        assert got == pytest.approx(expected)

    def test_result_dimensions(self):
        relations, attrs = random_4chain(6)
        operator = multiway_rank_join(relations, attrs, SumScore())
        top = operator.get_next()
        if top is not None:
            assert len(top.tuples) == 4
            assert len(top.scores) == 4
            assert len(operator.depths()) == 4
