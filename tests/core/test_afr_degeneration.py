"""aFR resolution-0 degeneration (Section 5): aFR → corner bound.

When adaptive covers are forced down to resolution 1, every cover
collapses to ``{(1, …, 1)}`` and the aFR bound must equal HRJN*'s corner
bound *exactly* — the end point of the paper's FRPA → HRJN* morphing.
Along the way ``maxCRSize`` is a hard budget: the cover size may never
exceed it after any update.
"""

import pytest

from repro.core.afr_bound import AFRBound
from repro.core.bounds import LEFT, RIGHT, BoundContext, CornerBound
from repro.data.workload import anti_correlated_instance


@pytest.fixture(scope="module")
def instance():
    # Anti-correlated scores: nearly every tuple is a skyline point, so
    # tiny cover budgets are overrun almost immediately and the grid is
    # forced all the way down to resolution 1.
    return anti_correlated_instance(
        n_left=250, n_right=250, num_keys=25, k=10, seed=11
    )


def alternating_pulls(instance):
    """(side, tuple) pairs in strict LEFT/RIGHT alternation."""
    left = instance.sorted_tuples(LEFT)
    right = instance.sorted_tuples(RIGHT)
    for l_tup, r_tup in zip(left, right):
        yield LEFT, l_tup
        yield RIGHT, r_tup


def run_both(instance, max_cr_size=1, resolution=4):
    """Drive aFR and corner bounds through the identical pull sequence.

    Yields (afr_bound_value, corner_bound_value, afr, step) per pull.
    """
    context = BoundContext(
        instance.scoring, (instance.left.dimension, instance.right.dimension)
    )
    afr = AFRBound(max_cr_size=max_cr_size, resolution=resolution)
    corner = CornerBound()
    afr.bind(context)
    corner.bind(BoundContext(
        instance.scoring, (instance.left.dimension, instance.right.dimension)
    ))
    for step, (side, tup) in enumerate(alternating_pulls(instance)):
        yield afr.update(side, tup), corner.update(side, tup), afr, step


class TestResolutionBottomOut:
    def test_bound_equals_corner_once_resolution_bottoms_out(self, instance):
        bottomed_at = None
        compared = 0
        for afr_bound, corner_bound, afr, step in run_both(instance):
            if afr.cover_resolutions == (1, 1):
                if bottomed_at is None:
                    bottomed_at = step
                compared += 1
                # Exact float equality — at resolution 1 the cover is the
                # corner point (1, 1), so the bound formulas coincide
                # term for term, not merely within tolerance.
                assert afr_bound == corner_bound, (
                    f"step {step}: aFR {afr_bound!r} != corner {corner_bound!r}"
                )
        assert bottomed_at is not None, (
            "workload never forced both covers to resolution 1 — "
            "the degeneration case was not exercised"
        )
        assert compared >= 50

    def test_cover_is_single_corner_point_at_bottom(self, instance):
        for _, _, afr, _ in run_both(instance):
            if afr.cover_resolutions == (1, 1):
                assert afr._cr[LEFT].points == [(1.0, 1.0)]
                assert afr._cr[RIGHT].points == [(1.0, 1.0)]
                break
        else:  # pragma: no cover - guarded by the test above
            pytest.fail("resolution never bottomed out")

    def test_bound_stays_sound_before_bottom_out(self, instance):
        # While degenerating, aFR must never exceed... the corner bound is
        # the loosest sound bound; aFR must stay at or below it (tighter
        # or equal), at every pull, not only after bottoming out.
        for afr_bound, corner_bound, _, step in run_both(instance):
            assert afr_bound <= corner_bound + 1e-9, (
                f"step {step}: aFR {afr_bound} looser than corner {corner_bound}"
            )


class TestMaxCRSizeBudget:
    @pytest.mark.parametrize("max_cr_size", [1, 4, 16])
    def test_budget_never_exceeded_mid_run(self, instance, max_cr_size):
        saw_grid = False
        for _, _, afr, _ in run_both(instance, max_cr_size=max_cr_size,
                                     resolution=16):
            for side in (LEFT, RIGHT):
                assert len(afr._cr[side]) <= max_cr_size
            saw_grid = saw_grid or "grid" in afr.cover_modes
        assert saw_grid, "budget was never stressed into grid mode"

    def test_generous_budget_never_degenerates(self, instance):
        # Control: with a budget the workload cannot overrun, the covers
        # stay exact and no grid transfer happens.
        for _, _, afr, _ in run_both(instance, max_cr_size=100_000):
            assert afr.cover_modes == ("exact", "exact")
