"""Tests for the operator factory layer."""

import pytest

from repro.core.afr_bound import AFRBound
from repro.core.bounds import CornerBound
from repro.core.fr_bound import FRBound
from repro.core.frstar_bound import FRStarBound
from repro.core.operators import OPERATORS, make_components, make_operator
from repro.core.pulling import PotentialAdaptive, RoundRobin
from repro.data.workload import random_instance


@pytest.fixture(scope="module")
def instance():
    return random_instance(
        n_left=60, n_right=60, e_left=1, e_right=1, num_keys=6, k=2, seed=0
    )


class TestRegistry:
    def test_registry_names(self):
        assert set(OPERATORS) == {
            "HRJN", "HRJN*", "PBRJ_FR^RR", "FRPA", "FRPA_RR", "a-FRPA",
        }

    @pytest.mark.parametrize("name", sorted(OPERATORS))
    def test_operator_carries_its_name(self, instance, name):
        assert make_operator(name, instance).name == name

    def test_unknown_name_lists_choices(self, instance):
        with pytest.raises(KeyError) as excinfo:
            make_operator("BOGUS", instance)
        assert "FRPA" in str(excinfo.value)


class TestComponents:
    @pytest.mark.parametrize(
        "name,bound_cls,strategy_cls",
        [
            ("HRJN", CornerBound, RoundRobin),
            ("HRJN*", CornerBound, PotentialAdaptive),
            ("PBRJ_FR^RR", FRBound, RoundRobin),
            ("FRPA", FRStarBound, PotentialAdaptive),
            ("FRPA_RR", FRStarBound, RoundRobin),
            ("a-FRPA", AFRBound, PotentialAdaptive),
        ],
    )
    def test_component_mapping(self, name, bound_cls, strategy_cls):
        bound, strategy = make_components(name)
        assert type(bound) is bound_cls
        assert type(strategy) is strategy_cls

    def test_frpa_bound_is_frstar_not_afr(self):
        bound, __ = make_components("FRPA")
        assert not isinstance(bound, AFRBound)

    def test_afrpa_parameters_forwarded(self):
        bound, __ = make_components(
            "a-FRPA", max_cr_size=7, resolution=16, cover_strategy="frozen"
        )
        assert bound.max_cr_size == 7
        assert bound.resolution == 16
        assert bound.cover_strategy == "frozen"

    def test_components_are_fresh_instances(self):
        a, __ = make_components("FRPA")
        b, __ = make_components("FRPA")
        assert a is not b

    def test_unknown_component_name(self):
        with pytest.raises(KeyError):
            make_components("BOGUS")


class TestFactoryKwargs:
    def test_afrpa_kwargs(self, instance):
        operator = make_operator(
            "a-FRPA", instance, max_cr_size=3, resolution=8
        )
        scheme = operator.bound_scheme
        assert scheme.max_cr_size == 3

    def test_budgets_forwarded(self, instance):
        operator = make_operator("HRJN*", instance, max_pulls=5)
        assert operator._max_pulls == 5

    def test_track_time_forwarded(self, instance):
        operator = make_operator("HRJN*", instance, track_time=False)
        operator.top_k(1)
        assert operator.timing().total == 0.0
