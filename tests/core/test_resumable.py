"""Resumable execution: try_next quanta and incremental top_k.

The resumability contract (repro.core.stepping):

* ``try_next(max_pulls=q)`` returns a result, ``PENDING`` (quantum spent,
  all state retained), or ``None`` (join exhausted);
* ``top_k(k)`` retains its history, so ``top_k(k + m)`` after ``top_k(k)``
  continues from where the first call stopped — pull counts do not
  restart and the first ``k`` results are unchanged;
* ``top_k(k')`` for ``k' <= k`` after ``top_k(k)`` costs zero new pulls.
"""

import numpy as np
import pytest

from repro.core import OPERATORS, SumScore, make_operator, multiway_rank_join
from repro.core.stepping import PENDING, ResumableOperator
from repro.core.tuples import RankTuple
from repro.data.workload import random_instance
from repro.relation.relation import Relation


def make_binary(seed=0, k=20):
    return random_instance(
        n_left=250, n_right=250, e_left=2, e_right=2,
        num_keys=25, k=k, seed=seed,
    )


def make_chain(seed=0):
    """Three random relations joined A.x = B.x, B.y = C.y."""
    rng = np.random.default_rng(seed)

    def rows(name, attrs):
        tuples = []
        for i in range(40):
            payload = {a: int(rng.integers(0, 8)) for a in attrs}
            tuples.append(RankTuple(
                key=i, scores=(float(rng.random()),), payload=payload
            ))
        return Relation(name, tuples)

    relations = [rows("A", ["x"]), rows("B", ["x", "y"]), rows("C", ["y"])]
    return relations, ["x", "y"]


class TestPBRJResumableTopK:
    @pytest.mark.parametrize("name", sorted(OPERATORS))
    def test_extension_continues_from_retained_state(self, name):
        instance = make_binary()
        resumed = make_operator(name, instance)
        fresh = make_operator(name, instance)

        head = resumed.top_k(8)
        pulls_at_8 = resumed.pulls
        extended = resumed.top_k(16)

        expected = fresh.top_k(16)
        assert [r.score for r in extended] == [r.score for r in expected]
        assert extended[:8] == head  # prefix is literally retained
        # The extension resumed: no pulls were repeated, so the total
        # matches a single straight run.
        assert pulls_at_8 <= resumed.pulls == fresh.pulls

    def test_shrinking_k_costs_zero_pulls(self):
        operator = make_operator("FRPA", make_binary())
        full = operator.top_k(10)
        pulls = operator.pulls
        assert operator.top_k(4) == full[:4]
        assert operator.pulls == pulls

    def test_repeated_top_k_is_idempotent(self):
        operator = make_operator("HRJN*", make_binary())
        assert operator.top_k(6) == operator.top_k(6)

    def test_top_k_interleaves_with_get_next(self):
        instance = make_binary()
        mixed = make_operator("FRPA", instance)
        straight = make_operator("FRPA", instance)
        first = mixed.get_next()
        rest = mixed.top_k(5)
        assert rest[0] is first  # get_next results are part of the history
        assert [r.score for r in rest] == [r.score for r in straight.top_k(5)]


class TestPBRJTryNext:
    def test_zero_quantum_on_fresh_operator_is_pending(self):
        operator = make_operator("FRPA", make_binary())
        assert operator.try_next(max_pulls=0) is PENDING
        assert operator.pulls == 0

    def test_quantum_bounds_pulls_per_call(self):
        operator = make_operator("FRPA", make_binary())
        while True:
            before = operator.pulls
            outcome = operator.try_next(max_pulls=5)
            assert operator.pulls - before <= 5
            if outcome is not PENDING:
                break

    def test_stepped_results_match_serial(self):
        instance = make_binary()
        stepped = make_operator("FRPA", instance)
        serial = make_operator("FRPA", instance)
        results = []
        while len(results) < 10:
            outcome = stepped.try_next(max_pulls=3)
            if outcome is PENDING:
                continue
            if outcome is None:
                break
            results.append(outcome)
        expected = serial.top_k(10)
        assert [r.score for r in results] == [r.score for r in expected]
        assert stepped.pulls == serial.pulls

    def test_exhaustion_returns_none_not_pending(self):
        instance = random_instance(
            n_left=15, n_right=15, e_left=2, e_right=2,
            num_keys=5, k=10, seed=1,
        )
        operator = make_operator("FRPA", instance)
        while (outcome := operator.try_next(max_pulls=4)) is not None:
            assert outcome is PENDING or outcome.score is not None
        # Once exhausted, every further call answers None immediately.
        assert operator.try_next(max_pulls=4) is None
        assert operator.get_next() is None

    def test_unbounded_try_next_equals_get_next(self):
        instance = make_binary()
        a = make_operator("HRJN", instance)
        b = make_operator("HRJN", instance)
        for _ in range(5):
            assert a.try_next().score == b.get_next().score

    def test_operators_satisfy_protocol(self):
        assert isinstance(make_operator("FRPA", make_binary()), ResumableOperator)


class TestMultiwayResumable:
    def test_incremental_top_k_extension(self):
        relations, attrs = make_chain()
        resumed = multiway_rank_join(relations, attrs, SumScore())
        fresh = multiway_rank_join(relations, attrs, SumScore())

        head = resumed.top_k(4)
        extended = resumed.top_k(12)
        expected = fresh.top_k(12)
        assert [r.score for r in extended] == [r.score for r in expected]
        assert extended[:4] == head
        assert resumed.pulls == fresh.pulls

    def test_try_next_quantum_and_pending(self):
        relations, attrs = make_chain()
        stepped = multiway_rank_join(relations, attrs, SumScore())
        serial = multiway_rank_join(relations, attrs, SumScore())
        assert stepped.try_next(max_pulls=0) is PENDING
        results = []
        while len(results) < 6:
            before = stepped.pulls
            outcome = stepped.try_next(max_pulls=2)
            assert stepped.pulls - before <= 2
            if outcome is PENDING:
                continue
            if outcome is None:
                break
            results.append(outcome)
        expected = serial.top_k(6)
        assert [r.score for r in results] == [r.score for r in expected]

    def test_multiway_satisfies_protocol(self):
        relations, attrs = make_chain()
        operator = multiway_rank_join(relations, attrs, SumScore())
        assert isinstance(operator, ResumableOperator)
