"""Unit tests for the tuple model."""

from repro.core.tuples import JoinResult, RankTuple


class TestRankTuple:
    def test_scores_normalized_to_tuple(self):
        tup = RankTuple(key=1, scores=[0.5, 0.25])
        assert tup.scores == (0.5, 0.25)
        assert isinstance(tup.scores, tuple)

    def test_dimension(self):
        assert RankTuple(key=1, scores=(0.5,)).dimension == 1
        assert RankTuple(key=1, scores=()).dimension == 0

    def test_hashable_and_equal(self):
        a = RankTuple(key=1, scores=(0.5,))
        b = RankTuple(key=1, scores=(0.5,))
        assert a == b
        assert hash(a) == hash(b)

    def test_payload_default_none(self):
        assert RankTuple(key="x", scores=(1.0,)).payload is None


class TestJoinResult:
    def test_combine_concatenates_scores(self):
        left = RankTuple(key=1, scores=(0.2, 0.3))
        right = RankTuple(key=1, scores=(0.9,))
        result = JoinResult.combine(left, right, score=1.4)
        assert result.scores == (0.2, 0.3, 0.9)
        assert result.score == 1.4
        assert result.key == 1

    def test_merged_payload_combines_dicts(self):
        left = RankTuple(key=1, scores=(0.2,), payload={"orderkey": 1, "partkey": 7})
        right = RankTuple(key=1, scores=(0.9,), payload={"custkey": 3})
        result = JoinResult.combine(left, right, score=1.1)
        assert result.merged_payload() == {"orderkey": 1, "partkey": 7, "custkey": 3}

    def test_merged_payload_ignores_non_dicts(self):
        left = RankTuple(key=1, scores=(0.2,), payload="opaque")
        right = RankTuple(key=1, scores=(0.9,), payload={"custkey": 3})
        result = JoinResult.combine(left, right, score=1.1)
        assert result.merged_payload() == {"custkey": 3}

    def test_right_payload_wins_on_collision(self):
        left = RankTuple(key=1, scores=(0.2,), payload={"k": 1})
        right = RankTuple(key=1, scores=(0.9,), payload={"k": 2})
        assert JoinResult.combine(left, right, 1.1).merged_payload() == {"k": 2}
