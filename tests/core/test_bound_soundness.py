"""Soundness property: every bounding scheme covers all undiscovered results.

The one property a bounding scheme must never violate (it is what makes
PBRJ's output correct): after any pull sequence, the returned ``t``
upper-bounds the score of every join result that still involves at least
one unseen tuple.  We replay random instances through each scheme and
check against brute force — including the corner bound and the loosened
adaptive bounds at aggressive budgets.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.afr_bound import AFRBound
from repro.core.bounds import LEFT, RIGHT, BoundContext, CornerBound
from repro.core.fr_bound import FRBound
from repro.core.frstar_bound import FRStarBound
from repro.core.naive import full_join
from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple

unit = st.floats(0, 1, allow_nan=False)
vec2 = st.tuples(unit, unit)

SCHEMES = [
    ("corner", CornerBound),
    ("fr", lambda: FRBound()),
    ("fr-unpruned", lambda: FRBound(prune_covers=False)),
    ("fr*", FRStarBound),
    ("afr-roomy", lambda: AFRBound(max_cr_size=1000)),
    ("afr-tight", lambda: AFRBound(max_cr_size=2, resolution=8)),
    ("afr-frozen", lambda: AFRBound(max_cr_size=2, cover_strategy="frozen")),
    ("afr-grid", lambda: AFRBound(max_cr_size=4, cover_strategy="fixed-grid")),
]


def replay_and_check(factory, left_scores, right_scores, keys):
    scoring = SumScore()
    dims = (2, 2)
    bound = factory()
    bound.bind(BoundContext(scoring, dims))
    left = sorted(
        (RankTuple(key=keys[i % len(keys)], scores=tuple(s))
         for i, s in enumerate(left_scores)),
        key=lambda t: sum(t.scores),
        reverse=True,
    )
    right = sorted(
        (RankTuple(key=keys[(i + 1) % len(keys)], scores=tuple(s))
         for i, s in enumerate(right_scores)),
        key=lambda t: sum(t.scores),
        reverse=True,
    )
    seen = {LEFT: 0, RIGHT: 0}
    streams = {LEFT: left, RIGHT: right}
    for step in range(len(left) + len(right)):
        side = step % 2
        if seen[side] >= len(streams[side]):
            side = 1 - side
            if seen[side] >= len(streams[side]):
                break
        rho = streams[side][seen[side]]
        seen[side] += 1
        t = bound.update(side, rho)
        # Brute-force all undiscovered results.
        unseen_left = left[seen[LEFT]:]
        unseen_right = right[seen[RIGHT]:]
        undiscovered = full_join(unseen_left, right, scoring) + full_join(
            left[: seen[LEFT]], unseen_right, scoring
        )
        for result in undiscovered:
            assert result.score <= t + 1e-9, (
                f"{factory}: bound {t} below undiscovered {result.score}"
            )


@pytest.mark.parametrize("label,factory", SCHEMES)
@given(
    left=st.lists(vec2, min_size=1, max_size=8),
    right=st.lists(vec2, min_size=1, max_size=8),
    keys=st.lists(st.integers(0, 3), min_size=1, max_size=4),
)
@settings(max_examples=25, deadline=None)
def test_soundness(label, factory, left, right, keys):
    replay_and_check(factory, left, right, keys)


class TestRelativeTightness:
    """Corner >= FR* >= nothing-below-truth, pointwise on shared replays."""

    @given(
        left=st.lists(vec2, min_size=2, max_size=10),
        right=st.lists(vec2, min_size=2, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_frstar_never_above_corner(self, left, right):
        scoring = SumScore()
        corner = CornerBound()
        frstar = FRStarBound()
        for scheme in (corner, frstar):
            scheme.bind(BoundContext(scoring, (2, 2)))
        left = sorted(left, key=sum, reverse=True)
        right = sorted(right, key=sum, reverse=True)
        for i in range(min(len(left), len(right))):
            for side, scores in ((LEFT, left[i]), (RIGHT, right[i])):
                tup = RankTuple(key=0, scores=tuple(scores))
                t_corner = corner.update(side, tup)
                t_star = frstar.update(side, tup)
                assert t_star <= t_corner + 1e-9

    @given(
        left=st.lists(vec2, min_size=2, max_size=10),
        right=st.lists(vec2, min_size=2, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_afr_between_frstar_and_corner(self, left, right):
        scoring = SumScore()
        corner = CornerBound()
        frstar = FRStarBound()
        afr = AFRBound(max_cr_size=2, resolution=4)
        for scheme in (corner, frstar, afr):
            scheme.bind(BoundContext(scoring, (2, 2)))
        left = sorted(left, key=sum, reverse=True)
        right = sorted(right, key=sum, reverse=True)
        for i in range(min(len(left), len(right))):
            for side, scores in ((LEFT, left[i]), (RIGHT, right[i])):
                tup = RankTuple(key=0, scores=tuple(scores))
                t_corner = corner.update(side, tup)
                t_star = frstar.update(side, tup)
                t_afr = afr.update(side, tup)
                assert t_star - 1e-9 <= t_afr <= t_corner + 1e-9
