"""Unit and property tests for scoring functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import (
    NEG_INF,
    AverageScore,
    CallableScore,
    MinScore,
    ProductScore,
    ScoringFunction,
    SumScore,
    WeightedSum,
    check_monotone,
)

unit = st.floats(0.0, 1.0, allow_nan=False)


class TestSumScore:
    def test_basic(self):
        assert SumScore()((0.2, 0.3, 0.5)) == pytest.approx(1.0)

    def test_empty_vector(self):
        assert SumScore()(()) == 0.0

    def test_batch_matches_scalar(self):
        vectors = np.array([[0.1, 0.2], [0.5, 0.5]])
        scoring = SumScore()
        np.testing.assert_allclose(
            scoring.batch(vectors), [scoring(tuple(v)) for v in vectors]
        )

    def test_bound_with_ones(self):
        assert SumScore().bound_with_ones((0.3, 0.4), 2) == pytest.approx(2.7)

    def test_max_combination_empty_sets(self):
        scoring = SumScore()
        assert scoring.max_combination([], [(0.5,)]) == NEG_INF
        assert scoring.max_combination([(0.5,)], []) == NEG_INF

    def test_max_combination(self):
        scoring = SumScore()
        left = [(0.1, 0.9), (0.5, 0.5)]
        right = [(0.2,), (0.8,)]
        assert scoring.max_combination(left, right) == pytest.approx(1.8)

    def test_max_combination_matches_bruteforce(self):
        scoring = SumScore()
        rng = np.random.default_rng(0)
        left = [tuple(v) for v in rng.random((7, 2))]
        right = [tuple(v) for v in rng.random((5, 3))]
        brute = max(scoring(a + b) for a in left for b in right)
        assert scoring.max_combination(left, right) == pytest.approx(brute)

    def test_separable_shortcut_matches_cross_product(self):
        scoring = SumScore()
        rng = np.random.default_rng(1)
        left = [tuple(v) for v in rng.random((6, 2))]
        right = [tuple(v) for v in rng.random((6, 2))]
        assert scoring.max_combination_separable(left, right) == pytest.approx(
            scoring.max_combination(left, right)
        )

    def test_zero_dimensional_operand(self):
        scoring = SumScore()
        assert scoring.max_combination([()], [(0.5,)]) == pytest.approx(0.5)


class TestWeightedSum:
    def test_basic(self):
        scoring = WeightedSum([0.4, 0.1, 0.5])
        assert scoring((1.0, 1.0, 1.0)) == pytest.approx(1.0)
        assert scoring((0.5, 0.0, 1.0)) == pytest.approx(0.7)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedSum([0.5, -0.1])

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            WeightedSum([0.5, 0.5])((1.0,))

    def test_batch_matches_scalar(self):
        scoring = WeightedSum([0.3, 0.7])
        vectors = np.array([[0.1, 0.2], [1.0, 0.0]])
        np.testing.assert_allclose(
            scoring.batch(vectors), [scoring(tuple(v)) for v in vectors]
        )

    def test_max_combination_matches_bruteforce(self):
        scoring = WeightedSum([0.2, 0.3, 0.5])
        rng = np.random.default_rng(2)
        left = [tuple(v) for v in rng.random((6, 1))]
        right = [tuple(v) for v in rng.random((4, 2))]
        brute = max(scoring(a + b) for a in left for b in right)
        assert scoring.max_combination(left, right) == pytest.approx(brute)
        assert scoring.max_combination_separable(left, right) == pytest.approx(brute)

    def test_monotone(self):
        assert check_monotone(WeightedSum([0.3, 0.7]), 2)


class TestOtherAggregates:
    def test_average(self):
        assert AverageScore()((0.2, 0.4)) == pytest.approx(0.3)
        assert AverageScore()(()) == 0.0

    def test_min(self):
        assert MinScore()((0.2, 0.9)) == pytest.approx(0.2)
        assert MinScore()(()) == 1.0

    def test_product(self):
        assert ProductScore()((0.5, 0.5)) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            ProductScore()((-0.5, 0.5))

    def test_batches_match_scalars(self):
        vectors = np.array([[0.2, 0.9], [0.7, 0.1]])
        for scoring in (AverageScore(), MinScore(), ProductScore()):
            np.testing.assert_allclose(
                scoring.batch(vectors), [scoring(tuple(v)) for v in vectors]
            )

    @pytest.mark.parametrize(
        "scoring", [SumScore(), AverageScore(), MinScore(), ProductScore()]
    )
    def test_all_are_monotone(self, scoring):
        assert check_monotone(scoring, 3)

    def test_callable_wrapper(self):
        scoring = CallableScore(lambda v: max(v), name="max")
        assert scoring((0.1, 0.9)) == pytest.approx(0.9)
        assert check_monotone(scoring, 2)

    def test_check_monotone_catches_non_monotone(self):
        bad = CallableScore(lambda v: -sum(v))
        assert not check_monotone(bad, 2)


class TestGenericMaxCombination:
    """The default pairwise enumeration used by non-additive aggregates."""

    @given(
        st.lists(st.tuples(unit, unit), min_size=1, max_size=6),
        st.lists(st.tuples(unit,), min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce_for_min(self, left, right):
        scoring = MinScore()
        brute = max(scoring(a + b) for a in left for b in right)
        assert scoring.max_combination(left, right) == pytest.approx(brute)

    @given(
        st.lists(st.tuples(unit, unit), min_size=1, max_size=6),
        st.lists(st.tuples(unit, unit), min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_sum_vectorized_equals_generic(self, left, right):
        summed = SumScore()
        generic = ScoringFunction.max_combination(summed, left, right)
        assert summed.max_combination(left, right) == pytest.approx(generic)
