"""Tests for the FR* bound — equivalence to FR and Table-1 caching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import LEFT, RIGHT, BoundContext
from repro.core.fr_bound import FRBound
from repro.core.frstar_bound import FRStarBound
from repro.core.scoring import MinScore, SumScore
from repro.core.tuples import RankTuple

unit = st.floats(0, 1, allow_nan=False)


def replay(bound_cls_or_instance, sequence, scoring, dims):
    """Feed (side, scores) pairs; return the list of bound values."""
    bound = (
        bound_cls_or_instance()
        if isinstance(bound_cls_or_instance, type)
        else bound_cls_or_instance
    )
    bound.bind(BoundContext(scoring, dims))
    values = []
    for side, scores in sequence:
        values.append(bound.update(side, RankTuple(key=0, scores=scores)))
    return values, bound


def interleave(left, right):
    """Round-robin (side, scores) sequence respecting per-side sort order."""
    left = sorted(left, key=sum, reverse=True)
    right = sorted(right, key=sum, reverse=True)
    sequence = []
    for i in range(max(len(left), len(right))):
        if i < len(left):
            sequence.append((LEFT, tuple(left[i])))
        if i < len(right):
            sequence.append((RIGHT, tuple(right[i])))
    return sequence


class TestEquivalenceToFR:
    """Theorem 4.1: FR* returns exactly the FR bound values."""

    @given(
        st.lists(st.tuples(unit, unit), min_size=1, max_size=12),
        st.lists(st.tuples(unit, unit), min_size=1, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_values_sum_2d(self, left, right):
        sequence = interleave(left, right)
        fr_values, __ = replay(FRBound, sequence, SumScore(), (2, 2))
        star_values, __ = replay(FRStarBound, sequence, SumScore(), (2, 2))
        assert fr_values == pytest.approx(star_values, abs=1e-12)

    @given(
        st.lists(st.tuples(unit, unit, unit), min_size=1, max_size=8),
        st.lists(st.tuples(unit,), min_size=1, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_values_asymmetric_dims(self, left, right):
        scoring = SumScore()
        dims = (3, 1)
        left = sorted(left, key=sum, reverse=True)
        right = sorted(right, key=sum, reverse=True)
        sequence = []
        for i in range(max(len(left), len(right))):
            if i < len(left):
                sequence.append((LEFT, tuple(left[i])))
            if i < len(right):
                sequence.append((RIGHT, tuple(right[i])))
        fr_values, __ = replay(FRBound, sequence, scoring, dims)
        star_values, __ = replay(FRStarBound, sequence, scoring, dims)
        assert fr_values == pytest.approx(star_values, abs=1e-12)

    @given(
        st.lists(st.tuples(unit, unit), min_size=1, max_size=8),
        st.lists(st.tuples(unit, unit), min_size=1, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_same_values_min_score(self, left, right):
        scoring = MinScore()
        left = sorted(left, key=min, reverse=True)
        right = sorted(right, key=min, reverse=True)
        sequence = []
        for i in range(max(len(left), len(right))):
            if i < len(left):
                sequence.append((LEFT, tuple(left[i])))
            if i < len(right):
                sequence.append((RIGHT, tuple(right[i])))
        fr_values, __ = replay(FRBound, sequence, scoring, (2, 2))
        star_values, __ = replay(FRStarBound, sequence, scoring, (2, 2))
        assert fr_values == pytest.approx(star_values, abs=1e-12)

    def test_exhaustion_equivalence(self):
        scoring = SumScore()
        sequence = interleave([(0.9, 0.1), (0.5, 0.5)], [(0.8, 0.8)])
        __, fr = replay(FRBound, sequence, scoring, (2, 2))
        __, star = replay(FRStarBound, sequence, scoring, (2, 2))
        assert fr.notify_exhausted(RIGHT) == pytest.approx(
            star.notify_exhausted(RIGHT), abs=1e-12
        )
        assert fr.notify_exhausted(LEFT) == pytest.approx(
            star.notify_exhausted(LEFT), abs=1e-12
        )


class TestDecisionMatrix:
    """Table 1: FR* recomputes far fewer cover bounds than FR."""

    def test_fewer_recomputations_than_fr(self):
        import numpy as np

        rng = np.random.default_rng(0)
        left = [tuple(v) for v in rng.random((40, 2))]
        right = [tuple(v) for v in rng.random((40, 2))]
        sequence = interleave(left, right)
        __, fr = replay(FRBound, sequence, SumScore(), (2, 2))
        __, star = replay(FRStarBound, sequence, SumScore(), (2, 2))
        assert star.cover_recomputations < fr.cover_recomputations

    def test_no_recompute_for_dominated_same_group_tuple(self):
        scoring = SumScore()
        bound = FRStarBound()
        bound.bind(BoundContext(scoring, (2, 2)))
        bound.update(LEFT, RankTuple(key=0, scores=(0.5, 0.5)))
        before = bound.cover_recomputations
        # Same S̄ (same group) and dominated by (0.5, 0.5)?  No: (0.6, 0.4)
        # is incomparable.  Use a dominated same-sum tuple: impossible for
        # sums — instead check a dominated tuple in a *new* group triggers
        # only the CR-side recomputes (2), not the SHR-side one.
        bound.update(LEFT, RankTuple(key=0, scores=(0.4, 0.4)))
        after = bound.cover_recomputations
        assert after - before == 2  # t_left^cover and t_both^cover only

    def test_skyline_change_triggers_other_side_recompute(self):
        scoring = SumScore()
        bound = FRStarBound()
        bound.bind(BoundContext(scoring, (2, 2)))
        bound.update(LEFT, RankTuple(key=0, scores=(0.9, 0.1)))
        before = bound.cover_recomputations
        # New skyline point AND new group: all three cover bounds refresh.
        bound.update(LEFT, RankTuple(key=0, scores=(0.1, 0.8)))
        assert bound.cover_recomputations - before == 3

    def test_seen_skyline_sizes_exposed(self):
        bound = FRStarBound()
        bound.bind(BoundContext(SumScore(), (2, 2)))
        bound.update(LEFT, RankTuple(key=0, scores=(0.9, 0.9)))
        bound.update(LEFT, RankTuple(key=0, scores=(0.5, 0.5)))
        assert bound.seen_skyline_sizes == (1, 0)
