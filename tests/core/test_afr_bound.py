"""Tests for the adaptive aFR bound and its cover strategies (Section 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.afr_bound import (
    AdaptiveCover,
    AFRBound,
    FixedGridCover,
    FrozenCover,
)
from repro.core.bounds import LEFT, RIGHT, BoundContext
from repro.core.frstar_bound import FRStarBound
from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.geometry.dominance import dominates
from repro.geometry.skyline import is_skyline

unit = st.floats(0, 1, allow_nan=False)
vec2 = st.tuples(unit, unit)


class TestAdaptiveCover:
    def test_starts_exact(self):
        cover = AdaptiveCover(2, max_size=10)
        assert cover.mode == "exact"
        assert cover.resolution is None
        assert cover.points == [(1.0, 1.0)]

    def test_stays_exact_below_budget(self):
        cover = AdaptiveCover(2, max_size=100)
        cover.update([(0.5, 0.5)])
        assert cover.mode == "exact"
        assert len(cover) == 2

    def test_transitions_to_grid_when_budget_exceeded(self):
        cover = AdaptiveCover(2, max_size=3, resolution=16)
        # A staircase of incomparable carvings grows the exact cover.
        for i in range(1, 9):
            cover.update([(i / 10, 1.0 - i / 10)])
        assert cover.mode == "grid"
        assert len(cover) <= 2 * 3  # bounded by budget after reductions

    def test_budget_enforced_via_resolution_reduction(self):
        cover = AdaptiveCover(2, max_size=4, resolution=64)
        for i in range(1, 40):
            cover.update([(i / 41, 1.0 - i / 41)])
        assert cover.mode == "grid"
        assert len(cover) <= 4 or cover.resolution == 1

    def test_1d_cover_never_needs_grid(self):
        cover = AdaptiveCover(1, max_size=2)
        for v in [0.9, 0.5, 0.2]:
            cover.update([(v,)])
        assert cover.mode == "exact"
        assert cover.points == [(0.2,)]

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            AdaptiveCover(2, max_size=0)

    @given(st.lists(vec2, min_size=1, max_size=25), vec2)
    @settings(max_examples=80, deadline=None)
    def test_cover_correctness_through_transition(self, observed, probe):
        """Correctness must survive the exact → grid transition."""
        cover = AdaptiveCover(2, max_size=4, resolution=16)
        for y in observed:
            cover.update([y])
        feasible = not any(dominates(probe, y) for y in observed)
        if feasible:
            assert cover.covers(probe)

    @given(st.lists(vec2, min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_cover_points_remain_skyline(self, observed):
        cover = AdaptiveCover(2, max_size=4, resolution=16)
        for y in observed:
            cover.update([y])
        assert is_skyline(cover.points)

    def test_array_matches_points(self):
        cover = AdaptiveCover(2, max_size=3, resolution=8)
        for i in range(1, 8):
            cover.update([(i / 9, 1.0 - i / 9)])
        assert sorted(map(tuple, cover.array.tolist())) == sorted(cover.points)


class TestFrozenCover:
    def test_freezes_past_budget(self):
        cover = FrozenCover(2, max_size=2)
        cover.update([(0.7, 0.7)])
        assert not cover.frozen
        cover.update([(0.3, 0.9), (0.9, 0.3)])
        assert cover.frozen
        before = cover.points
        cover.update([(0.1, 0.1)])  # ignored
        assert cover.points == before

    def test_frozen_cover_still_correct_but_loose(self):
        cover = FrozenCover(2, max_size=1)
        cover.update([(0.5, 0.5)])
        cover.update([(0.2, 0.2)])  # frozen by now
        # Still a correct cover for feasible points (it just stopped
        # shrinking) — every feasible point remains covered.
        assert cover.covers((0.4, 0.9))


class TestFixedGridCover:
    def test_safe_resolution_solves_budget(self):
        assert FixedGridCover._safe_resolution(3, 500) == 16  # 16^2=256 <= 500
        assert FixedGridCover._safe_resolution(3, 100) == 8
        assert FixedGridCover._safe_resolution(2, 500) == 256
        assert FixedGridCover._safe_resolution(1, 500) == 1

    def test_quantizes_from_the_start(self):
        cover = FixedGridCover(2, max_size=16, resolution=4)
        cover.update([(0.3, 0.3)])
        for p in cover.points:
            for coord in p:
                assert coord in {0.25, 0.5, 0.75, 1.0}

    def test_size_never_exceeds_worst_case(self):
        cover = FixedGridCover(2, max_size=8, resolution=8)
        rng = np.random.default_rng(0)
        for y in rng.random((50, 2)):
            cover.update([tuple(y)])
        assert len(cover) <= 8  # antichain on 8x8 grid


class TestAFRBound:
    def _run(self, bound, left, right):
        bound.bind(BoundContext(SumScore(), (2, 2)))
        values = []
        left = sorted(left, key=sum, reverse=True)
        right = sorted(right, key=sum, reverse=True)
        for i in range(max(len(left), len(right))):
            if i < len(left):
                values.append(
                    bound.update(LEFT, RankTuple(key=0, scores=tuple(left[i])))
                )
            if i < len(right):
                values.append(
                    bound.update(RIGHT, RankTuple(key=0, scores=tuple(right[i])))
                )
        return values

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            AFRBound(cover_strategy="nope")

    @given(
        st.lists(vec2, min_size=1, max_size=12),
        st.lists(vec2, min_size=1, max_size=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_equals_frstar_below_budget(self, left, right):
        """a-FRPA == FRPA while both covers stay within maxCRSize."""
        afr = AFRBound(max_cr_size=10_000)
        star = FRStarBound()
        afr_values = self._run(afr, left, right)
        star_values = self._run(star, left, right)
        assert afr.cover_modes == ("exact", "exact")
        assert afr_values == pytest.approx(star_values, abs=1e-12)

    @given(
        st.lists(vec2, min_size=1, max_size=15),
        st.lists(vec2, min_size=1, max_size=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_never_below_frstar(self, left, right):
        """aFR is a *loosened* FR*: its bound can only be >= FR*'s."""
        afr = AFRBound(max_cr_size=2, resolution=8)
        star = FRStarBound()
        afr_values = self._run(afr, left, right)
        star_values = self._run(star, left, right)
        for a, s in zip(afr_values, star_values):
            assert a >= s - 1e-9

    @staticmethod
    def _staircase(n):
        """Incomparable vectors with strictly decreasing sums.

        Each arrival closes the previous group, so the cover is carved on
        every step and keeps growing (a widening staircase).
        """
        return [
            (0.95 - 0.07 * i, 0.05 + 0.05 * i) for i in range(n)
        ]

    def test_cover_modes_reported(self):
        afr = AFRBound(max_cr_size=2, resolution=8)
        self._run(afr, self._staircase(12), [(0.5, 0.5)])
        assert afr.cover_modes[0] == "grid"
        assert afr.cover_resolutions[0] is not None

    def test_corner_bound_at_minimum_resolution(self):
        """At resolution 1 the aFR cover is {(1,1)} — the corner bound."""
        afr = AFRBound(max_cr_size=1, resolution=2)
        self._run(afr, self._staircase(12), [(0.5, 0.5)])
        assert afr.cover_modes[0] == "grid"
        if afr.cover_resolutions[0] == 1:
            assert afr._cr[0].points == [(1.0, 1.0)]

    def test_frozen_strategy_selectable(self):
        afr = AFRBound(max_cr_size=2, cover_strategy="frozen")
        self._run(afr, [(0.2, 0.9), (0.9, 0.2), (0.5, 0.5)], [(0.5, 0.5)])
        assert afr.cover_modes[0] in {"exact", "frozen"}

    def test_fixed_grid_strategy_selectable(self):
        afr = AFRBound(max_cr_size=16, cover_strategy="fixed-grid")
        self._run(afr, [(0.2, 0.9)], [(0.5, 0.5)])
        assert afr.cover_modes == ("fixed-grid", "fixed-grid")
