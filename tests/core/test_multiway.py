"""Tests for the multiway (n-ary) rank join operator."""

import itertools

import numpy as np
import pytest

from repro.core.multiway import MultiwayRankJoin, multiway_rank_join
from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.errors import InstanceError, PullBudgetExceeded
from repro.relation.relation import Relation
from repro.relation.sources import SortedScan


def relation(name, rows, key_attr):
    return Relation(
        name,
        [
            RankTuple(key=payload[key_attr], scores=scores, payload=dict(payload))
            for payload, scores in rows
        ],
    )


def brute_force_chain(relations, join_attrs, scoring):
    """All chain-join results by full enumeration, sorted by score desc."""
    results = []
    for combo in itertools.product(*[rel.tuples for rel in relations]):
        ok = all(
            combo[i].payload[attr] == combo[i + 1].payload[attr]
            for i, attr in enumerate(join_attrs)
        )
        if ok:
            vector = tuple(s for t in combo for s in t.scores)
            results.append(scoring(vector))
    return sorted(results, reverse=True)


@pytest.fixture
def three_chain():
    a = relation(
        "A",
        [({"x": 1}, (0.9,)), ({"x": 2}, (0.7,)), ({"x": 1}, (0.2,))],
        "x",
    )
    b = relation(
        "B",
        [({"x": 1, "y": 10}, (0.8,)), ({"x": 2, "y": 11}, (0.6,)),
         ({"x": 1, "y": 11}, (0.4,))],
        "x",
    )
    c = relation(
        "C",
        [({"y": 10}, (0.5,)), ({"y": 11}, (0.9,))],
        "y",
    )
    return [a, b, c], ["x", "y"]


class TestConstruction:
    def test_needs_two_inputs(self):
        with pytest.raises(InstanceError):
            MultiwayRankJoin([SortedScan([])], [], SumScore())

    def test_join_attr_arity(self, three_chain):
        relations, __ = three_chain
        with pytest.raises(InstanceError):
            multiway_rank_join(relations, ["x"], SumScore())

    def test_missing_chain_attribute_raises(self):
        a = relation("A", [({"x": 1}, (0.9,))], "x")
        b = relation("B", [({"z": 1}, (0.8,))], "z")
        operator = multiway_rank_join([a, b], ["x"], SumScore())
        with pytest.raises(InstanceError):
            operator.get_next()


class TestCorrectness:
    def test_matches_bruteforce_3way(self, three_chain):
        relations, attrs = three_chain
        operator = multiway_rank_join(relations, attrs, SumScore())
        got = [r.score for r in operator]
        expected = brute_force_chain(relations, attrs, SumScore())
        assert got == pytest.approx(expected)

    def test_2way_matches_binary_semantics(self):
        a = relation("A", [({"x": 1}, (0.9,)), ({"x": 2}, (0.3,))], "x")
        b = relation("B", [({"x": 1}, (0.5,)), ({"x": 1}, (0.4,))], "x")
        operator = multiway_rank_join([a, b], ["x"], SumScore())
        scores = [r.score for r in operator]
        assert scores == pytest.approx([1.4, 1.3])

    def test_result_metadata(self, three_chain):
        relations, attrs = three_chain
        operator = multiway_rank_join(relations, attrs, SumScore())
        top = operator.get_next()
        assert top is not None
        assert len(top.tuples) == 3
        assert len(top.scores) == 3
        assert "y" in top.merged_payload()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_chains_match_bruteforce(self, seed):
        rng = np.random.default_rng(seed)

        def random_relation(name, n, left_attr, right_attr):
            rows = []
            for __ in range(n):
                payload = {}
                if left_attr:
                    payload[left_attr] = int(rng.integers(0, 4))
                if right_attr:
                    payload[right_attr] = int(rng.integers(0, 4))
                rows.append((payload, (float(rng.random()),)))
            return relation(name, rows, left_attr or right_attr)

        relations = [
            random_relation("A", 12, None, "p"),
            random_relation("B", 12, "p", "q"),
            random_relation("C", 12, "q", None),
        ]
        attrs = ["p", "q"]
        operator = multiway_rank_join(relations, attrs, SumScore())
        got = [r.score for r in operator]
        expected = brute_force_chain(relations, attrs, SumScore())
        assert got == pytest.approx(expected)


class TestEarlyTermination:
    def test_does_not_exhaust_inputs_for_k1(self):
        n = 200
        def mk(name, left, right):
            rows = []
            for i in range(n):
                payload = {}
                if left:
                    payload[left] = i
                if right:
                    payload[right] = i
                rows.append((payload, (1.0 - i / n,)))
            return relation(name, rows, left or right)

        relations = [mk("A", None, "p"), mk("B", "p", "q"), mk("C", "q", None)]
        operator = multiway_rank_join(relations, ["p", "q"], SumScore())
        top = operator.get_next()
        assert top is not None
        assert top.score == pytest.approx(3.0)
        assert operator.sum_depths < 2 * n  # far below the 3n total

    def test_depths_reported_per_input(self, three_chain):
        relations, attrs = three_chain
        operator = multiway_rank_join(relations, attrs, SumScore())
        operator.get_next()
        depths = operator.depths()
        assert len(depths) == 3
        assert operator.sum_depths == sum(depths)

    def test_pull_budget(self, three_chain):
        relations, attrs = three_chain
        operator = multiway_rank_join(relations, attrs, SumScore(), max_pulls=1)
        with pytest.raises(PullBudgetExceeded):
            operator.get_next()

    def test_bound_decreases(self, three_chain):
        relations, attrs = three_chain
        operator = multiway_rank_join(relations, attrs, SumScore())
        operator.get_next()
        assert operator.bound_value < float("inf")


class TestExhaustion:
    def test_empty_relation_gives_empty_output(self):
        a = relation("A", [({"x": 1}, (0.9,))], "x")
        b = Relation("B", [])
        operator = MultiwayRankJoin(
            [SortedScan(a.tuples), SortedScan([], cost_model=None)],
            ["x"],
            SumScore(),
        )
        assert operator.get_next() is None

    def test_returns_none_after_end(self, three_chain):
        relations, attrs = three_chain
        operator = multiway_rank_join(relations, attrs, SumScore())
        list(operator)
        assert operator.get_next() is None
