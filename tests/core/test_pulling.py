"""Unit tests for pulling strategies."""

import pytest

from repro.core.bounds import LEFT, RIGHT
from repro.core.pulling import FixedSequence, PotentialAdaptive, RoundRobin


class FakeView:
    """Minimal OperatorView stub."""

    def __init__(self, potentials=(0.0, 0.0), depths=(0, 0), exhausted=(False, False)):
        self._potentials = list(potentials)
        self._depths = list(depths)
        self._exhausted = list(exhausted)

    def potential(self, side):
        return self._potentials[side]

    def depth(self, side):
        return self._depths[side]

    def is_exhausted(self, side):
        return self._exhausted[side]


class TestRoundRobin:
    def test_alternates_starting_left(self):
        strategy = RoundRobin()
        view = FakeView()
        assert [strategy.choose(view) for _ in range(4)] == [
            LEFT, RIGHT, LEFT, RIGHT,
        ]

    def test_skips_exhausted_side(self):
        strategy = RoundRobin()
        view = FakeView(exhausted=(True, False))
        assert strategy.choose(view) == RIGHT
        assert strategy.choose(view) == RIGHT

    def test_raises_when_both_exhausted(self):
        strategy = RoundRobin()
        view = FakeView(exhausted=(True, True))
        with pytest.raises(RuntimeError):
            strategy.choose(view)


class TestPotentialAdaptive:
    def test_prefers_higher_potential(self):
        strategy = PotentialAdaptive()
        assert strategy.choose(FakeView(potentials=(1.0, 2.0))) == RIGHT
        assert strategy.choose(FakeView(potentials=(3.0, 2.0))) == LEFT

    def test_tie_breaks_to_smaller_depth(self):
        strategy = PotentialAdaptive()
        view = FakeView(potentials=(1.0, 1.0), depths=(5, 3))
        assert strategy.choose(view) == RIGHT

    def test_tie_breaks_to_smaller_index_last(self):
        strategy = PotentialAdaptive()
        view = FakeView(potentials=(1.0, 1.0), depths=(4, 4))
        assert strategy.choose(view) == LEFT

    def test_only_available_side(self):
        strategy = PotentialAdaptive()
        view = FakeView(potentials=(0.0, 5.0), exhausted=(False, True))
        assert strategy.choose(view) == LEFT

    def test_infinite_potentials(self):
        strategy = PotentialAdaptive()
        inf = float("inf")
        view = FakeView(potentials=(inf, inf), depths=(0, 0))
        assert strategy.choose(view) == LEFT


class TestFixedSequence:
    def test_replays_sequence(self):
        strategy = FixedSequence([RIGHT, RIGHT, LEFT])
        view = FakeView()
        assert [strategy.choose(view) for _ in range(3)] == [RIGHT, RIGHT, LEFT]

    def test_falls_back_to_round_robin(self):
        strategy = FixedSequence([RIGHT])
        view = FakeView()
        strategy.choose(view)
        assert [strategy.choose(view) for _ in range(2)] == [LEFT, RIGHT]

    def test_skips_exhausted_in_sequence(self):
        strategy = FixedSequence([LEFT, RIGHT])
        view = FakeView(exhausted=(True, False))
        assert strategy.choose(view) == RIGHT
