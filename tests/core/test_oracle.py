"""Tests for the clairvoyant oracle bound and the empirical OPT reference."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import LEFT, RIGHT, BoundContext
from repro.core.frstar_bound import FRStarBound
from repro.core.naive import naive_top_k, top_scores
from repro.core.operators import OPERATORS, make_operator
from repro.core.oracle import (
    OracleBound,
    certificate_optimal_sum_depths,
    optimal_sum_depths,
    oracle_operator,
)
from repro.data.workload import random_instance


def tiny_instance(seed=0, **overrides):
    spec = dict(
        n_left=120, n_right=120, e_left=2, e_right=2,
        num_keys=12, k=5, cut=0.5, seed=seed,
    )
    spec.update(overrides)
    return random_instance(**spec)


class TestOracleBound:
    def test_initial_bound_is_best_result(self):
        instance = tiny_instance()
        bound = OracleBound(instance)
        best = naive_top_k(
            instance.left.tuples, instance.right.tuples, instance.scoring, 1
        )[0].score
        assert bound.current() == pytest.approx(best)

    def test_bound_is_exact_max_of_undiscovered(self):
        instance = tiny_instance(seed=3)
        bound = OracleBound(instance)
        left = instance.sorted_tuples(0)
        right = instance.sorted_tuples(1)
        # Simulate a few pulls and verify against brute force each time.
        for step in range(10):
            side = step % 2
            position = bound._depths[side]
            rows = left if side == 0 else right
            if position >= len(rows):
                continue
            t = bound.update(side, rows[position])
            undiscovered = []
            dl, dr = bound._depths
            for i, ltup in enumerate(left):
                for j, rtup in enumerate(right):
                    if ltup.key == rtup.key and (i >= dl or j >= dr):
                        undiscovered.append(
                            instance.scoring(ltup.scores + rtup.scores)
                        )
            expected = max(undiscovered) if undiscovered else float("-inf")
            assert t == pytest.approx(expected)

    def test_oracle_never_above_other_bounds(self):
        """The oracle is the tightest correct bound: <= FR* pointwise."""
        instance = tiny_instance(seed=5)
        oracle = OracleBound(instance)
        fr = FRStarBound()
        fr.bind(BoundContext(instance.scoring, instance.dims))
        left = instance.sorted_tuples(0)
        right = instance.sorted_tuples(1)
        for step in range(20):
            side = step % 2
            rows = left if side == 0 else right
            position = oracle._depths[side]
            if position >= len(rows):
                break
            t_oracle = oracle.update(side, rows[position])
            t_fr = fr.update(side, rows[position])
            assert t_oracle <= t_fr + 1e-9

    def test_exhaustion(self):
        instance = tiny_instance()
        bound = OracleBound(instance)
        bound.notify_exhausted(LEFT)
        t = bound.notify_exhausted(RIGHT)
        assert t == float("-inf")


class TestOracleOperator:
    def test_returns_correct_topk(self):
        instance = tiny_instance(seed=1)
        operator = oracle_operator(instance)
        got = top_scores(operator.top_k(5))
        expected = top_scores(
            naive_top_k(instance.left.tuples, instance.right.tuples,
                        instance.scoring, 5)
        )
        assert got == pytest.approx(expected)

    @pytest.mark.parametrize("name", sorted(OPERATORS))
    def test_no_operator_beats_the_oracle_with_same_strategy(self, name):
        """With PA pulling, the oracle bound terminates no later than any
        real bound using the same strategy."""
        instance = tiny_instance(seed=2)
        oracle = oracle_operator(instance)
        oracle.top_k(5)
        other = make_operator(name, instance)
        other.top_k(5)
        # Strategy differences allow small deviations per input, but the
        # oracle's sumDepths is a valid lower-ish reference.
        assert oracle.depths().sum_depths <= other.depths().sum_depths + 2

    def test_clairvoyant_oracle_below_certificate_opt(self):
        """The clairvoyant reference is a strict lower bound on legal OPT."""
        instance = tiny_instance(seed=4, n_left=60, n_right=60)
        clairvoyant = optimal_sum_depths(instance)
        legal = certificate_optimal_sum_depths(instance)
        assert clairvoyant <= legal


class TestCertificateOpt:
    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_empirical_optimality_ratio(self, seed):
        """Theorem 4.3, measured: FRPA within 2x of the legal optimum."""
        instance = tiny_instance(seed=seed, n_left=60, n_right=60)
        opt = certificate_optimal_sum_depths(instance)
        frpa = make_operator("FRPA", instance)
        frpa.top_k(instance.k)
        assert frpa.depths().sum_depths <= 2 * opt + 4

    def test_certificate_requires_k_results(self):
        instance = tiny_instance(seed=0, n_left=5, n_right=5, num_keys=500, k=3)
        if instance.join_size() < 3:
            with pytest.raises(ValueError):
                certificate_optimal_sum_depths(instance)

    def test_certificate_opt_below_every_operator(self):
        instance = tiny_instance(seed=7, n_left=60, n_right=60)
        opt = certificate_optimal_sum_depths(instance)
        for name in sorted(OPERATORS):
            operator = make_operator(name, instance)
            operator.top_k(instance.k)
            assert opt <= operator.depths().sum_depths
