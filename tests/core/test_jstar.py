"""Tests for the J*-style rank join baseline."""

import pytest

from repro.core.jstar import JStar, jstar_from_instance
from repro.core.naive import naive_top_k, top_scores
from repro.core.operators import frpa
from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.data.workload import random_instance
from repro.errors import InstanceError


def rows(pairs):
    tuples = [RankTuple(key=k, scores=(s,)) for k, s in pairs]
    return sorted(tuples, key=lambda t: t.scores[0], reverse=True)


class TestValidation:
    def test_rejects_multi_score_inputs(self):
        multi = [RankTuple(key=1, scores=(0.5, 0.5))]
        with pytest.raises(InstanceError):
            JStar(multi, rows([(1, 0.5)]))

    def test_rejects_unsorted(self):
        unsorted = [RankTuple(key=1, scores=(0.1,)), RankTuple(key=2, scores=(0.9,))]
        with pytest.raises(InstanceError):
            JStar(unsorted, rows([(1, 0.5)]))

    def test_empty_inputs(self):
        assert JStar([], rows([(1, 0.5)])).get_next() is None
        assert JStar(rows([(1, 0.5)]), []).get_next() is None


class TestCorrectness:
    def test_simple(self):
        left = rows([(1, 0.9), (2, 0.8), (1, 0.3)])
        right = rows([(2, 1.0), (1, 0.7)])
        got = top_scores(list(JStar(left, right)))
        expected = top_scores(naive_top_k(left, right, SumScore(), 10))
        assert got == pytest.approx(expected)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_naive_on_random_instances(self, seed):
        instance = random_instance(
            n_left=150, n_right=150, e_left=1, e_right=1,
            num_keys=15, k=10, cut=1.0, seed=seed,
        )
        operator = jstar_from_instance(instance)
        got = top_scores(operator.top_k(10))
        expected = top_scores(
            naive_top_k(instance.left.tuples, instance.right.tuples,
                        instance.scoring, 10)
        )
        assert got == pytest.approx(expected)

    def test_agrees_with_frpa(self):
        instance = random_instance(
            n_left=200, n_right=200, e_left=1, e_right=1,
            num_keys=25, k=8, cut=0.5, seed=7,
        )
        jstar = jstar_from_instance(instance)
        pbrj = frpa(instance)
        assert top_scores(jstar.top_k(8)) == pytest.approx(
            top_scores(pbrj.top_k(8))
        )

    def test_exhaustion_returns_none(self):
        left = rows([(1, 0.9)])
        right = rows([(1, 0.5)])
        operator = JStar(left, right)
        assert operator.get_next() is not None
        assert operator.get_next() is None
        assert operator.get_next() is None


class TestCostAccounting:
    def test_depths_bounded_by_inputs(self):
        instance = random_instance(
            n_left=100, n_right=100, e_left=1, e_right=1,
            num_keys=10, k=5, cut=1.0, seed=1,
        )
        operator = jstar_from_instance(instance)
        operator.top_k(5)
        depths = operator.depths()
        assert depths.left <= 100
        assert depths.right <= 100
        assert operator.states_popped >= 5

    def test_early_termination_on_top_heavy_input(self):
        n = 300
        left = rows([(i, 1.0 - i / n) for i in range(n)])
        right = rows([(i, 1.0 - i / n) for i in range(n)])
        operator = JStar(left, right)
        top = operator.get_next()
        assert top is not None
        assert top.score == pytest.approx(2.0)
        assert operator.depths().sum_depths < 20

    def test_lattice_states_can_exceed_depths(self):
        """J* pays CPU for non-matching pairs between matches."""
        # Keys arranged so the first match is far down the lattice diagonal.
        left = rows([(i, 1.0 - i / 50) for i in range(25)])
        right = rows([(i + 100, 1.0 - i / 50) for i in range(24)]
                     + [(0, 0.01)])  # only the deep tail matches key 0
        operator = JStar(left, right)
        result = operator.get_next()
        assert result is not None
        assert operator.states_popped > operator.depths().left
