"""Tests for the multiway feasible-region bound (additive scoring)."""

import itertools

import numpy as np
import pytest

from repro.core.multiway import multiway_rank_join
from repro.core.multiway_fr import MultiwayCornerBound, MultiwayFeasibleBound
from repro.core.scoring import MinScore, SumScore, WeightedSum
from repro.core.tuples import RankTuple
from repro.errors import InstanceError
from repro.relation.relation import Relation


def relation(name, rows, key_attr):
    return Relation(
        name,
        [
            RankTuple(key=p[key_attr], scores=s, payload=dict(p))
            for p, s in rows
        ],
    )


def random_chain(seed, n=15, keys=4):
    rng = np.random.default_rng(seed)

    def mk(name, left, right):
        rows = []
        for __ in range(n):
            payload = {}
            if left:
                payload[left] = int(rng.integers(0, keys))
            if right:
                payload[right] = int(rng.integers(0, keys))
            rows.append((payload, (float(rng.random()),)))
        return relation(name, rows, left or right)

    return [mk("A", None, "p"), mk("B", "p", "q"), mk("C", "q", None)], ["p", "q"]


def brute_force(relations, attrs, scoring):
    results = []
    for combo in itertools.product(*[rel.tuples for rel in relations]):
        if all(
            combo[i].payload[attr] == combo[i + 1].payload[attr]
            for i, attr in enumerate(attrs)
        ):
            results.append(scoring(tuple(s for t in combo for s in t.scores)))
    return sorted(results, reverse=True)


class TestConstruction:
    def test_rejects_non_additive_scoring(self):
        bound = MultiwayFeasibleBound()
        with pytest.raises(InstanceError):
            bound.bind([1, 1], MinScore())

    def test_accepts_weighted_sum(self):
        bound = MultiwayFeasibleBound()
        bound.bind([1, 2], WeightedSum([0.5, 0.2, 0.3]))


@pytest.mark.parametrize("seed", [0, 1, 2])
class TestCorrectness:
    def test_matches_bruteforce(self, seed):
        relations, attrs = random_chain(seed)
        operator = multiway_rank_join(
            relations, attrs, SumScore(),
            bound=MultiwayFeasibleBound(), name="MW-FR",
        )
        got = [r.score for r in operator]
        expected = brute_force(relations, attrs, SumScore())
        assert got == pytest.approx(expected)

    def test_agrees_with_corner_variant(self, seed):
        relations, attrs = random_chain(seed)
        fr = multiway_rank_join(
            relations, attrs, SumScore(), bound=MultiwayFeasibleBound()
        )
        corner = multiway_rank_join(
            relations, attrs, SumScore(), bound=MultiwayCornerBound()
        )
        assert [r.score for r in fr.top_k(5)] == pytest.approx(
            [r.score for r in corner.top_k(5)]
        )


class TestDepthAdvantage:
    def _cut_chain(self, n=200, cut=0.4, seed=0):
        """Single-score chain where no score exceeds ``cut``."""
        rng = np.random.default_rng(seed)

        def mk(name, left, right):
            rows = []
            for i in range(n):
                payload = {}
                if left:
                    payload[left] = int(rng.integers(0, 10))
                if right:
                    payload[right] = int(rng.integers(0, 10))
                rows.append((payload, (float(rng.random()) * cut,)))
            return relation(name, rows, left or right)

        return [mk("A", None, "p"), mk("B", "p", "q"), mk("C", "q", None)], ["p", "q"]

    def test_feasible_bound_never_deeper_than_corner(self):
        relations, attrs = self._cut_chain()
        fr = multiway_rank_join(
            relations, attrs, SumScore(), bound=MultiwayFeasibleBound()
        )
        corner = multiway_rank_join(
            relations, attrs, SumScore(), bound=MultiwayCornerBound()
        )
        fr.top_k(5)
        corner.top_k(5)
        assert fr.sum_depths <= corner.sum_depths

    def test_feasible_bound_wins_big_under_cut(self):
        relations, attrs = self._cut_chain()
        fr = multiway_rank_join(
            relations, attrs, SumScore(), bound=MultiwayFeasibleBound()
        )
        corner = multiway_rank_join(
            relations, attrs, SumScore(), bound=MultiwayCornerBound()
        )
        fr.top_k(5)
        corner.top_k(5)
        # The corner bound's double 1-substitution (max 1+1+cut) can never
        # fall below the terminal score (~3*cut), so it reads everything;
        # the feasible covers learn the cut.
        assert corner.sum_depths == sum(len(r) for r in relations)
        assert fr.sum_depths < corner.sum_depths / 2


class TestBoundSemantics:
    def test_bound_decreases(self):
        relations, attrs = random_chain(0)
        operator = multiway_rank_join(
            relations, attrs, SumScore(), bound=MultiwayFeasibleBound()
        )
        previous = float("inf")
        for __ in range(10):
            if operator.get_next() is None:
                break
            assert operator.bound_value <= previous + 1e-9
            previous = operator.bound_value

    def test_potential_finite_after_updates(self):
        relations, attrs = random_chain(1)
        operator = multiway_rank_join(
            relations, attrs, SumScore(), bound=MultiwayFeasibleBound()
        )
        operator.get_next()
        for index in range(3):
            assert operator._bound_scheme.potential(index) < float("inf")
