"""Property and invariant tests for the PBRJ template itself."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import naive_top_k, top_scores
from repro.core.operators import OPERATORS, make_operator
from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.data.workload import random_instance
from repro.relation.relation import RankJoinInstance, Relation
from repro.stats.trace import BoundTrace

unit = st.floats(0, 1, allow_nan=False)


def instance_from(keys_left, scores_left, keys_right, scores_right, k=1):
    left = Relation(
        "L", [RankTuple(key=k_, scores=(s,)) for k_, s in zip(keys_left, scores_left)]
    )
    right = Relation(
        "R", [RankTuple(key=k_, scores=(s,)) for k_, s in zip(keys_right, scores_right)]
    )
    return RankJoinInstance(left, right, SumScore(), k)


class TestOutputInvariants:
    @pytest.mark.parametrize("operator", sorted(OPERATORS))
    def test_full_drain_equals_join_size(self, operator):
        instance = random_instance(
            n_left=80, n_right=80, e_left=1, e_right=1,
            num_keys=8, k=1, seed=0,
        )
        op = make_operator(operator, instance)
        drained = list(op)
        assert len(drained) == instance.join_size()

    @pytest.mark.parametrize("operator", sorted(OPERATORS))
    def test_output_sorted_even_with_ties(self, operator):
        # Many exact ties stress the group logic (S̄ equality) and the
        # emit tolerance.
        keys = [i % 3 for i in range(30)]
        scores = [round((i % 5) / 5, 3) for i in range(30)]
        instance = instance_from(keys, scores, keys, scores, k=1)
        op = make_operator(operator, instance)
        out = top_scores(list(op))
        assert out == sorted(out, reverse=True)

    def test_determinism(self):
        instance = random_instance(
            n_left=200, n_right=200, e_left=2, e_right=2,
            num_keys=20, k=10, cut=0.5, seed=9,
        )
        traces = []
        for __ in range(2):
            trace = BoundTrace()
            op = make_operator("FRPA", instance, trace=trace)
            op.top_k(10)
            traces.append([(e.side, e.bound) for e in trace.entries])
        assert traces[0] == traces[1]

    @given(
        keys=st.lists(st.integers(0, 3), min_size=1, max_size=20),
        scores=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_hypothesis_topk_matches_naive(self, keys, scores):
        values = scores.draw(
            st.lists(unit, min_size=len(keys), max_size=len(keys))
        )
        instance = instance_from(keys, values, keys, values, k=1)
        op = make_operator("a-FRPA", instance)
        got = top_scores(op.top_k(5))
        expected = top_scores(
            naive_top_k(instance.left.tuples, instance.right.tuples,
                        instance.scoring, 5)
        )
        assert got == pytest.approx(expected)


class TestDepthMonotonicity:
    @pytest.mark.parametrize("operator", ["HRJN*", "FRPA", "a-FRPA"])
    def test_depths_monotone_in_k(self, operator):
        instance = random_instance(
            n_left=300, n_right=300, e_left=2, e_right=2,
            num_keys=30, k=1, cut=0.5, seed=4,
        )
        previous = 0
        for k in (1, 3, 10, 30):
            op = make_operator(operator, instance)
            op.top_k(k)
            depths = op.depths().sum_depths
            assert depths >= previous
            previous = depths

    def test_incremental_equals_batch(self):
        """K getNext calls == one top_k(K) call, result for result."""
        instance = random_instance(
            n_left=200, n_right=200, e_left=1, e_right=1,
            num_keys=20, k=10, cut=0.5, seed=2,
        )
        batch = make_operator("FRPA", instance).top_k(10)
        op = make_operator("FRPA", instance)
        incremental = [op.get_next() for __ in range(10)]
        assert top_scores(batch) == pytest.approx(
            top_scores([r for r in incremental if r])
        )


class TestMemoryAccounting:
    def test_high_water_marks(self):
        instance = random_instance(
            n_left=300, n_right=300, e_left=1, e_right=1,
            num_keys=10, k=10, cut=1.0, seed=1,
        )
        op = make_operator("FRPA", instance)
        op.top_k(10)
        memory = op.memory()
        assert memory.hash_left == op.depths().left
        assert memory.hash_right == op.depths().right
        assert memory.output >= 10
        assert memory.total == (
            memory.hash_left + memory.hash_right + memory.output
        )

    def test_memory_in_stats(self):
        instance = random_instance(
            n_left=100, n_right=100, e_left=1, e_right=1,
            num_keys=10, k=3, seed=0,
        )
        op = make_operator("HRJN*", instance)
        op.top_k(3)
        assert op.stats().memory.total > 0

    def test_shallow_operator_buffers_less(self):
        instance = random_instance(
            n_left=500, n_right=500, e_left=1, e_right=1,
            num_keys=25, k=5, cut=0.25, seed=3,
        )
        frpa = make_operator("FRPA", instance)
        corner = make_operator("HRJN*", instance)
        frpa.top_k(5)
        corner.top_k(5)
        # Less I/O also means a smaller footprint — the robustness bonus.
        assert frpa.memory().total <= corner.memory().total
