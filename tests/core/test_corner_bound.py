"""Unit tests for the corner bound (HRJN*)."""

import pytest

from repro.core.bounds import LEFT, RIGHT, BoundContext, CornerBound
from repro.core.scoring import NEG_INF, SumScore
from repro.core.tuples import RankTuple


@pytest.fixture
def bound():
    scheme = CornerBound()
    scheme.bind(BoundContext(SumScore(), (2, 2)))
    return scheme


def tup(*scores):
    return RankTuple(key=0, scores=tuple(scores))


class TestBoundContext:
    def test_score_bound_left(self):
        ctx = BoundContext(SumScore(), (2, 3))
        assert ctx.score_bound(LEFT, (0.5, 0.5)) == pytest.approx(4.0)

    def test_score_bound_right(self):
        ctx = BoundContext(SumScore(), (2, 3))
        assert ctx.score_bound(RIGHT, (0.1, 0.1, 0.1)) == pytest.approx(2.3)

    def test_combine(self):
        ctx = BoundContext(SumScore(), (1, 1))
        assert ctx.combine((0.5,), (0.25,)) == pytest.approx(0.75)


class TestCornerBound:
    def test_initial_bound_is_infinite(self):
        assert CornerBound().current() == float("inf")

    def test_update_sets_threshold(self, bound):
        t = bound.update(LEFT, tup(0.5, 0.5))
        # thr_left = 0.5 + 0.5 + 2 (ones) = 3.0, thr_right still inf
        assert t == float("inf")
        t = bound.update(RIGHT, tup(0.2, 0.2))
        assert t == pytest.approx(3.0)

    def test_bound_is_max_of_thresholds(self, bound):
        bound.update(LEFT, tup(0.9, 0.9))
        bound.update(RIGHT, tup(0.1, 0.1))
        assert bound.current() == pytest.approx(0.9 + 0.9 + 2)
        assert bound.thresholds == (
            pytest.approx(3.8),
            pytest.approx(2.2),
        )

    def test_potential_is_per_side_threshold(self, bound):
        bound.update(LEFT, tup(0.9, 0.9))
        bound.update(RIGHT, tup(0.1, 0.1))
        assert bound.potential(LEFT) == pytest.approx(3.8)
        assert bound.potential(RIGHT) == pytest.approx(2.2)

    def test_bound_decreases_with_decreasing_input(self, bound):
        values = [0.9, 0.7, 0.4]
        previous = float("inf")
        for v in values:
            bound.update(LEFT, tup(v, v))
            bound.update(RIGHT, tup(v, v))
            current = bound.current()
            assert current <= previous
            previous = current

    def test_exhaustion_collapses_side(self, bound):
        bound.update(LEFT, tup(0.5, 0.5))
        bound.update(RIGHT, tup(0.4, 0.4))
        t = bound.notify_exhausted(LEFT)
        assert t == pytest.approx(0.4 + 0.4 + 2)
        t = bound.notify_exhausted(RIGHT)
        assert t == NEG_INF

    def test_update_requires_bind(self):
        scheme = CornerBound()
        with pytest.raises(AssertionError):
            scheme.update(LEFT, tup(0.5, 0.5))

    def test_no_cover_recomputations(self, bound):
        bound.update(LEFT, tup(0.5, 0.5))
        assert bound.cover_recomputations == 0

    def test_corner_assumes_ideal_partner(self, bound):
        """The corner bound's weakness: it assumes a (1, 1) partner exists."""
        bound.update(LEFT, tup(0.5, 0.5))
        bound.update(RIGHT, tup(0.5, 0.5))
        # True max future score is 2.0 if no better vectors exist, but the
        # corner bound still claims 3.0 — exactly the Figure 12 pathology.
        assert bound.current() == pytest.approx(3.0)
