"""Unit tests for the PBRJ operator template."""

import pytest

from repro.core.bounds import CornerBound
from repro.core.frstar_bound import FRStarBound
from repro.core.naive import naive_top_k, top_scores
from repro.core.pbrj import PBRJ
from repro.core.pulling import PotentialAdaptive, RoundRobin
from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.errors import PullBudgetExceeded
from repro.relation.sources import SortedScan


def rows(pairs, dims=1):
    """Build tuples from (key, score...) pairs, sorted by score sum desc."""
    tuples = [RankTuple(key=k, scores=tuple(s)) for k, s in pairs]
    return sorted(tuples, key=lambda t: sum(t.scores), reverse=True)


def operator(left_pairs, right_pairs, bound=None, strategy=None, **kwargs):
    left = SortedScan(rows(left_pairs))
    right = SortedScan(rows(right_pairs))
    return PBRJ(
        left,
        right,
        SumScore(),
        bound or CornerBound(),
        strategy or RoundRobin(),
        **kwargs,
    )


LEFT_PAIRS = [(1, (0.9,)), (2, (0.8,)), (1, (0.3,)), (3, (0.2,))]
RIGHT_PAIRS = [(2, (1.0,)), (1, (0.7,)), (3, (0.6,)), (1, (0.1,))]


class TestGetNext:
    def test_results_in_decreasing_score_order(self):
        op = operator(LEFT_PAIRS, RIGHT_PAIRS)
        scores = [r.score for r in op]
        assert scores == sorted(scores, reverse=True)

    def test_matches_naive_oracle(self):
        op = operator(LEFT_PAIRS, RIGHT_PAIRS)
        got = top_scores(list(op))
        expected = top_scores(
            naive_top_k(rows(LEFT_PAIRS), rows(RIGHT_PAIRS), SumScore(), 100)
        )
        assert got == pytest.approx(expected)

    def test_returns_none_after_exhaustion(self):
        op = operator([(1, (0.9,))], [(1, (0.5,))])
        assert op.get_next() is not None
        assert op.get_next() is None
        assert op.get_next() is None

    def test_empty_join(self):
        op = operator([(1, (0.9,))], [(2, (0.5,))])
        assert op.get_next() is None

    def test_empty_inputs(self):
        op = operator([], [])
        assert op.get_next() is None

    def test_top_k_truncates(self):
        op = operator(LEFT_PAIRS, RIGHT_PAIRS)
        assert len(op.top_k(2)) == 2

    def test_top_k_short_output(self):
        op = operator([(1, (0.9,))], [(1, (0.5,))])
        assert len(op.top_k(10)) == 1

    def test_duplicate_keys_produce_all_combinations(self):
        left = [(1, (0.9,)), (1, (0.8,))]
        right = [(1, (0.7,)), (1, (0.6,))]
        op = operator(left, right)
        assert len(list(op)) == 4


class TestEarlyTermination:
    def test_does_not_scan_everything_for_k1(self):
        left = [(i, (1.0 - i / 100,)) for i in range(100)]
        right = [(i, (1.0 - i / 100,)) for i in range(100)]
        op = operator(left, right)
        first = op.get_next()
        assert first is not None
        assert first.score == pytest.approx(2.0)  # key 0 joins key 0
        assert op.depths().sum_depths < 50

    def test_adaptive_strategy_can_beat_round_robin(self):
        # Left input's scores plummet: adaptive pulling should hammer the
        # right input less than RR hammers both.
        left = [(i, (1.0 if i == 0 else 0.01,)) for i in range(50)]
        right = [(i, (1.0 - i / 1000,)) for i in range(50)]
        rr = operator(left, right, bound=CornerBound(), strategy=RoundRobin())
        ad = operator(
            left, right, bound=CornerBound(), strategy=PotentialAdaptive()
        )
        rr.top_k(1)
        ad.top_k(1)
        assert ad.depths().sum_depths <= rr.depths().sum_depths


class TestAccounting:
    def test_depths_match_sources(self):
        op = operator(LEFT_PAIRS, RIGHT_PAIRS)
        op.top_k(1)
        depths = op.depths()
        assert depths.left + depths.right == op.pulls

    def test_pull_budget_enforced(self):
        left = [(i, (1.0 - i / 100,)) for i in range(50)]
        right = [(i + 100, (1.0 - i / 100,)) for i in range(50)]  # no matches
        op = operator(left, right, max_pulls=10)
        with pytest.raises(PullBudgetExceeded):
            op.get_next()

    def test_stats_snapshot(self):
        op = operator(LEFT_PAIRS, RIGHT_PAIRS, name="probe")
        op.top_k(2)
        stats = op.stats()
        assert stats.operator == "probe"
        assert stats.results == 2
        assert stats.depths.sum_depths == op.pulls
        assert stats.timing.total >= stats.timing.io
        assert stats.io_cost > 0

    def test_operator_name_used(self):
        op = operator(LEFT_PAIRS, RIGHT_PAIRS)
        assert op.stats().operator == "PBRJ"

    def test_timing_disabled(self):
        op = operator(LEFT_PAIRS, RIGHT_PAIRS, track_time=False)
        op.top_k(2)
        assert op.timing().total == 0.0


class TestWithFRStar:
    def test_frstar_operator_correct(self):
        op = operator(
            LEFT_PAIRS,
            RIGHT_PAIRS,
            bound=FRStarBound(),
            strategy=PotentialAdaptive(),
        )
        got = top_scores(list(op))
        expected = top_scores(
            naive_top_k(rows(LEFT_PAIRS), rows(RIGHT_PAIRS), SumScore(), 100)
        )
        assert got == pytest.approx(expected)

    def test_bound_value_exposed(self):
        op = operator(LEFT_PAIRS, RIGHT_PAIRS, bound=FRStarBound())
        op.get_next()
        assert op.bound_value < float("inf")
