"""Unit and property tests for the FR bound (Section 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import LEFT, RIGHT, BoundContext
from repro.core.fr_bound import FRBound
from repro.core.naive import full_join
from repro.core.scoring import NEG_INF, MinScore, SumScore
from repro.core.tuples import RankTuple


def make_bound(dims=(2, 2), scoring=None, **kwargs):
    bound = FRBound(**kwargs)
    bound.bind(BoundContext(scoring or SumScore(), dims))
    return bound


def tup(*scores, key=0):
    return RankTuple(key=key, scores=tuple(scores))


class TestFRBasics:
    def test_initial_bound_infinite(self):
        assert make_bound().current() == float("inf")

    def test_first_update_returns_finite_bound(self):
        bound = make_bound()
        t = bound.update(LEFT, tup(0.5, 0.5))
        # t_both covers the both-unseen case: cover is still the ideal point
        # but order bound g_left = 3.0 caps it.
        assert t == pytest.approx(3.0)

    def test_bound_monotone_nonincreasing(self):
        bound = make_bound()
        previous = float("inf")
        for v in [0.9, 0.8, 0.6, 0.3, 0.1]:
            t = bound.update(LEFT, tup(v, v))
            assert t <= previous + 1e-12
            previous = t
            t = bound.update(RIGHT, tup(v, v))
            assert t <= previous + 1e-12
            previous = t

    def test_group_detection(self):
        bound = make_bound()
        bound.update(LEFT, tup(0.5, 0.5))
        assert bound.cover_sizes == (1, 1)  # group open, cover untouched
        bound.update(LEFT, tup(0.7, 0.3))  # same S̄ = 3.0: same group
        assert bound.cover_sizes == (1, 1)
        bound.update(LEFT, tup(0.2, 0.2))  # S̄ drops: group closes, CR carved
        assert bound.cover_sizes[0] > 1

    def test_exhaustion_collapses_order_bounds(self):
        bound = make_bound()
        bound.update(LEFT, tup(0.5, 0.5))
        bound.update(RIGHT, tup(0.5, 0.5))
        bound.notify_exhausted(LEFT)
        t = bound.notify_exhausted(RIGHT)
        assert t == NEG_INF

    def test_potential_components(self):
        bound = make_bound()
        bound.update(LEFT, tup(0.5, 0.5))
        comp = bound.components
        assert set(comp) == {"t0", "t1", "t_both"}
        assert bound.potential(LEFT) == max(comp["t0"], comp["t_both"])
        assert bound.potential(RIGHT) == max(comp["t1"], comp["t_both"])

    def test_cover_recomputations_counted(self):
        bound = make_bound()
        bound.update(LEFT, tup(0.5, 0.5))
        # FR recomputes all three cover bounds on every update.
        assert bound.cover_recomputations == 3
        bound.update(RIGHT, tup(0.5, 0.5))
        assert bound.cover_recomputations == 6


class TestFRCorrectness:
    """The bound must always upper-bound every undiscovered join result."""

    @staticmethod
    def _check_sound(left_rows, right_rows, scoring, dims):
        """Replay a RR pull sequence; at each step the bound must cover all
        results involving at least one unseen tuple."""
        bound = FRBound()
        bound.bind(BoundContext(scoring, dims))
        seen = ([], [])
        sides = [LEFT, RIGHT]
        streams = (list(left_rows), list(right_rows))
        pulls = []
        for i in range(len(left_rows) + len(right_rows)):
            side = sides[i % 2]
            index = len(seen[side])
            if index >= len(streams[side]):
                side = 1 - side
                index = len(seen[side])
                if index >= len(streams[side]):
                    break
            rho = streams[side][index]
            seen[side].append(rho)
            t = bound.update(side, rho)
            unseen_left = streams[LEFT][len(seen[LEFT]):]
            unseen_right = streams[RIGHT][len(seen[RIGHT]):]
            undiscovered = (
                full_join(unseen_left, streams[RIGHT], scoring)
                + full_join(seen[LEFT], unseen_right, scoring)
            )
            for result in undiscovered:
                assert result.score <= t + 1e-9, (
                    f"bound {t} misses undiscovered result {result.score}"
                )
            pulls.append(t)
        return pulls

    def _sorted_rows(self, scores, side, scoring, dims, keys=None):
        rows = [
            RankTuple(key=(keys[i] if keys else 0), scores=tuple(s))
            for i, s in enumerate(scores)
        ]
        if side == LEFT:
            return sorted(
                rows,
                key=lambda r: scoring(r.scores + (1.0,) * dims[1]),
                reverse=True,
            )
        return sorted(
            rows,
            key=lambda r: scoring((1.0,) * dims[0] + r.scores),
            reverse=True,
        )

    @given(
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
            min_size=1,
            max_size=8,
        ),
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False)),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_soundness_sum_score(self, left_scores, right_scores):
        scoring = SumScore()
        dims = (2, 1)
        left = self._sorted_rows(left_scores, LEFT, scoring, dims)
        right = self._sorted_rows(right_scores, RIGHT, scoring, dims)
        self._check_sound(left, right, scoring, dims)

    @given(
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
            min_size=1,
            max_size=6,
        ),
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_soundness_min_score(self, left_scores, right_scores):
        scoring = MinScore()
        dims = (2, 2)
        left = self._sorted_rows(left_scores, LEFT, scoring, dims)
        right = self._sorted_rows(right_scores, RIGHT, scoring, dims)
        self._check_sound(left, right, scoring, dims)


class TestPruningEquivalence:
    """Pruned covers must yield bit-identical bound values (DESIGN.md)."""

    @given(
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
            min_size=2,
            max_size=10,
        ),
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
            min_size=2,
            max_size=10,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_pruned_equals_unpruned(self, left_scores, right_scores):
        scoring = SumScore()
        dims = (2, 2)
        pruned = FRBound(prune_covers=True)
        literal = FRBound(prune_covers=False)
        pruned.bind(BoundContext(scoring, dims))
        literal.bind(BoundContext(scoring, dims))
        left = sorted(left_scores, key=sum, reverse=True)
        right = sorted(right_scores, key=sum, reverse=True)
        for i in range(min(len(left), len(right))):
            for side, scores in ((LEFT, left[i]), (RIGHT, right[i])):
                t_pruned = pruned.update(side, RankTuple(key=0, scores=scores))
                t_literal = literal.update(side, RankTuple(key=0, scores=scores))
                assert t_pruned == pytest.approx(t_literal, abs=1e-12)
