"""End-to-end distributed-trace reconstruction from a single JSONL stream.

The tentpole acceptance test: a sharded query served through the full
stack (client -> server -> scheduler -> sharded engine -> worker
processes) must leave behind one *connected* trace tree — every span,
including worker quanta shipped back over process pipes and quanta
replayed after a worker respawn, parents transitively back to the single
request root span minted by the client.
"""

import contextlib
import threading

import pytest

from repro.obs import JsonlExporter, Observability, TraceTree, read_events
from repro.resilience import FaultPlan, ResilienceConfig
from repro.service import (
    QueryService,
    QuerySpec,
    RankJoinServer,
    ServiceClient,
    ServiceError,
)

from tests.service.conftest import make_instance

INSTANCE = make_instance(seed=0, n=200, num_keys=20, k=20)
RELATIONS = {"lineitem": INSTANCE.left, "orders": INSTANCE.right}


@contextlib.contextmanager
def traced_server(tmp_path, **server_kwargs):
    """A live server whose observability pipeline writes to a JSONL file."""
    path = tmp_path / "events.jsonl"
    obs = Observability(enabled=True, exporters=[JsonlExporter(path)])
    service = QueryService(quantum=16, obs=obs)
    server = RankJoinServer(service, RELATIONS, port=0, **server_kwargs)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(timeout=10.0), "server never became ready"
    try:
        yield server, path
    finally:
        if thread.is_alive():
            with contextlib.suppress(OSError, ConnectionError, ServiceError):
                with ServiceClient(server.host, server.port) as client:
                    client.shutdown()
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "server thread failed to shut down"
        obs.close()


def _span_names(tree: TraceTree, trace_id: str) -> set:
    return {r["name"] for r in tree.spans_of(trace_id)}


class TestServerTraceTree:
    def test_process_backend_query_yields_one_connected_tree(self, tmp_path):
        with traced_server(tmp_path) as (server, path):
            with ServiceClient(server.host, server.port) as client:
                final = client.run(
                    left="lineitem", right="orders", k=10,
                    shards=4, backend="process",
                )
                trace_id = client.last_trace
        assert final["state"] == "DONE"

        tree = TraceTree.from_events(read_events(path))
        # One request => one trace, rooted at the client's submission.
        assert tree.trace_ids() == [trace_id]
        assert tree.connected(trace_id), tree.orphans(trace_id)
        (root,) = tree.roots(trace_id)
        assert root["name"] == "request"

        names = _span_names(tree, trace_id)
        assert {"request", "session", "exec", "shard", "quantum"} <= names

        # Every worker quantum (shipped over a process pipe) chains back
        # to the request root through its shard and exec spans.
        quanta = tree.named("quantum", trace_id=trace_id)
        assert len(quanta) >= 4
        for quantum in quanta:
            chain = [r["name"] for r in tree.path_to_root(quantum["span"])]
            assert chain[0] == "quantum"
            assert chain[-1] == "request"
            assert "shard" in chain and "exec" in chain

        # Per-shard attribution survives the relay.
        shards_seen = {q["shard"] for q in quanta}
        assert shards_seen == {0, 1, 2, 3}

    def test_two_requests_yield_two_disjoint_trees(self, tmp_path):
        with traced_server(tmp_path) as (server, path):
            traces = []
            with ServiceClient(server.host, server.port) as client:
                for k in (5, 7):
                    client.run(
                        left="lineitem", right="orders", k=k,
                        shards=2, backend="thread",
                    )
                    traces.append(client.last_trace)
        tree = TraceTree.from_events(read_events(path))
        assert set(tree.trace_ids()) == set(traces)
        for trace_id in traces:
            assert tree.connected(trace_id), tree.orphans(trace_id)


class TestRecoveryTraceTree:
    def test_respawned_worker_replays_into_the_same_tree(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs = Observability(enabled=True, exporters=[JsonlExporter(path)])
        service = QueryService(quantum=16, obs=obs)
        plan = FaultPlan.single("worker-kill", shard=0, at_pull=20)
        spec = QuerySpec(
            relations=(INSTANCE.left, INSTANCE.right),
            k=10,
            operator="HRJN",
            shards=2,
            exec_backend="thread",
            resilience=ResilienceConfig(plan=plan, seed=1),
        )
        results = service.run_query(spec)
        obs.close()
        assert len(results) == 10

        tree = TraceTree.from_events(read_events(path))
        (trace_id,) = tree.trace_ids()
        assert tree.connected(trace_id), tree.orphans(trace_id)

        # The kill shows up as a respawn span under the killed shard's
        # context, still inside the one request trace.
        respawns = tree.named("respawn", trace_id=trace_id)
        assert len(respawns) == 1
        assert respawns[0]["shard"] == 0
        chain = [r["name"] for r in tree.path_to_root(respawns[0]["span"])]
        assert chain[-1] == "request"

        # The replayed quanta are flagged but parent into the same tree.
        replayed = [
            q for q in tree.named("quantum", trace_id=trace_id)
            if q.get("replay")
        ]
        assert replayed
        for quantum in replayed:
            chain = [r["name"] for r in tree.path_to_root(quantum["span"])]
            assert chain[-1] == "request"


@pytest.mark.chaos
class TestServerRecoveryTraceTree:
    def test_server_side_worker_kill_stays_connected(self, tmp_path):
        plan = FaultPlan.single("worker-kill", shard=0, at_pull=20)
        resilience = ResilienceConfig(plan=plan, seed=1)
        with traced_server(tmp_path, resilience=resilience) as (server, path):
            with ServiceClient(server.host, server.port) as client:
                final = client.run(
                    left="lineitem", right="orders", k=10,
                    operator="HRJN", shards=2, backend="process",
                )
                trace_id = client.last_trace
        assert final["state"] == "DONE"
        tree = TraceTree.from_events(read_events(path))
        assert tree.connected(trace_id), tree.orphans(trace_id)
        assert tree.named("respawn", trace_id=trace_id)
