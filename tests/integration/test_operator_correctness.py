"""Integration: every operator returns the exact top-K on random instances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import naive_top_k, top_scores
from repro.core.operators import OPERATORS, make_operator
from repro.core.scoring import MinScore, SumScore, WeightedSum
from repro.data.workload import random_instance
from repro.relation.relation import RankJoinInstance, Relation
from repro.core.tuples import RankTuple

ALL = sorted(OPERATORS)


def oracle(instance, k):
    return top_scores(
        naive_top_k(instance.left.tuples, instance.right.tuples, instance.scoring, k)
    )


@pytest.mark.parametrize("operator", ALL)
class TestAgainstOracle:
    def test_small_dense_instance(self, operator):
        instance = random_instance(
            n_left=300, n_right=300, e_left=2, e_right=2,
            num_keys=30, k=10, cut=1.0, seed=1,
        )
        op = make_operator(operator, instance)
        assert top_scores(op.top_k(10)) == pytest.approx(oracle(instance, 10))

    def test_with_score_cut(self, operator):
        instance = random_instance(
            n_left=400, n_right=400, e_left=2, e_right=2,
            num_keys=40, k=15, cut=0.4, seed=2,
        )
        op = make_operator(operator, instance)
        assert top_scores(op.top_k(15)) == pytest.approx(oracle(instance, 15))

    def test_asymmetric_dimensions(self, operator):
        instance = random_instance(
            n_left=200, n_right=200, e_left=3, e_right=1,
            num_keys=20, k=8, cut=0.7, seed=3,
        )
        op = make_operator(operator, instance)
        assert top_scores(op.top_k(8)) == pytest.approx(oracle(instance, 8))

    def test_sparse_join(self, operator):
        instance = random_instance(
            n_left=300, n_right=300, e_left=2, e_right=2,
            num_keys=500, k=5, cut=1.0, seed=4,
        )
        op = make_operator(operator, instance)
        assert top_scores(op.top_k(5)) == pytest.approx(oracle(instance, 5))

    def test_k_exceeding_join_size(self, operator):
        instance = random_instance(
            n_left=30, n_right=30, e_left=1, e_right=1,
            num_keys=100, k=5, cut=1.0, seed=5,
        )
        op = make_operator(operator, instance)
        results = op.top_k(10_000)
        assert top_scores(results) == pytest.approx(
            oracle(instance, len(results))
        )
        assert len(results) == instance.join_size()

    def test_min_scoring_function(self, operator):
        instance = random_instance(
            n_left=150, n_right=150, e_left=2, e_right=2,
            num_keys=15, k=10, cut=1.0, seed=6, scoring=MinScore(),
        )
        op = make_operator(operator, instance)
        assert top_scores(op.top_k(10)) == pytest.approx(oracle(instance, 10))

    def test_weighted_scoring_function(self, operator):
        instance = random_instance(
            n_left=150, n_right=150, e_left=2, e_right=2,
            num_keys=15, k=10, cut=1.0, seed=7,
            scoring=WeightedSum([0.4, 0.1, 0.3, 0.2]),
        )
        op = make_operator(operator, instance)
        assert top_scores(op.top_k(10)) == pytest.approx(oracle(instance, 10))


@pytest.mark.parametrize("operator", ["HRJN*", "FRPA", "a-FRPA"])
class TestHypothesisInstances:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_random_tiny_instances(self, operator, data):
        n_left = data.draw(st.integers(1, 30), label="n_left")
        n_right = data.draw(st.integers(1, 30), label="n_right")
        keys_left = data.draw(
            st.lists(st.integers(0, 5), min_size=n_left, max_size=n_left)
        )
        keys_right = data.draw(
            st.lists(st.integers(0, 5), min_size=n_right, max_size=n_right)
        )
        unit = st.floats(0, 1, allow_nan=False)
        scores_left = data.draw(
            st.lists(st.tuples(unit, unit), min_size=n_left, max_size=n_left)
        )
        scores_right = data.draw(
            st.lists(st.tuples(unit,), min_size=n_right, max_size=n_right)
        )
        left = Relation(
            "L", [RankTuple(key=k, scores=s) for k, s in zip(keys_left, scores_left)]
        )
        right = Relation(
            "R", [RankTuple(key=k, scores=s) for k, s in zip(keys_right, scores_right)]
        )
        instance = RankJoinInstance(left, right, SumScore(), k=1)
        op = make_operator(operator, instance)
        results = op.top_k(5)
        expected = top_scores(
            naive_top_k(left.tuples, right.tuples, SumScore(), 5)
        )
        assert top_scores(results) == pytest.approx(expected)
