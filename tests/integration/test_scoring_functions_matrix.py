"""Cross-product matrix: every operator x every scoring function.

The paper assumes only monotonicity of S; the implementation should too.
This suite runs the full operator zoo against each scoring function on a
shared instance and checks the answers against the naive oracle — catching
any additive-only assumption that leaked into a general code path.
"""

import pytest

from repro.core.naive import naive_top_k, top_scores
from repro.core.operators import OPERATORS, make_operator
from repro.core.scoring import (
    AverageScore,
    CallableScore,
    MinScore,
    ProductScore,
    SumScore,
    WeightedSum,
)
from repro.data.workload import random_instance

SCORINGS = [
    ("sum", SumScore()),
    ("weighted", WeightedSum([0.4, 0.1, 0.3, 0.2])),
    ("average", AverageScore()),
    ("min", MinScore()),
    ("product", ProductScore()),
    ("max", CallableScore(lambda v: max(v), name="max")),
]


@pytest.mark.parametrize("operator", sorted(OPERATORS))
@pytest.mark.parametrize("label,scoring", SCORINGS)
def test_operator_scoring_matrix(operator, label, scoring):
    instance = random_instance(
        n_left=120, n_right=120, e_left=2, e_right=2,
        num_keys=12, k=8, cut=0.6, seed=11, scoring=scoring,
    )
    op = make_operator(operator, instance)
    got = top_scores(op.top_k(8))
    expected = top_scores(
        naive_top_k(instance.left.tuples, instance.right.tuples, scoring, 8)
    )
    assert got == pytest.approx(expected), f"{operator} with {label} scoring"


@pytest.mark.parametrize("label,scoring", SCORINGS)
def test_depth_sanity_across_scorings(label, scoring):
    """Bound-aware operators never read more than the corner-bound one
    would need at worst (full input)."""
    instance = random_instance(
        n_left=150, n_right=150, e_left=2, e_right=2,
        num_keys=15, k=5, cut=0.6, seed=12, scoring=scoring,
    )
    total = len(instance.left) + len(instance.right)
    for operator in ("FRPA", "a-FRPA"):
        op = make_operator(operator, instance)
        op.top_k(5)
        assert op.depths().sum_depths <= total
