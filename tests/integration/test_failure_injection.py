"""Failure injection: operators must fail loudly and cleanly, never wrongly."""

import pytest

from repro.core.bounds import CornerBound, BoundContext, LEFT
from repro.core.frstar_bound import FRStarBound
from repro.core.operators import frpa, hrjn_star, make_operator
from repro.core.pbrj import PBRJ
from repro.core.pulling import RoundRobin
from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.data.workload import random_instance
from repro.errors import NotSortedError, PullBudgetExceeded, TimeBudgetExceeded
from repro.relation.sources import SortedScan, StreamSource, TupleSource, VerifyingSource


class ExplodingSource(TupleSource):
    """Delivers ``good`` tuples, then raises."""

    def __init__(self, tuples, explode_after):
        super().__init__(tuples[0].dimension if tuples else 0)
        self._tuples = tuples
        self._served = 0
        self._explode_after = explode_after

    def has_next(self):
        return self._served < len(self._tuples)

    def _advance(self):
        if self._served >= self._explode_after:
            raise IOError("disk on fire")
        tup = self._tuples[self._served]
        self._served += 1
        return tup


def sorted_rows(pairs):
    rows = [RankTuple(key=k, scores=(s,)) for k, s in pairs]
    return sorted(rows, key=lambda t: t.scores[0], reverse=True)


class TestSourceFailures:
    def test_io_error_propagates(self):
        left = ExplodingSource(sorted_rows([(i, 1 - i / 10) for i in range(8)]), 2)
        right = SortedScan(sorted_rows([(i, 1 - i / 10) for i in range(8)]))
        operator = PBRJ(left, right, SumScore(), CornerBound(), RoundRobin())
        with pytest.raises(IOError):
            operator.top_k(8)

    def test_partial_state_remains_inspectable(self):
        left = ExplodingSource(sorted_rows([(i, 1 - i / 10) for i in range(8)]), 2)
        right = SortedScan(sorted_rows([(i, 1 - i / 10) for i in range(8)]))
        operator = PBRJ(left, right, SumScore(), CornerBound(), RoundRobin())
        with pytest.raises(IOError):
            operator.top_k(8)
        # Depth counters reflect the accesses attempted (the failing access
        # was charged before it raised — like a failed disk read).
        assert operator.depths().left == 3
        assert operator.pulls >= 2

    def test_unsorted_stream_detected_by_verifier(self):
        bad = [RankTuple(key=0, scores=(0.3,)), RankTuple(key=1, scores=(0.9,))]
        left = VerifyingSource(
            StreamSource(iter(bad), dimension=1),
            score_bound=lambda t: t.scores[0] + 1,
        )
        right = SortedScan(sorted_rows([(0, 0.5), (1, 0.4)]))
        operator = PBRJ(left, right, SumScore(), CornerBound(), RoundRobin())
        with pytest.raises(NotSortedError):
            operator.top_k(5)


class TestBudgetFailures:
    @pytest.fixture
    def instance(self):
        return random_instance(
            n_left=400, n_right=400, e_left=1, e_right=1,
            num_keys=1000, k=1, cut=1.0, seed=0,
        )

    def test_pull_budget_raises_not_wrong_answer(self, instance):
        operator = hrjn_star(instance, max_pulls=5)
        with pytest.raises(PullBudgetExceeded) as excinfo:
            operator.top_k(1)
        assert excinfo.value.pulls == 6
        assert excinfo.value.budget == 5

    def test_time_budget_raises(self, instance):
        operator = frpa(instance, max_seconds=0.0)
        with pytest.raises(TimeBudgetExceeded):
            operator.top_k(1)

    def test_budget_not_triggered_when_cheap(self, instance):
        operator = hrjn_star(instance, max_pulls=10_000, max_seconds=60.0)
        operator.top_k(1)  # must not raise


class TestMisuse:
    def test_bound_update_requires_bind(self):
        bound = FRStarBound()
        with pytest.raises(AssertionError):
            bound.update(LEFT, RankTuple(key=0, scores=(0.5, 0.5)))

    def test_unknown_operator_name(self):
        instance = random_instance(
            n_left=10, n_right=10, e_left=1, e_right=1,
            num_keys=2, k=1, seed=0,
        )
        with pytest.raises(KeyError):
            make_operator("NOPE", instance)

    def test_mismatched_bound_dimensions_fail_fast(self):
        bound = CornerBound()
        bound.bind(BoundContext(SumScore(), (2, 2)))
        # A 1-d tuple on a 2-d side: the scoring function receives a
        # 3-coordinate vector where SumScore is lenient, so assert only
        # that richer scorers reject it.
        from repro.core.scoring import WeightedSum

        strict = CornerBound()
        strict.bind(BoundContext(WeightedSum([0.5, 0.5, 0.5, 0.5]), (2, 2)))
        with pytest.raises(ValueError):
            strict.update(LEFT, RankTuple(key=0, scores=(0.5,)))
