"""Randomized pipeline correctness: 3-way chains vs brute force."""

import itertools

import numpy as np
import pytest

from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.plan.pipeline import Pipeline
from repro.relation.relation import Relation


def random_chain(seed, sizes=(40, 40, 40), keys=6):
    rng = np.random.default_rng(seed)

    def rel(name, n, left_attr, right_attr):
        rows = []
        for index in range(n):
            payload = {}
            if left_attr:
                payload[left_attr] = int(rng.integers(0, keys))
            if right_attr:
                payload[right_attr] = int(rng.integers(0, keys))
            key = payload[left_attr or right_attr]
            rows.append(
                RankTuple(key=key, scores=(float(rng.random()),), payload=payload)
            )
        return Relation(name, rows)

    return (
        [
            rel("A", sizes[0], None, "p"),
            rel("B", sizes[1], "p", "q"),
            rel("C", sizes[2], "q", None),
        ],
        ["p", "q"],
    )


def brute_force(relations, attrs, k):
    scoring = SumScore()
    results = []
    for combo in itertools.product(*[rel.tuples for rel in relations]):
        if all(
            combo[i].payload[attr] == combo[i + 1].payload[attr]
            for i, attr in enumerate(attrs)
        ):
            results.append(scoring(tuple(s for t in combo for s in t.scores)))
    return sorted(results, reverse=True)[:k]


def rekeyed(relations, attrs):
    """Key each relation on its chain attribute toward the previous one."""
    out = []
    for index, rel in enumerate(relations):
        attr = attrs[index - 1] if index > 0 else attrs[0]
        out.append(
            Relation(
                rel.name,
                [
                    RankTuple(
                        key=t.payload[attr], scores=t.scores, payload=t.payload
                    )
                    for t in rel.tuples
                ],
            )
        )
    return out


@pytest.mark.parametrize("operator", ["HRJN*", "FRPA", "a-FRPA"])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
class TestRandomPipelines:
    def test_three_way_top10(self, operator, seed):
        relations, attrs = random_chain(seed)
        # Key relation i on the attribute shared with relation i-1 (the
        # join performed when it enters the plan).
        keyed = rekeyed(relations, attrs)
        pipeline = Pipeline(keyed, [attrs[1]], operator=operator)
        got = [r.score for r in pipeline.top_k(10)]
        expected = brute_force(relations, attrs, 10)[: len(got)]
        assert got == pytest.approx(expected)
        assert len(got) == len(brute_force(relations, attrs, 10))


@pytest.mark.parametrize("seed", [0, 1])
class TestPipelineVsMultiway:
    def test_same_answers(self, seed):
        from repro.core.multiway import multiway_rank_join

        relations, attrs = random_chain(seed, sizes=(30, 30, 30))
        keyed = rekeyed(relations, attrs)
        pipeline = Pipeline(keyed, [attrs[1]], operator="FRPA")
        pipeline_scores = [r.score for r in pipeline.top_k(8)]
        multiway = multiway_rank_join(relations, attrs, SumScore())
        multiway_scores = [r.score for r in multiway.top_k(8)]
        assert pipeline_scores == pytest.approx(multiway_scores)
