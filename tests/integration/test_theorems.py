"""Integration tests for the paper's analytical results.

* Theorem 4.2: ``depth(FRPA, I, i) <= depth(PBRJ_FR^RR, I, i)`` on *both*
  inputs, for any instance.
* Tightness (Theorem 4.1 / corollary): the FR bound is never larger than
  the corner bound, and all FR-family bounds dominate the true score of
  every undiscovered result.
* a-FRPA's sandwich: its depths lie between FRPA's (tight bound) and a
  corner-bound operator's with the same pulling strategy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import a_frpa, frpa, hrjn_star, make_operator, pbrj_fr_rr
from repro.data.workload import random_instance

INSTANCE_GRID = [
    dict(n_left=300, n_right=300, e_left=2, e_right=2, num_keys=30, k=10,
         cut=0.5, seed=11),
    dict(n_left=400, n_right=200, e_left=1, e_right=1, num_keys=25, k=20,
         cut=0.25, seed=12),
    dict(n_left=250, n_right=250, e_left=2, e_right=1, num_keys=40, k=5,
         cut=0.75, seed=13),
    dict(n_left=200, n_right=200, e_left=3, e_right=3, num_keys=20, k=10,
         cut=0.5, seed=14),
    dict(n_left=500, n_right=100, e_left=2, e_right=2, num_keys=50, k=15,
         cut=1.0, seed=15),
]


@pytest.mark.parametrize("spec", INSTANCE_GRID)
class TestTheorem42:
    def test_frpa_never_deeper_than_pbrj_fr_rr(self, spec):
        instance = random_instance(**spec)
        a = frpa(instance)
        b = pbrj_fr_rr(instance)
        a.top_k(spec["k"])
        b.top_k(spec["k"])
        assert a.depths().left <= b.depths().left
        assert a.depths().right <= b.depths().right

    def test_frpa_sum_depths_never_worse(self, spec):
        instance = random_instance(**spec)
        a = frpa(instance)
        b = pbrj_fr_rr(instance)
        a.top_k(spec["k"])
        b.top_k(spec["k"])
        assert a.depths().sum_depths <= b.depths().sum_depths


@pytest.mark.parametrize("spec", INSTANCE_GRID)
class TestBoundDominance:
    def test_afr_between_frpa_and_hrjn_star(self, spec):
        """aFR is FR* loosened toward the corner bound, so its depths are
        sandwiched between FRPA's and HRJN*'s (all use PA pulling)."""
        instance = random_instance(**spec)
        tight = frpa(instance)
        adaptive = a_frpa(instance, max_cr_size=4, resolution=8)
        corner = hrjn_star(instance)
        tight.top_k(spec["k"])
        adaptive.top_k(spec["k"])
        corner.top_k(spec["k"])
        assert (
            tight.depths().sum_depths
            <= adaptive.depths().sum_depths
            <= corner.depths().sum_depths
        )

    def test_large_budget_afr_equals_frpa(self, spec):
        instance = random_instance(**spec)
        tight = frpa(instance)
        adaptive = a_frpa(instance, max_cr_size=10_000)
        tight_scores = [r.score for r in tight.top_k(spec["k"])]
        adaptive_scores = [r.score for r in adaptive.top_k(spec["k"])]
        assert tight_scores == pytest.approx(adaptive_scores)
        assert tight.depths() == adaptive.depths()


class TestInstanceOptimalityRatio:
    """Empirical sanity check of the optimality ratio.

    The true optimality statement quantifies over all algorithms; here we
    check a practical surrogate on a family of random instances: FRPA's
    sumDepths never exceeds 2x the best sumDepths among all implemented
    operators, plus a constant.
    """

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_ratio_against_implemented_competitors(self, seed):
        instance = random_instance(
            n_left=200, n_right=200, e_left=2, e_right=2,
            num_keys=20, k=5, cut=0.5, seed=seed,
        )
        depths = {}
        for name in ["HRJN*", "HRJN", "PBRJ_FR^RR", "FRPA", "a-FRPA"]:
            op = make_operator(name, instance)
            op.top_k(5)
            depths[name] = op.depths().sum_depths
        best = min(depths.values())
        assert depths["FRPA"] <= 2 * best + 2
