"""Tests for the TA / NRA ranked-list aggregation substrate."""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.lists import RankedList
from repro.aggregation.ta import no_random_access, threshold_algorithm
from repro.core.scoring import MinScore, SumScore


def brute_force(lists, scoring, k):
    """Exact top-k over the union of graded objects."""
    objects = set()
    for ranked in lists:
        for entry in ranked._entries:
            objects.add(entry.obj)
    scored = []
    for obj in objects:
        grades = tuple(
            ranked.peek_grade(obj) or 0.0 for ranked in lists
        )
        scored.append((obj, scoring(grades)))
    return heapq.nlargest(k, scored, key=lambda item: item[1])


def make_lists(rng, n_objects, m):
    grades = rng.random((n_objects, m))
    return [
        RankedList(
            [(obj, float(grades[obj, j])) for obj in range(n_objects)],
            name=f"L{j}",
        )
        for j in range(m)
    ]


class TestRankedList:
    def test_sorted_access_order(self):
        ranked = RankedList([("a", 0.2), ("b", 0.9), ("c", 0.5)])
        grades = [ranked.next().grade for _ in range(3)]
        assert grades == [0.9, 0.5, 0.2]
        assert ranked.next() is None

    def test_duplicate_objects_rejected(self):
        with pytest.raises(ValueError):
            RankedList([("a", 0.2), ("a", 0.3)])

    def test_access_counters(self):
        ranked = RankedList([("a", 0.2), ("b", 0.9)])
        ranked.next()
        ranked.grade_of("a")
        ranked.grade_of("missing")
        assert ranked.sorted_accesses == 1
        assert ranked.random_accesses == 2

    def test_missing_object_grades_zero(self):
        ranked = RankedList([("a", 0.2)])
        assert ranked.grade_of("zzz") == 0.0

    def test_last_grade_tracks_frontier(self):
        ranked = RankedList([("a", 0.9), ("b", 0.4)])
        assert ranked.last_grade == 1.0
        ranked.next()
        assert ranked.last_grade == 0.9

    def test_reset(self):
        ranked = RankedList([("a", 0.9)])
        ranked.next()
        ranked.reset()
        assert not ranked.exhausted
        assert ranked.sorted_accesses == 0


@pytest.mark.parametrize("algorithm", [threshold_algorithm, no_random_access])
class TestCorrectness:
    def test_top1_simple(self, algorithm):
        lists = [
            RankedList([("a", 0.9), ("b", 0.5)]),
            RankedList([("a", 0.1), ("b", 0.8)]),
        ]
        result = algorithm(lists, SumScore(), 1)
        assert result.top[0][0] == "b"
        assert result.top[0][1] == pytest.approx(1.3)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_bruteforce_sum(self, algorithm, seed):
        rng = np.random.default_rng(seed)
        lists = make_lists(rng, 60, 3)
        expected = brute_force(lists, SumScore(), 5)
        result = algorithm(lists, SumScore(), 5)
        got_scores = sorted((s for __, s in result.top), reverse=True)
        exp_scores = sorted((s for __, s in expected), reverse=True)
        assert got_scores == pytest.approx(exp_scores)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_bruteforce_min(self, algorithm, seed):
        rng = np.random.default_rng(seed)
        lists = make_lists(rng, 40, 2)
        expected = brute_force(lists, MinScore(), 3)
        result = algorithm(lists, MinScore(), 3)
        got_scores = sorted((s for __, s in result.top), reverse=True)
        exp_scores = sorted((s for __, s in expected), reverse=True)
        assert got_scores == pytest.approx(exp_scores)

    def test_k_larger_than_objects(self, algorithm):
        lists = [RankedList([("a", 0.9), ("b", 0.5)])]
        result = algorithm(lists, SumScore(), 10)
        assert len(result.top) == 2

    def test_validation(self, algorithm):
        with pytest.raises(ValueError):
            algorithm([], SumScore(), 1)
        with pytest.raises(ValueError):
            algorithm([RankedList([("a", 0.5)])], SumScore(), 0)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_instances(self, algorithm, data):
        n = data.draw(st.integers(1, 25), label="n")
        m = data.draw(st.integers(1, 3), label="m")
        k = data.draw(st.integers(1, 5), label="k")
        grades = data.draw(
            st.lists(
                st.tuples(*([st.floats(0, 1, allow_nan=False)] * m)),
                min_size=n, max_size=n,
            )
        )
        lists = [
            RankedList([(obj, grades[obj][j]) for obj in range(n)])
            for j in range(m)
        ]
        expected = brute_force(lists, SumScore(), k)
        result = algorithm(lists, SumScore(), k)
        got_scores = sorted((s for __, s in result.top), reverse=True)
        exp_scores = sorted((s for __, s in expected), reverse=True)
        assert got_scores == pytest.approx(exp_scores)


class TestAccessBehaviour:
    def test_ta_stops_early_on_separated_top(self):
        # One object dominates everywhere: TA should stop long before
        # scanning the lists.
        n = 500
        entries = [("top", 1.0)] + [(i, 0.5 - i / (4 * n)) for i in range(n)]
        lists = [RankedList(entries), RankedList(entries)]
        result = threshold_algorithm(lists, SumScore(), 1)
        assert result.top[0][0] == "top"
        assert result.sorted_accesses < 50

    def test_nra_uses_no_random_access(self):
        rng = np.random.default_rng(0)
        lists = make_lists(rng, 50, 2)
        result = no_random_access(lists, SumScore(), 3)
        assert result.random_accesses == 0

    def test_ta_uses_random_access(self):
        rng = np.random.default_rng(0)
        lists = make_lists(rng, 50, 2)
        result = threshold_algorithm(lists, SumScore(), 3)
        assert result.random_accesses > 0

    def test_total_accesses_sum(self):
        rng = np.random.default_rng(1)
        lists = make_lists(rng, 30, 2)
        result = threshold_algorithm(lists, SumScore(), 2)
        assert result.total_accesses == (
            result.sorted_accesses + result.random_accesses
        )

    def test_nra_check_every_batches(self):
        rng = np.random.default_rng(2)
        lists_a = make_lists(rng, 50, 2)
        rng = np.random.default_rng(2)
        lists_b = make_lists(rng, 50, 2)
        every = no_random_access(lists_a, SumScore(), 3, check_every=1)
        batched = no_random_access(lists_b, SumScore(), 3, check_every=5)
        # Batched checking can only do more sorted accesses, never fewer.
        assert batched.sorted_accesses >= every.sorted_accesses
        got = sorted(s for __, s in batched.top)
        expected = sorted(s for __, s in every.top)
        assert got == pytest.approx(expected)
