"""Tests for Prometheus text exposition and the computed SLO gauges."""

from repro.obs import (
    MetricRegistry,
    compute_slos,
    render_prometheus,
    set_slo_gauges,
    shard_pull_counts,
)


def _registry() -> MetricRegistry:
    return MetricRegistry(enabled=True)


class TestRenderPrometheus:
    def test_counter_lines(self):
        registry = _registry()
        registry.counter("service_pulls_total", shard="0").inc(7)
        text = render_prometheus(registry)
        assert "# TYPE service_pulls_total counter" in text
        assert 'service_pulls_total{shard="0"} 7' in text

    def test_gauge_lines_and_none_skipped(self):
        registry = _registry()
        registry.gauge("service_queue_depth").set(3)
        registry.gauge("service_unset")
        text = render_prometheus(registry)
        assert "# TYPE service_queue_depth gauge" in text
        assert "service_queue_depth 3" in text
        # An unset gauge keeps its TYPE header but emits no sample line.
        assert "\nservice_unset " not in text

    def test_histogram_cumulative_buckets(self):
        registry = _registry()
        histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = render_prometheus(registry)
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        # Cumulative: the le="1.0" bucket includes the 0.05 observation.
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_count 3" in text
        assert "latency_seconds_sum 5.55" in text

    def test_type_line_emitted_once_per_name(self):
        registry = _registry()
        registry.counter("pulls_total", shard="0").inc()
        registry.counter("pulls_total", shard="1").inc()
        text = render_prometheus(registry)
        assert text.count("# TYPE pulls_total counter") == 1

    def test_label_escaping(self):
        registry = _registry()
        registry.counter("odd_total", label='a"b\\c').inc()
        assert '{label="a\\"b\\\\c"}' in render_prometheus(registry)

    def test_ends_with_newline(self):
        registry = _registry()
        registry.counter("x_total").inc()
        assert render_prometheus(registry).endswith("\n")


class TestComputeSlos:
    def test_empty_registry(self):
        slos = compute_slos(_registry())
        assert slos["session_seconds"] == {"p50": None, "p95": None, "p99": None}
        assert slos["sessions_finished"] == 0
        assert slos["cache_hit_ratio"] is None

    def test_percentiles_from_session_histogram(self):
        registry = _registry()
        histogram = registry.histogram(
            "service_session_seconds", buckets=(0.1, 1.0), policy="round-robin"
        )
        for _ in range(100):
            histogram.observe(0.05)
        slos = compute_slos(registry)
        assert slos["sessions_finished"] == 100
        assert 0.0 < slos["session_seconds"]["p50"] <= 0.1
        assert 0.0 < slos["session_seconds"]["p99"] <= 0.1

    def test_cache_hit_ratio(self):
        registry = _registry()
        registry.counter("service_cache_hits_total").inc(3)
        registry.counter("service_cache_misses_total").inc(1)
        assert compute_slos(registry)["cache_hit_ratio"] == 0.75

    def test_queue_depth_gauge(self):
        registry = _registry()
        registry.gauge("service_queue_depth").set(4)
        assert compute_slos(registry)["queue_depth"] == 4


class TestSetSloGauges:
    def test_publishes_gauges(self):
        registry = _registry()
        registry.histogram("service_session_seconds", buckets=(1.0,)).observe(0.5)
        registry.counter("service_cache_hits_total").inc()
        registry.counter("service_cache_misses_total").inc()
        slos = set_slo_gauges(registry)
        text = render_prometheus(registry)
        assert 'slo_session_seconds{quantile="0.5"}' in text
        assert 'slo_session_seconds{quantile="0.99"}' in text
        assert "slo_cache_hit_ratio 0.5" in text
        assert slos["cache_hit_ratio"] == 0.5


class TestShardPullCounts:
    def test_sums_by_shard(self):
        registry = _registry()
        registry.counter("exec_shard_pulls_total", op="hrjn", shard="0").inc(10)
        registry.counter("exec_shard_pulls_total", op="hrjn", shard="1").inc(20)
        registry.counter("exec_shard_pulls_total", op="frpa", shard="1").inc(5)
        assert shard_pull_counts(registry) == {"0": 10, "1": 25}

    def test_empty(self):
        assert shard_pull_counts(_registry()) == {}
