"""Tests for the metric registry: counters, gauges, histogram bucketing."""

import pytest

from repro.obs.metrics import (
    NULL_METRIC,
    Histogram,
    MetricRegistry,
)


class TestCounter:
    def test_inc(self):
        registry = MetricRegistry()
        counter = registry.counter("pulls_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_labels_separate_series(self):
        registry = MetricRegistry()
        registry.counter("pulls_total", side="left").inc(3)
        registry.counter("pulls_total", side="right").inc(1)
        assert registry.value("pulls_total", side="left") == 3
        assert registry.value("pulls_total", side="right") == 1

    def test_same_labels_share_handle(self):
        registry = MetricRegistry()
        a = registry.counter("x", op="FRPA")
        b = registry.counter("x", op="FRPA")
        assert a is b

    def test_label_order_irrelevant(self):
        registry = MetricRegistry()
        a = registry.counter("x", op="A", side="left")
        b = registry.counter("x", side="left", op="A")
        assert a is b


class TestGauge:
    def test_set_tracks_last_and_max(self):
        registry = MetricRegistry()
        gauge = registry.gauge("heap")
        gauge.set(5)
        gauge.set(12)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max == 12


class TestHistogram:
    def test_bucketing_le_semantics(self):
        hist = Histogram(boundaries=(1, 10, 100))
        for value in (0, 1, 5, 10, 11, 1000):
            hist.observe(value)
        # counts: <=1, <=10, <=100, overflow
        assert hist.counts == [2, 2, 1, 1]
        assert hist.count == 6
        assert hist.sum == 1027

    def test_bucket_pairs_include_overflow(self):
        hist = Histogram(boundaries=(1, 2))
        hist.observe(99)
        pairs = hist.bucket_pairs()
        assert pairs[-1] == (None, 1)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=(10, 1))

    def test_registry_histogram(self):
        registry = MetricRegistry()
        hist = registry.histogram("cover_size", buckets=(2, 4), side="left")
        hist.observe(3)
        assert hist.counts == [0, 1, 0]


class TestDisabledRegistry:
    def test_returns_null_metric(self):
        registry = MetricRegistry(enabled=False)
        assert registry.counter("x") is NULL_METRIC
        assert registry.gauge("y") is NULL_METRIC
        assert registry.histogram("z") is NULL_METRIC

    def test_null_metric_accepts_updates(self):
        NULL_METRIC.inc()
        NULL_METRIC.set(3)
        NULL_METRIC.observe(1.5)
        assert NULL_METRIC.value == 0

    def test_disabled_registry_snapshot_empty(self):
        registry = MetricRegistry(enabled=False)
        registry.counter("x").inc()
        assert registry.snapshot() == []


class TestSnapshot:
    def test_snapshot_records(self):
        registry = MetricRegistry()
        registry.counter("pulls_total", side="left").inc(2)
        registry.gauge("heap").set(7)
        registry.histogram("sizes", buckets=(1, 2)).observe(2)
        records = {r["name"]: r for r in registry.snapshot()}
        assert records["pulls_total"]["value"] == 2
        assert records["pulls_total"]["labels"] == {"side": "left"}
        assert records["heap"]["value"] == 7
        assert records["sizes"]["count"] == 1
        assert records["sizes"]["buckets"][1] == {"le": 2, "count": 1}
