"""Tests for the metric registry: counters, gauges, histogram bucketing."""

import pytest

from repro.obs.metrics import (
    NULL_METRIC,
    Histogram,
    MetricRegistry,
)


class TestCounter:
    def test_inc(self):
        registry = MetricRegistry()
        counter = registry.counter("pulls_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_labels_separate_series(self):
        registry = MetricRegistry()
        registry.counter("pulls_total", side="left").inc(3)
        registry.counter("pulls_total", side="right").inc(1)
        assert registry.value("pulls_total", side="left") == 3
        assert registry.value("pulls_total", side="right") == 1

    def test_same_labels_share_handle(self):
        registry = MetricRegistry()
        a = registry.counter("x", op="FRPA")
        b = registry.counter("x", op="FRPA")
        assert a is b

    def test_label_order_irrelevant(self):
        registry = MetricRegistry()
        a = registry.counter("x", op="A", side="left")
        b = registry.counter("x", side="left", op="A")
        assert a is b


class TestGauge:
    def test_set_tracks_last_and_max(self):
        registry = MetricRegistry()
        gauge = registry.gauge("heap")
        gauge.set(5)
        gauge.set(12)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max == 12


class TestHistogram:
    def test_bucketing_le_semantics(self):
        hist = Histogram(boundaries=(1, 10, 100))
        for value in (0, 1, 5, 10, 11, 1000):
            hist.observe(value)
        # counts: <=1, <=10, <=100, overflow
        assert hist.counts == [2, 2, 1, 1]
        assert hist.count == 6
        assert hist.sum == 1027

    def test_bucket_pairs_include_overflow(self):
        hist = Histogram(boundaries=(1, 2))
        hist.observe(99)
        pairs = hist.bucket_pairs()
        assert pairs[-1] == (None, 1)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=(10, 1))

    def test_registry_histogram(self):
        registry = MetricRegistry()
        hist = registry.histogram("cover_size", buckets=(2, 4), side="left")
        hist.observe(3)
        assert hist.counts == [0, 1, 0]


class TestDisabledRegistry:
    def test_returns_null_metric(self):
        registry = MetricRegistry(enabled=False)
        assert registry.counter("x") is NULL_METRIC
        assert registry.gauge("y") is NULL_METRIC
        assert registry.histogram("z") is NULL_METRIC

    def test_null_metric_accepts_updates(self):
        NULL_METRIC.inc()
        NULL_METRIC.set(3)
        NULL_METRIC.observe(1.5)
        assert NULL_METRIC.value == 0

    def test_disabled_registry_snapshot_empty(self):
        registry = MetricRegistry(enabled=False)
        registry.counter("x").inc()
        assert registry.snapshot() == []


class TestSnapshot:
    def test_snapshot_records(self):
        registry = MetricRegistry()
        registry.counter("pulls_total", side="left").inc(2)
        registry.gauge("heap").set(7)
        registry.histogram("sizes", buckets=(1, 2)).observe(2)
        records = {r["name"]: r for r in registry.snapshot()}
        assert records["pulls_total"]["value"] == 2
        assert records["pulls_total"]["labels"] == {"side": "left"}
        assert records["heap"]["value"] == 7
        assert records["sizes"]["count"] == 1
        assert records["sizes"]["buckets"][1] == {"le": 2, "count": 1}


class TestHistogramPercentile:
    def _histogram(self) -> Histogram:
        registry = MetricRegistry()
        return registry.histogram("latency", buckets=(0.1, 1.0, 10.0))

    def test_empty_returns_none(self):
        assert self._histogram().percentile(0.5) is None

    def test_out_of_range_raises(self):
        histogram = self._histogram()
        with pytest.raises(ValueError):
            histogram.percentile(-0.1)
        with pytest.raises(ValueError):
            histogram.percentile(1.1)

    def test_single_observation_interpolates_within_bucket(self):
        histogram = self._histogram()
        histogram.observe(0.5)
        # One observation in (0.1, 1.0]; p50 lands halfway through it.
        value = histogram.percentile(0.5)
        assert 0.1 < value <= 1.0

    def test_q1_is_bucket_upper_bound(self):
        histogram = self._histogram()
        histogram.observe(0.05)
        histogram.observe(0.05)
        assert histogram.percentile(1.0) == pytest.approx(0.1)

    def test_uniform_fill_linear(self):
        histogram = self._histogram()
        for _ in range(10):
            histogram.observe(0.05)
        # All mass in [0, 0.1]; linear interpolation: p50 = 0.05.
        assert histogram.percentile(0.5) == pytest.approx(0.05)
        assert histogram.percentile(0.1) == pytest.approx(0.01)

    def test_boundary_between_buckets(self):
        histogram = self._histogram()
        histogram.observe(0.05)  # bucket (0, 0.1]
        histogram.observe(5.0)   # bucket (1.0, 10.0]
        # p50 exactly exhausts the first bucket.
        assert histogram.percentile(0.5) == pytest.approx(0.1)

    def test_overflow_clamps_to_last_boundary(self):
        histogram = self._histogram()
        histogram.observe(100.0)
        assert histogram.percentile(0.99) == pytest.approx(10.0)


class TestMergeSnapshot:
    def test_counter_delta_added(self):
        source = MetricRegistry()
        source.counter("pulls_total", shard="0").inc(5)
        target = MetricRegistry()
        target.counter("pulls_total", shard="0").inc(2)
        target.merge_snapshot(source.snapshot())
        assert target.counter("pulls_total", shard="0").value == 7

    def test_extra_labels_applied(self):
        source = MetricRegistry()
        source.counter("pulls_total").inc(3)
        target = MetricRegistry()
        target.merge_snapshot(source.snapshot(), shard="2")
        assert target.counter("pulls_total", shard="2").value == 3
        assert target.counter("pulls_total").value == 0

    def test_gauge_last_write_wins(self):
        source = MetricRegistry()
        source.gauge("depth").set(9)
        target = MetricRegistry()
        target.gauge("depth").set(1)
        target.merge_snapshot(source.snapshot())
        assert target.gauge("depth").value == 9

    def test_histogram_buckets_added(self):
        source = MetricRegistry()
        source.histogram("sizes", buckets=(1, 2)).observe(2)
        target = MetricRegistry()
        target.histogram("sizes", buckets=(1, 2)).observe(1)
        target.merge_snapshot(source.snapshot())
        merged = target.histogram("sizes", buckets=(1, 2))
        assert merged.count == 2
        assert merged.sum == 3

    def test_merge_into_empty_registry_creates_series(self):
        source = MetricRegistry()
        source.histogram("sizes", buckets=(1, 2)).observe(2)
        target = MetricRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.histogram("sizes", buckets=(1, 2)).count == 1
