"""Tests for trace contexts, span records, and tree reconstruction."""

from repro.obs import TraceContext, TraceTree, span_record


class TestTraceContext:
    def test_root_mints_fresh_ids(self):
        a = TraceContext.root()
        b = TraceContext.root()
        assert a.trace_id != b.trace_id
        assert a.parent_id is None

    def test_child_shares_trace_and_parents_under_span(self):
        root = TraceContext.root()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_grandchild_chains(self):
        root = TraceContext.root()
        grandchild = root.child().child()
        assert grandchild.trace_id == root.trace_id
        assert grandchild.parent_id != root.span_id

    def test_wire_round_trip(self):
        ctx = TraceContext.root().child()
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_wire_round_trip_root(self):
        ctx = TraceContext.root()
        wire = ctx.to_wire()
        assert "parent" not in wire
        assert TraceContext.from_wire(wire) == ctx

    def test_wire_survives_json(self):
        import json

        ctx = TraceContext.root().child()
        assert TraceContext.from_wire(json.loads(json.dumps(ctx.to_wire()))) == ctx


class TestSpanRecord:
    def test_basic_shape(self):
        ctx = TraceContext.root()
        record = span_record(ctx, "request", session="s1")
        assert record["type"] == "trace"
        assert record["name"] == "request"
        assert record["trace"] == ctx.trace_id
        assert record["span"] == ctx.span_id
        assert record["parent"] is None
        assert record["session"] == "s1"
        assert "seconds" not in record

    def test_seconds_included_when_given(self):
        ctx = TraceContext.root()
        assert span_record(ctx, "session", seconds=0.5)["seconds"] == 0.5


def _tree():
    root = TraceContext.root()
    session = root.child()
    shard = session.child()
    records = [
        span_record(root, "request"),
        span_record(session, "session", seconds=1.0),
        span_record(shard, "shard", shard=0),
        span_record(shard.child(), "quantum", seconds=0.1, pulls=32),
    ]
    return root, TraceTree.from_events(records)


class TestTraceTree:
    def test_connected(self):
        root, tree = _tree()
        assert tree.trace_ids() == [root.trace_id]
        assert tree.connected(root.trace_id)
        assert tree.orphans(root.trace_id) == []

    def test_roots_and_children(self):
        root, tree = _tree()
        (request,) = tree.roots(root.trace_id)
        assert request["name"] == "request"
        (session,) = tree.children(request["span"])
        assert session["name"] == "session"

    def test_named(self):
        root, tree = _tree()
        assert [r["pulls"] for r in tree.named("quantum")] == [32]

    def test_orphan_detected(self):
        root = TraceContext.root()
        stray = TraceContext(trace_id=root.trace_id, span_id="feed",
                             parent_id="dead")
        tree = TraceTree.from_events(
            [span_record(root, "request"), span_record(stray, "quantum")]
        )
        assert not tree.connected(root.trace_id)
        assert [r["span"] for r in tree.orphans(root.trace_id)] == ["feed"]

    def test_missing_trace_not_connected(self):
        _, tree = _tree()
        assert not tree.connected("nope")

    def test_non_trace_events_ignored(self):
        root = TraceContext.root()
        tree = TraceTree.from_events([
            {"type": "metric", "name": "x"},
            span_record(root, "request"),
        ])
        assert len(tree.records) == 1
