"""Tests for exporters: JSONL round-tripping and console rendering."""

from repro.obs import (
    ConsoleExporter,
    JsonlExporter,
    Observability,
    read_events,
    reconstruct_timing,
)


class TestJsonlRoundTrip:
    def test_events_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        exporter = JsonlExporter(path)
        exporter.export({"type": "event", "name": "run", "k": 10})
        exporter.export({"type": "span", "op": "X", "path": "get_next",
                         "count": 3, "seconds": 0.5})
        exporter.close()
        events = read_events(path)
        assert events == [
            {"type": "event", "name": "run", "k": 10},
            {"type": "span", "op": "X", "path": "get_next",
             "count": 3, "seconds": 0.5},
        ]

    def test_append_only(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for i in range(2):
            exporter = JsonlExporter(path)
            exporter.export({"type": "event", "name": "run", "i": i})
            exporter.close()
        assert [e["i"] for e in read_events(path)] == [0, 1]

    def test_observability_flush_exports_aggregates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs = Observability(exporters=[JsonlExporter(path)])
        tracer = obs.tracer("op1")
        with tracer.span("get_next"):
            with tracer.span("pull"):
                pass
        obs.metrics.counter("pulls_total", op="op1").inc(7)
        obs.close()
        events = read_events(path)
        types = {e["type"] for e in events}
        assert types == {"span", "metric"}
        spans = {e["path"] for e in events if e["type"] == "span"}
        assert spans == {"get_next", "get_next/pull"}
        metric = next(e for e in events if e["type"] == "metric")
        assert metric["value"] == 7


class TestReconstructTiming:
    def test_breakdown_from_span_events(self):
        events = [
            {"type": "span", "op": "A", "path": "get_next",
             "count": 1, "seconds": 1.0},
            {"type": "span", "op": "A", "path": "get_next/pull",
             "count": 5, "seconds": 0.25},
            {"type": "span", "op": "A", "path": "get_next/bound",
             "count": 5, "seconds": 0.5},
            {"type": "metric", "kind": "counter", "name": "x", "value": 1},
        ]
        timing = reconstruct_timing(events)
        assert timing["io"] == 0.25
        assert timing["bound"] == 0.5
        assert timing["other"] == 0.25
        assert timing["total"] == 1.0

    def test_filter_by_operator(self):
        events = [
            {"type": "span", "op": "A", "path": "get_next",
             "count": 1, "seconds": 1.0},
            {"type": "span", "op": "B", "path": "get_next",
             "count": 1, "seconds": 9.0},
        ]
        assert reconstruct_timing(events, op="A")["total"] == 1.0
        assert reconstruct_timing(events)["total"] == 10.0


class TestConsoleExporter:
    def test_render_mentions_spans_and_metrics(self):
        console = ConsoleExporter()
        console.export({"type": "span", "op": "FRPA", "path": "get_next",
                        "count": 3, "seconds": 0.123})
        console.export({"type": "metric", "kind": "counter",
                        "name": "pulls_total", "labels": {"side": "left"},
                        "value": 42})
        console.export({"type": "event", "name": "run", "capped": False})
        text = console.render()
        assert "get_next" in text
        assert "pulls_total{side=left} = 42" in text
        assert "run" in text

    def test_render_histogram_mean(self):
        console = ConsoleExporter()
        console.export({"type": "metric", "kind": "histogram",
                        "name": "cover_size", "labels": {},
                        "sum": 10.0, "count": 4, "buckets": []})
        assert "mean=2.50" in console.render()

    def test_render_empty(self):
        assert "no observability data" in ConsoleExporter().render()


class _Slotted:
    """A payload type with ``__slots__`` — ``vars()`` raises TypeError."""

    __slots__ = ("x",)

    def __init__(self) -> None:
        self.x = 41


class TestJsonableFallbacks:
    def test_slots_object_falls_back_to_repr(self, tmp_path):
        # Regression: vars() on a __slots__ instance raises TypeError,
        # which used to crash the exporter mid-flush.
        path = tmp_path / "events.jsonl"
        exporter = JsonlExporter(path)
        exporter.export({"type": "event", "name": "run", "payload": _Slotted()})
        exporter.close()
        (event,) = read_events(path)
        assert isinstance(event["payload"], str)
        assert "_Slotted" in event["payload"]

    def test_plain_object_still_uses_vars(self, tmp_path):
        class Plain:
            def __init__(self) -> None:
                self.a = 1

        path = tmp_path / "events.jsonl"
        exporter = JsonlExporter(path)
        exporter.export({"type": "event", "name": "run", "payload": Plain()})
        exporter.close()
        (event,) = read_events(path)
        assert event["payload"] == {"a": 1}

    def test_class_object_falls_back_to_repr(self, tmp_path):
        # vars(type) returns a mappingproxy full of unserialisable slots;
        # classes should degrade to their repr instead.
        path = tmp_path / "events.jsonl"
        exporter = JsonlExporter(path)
        exporter.export({"type": "event", "name": "run", "payload": _Slotted})
        exporter.close()
        (event,) = read_events(path)
        assert event["payload"] == repr(_Slotted)
