"""End-to-end observability: instrumented operators, exported streams.

The central acceptance check: the JSONL event stream of an FRPA run must
reconstruct the paper's Figure 2(b) io/bound/other breakdown to match the
legacy ``TimingBreakdown`` the operator reports directly.
"""

import pytest

from repro.core.operators import OPERATORS, make_operator
from repro.data.workload import WorkloadParams, lineitem_orders_instance
from repro.experiments.harness import averaged_runs, run_operator
from repro.obs import (
    NULL_OBS,
    JsonlExporter,
    Observability,
    read_events,
    reconstruct_timing,
)
from repro.plan.pipeline import Pipeline

PARAMS = WorkloadParams(e=2, c=0.5, z=0.5, k=5, scale=0.0005, seed=0)


@pytest.fixture(scope="module")
def instance():
    return lineitem_orders_instance(PARAMS)


class TestTimingReconstruction:
    @pytest.mark.parametrize("operator", ["FRPA", "HRJN*", "a-FRPA"])
    def test_events_match_legacy_breakdown(self, tmp_path, instance, operator):
        path = tmp_path / "events.jsonl"
        obs = Observability(exporters=[JsonlExporter(path)])
        op = make_operator(operator, instance, obs=obs)
        op.top_k(5)
        legacy = op.timing()
        obs.close()
        rebuilt = reconstruct_timing(read_events(path), op=operator)
        assert rebuilt["io"] == pytest.approx(legacy.io, rel=1e-9)
        assert rebuilt["bound"] == pytest.approx(legacy.bound, rel=1e-9)
        assert rebuilt["total"] == pytest.approx(legacy.total, rel=1e-9)
        assert rebuilt["other"] == pytest.approx(legacy.other, rel=1e-6, abs=1e-9)


class TestOperatorMetrics:
    def test_pull_counters_match_depths(self, instance):
        obs = Observability()
        op = make_operator("FRPA", instance, obs=obs)
        op.top_k(5)
        metrics = obs.metrics
        assert metrics.value("pulls_total", op="FRPA", side="left") == \
            op.depths().left
        assert metrics.value("pulls_total", op="FRPA", side="right") == \
            op.depths().right
        assert metrics.value("results_emitted_total", op="FRPA") == 5

    def test_bound_recompute_counter_matches_scheme(self, instance):
        obs = Observability()
        op = make_operator("FRPA", instance, obs=obs)
        op.top_k(5)
        assert metrics_value(obs, "bound_recompute_total", op="FRPA",
                             scheme="FR*") == op.bound_scheme.cover_recomputations

    def test_decision_matrix_cache_accounting(self, instance):
        obs = Observability()
        op = make_operator("FRPA", instance, obs=obs)
        op.top_k(5)
        hits = metrics_value(obs, "bound_cache_total", op="FRPA",
                             scheme="FR*", outcome="hit")
        misses = metrics_value(obs, "bound_cache_total", op="FRPA",
                               scheme="FR*", outcome="miss")
        # Three cached components per pull, partitioned into hits + misses.
        assert hits + misses == 3 * op.pulls
        assert hits > 0 and misses > 0

    def test_strategy_choice_counts_cover_all_pulls(self, instance):
        obs = Observability()
        op = make_operator("FRPA", instance, obs=obs)
        op.top_k(5)
        snapshot = obs.metrics.snapshot()
        choices = sum(
            r["value"] for r in snapshot if r["name"] == "pull_choice_total"
        )
        # choose() may run one extra time for a concurrently-exhausted side.
        assert choices >= op.pulls

    def test_afr_gridtree_metrics(self):
        # Tiny cover budget forces the exact → grid transfer + drops.
        inst = lineitem_orders_instance(PARAMS)
        obs = Observability()
        op = make_operator(
            "a-FRPA", inst, obs=obs, max_cr_size=4, resolution=8,
        )
        op.top_k(5)
        transfers = metrics_value(obs, "cover_grid_transfers_total", op="a-FRPA")
        assert transfers >= 1
        snapshot = {
            (r["name"], tuple(sorted(r["labels"].items()))): r
            for r in obs.metrics.snapshot()
        }
        gauges = [r for (name, _), r in snapshot.items()
                  if name == "gridtree_resolution"]
        assert gauges and all(g["value"] >= 1 for g in gauges)


class TestDisabledOverhead:
    def test_null_obs_registers_nothing(self, instance):
        before = len(NULL_OBS._tracers)
        op = make_operator("FRPA", instance, track_time=False)
        op.top_k(2)
        assert len(NULL_OBS._tracers) == before
        assert NULL_OBS.metrics.snapshot() == []

    def test_track_time_false_records_no_spans(self, instance):
        op = make_operator("FRPA", instance, track_time=False)
        op.top_k(2)
        assert op.tracer.spans() == {}
        assert op.timing().total == 0.0

    def test_track_time_true_without_obs_still_times(self, instance):
        op = make_operator("FRPA", instance)
        op.top_k(2)
        assert op.timing().total > 0.0


class TestHarnessEvents:
    def test_run_operator_emits_run_event(self, tmp_path, instance):
        path = tmp_path / "events.jsonl"
        obs = Observability(exporters=[JsonlExporter(path)])
        run_operator("HRJN*", instance, obs=obs)
        obs.close()
        events = read_events(path)
        runs = [e for e in events if e.get("name") == "run"]
        assert len(runs) == 1
        assert runs[0]["operator"] == "HRJN*"
        assert runs[0]["depths"]["sum"] > 0
        assert runs[0]["timing"]["total"] >= 0.0

    def test_averaged_runs_emit_per_seed_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs = Observability(exporters=[JsonlExporter(path)])
        averaged_runs(PARAMS, ["HRJN"], num_seeds=2, obs=obs)
        obs.close()
        runs = [e for e in read_events(path) if e.get("name") == "run"]
        assert [r["seed"] for r in runs] == [PARAMS.seed, PARAMS.seed + 1]


class TestPipelineObservability:
    def test_stages_register_separate_tracers(self):
        from repro.core.tuples import RankTuple
        from repro.relation.relation import Relation

        def relation(name, rows, key_attr):
            tuples = [
                RankTuple(key=p[key_attr], scores=s, payload=dict(p))
                for p, s in rows
            ]
            return Relation(name, tuples)

        lineitem = relation(
            "L",
            [({"orderkey": 1}, (0.9,)), ({"orderkey": 2}, (0.8,)),
             ({"orderkey": 1}, (0.3,))],
            "orderkey",
        )
        orders = relation(
            "O",
            [({"orderkey": 1, "custkey": 10}, (0.7,)),
             ({"orderkey": 2, "custkey": 11}, (0.95,))],
            "orderkey",
        )
        customer = relation(
            "C",
            [({"custkey": 10}, (0.5,)), ({"custkey": 11}, (0.4,))],
            "custkey",
        )
        obs = Observability()
        pipeline = Pipeline(
            [lineitem, orders, customer], ["custkey"],
            operator="HRJN*", obs=obs,
        )
        pipeline.top_k(2)
        names = [name for name, _ in obs._tracers]
        assert names == ["HRJN*#1", "HRJN*#2"]
        # Per-stage timing stays separable despite the shared registry.
        assert pipeline.timing().total >= 0.0


def metrics_value(obs, name, **labels):
    value = obs.metrics.value(name, **labels)
    assert value is not None, f"metric {name}{labels} not recorded"
    return value


class TestEveryOperatorRunsInstrumented:
    @pytest.mark.parametrize("operator", sorted(OPERATORS))
    def test_instrumented_run_matches_plain_depths(self, instance, operator):
        obs = Observability()
        instrumented = make_operator(operator, instance, obs=obs)
        instrumented.top_k(3)
        plain = make_operator(operator, instance)
        plain.top_k(3)
        assert instrumented.depths() == plain.depths()
