"""Tests for the span tracer: nesting, aggregation, disabled mode."""

import time

import pytest

from repro.obs.span import NULL_SPAN, Tracer


class TestNesting:
    def test_nested_spans_record_paths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        spans = tracer.spans()
        assert spans["outer"].count == 1
        assert spans["outer/inner"].count == 2

    def test_same_name_at_different_depths_kept_separate(self):
        tracer = Tracer()
        with tracer.span("work"):
            with tracer.span("work"):
                pass
        assert set(tracer.spans()) == {"work", "work/work"}

    def test_parent_time_encloses_child_time(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        spans = tracer.spans()
        assert spans["outer"].seconds >= spans["outer/inner"].seconds
        assert spans["outer/inner"].seconds >= 0.01

    def test_deep_nesting_path(self):
        tracer = Tracer()
        with tracer.span("a"), tracer.span("b"), tracer.span("c"):
            pass
        assert "a/b/c" in tracer.spans()


class TestAggregationByName:
    def test_seconds_sums_across_paths(self):
        tracer = Tracer()
        with tracer.span("bound"):
            time.sleep(0.005)
        with tracer.span("get_next"):
            with tracer.span("bound"):
                time.sleep(0.005)
        assert tracer.seconds("bound") >= 0.01
        assert tracer.count("bound") == 2

    def test_totals_by_name_flattens(self):
        tracer = Tracer()
        with tracer.span("x"):
            with tracer.span("y"):
                pass
        with tracer.span("y"):
            pass
        totals = tracer.totals_by_name()
        assert set(totals) == {"x", "y"}

    def test_unknown_name_is_zero(self):
        assert Tracer().seconds("nothing") == 0.0
        assert Tracer().count("nothing") == 0


class TestExceptionSafety:
    def test_exception_still_accumulates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                time.sleep(0.005)
                raise RuntimeError("boom")
        assert tracer.seconds("work") >= 0.005
        assert tracer.count("work") == 1

    def test_stack_unwinds_after_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError
        with tracer.span("after"):
            pass
        assert "after" in tracer.spans()  # not nested under a stale path


class TestDisabled:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work"):
            time.sleep(0.002)
        assert tracer.spans() == {}

    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is NULL_SPAN
        assert tracer.span("b") is NULL_SPAN


class TestReset:
    def test_reset_clears_aggregates(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        tracer.reset()
        assert tracer.spans() == {}
