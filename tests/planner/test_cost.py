"""Tests for the calibrated cost model (coefficients + scoring formulas)."""

import json

import pytest

from repro.planner.cost import (
    CostCoefficients,
    PlanCandidate,
    coefficients,
    measure,
    score_anyk_candidate,
    score_multiway_pbrj,
    score_pbrj_candidate,
    set_coefficients,
)

COEFFS = CostCoefficients()


def pbrj_candidate(**overrides) -> PlanCandidate:
    base = dict(
        algorithm="pbrj", operator="HRJN*", shards=1,
        partitioner="hash", backend="serial", kernel="auto",
    )
    base.update(overrides)
    return PlanCandidate(**base)


class TestCoefficients:
    def test_round_trip(self):
        coeffs = CostCoefficients(pull_pbrj=1e-6, parallelism=4)
        assert CostCoefficients.from_dict(coeffs.to_dict()) == coeffs

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown cost coefficient"):
            CostCoefficients.from_dict({"pull_pbrj": 1e-6, "warp_speed": 9})

    def test_partial_dict_keeps_defaults(self):
        coeffs = CostCoefficients.from_dict({"pull_anyk": 5e-6})
        assert coeffs.pull_anyk == 5e-6
        assert coeffs.pull_pbrj == CostCoefficients().pull_pbrj

    def test_backend_lookups(self):
        assert COEFFS.round_overhead("process") > COEFFS.round_overhead("serial")
        assert COEFFS.startup("process") > COEFFS.startup("thread")

    def test_kernel_factor_crossover(self):
        assert COEFFS.kernel_factor("numpy", 10_000) == 1.0
        assert COEFFS.kernel_factor("python", 100) < 1.0
        assert COEFFS.kernel_factor("python", 100_000) > 1.0

    def test_kernel_factor_auto_is_lower_envelope(self):
        # Per-call dispatch rides the winning tier on both sides of the
        # crossover, so auto is never beaten by any pinned backend.
        for size in (100, 100_000):
            auto = COEFFS.kernel_factor("auto", size)
            assert auto == COEFFS.kernel_factor(None, size)
            for pinned in ("python", "numpy", "numba"):
                assert auto <= COEFFS.kernel_factor(pinned, size)

    def test_kernel_factor_pinned_penalties(self):
        # Pinned vector tiers pay per-call overhead on tiny batches;
        # pinned python pays the no-vectorization tax on bulk.
        assert COEFFS.kernel_factor("numpy", 100) > 1.0
        assert COEFFS.kernel_factor("numba", 100) > 1.0
        assert COEFFS.kernel_factor("numba", 100_000) == 1.0

    def test_env_file_resolution(self, tmp_path, monkeypatch):
        path = tmp_path / "coeffs.json"
        path.write_text(json.dumps({"pull_pbrj": 7.5e-7}))
        monkeypatch.setenv("REPRO_PLANNER_COEFFS", str(path))
        set_coefficients(None)  # drop the test fixture's explicit install
        try:
            assert coefficients().pull_pbrj == 7.5e-7
        finally:
            set_coefficients(CostCoefficients())

    def test_measure_produces_positive_costs(self):
        measured = measure(seed=0)
        assert measured.pull_pbrj > 0
        assert measured.pull_anyk > 0
        assert measured.parallelism >= 1


class TestPbrjScoring:
    def test_partition_cost_keeps_small_joins_serial(self):
        # Shallow query over a biggish input: the O(n) partition scan
        # outweighs the cover shrink, so serial must be cheaper.
        serial = score_pbrj_candidate(
            pbrj_candidate(), coeffs=COEFFS, depth=200,
            total_tuples=5_000, shares=(1.0,),
        )
        sharded = score_pbrj_candidate(
            pbrj_candidate(shards=8, backend="serial"),
            coeffs=COEFFS, depth=200, total_tuples=5_000,
            shares=(0.125,) * 8,
        )
        assert sharded.detail["partition"] > 0.0
        assert serial.detail["partition"] == 0.0
        assert serial.cost < sharded.cost

    def test_balanced_sharding_beats_serial(self):
        serial = score_pbrj_candidate(
            pbrj_candidate(), coeffs=COEFFS, depth=10_000,
            total_tuples=5_000, shares=(1.0,),
        )
        sharded = score_pbrj_candidate(
            pbrj_candidate(shards=4, backend="serial"),
            coeffs=COEFFS, depth=10_000, total_tuples=5_000,
            shares=(0.25, 0.25, 0.25, 0.25),
        )
        # Cover shrink: balanced shards do ~S^gamma less work.
        assert sharded.cost < serial.cost

    def test_skewed_shares_cost_more_than_balanced(self):
        balanced = score_pbrj_candidate(
            pbrj_candidate(shards=4), coeffs=COEFFS, depth=10_000,
            total_tuples=5_000, shares=(0.25, 0.25, 0.25, 0.25),
        )
        skewed = score_pbrj_candidate(
            pbrj_candidate(shards=4), coeffs=COEFFS, depth=10_000,
            total_tuples=5_000, shares=(0.85, 0.05, 0.05, 0.05),
        )
        assert skewed.cost > balanced.cost
        assert skewed.detail["imbalance"] > balanced.detail["imbalance"]

    def test_process_backend_pays_startup(self):
        thread = score_pbrj_candidate(
            pbrj_candidate(shards=4, backend="thread"),
            coeffs=COEFFS, depth=1_000, total_tuples=2_000,
            shares=(0.25,) * 4,
        )
        process = score_pbrj_candidate(
            pbrj_candidate(shards=4, backend="process"),
            coeffs=COEFFS, depth=1_000, total_tuples=2_000,
            shares=(0.25,) * 4,
        )
        assert process.detail["startup"] > thread.detail["startup"]

    def test_process_parallelism_divides_compute(self):
        fast = CostCoefficients(parallelism=4)
        slow = CostCoefficients(parallelism=1)
        kwargs = dict(depth=100_000, total_tuples=2_000, shares=(0.25,) * 4)
        candidate = pbrj_candidate(shards=4, backend="process")
        assert (
            score_pbrj_candidate(candidate, coeffs=fast, **kwargs).detail["compute"]
            < score_pbrj_candidate(candidate, coeffs=slow, **kwargs).detail["compute"]
        )

    def test_tighter_bound_reads_shallower_pays_more_per_pull(self):
        kwargs = dict(coeffs=COEFFS, depth=10_000, total_tuples=5_000, shares=(1.0,))
        hrjn = score_pbrj_candidate(pbrj_candidate(operator="HRJN*"), **kwargs)
        frpa = score_pbrj_candidate(pbrj_candidate(operator="FRPA"), **kwargs)
        assert frpa.detail["depth"] < hrjn.detail["depth"]

    def test_zero_depth_clamped(self):
        result = score_pbrj_candidate(
            pbrj_candidate(), coeffs=COEFFS, depth=0,
            total_tuples=0, shares=(1.0,),
        )
        assert result.cost > 0


class TestAnykScoring:
    def test_linear_in_input(self):
        candidate = PlanCandidate(
            algorithm="anyk", operator="AnyK", shards=1,
            partitioner="hash", backend="serial", kernel="auto",
        )
        small = score_anyk_candidate(candidate, coeffs=COEFFS, total_tuples=1_000, k=10)
        large = score_anyk_candidate(candidate, coeffs=COEFFS, total_tuples=10_000, k=10)
        assert large.cost > small.cost
        # Depth-independent: the DP reads everything regardless.
        assert large.detail["depth"] == 10_000

    def test_label(self):
        candidate = PlanCandidate(
            algorithm="anyk", operator="AnyK", shards=1,
            partitioner="hash", backend="serial", kernel="auto",
        )
        assert candidate.label() == "anyk"
        sharded = PlanCandidate(
            algorithm="pbrj", operator="FRPA", shards=4,
            partitioner="skew", backend="thread", kernel="auto",
        )
        assert sharded.label() == "pbrj/FRPA x4 skew/thread"


class TestMultiwayScoring:
    def test_arity_raises_cost(self):
        candidate = pbrj_candidate()
        two = score_multiway_pbrj(candidate, coeffs=COEFFS, depth=1_000, arity=2)
        four = score_multiway_pbrj(candidate, coeffs=COEFFS, depth=1_000, arity=4)
        assert four.cost > two.cost
