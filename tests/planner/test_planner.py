"""Tests for the planner facade: enumeration, pinning, explainability."""

import numpy as np
import pytest

from repro.data.workload import random_instance
from repro.errors import InstanceError
from repro.obs import Observability
from repro.planner import Planner, PlannerConfig
from repro.relation.relation import Relation

from tests.planner.test_stats import zipf_relation


@pytest.fixture
def instance():
    return random_instance(
        n_left=400, n_right=400, e_left=2, e_right=2,
        num_keys=40, k=10, seed=0,
    )


class TestPlanBinary:
    def test_decision_is_cheapest_candidate(self, instance):
        decision = Planner().plan([instance.left, instance.right], 10)
        assert decision.chosen is decision.candidates[0]
        assert all(
            decision.chosen.cost <= entry.cost for entry in decision.candidates
        )

    def test_deterministic(self, instance):
        planner = Planner()
        a = planner.plan([instance.left, instance.right], 10)
        b = planner.plan([instance.left, instance.right], 10)
        assert a.summary() == b.summary()
        assert [c.cost for c in a.candidates] == [c.cost for c in b.candidates]

    def test_enumerates_all_axes(self, instance):
        decision = Planner().plan([instance.left, instance.right], 10)
        labels = {entry.candidate.label() for entry in decision.candidates}
        # anyk + 1-shard pbrj + sharded pbrj with both partitioners/backends.
        assert "anyk" in labels
        assert "pbrj/HRJN*" in labels
        assert "pbrj/FRPA x4 skew/thread" in labels

    def test_table_is_explainable(self, instance):
        decision = Planner().plan([instance.left, instance.right], 10)
        table = decision.table()
        assert decision.summary() in table
        assert "*" in table  # the chosen row is marked
        assert "est cost" in table
        assert table.count("\n") >= len(decision.candidates)

    def test_pin_algorithm_anyk(self, instance):
        decision = Planner().plan(
            [instance.left, instance.right], 10, algorithm="anyk"
        )
        assert decision.algorithm == "anyk"
        assert all(
            entry.candidate.algorithm == "anyk" for entry in decision.candidates
        )

    def test_pin_shards(self, instance):
        decision = Planner().plan(
            [instance.left, instance.right], 10, algorithm="pbrj", shards=4
        )
        assert decision.shards == 4

    def test_pin_operator_and_backend(self, instance):
        decision = Planner().plan(
            [instance.left, instance.right], 10,
            algorithm="pbrj", operator="FRPA", exec_backend="serial",
        )
        assert decision.operator == "FRPA"
        pbrj_sharded = [
            e for e in decision.candidates if e.candidate.shards > 1
        ]
        assert pbrj_sharded
        assert all(e.candidate.backend == "serial" for e in pbrj_sharded)

    def test_unknown_algorithm_rejected(self, instance):
        with pytest.raises(InstanceError, match="unknown algorithm"):
            Planner().plan([instance.left, instance.right], 10, algorithm="nope")

    def test_needs_two_relations(self, instance):
        with pytest.raises(InstanceError, match="at least two"):
            Planner().plan([instance.left], 10)

    def test_decision_counter_increments(self, instance):
        obs = Observability()
        planner = Planner(obs=obs)
        decision = planner.plan([instance.left, instance.right], 10)
        count = obs.metrics.value(
            "planner_decisions_total",
            algorithm=decision.algorithm,
            shards=str(decision.shards),
        )
        assert count == 1

    def test_skew_partitioner_preferred_on_hot_keys(self):
        # One key owning most of the join: at a fixed sharded config the
        # skew-aware candidate must cost no more than plain hash.
        left = zipf_relation("L", n=1200, num_keys=30, z=1.8, seed=0)
        right = zipf_relation("R", n=1200, num_keys=30, z=1.8, seed=1)
        decision = Planner().plan([left, right], 10, algorithm="pbrj", shards=8)
        by_label = {e.candidate.label(): e.cost for e in decision.candidates}
        for operator in ("HRJN*", "FRPA"):
            for backend in ("serial", "thread"):
                skew = by_label[f"pbrj/{operator} x8 skew/{backend}"]
                hash_ = by_label[f"pbrj/{operator} x8 hash/{backend}"]
                assert skew <= hash_

    def test_planning_time_recorded(self, instance):
        decision = Planner().plan([instance.left, instance.right], 10)
        assert decision.planning_seconds > 0


class TestPlannerConfig:
    def test_restricting_choices_restricts_candidates(self, instance):
        config = PlannerConfig(
            shard_choices=(1, 2), backends=("serial",),
            operators=("HRJN*",), include_anyk=False,
        )
        decision = Planner(config=config).plan(
            [instance.left, instance.right], 10
        )
        for entry in decision.candidates:
            assert entry.candidate.algorithm == "pbrj"
            assert entry.candidate.operator == "HRJN*"
            assert entry.candidate.shards in (1, 2)
            assert entry.candidate.backend == "serial"


class TestPlanMultiway:
    def _chain(self):
        rng = np.random.default_rng(0)

        def mk(name, n, attrs):
            from repro.core.tuples import RankTuple

            rows = []
            for __ in range(n):
                payload = {a: int(rng.integers(0, 8)) for a in attrs}
                rows.append(RankTuple(
                    key=payload[attrs[0]], scores=(float(rng.random()),),
                    payload=payload,
                ))
            return Relation(name, rows)

        return [mk("A", 120, ["p"]), mk("B", 90, ["p", "q"]),
                mk("C", 60, ["q"])]

    def test_multiway_with_chain_attrs(self):
        decision = Planner().plan(self._chain(), 5, join_attrs=("p", "q"))
        assert decision.shards == 1
        assert decision.algorithm in ("pbrj", "anyk")
        assert len(decision.candidates) == 2

    def test_multiway_without_attrs_is_pessimistic(self):
        relations = self._chain()
        decision = Planner().plan(relations, 5)
        total = sum(len(r) for r in relations)
        assert decision.depth == total
