"""Auto-planned QuerySpec: resolution, fingerprints, bit-identity.

The acceptance property: an ``algorithm="auto", shards="auto"`` query
must produce the *bit-identical* result sequence (scores + tuple
identities, in emission order) of a static spec pinned to the same
effective plan — and of the plain serial operator, which is the global
reference for every execution mode in this codebase.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import make_operator
from repro.data.workload import random_instance
from repro.exec import result_identity
from repro.obs import Observability
from repro.service.query import QuerySpec
from repro.service.service import QueryService


def auto_spec(instance, **overrides):
    kwargs = dict(
        relations=(instance.left, instance.right),
        k=instance.k,
        scoring=instance.scoring,
        algorithm="auto",
        shards="auto",
    )
    kwargs.update(overrides)
    return QuerySpec(**kwargs)


def emission(results):
    return [(r.score, result_identity(r)) for r in results]


def run_spec(spec):
    operator = spec.build_operator()
    try:
        return emission(operator.top_k(spec.k))
    finally:
        close = getattr(operator, "close", None)
        if callable(close):
            close()


class TestResolution:
    def test_static_spec_resolves_to_itself(self):
        instance = random_instance(
            n_left=60, n_right=60, e_left=1, e_right=1,
            num_keys=6, k=3, seed=0,
        )
        spec = QuerySpec(
            relations=(instance.left, instance.right), k=3, operator="FRPA"
        )
        assert spec.resolve() is spec

    def test_auto_resolves_all_axes(self):
        instance = random_instance(
            n_left=200, n_right=200, e_left=2, e_right=2,
            num_keys=20, k=8, seed=1,
        )
        resolved = auto_spec(instance).resolve()
        assert resolved.algorithm in ("pbrj", "anyk")
        assert isinstance(resolved.shards, int)
        assert resolved.decision is not None
        assert resolved.plan_summary() == resolved.decision.summary()

    def test_resolution_memoized(self):
        instance = random_instance(
            n_left=100, n_right=100, e_left=1, e_right=1,
            num_keys=10, k=5, seed=2,
        )
        spec = auto_spec(instance)
        assert spec.resolve() is spec.resolve()

    def test_describe_marks_planned_specs(self):
        instance = random_instance(
            n_left=60, n_right=60, e_left=1, e_right=1,
            num_keys=6, k=3, seed=3,
        )
        assert "(planned)" in auto_spec(instance).describe()

    def test_pinned_algorithm_survives_auto_shards(self):
        instance = random_instance(
            n_left=150, n_right=150, e_left=2, e_right=2,
            num_keys=15, k=5, seed=4,
        )
        resolved = auto_spec(instance, algorithm="anyk").resolve()
        assert resolved.algorithm == "anyk"


class TestFingerprint:
    def test_auto_fingerprint_equals_resolved_static(self):
        instance = random_instance(
            n_left=150, n_right=150, e_left=2, e_right=2,
            num_keys=15, k=6, seed=5,
        )
        spec = auto_spec(instance)
        resolved = spec.resolve()
        static = QuerySpec(
            relations=spec.relations,
            k=spec.k,
            scoring=spec.scoring,
            operator=resolved.operator,
            algorithm=resolved.algorithm,
            shards=resolved.shards,
            exec_backend=resolved.exec_backend,
            partitioner=resolved.partitioner,
        )
        assert spec.fingerprint() == static.fingerprint()


class TestBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        num_keys=st.integers(min_value=4, max_value=40),
        k=st.integers(min_value=1, max_value=12),
    )
    def test_auto_equals_static_and_serial(self, seed, num_keys, k):
        instance = random_instance(
            n_left=150, n_right=150, e_left=2, e_right=2,
            num_keys=num_keys, k=k, seed=seed,
        )
        spec = auto_spec(instance)
        resolved = spec.resolve()
        auto_results = run_spec(spec)
        # Static spec of the same effective plan (no adaptive wrapper).
        static = QuerySpec(
            relations=spec.relations,
            k=spec.k,
            scoring=spec.scoring,
            operator=resolved.operator,
            algorithm=resolved.algorithm,
            shards=resolved.shards,
            exec_backend=resolved.exec_backend,
            partitioner=resolved.partitioner,
        )
        assert run_spec(static) == auto_results
        # Score agreement with the serial reference operator (identities
        # may differ on exact ties across cores, scores may not).
        serial = make_operator("HRJN*", instance)
        assert [s for s, _ in emission(serial.top_k(k))] == [
            s for s, _ in auto_results
        ]


class TestServiceIntegration:
    def test_submit_auto_spec(self):
        instance = random_instance(
            n_left=150, n_right=150, e_left=2, e_right=2,
            num_keys=15, k=5, seed=7,
        )
        service = QueryService(obs=Observability())
        spec = auto_spec(instance)
        results = service.run_query(spec)
        assert len(results) == 5
        # The decisions counter incremented through the service registry.
        decision = spec.resolve().decision
        assert service.obs.metrics.value(
            "planner_decisions_total",
            algorithm=decision.algorithm,
            shards=str(decision.shards),
        ) >= 1
        service.close()

    def test_session_brief_carries_plan(self):
        instance = random_instance(
            n_left=150, n_right=150, e_left=2, e_right=2,
            num_keys=15, k=5, seed=8,
        )
        service = QueryService(obs=Observability())
        session_id = service.submit(auto_spec(instance))
        briefs = {
            brief["session"]: brief
            for brief in service.stats()["sessions"]
        }
        assert briefs[session_id]["plan"] not in ("?", "auto (unresolved)")
        service.run_until_complete()
        service.close()
