"""Tests for planner statistics collection (profiles, shares, Zipf fit)."""

import numpy as np
import pytest

from repro.data.workload import random_instance
from repro.planner import (
    collect_join_stats,
    collect_stats,
    fit_zipf_exponent,
    predicted_imbalance,
    shard_shares,
)
from repro.relation.relation import Relation


def zipf_relation(name="Z", n=2000, num_keys=50, z=1.2, seed=0):
    """A relation whose join keys follow a Zipf(z) distribution."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_keys + 1, dtype=float)
    weights = ranks ** -z
    weights /= weights.sum()
    keys = rng.choice(num_keys, size=n, p=weights)
    scores = rng.random((n, 2))
    return Relation.from_arrays(name, keys.tolist(), scores)


class TestZipfFit:
    def test_uniform_counts_fit_zero(self):
        assert fit_zipf_exponent([10] * 20) == pytest.approx(0.0, abs=1e-12)

    def test_degenerate_inputs_fit_zero(self):
        assert fit_zipf_exponent([]) == 0.0
        assert fit_zipf_exponent([7]) == 0.0
        assert fit_zipf_exponent([0, 0]) == 0.0

    def test_recovers_known_exponent(self):
        # Exact Zipf counts: freq(rank) = C / rank^z.
        for z in (0.5, 1.0, 1.5):
            counts = [round(100000 / (r ** z)) for r in range(1, 40)]
            assert fit_zipf_exponent(counts) == pytest.approx(z, abs=0.1)

    def test_monotone_in_skew(self):
        flat = fit_zipf_exponent([100, 95, 92, 90, 88])
        steep = fit_zipf_exponent([100, 40, 20, 10, 5])
        assert steep > flat


class TestRelationProfile:
    def test_basic_fields(self):
        instance = random_instance(
            n_left=300, n_right=100, e_left=2, e_right=1,
            num_keys=20, k=5, seed=0,
        )
        profile = collect_stats(instance.left)
        assert profile.cardinality == 300
        assert profile.dimension == 2
        assert 1 <= profile.distinct_keys <= 20
        assert profile.fingerprint == instance.left.fingerprint()
        assert len(profile.score_deciles) == 11
        assert profile.score_deciles[0] <= profile.score_deciles[-1]

    def test_heavy_hitters_sorted_descending(self):
        rel = zipf_relation(n=1000, num_keys=30, z=1.5)
        profile = collect_stats(rel)
        counts = [c for _, c in profile.heavy_hitters]
        assert counts == sorted(counts, reverse=True)
        assert profile.max_key_share == counts[0] / 1000

    def test_cached_by_fingerprint(self):
        rel = zipf_relation(seed=3)
        assert collect_stats(rel) is collect_stats(rel)

    def test_empty_relation(self):
        profile = collect_stats(Relation("E", []))
        assert profile.cardinality == 0
        assert profile.heavy_hitters == ()
        assert profile.max_key_share == 0.0
        assert profile.score_deciles == ()

    def test_skewed_relation_has_larger_exponent(self):
        flat = collect_stats(zipf_relation("F", z=0.1, seed=1))
        steep = collect_stats(zipf_relation("S", z=1.8, seed=1))
        assert steep.zipf_exponent > flat.zipf_exponent


class TestJoinProfile:
    def test_join_size_exact(self):
        instance = random_instance(
            n_left=200, n_right=200, e_left=1, e_right=1,
            num_keys=20, k=1, seed=2,
        )
        profile = collect_join_stats(instance.left, instance.right)
        assert profile.join_size == instance.join_size()

    def test_hot_pair_share(self):
        left = Relation.from_arrays("L", [0] * 9 + [1], np.random.default_rng(0).random((10, 1)))
        right = Relation.from_arrays("R", [0] * 9 + [1], np.random.default_rng(1).random((10, 1)))
        profile = collect_join_stats(left, right)
        assert profile.join_size == 82
        assert profile.hot_pair_share == pytest.approx(81 / 82)

    def test_disjoint_keys_empty_join(self):
        rng = np.random.default_rng(0)
        left = Relation.from_arrays("L", [1, 2], rng.random((2, 1)))
        right = Relation.from_arrays("R", [3, 4], rng.random((2, 1)))
        profile = collect_join_stats(left, right)
        assert profile.join_size == 0
        assert profile.hot_pair_share == 0.0


class TestShardShares:
    def _profile(self, z=1.5, seed=0):
        left = zipf_relation("L", n=1500, num_keys=40, z=z, seed=seed)
        right = zipf_relation("R", n=1500, num_keys=40, z=z, seed=seed + 1)
        return collect_join_stats(left, right)

    @pytest.mark.parametrize("partitioner", ["hash", "skew"])
    def test_shares_sum_to_one(self, partitioner):
        profile = self._profile()
        shares = shard_shares(profile, 4, partitioner)
        assert len(shares) == 4
        assert sum(shares) == pytest.approx(1.0)

    def test_single_shard_trivial(self):
        assert shard_shares(self._profile(), 1, "hash") == (1.0,)

    def test_skew_partitioner_improves_predicted_imbalance(self):
        profile = self._profile(z=1.8)
        plain = predicted_imbalance(shard_shares(profile, 8, "hash"))
        skew = predicted_imbalance(shard_shares(profile, 8, "skew"))
        assert skew < plain

    def test_empty_join_uniform_shares(self):
        rng = np.random.default_rng(0)
        left = Relation.from_arrays("L", [1], rng.random((1, 1)))
        right = Relation.from_arrays("R", [2], rng.random((1, 1)))
        profile = collect_join_stats(left, right)
        shares = shard_shares(profile, 4, "hash")
        assert shares == (0.25, 0.25, 0.25, 0.25)

    def test_predicted_imbalance_scale(self):
        assert predicted_imbalance((0.25, 0.25, 0.25, 0.25)) == 1.0
        assert predicted_imbalance((1.0, 0.0)) == 2.0
        assert predicted_imbalance(()) == 1.0
