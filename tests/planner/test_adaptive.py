"""Tests for online re-sharding (AdaptiveShardedRankJoin)."""

import pytest

from repro.data.workload import lineitem_orders_instance, random_instance
from repro.data.workload import WorkloadParams
from repro.exec import ExecConfig, ShardedRankJoin
from repro.obs import Observability
from repro.planner import AdaptiveConfig, AdaptiveShardedRankJoin
from repro.resilience import emission_view


@pytest.fixture(scope="module")
def instance():
    return lineitem_orders_instance(
        WorkloadParams(e=2, c=0.5, z=0.5, k=10, scale=0.0005,
                       join_skew=0.9, seed=1)
    )


FORCE_RESHARD = AdaptiveConfig(threshold=0.0, min_pulls=1, min_emitted=1)


class TestForcedReshard:
    def test_bit_identical_to_static_run(self, instance):
        config = ExecConfig(shards=4, backend="serial")
        with ShardedRankJoin(instance, "FRPA", config=config) as ref:
            reference = emission_view(ref.top_k(instance.k))
        with AdaptiveShardedRankJoin(
            instance, "FRPA", config=config, adaptive=FORCE_RESHARD
        ) as engine:
            adaptive = emission_view(engine.top_k(instance.k))
            assert engine.reshards == 1
            assert engine.config.partitioner == "skew"
        assert adaptive == reference

    def test_pulls_monotonic_across_migration(self, instance):
        config = ExecConfig(shards=4, backend="serial")
        with AdaptiveShardedRankJoin(
            instance, "FRPA", config=config, adaptive=FORCE_RESHARD
        ) as engine:
            seen = []
            for _ in range(instance.k):
                if engine.get_next() is None:
                    break
                seen.append(engine.pulls)
        assert seen == sorted(seen)
        assert seen[-1] > 0

    def test_reshard_counter_increments(self, instance):
        obs = Observability()
        config = ExecConfig(shards=2, backend="serial")
        with AdaptiveShardedRankJoin(
            instance, "FRPA", config=config, adaptive=FORCE_RESHARD, obs=obs
        ) as engine:
            engine.top_k(instance.k)
            assert engine.reshards == 1
        assert obs.metrics.value(
            "planner_reshards_total", op="FRPA", partitioner="skew"
        ) == 1

    def test_max_reshards_respected(self, instance):
        # threshold 0 keeps asking; max_reshards must still cap at 1 and
        # the wrapper must not migrate to an identical config.
        config = ExecConfig(shards=4, backend="serial")
        with AdaptiveShardedRankJoin(
            instance, "FRPA", config=config, adaptive=FORCE_RESHARD
        ) as engine:
            engine.top_k(instance.k)
            assert engine.reshards == 1

    def test_shard_count_change(self, instance):
        adaptive = AdaptiveConfig(
            threshold=0.0, min_pulls=1, min_emitted=1, shards=8
        )
        config = ExecConfig(shards=2, backend="serial")
        with ShardedRankJoin(instance, "FRPA",
                             config=ExecConfig(shards=2, backend="serial")) as ref:
            reference = emission_view(ref.top_k(instance.k))
        with AdaptiveShardedRankJoin(
            instance, "FRPA", config=config, adaptive=adaptive
        ) as engine:
            results = emission_view(engine.top_k(instance.k))
            assert engine.config.shards == 8
        assert results == reference


class TestNoReshard:
    def test_high_threshold_never_migrates(self, instance):
        adaptive = AdaptiveConfig(threshold=1e9, min_pulls=1)
        config = ExecConfig(shards=4, backend="serial")
        with AdaptiveShardedRankJoin(
            instance, "FRPA", config=config, adaptive=adaptive
        ) as engine:
            engine.top_k(instance.k)
            assert engine.reshards == 0

    def test_min_pulls_gate(self, instance):
        adaptive = AdaptiveConfig(threshold=0.0, min_pulls=10**9)
        config = ExecConfig(shards=4, backend="serial")
        with AdaptiveShardedRankJoin(
            instance, "FRPA", config=config, adaptive=adaptive
        ) as engine:
            engine.top_k(instance.k)
            assert engine.reshards == 0

    def test_single_shard_disables_monitor(self):
        inst = random_instance(
            n_left=120, n_right=120, e_left=2, e_right=2,
            num_keys=12, k=5, seed=0,
        )
        config = ExecConfig(shards=1, backend="serial")
        with AdaptiveShardedRankJoin(
            inst, "FRPA", config=config, adaptive=FORCE_RESHARD
        ) as engine:
            results = engine.top_k(5)
            assert len(results) == 5
            assert engine.reshards == 0

    def test_already_skew_partitioned_disables(self, instance):
        config = ExecConfig(shards=4, backend="serial", partitioner="skew")
        with AdaptiveShardedRankJoin(
            instance, "FRPA", config=config, adaptive=FORCE_RESHARD
        ) as engine:
            engine.top_k(instance.k)
            assert engine.reshards == 0


class TestReporting:
    def test_surface(self, instance):
        config = ExecConfig(shards=2, backend="serial")
        with AdaptiveShardedRankJoin(
            instance, "FRPA", config=config, adaptive=FORCE_RESHARD
        ) as engine:
            engine.top_k(instance.k)
            assert engine.name.startswith("adaptive[")
            assert engine.observed_imbalance() >= 1.0
            snap = engine.snapshot()
            assert snap["reshards"] == engine.reshards
            assert "observed_imbalance" in snap
            depths = engine.depths()
            assert depths.left > 0
            assert len(engine.shard_depths()) == 2
            assert engine.degraded is False
