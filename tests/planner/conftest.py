"""Shared planner-test setup: pinned coefficients, cleared caches.

Installing explicit :class:`CostCoefficients` keeps every test free of
micro-benchmark noise (``measure()`` would otherwise run once and make
decisions machine-dependent); clearing the stats/depth caches keeps
tests order-independent.
"""

import pytest

from repro.planner import clear_depth_cache, clear_stats_caches, set_coefficients
from repro.planner.cost import CostCoefficients


@pytest.fixture(autouse=True)
def fixed_coefficients():
    set_coefficients(CostCoefficients())
    clear_stats_caches()
    clear_depth_cache()
    yield
