"""Shared fixtures for the sharded-execution test suite.

``SEED_WORKLOADS`` is the matrix the correctness invariant runs over:
TPC-H-style, zipf join skew, uniform synthetic, and anti-correlated
scores.  ``canonical_top_k`` computes the *canonical* serial top-k — the
serial operator orders exact-score ties by discovery sequence, which is
an implementation accident; the sharded engine orders them by content
identity, so the reference must be canonicalized the same way (extend
through the K-boundary tie group, sort tie groups by identity, truncate).
"""

from __future__ import annotations

import pytest

from repro.core.pbrj import SCORE_EPS
from repro.data.workload import (
    WorkloadParams,
    anti_correlated_instance,
    lineitem_orders_instance,
    random_instance,
)
from repro.exec import result_identity
from repro.service import QuerySpec

WORKLOAD_BUILDERS = {
    "tpch": lambda: lineitem_orders_instance(
        WorkloadParams(e=2, c=0.5, z=0.5, k=10, scale=0.0005, seed=0)
    ),
    "zipf": lambda: lineitem_orders_instance(
        WorkloadParams(e=2, c=0.5, z=0.5, k=10, scale=0.0005,
                       join_skew=0.9, seed=1)
    ),
    "uniform": lambda: random_instance(
        n_left=400, n_right=400, e_left=2, e_right=2,
        num_keys=40, k=12, seed=3,
    ),
    "anticorrelated": lambda: anti_correlated_instance(
        n_left=300, n_right=300, num_keys=30, k=10, seed=5,
    ),
}

SEED_WORKLOADS = sorted(WORKLOAD_BUILDERS)


@pytest.fixture(scope="session")
def workloads():
    """Workload name → instance, built once for the whole suite."""
    return {name: build() for name, build in WORKLOAD_BUILDERS.items()}


def canonical_top_k(instance, k: int, operator: str = "FRPA") -> list:
    """The serial top-k with exact-score ties in canonical identity order.

    Pulls serial results past ``k`` until the score drops strictly below
    the k-th score (completing the boundary tie group), then sorts each
    tie group by :func:`repro.exec.result_identity` and truncates.
    """
    op = QuerySpec(
        relations=(instance.left, instance.right), k=k, operator=operator
    ).build_operator()
    results = []
    while True:
        result = op.get_next()
        if result is None:
            break
        results.append(result)
        if len(results) >= k and result.score < results[k - 1].score - SCORE_EPS:
            break
    results.sort(key=lambda r: (-r.score, result_identity(r)))
    return results[:k]


def identity_view(results) -> list[tuple]:
    """Comparable projection: (score, canonical identity) per result."""
    return [(r.score, result_identity(r)) for r in results]
