"""Merger unit tests: emit gate, tie ordering, termination bookkeeping."""

from repro.core.tuples import JoinResult, RankTuple
from repro.exec import GlobalTopKMerger, result_identity
from repro.exec.worker import AdvanceOutcome

NEG_INF = float("-inf")


def make_result(key, score, left_scores=(0.5, 0.5), right_scores=(0.5, 0.5)):
    left = RankTuple(key=key, scores=tuple(left_scores), payload=None)
    right = RankTuple(key=key, scores=tuple(right_scores), payload=None)
    return JoinResult.combine(left, right, score)


def outcome(shard, results=(), frontier=NEG_INF, pulls=0, exhausted=False):
    return AdvanceOutcome(
        shard=shard, results=tuple(results), pulls=pulls,
        depth_left=0, depth_right=0, frontier=frontier, exhausted=exhausted,
    )


class TestEmitGate:
    def test_holds_result_while_any_frontier_reaches_it(self):
        merger = GlobalTopKMerger([0, 1])
        merger.offer(outcome(0, [make_result(1, 0.8)], frontier=0.5))
        # Shard 1 could still produce a 0.9: the 0.8 must not be released.
        merger.offer(outcome(1, [], frontier=0.9))
        assert merger.pop_ready() is None
        assert merger.blocking_shards() == [1]

    def test_releases_once_all_frontiers_drop(self):
        merger = GlobalTopKMerger([0, 1])
        merger.offer(outcome(0, [make_result(1, 0.8)], frontier=0.5))
        merger.offer(outcome(1, [], frontier=0.9))
        merger.offer(outcome(1, [], frontier=0.7))
        released = merger.pop_ready()
        assert released is not None and released.score == 0.8

    def test_equal_frontier_blocks_release(self):
        # frontier == score means the shard may still TIE the candidate;
        # releasing now would fix the tie order before all members exist.
        merger = GlobalTopKMerger([0, 1])
        merger.offer(outcome(0, [make_result(1, 0.8)], frontier=0.5))
        merger.offer(outcome(1, [], frontier=0.8))
        assert merger.pop_ready() is None

    def test_exhausted_shard_stops_blocking(self):
        merger = GlobalTopKMerger([0, 1])
        merger.offer(outcome(0, [make_result(1, 0.8)], frontier=0.5))
        merger.offer(outcome(1, [], frontier=0.9, exhausted=True))
        assert merger.pop_ready().score == 0.8

    def test_decreasing_score_order_across_shards(self):
        merger = GlobalTopKMerger([0, 1])
        merger.offer(outcome(0, [make_result(1, 0.9), make_result(1, 0.3)],
                             exhausted=True))
        merger.offer(outcome(1, [make_result(2, 0.6)], exhausted=True))
        scores = []
        while (result := merger.pop_ready()) is not None:
            scores.append(result.score)
        assert scores == [0.9, 0.6, 0.3]
        assert merger.done()


class TestTieOrdering:
    def test_ties_release_in_canonical_identity_order(self):
        tie_a = make_result(7, 1.0, left_scores=(0.6, 0.4))
        tie_b = make_result(3, 1.0, left_scores=(0.5, 0.5))
        expected = sorted([tie_a, tie_b], key=result_identity)

        # Offer in both arrival orders; release order must be identical.
        for first, second in ((tie_a, tie_b), (tie_b, tie_a)):
            merger = GlobalTopKMerger([0, 1])
            merger.offer(outcome(0, [first], exhausted=True))
            merger.offer(outcome(1, [second], exhausted=True))
            released = [merger.pop_ready(), merger.pop_ready()]
            assert [result_identity(r) for r in released] \
                == [result_identity(r) for r in expected]


class TestBookkeeping:
    def test_threshold_is_max_live_frontier(self):
        merger = GlobalTopKMerger([0, 1, 2])
        merger.offer(outcome(0, [], frontier=0.4))
        merger.offer(outcome(1, [], frontier=0.9))
        merger.offer(outcome(2, [], frontier=0.6, exhausted=True))
        assert merger.threshold == 0.9
        assert merger.live_shards == [0, 1]

    def test_blocking_defaults_to_all_live_without_candidates(self):
        merger = GlobalTopKMerger([0, 1])
        assert merger.blocking_shards() == [0, 1]

    def test_done_requires_drained_shards_and_empty_heap(self):
        merger = GlobalTopKMerger([0])
        assert not merger.done()
        merger.offer(outcome(0, [make_result(1, 0.5)], exhausted=True))
        assert not merger.done()
        assert merger.pop_ready().score == 0.5
        assert merger.done()

    def test_snapshot_counts(self):
        merger = GlobalTopKMerger([0])
        merger.offer(outcome(0, [make_result(1, 0.5)], exhausted=True))
        merger.pop_ready()
        snap = merger.snapshot()
        assert snap["offered"] == 1 and snap["released"] == 1
        assert snap["live_shards"] == [] and snap["pending_candidates"] == 0
