"""Worker and backend tests: quantum accounting, backend equivalence."""

import pytest

from repro.data.workload import random_instance
from repro.errors import InstanceError
from repro.exec import (
    ExecConfig,
    HashPartitionPlan,
    ShardWorker,
    make_backend,
    partition_instance,
)


@pytest.fixture(scope="module")
def shard_instances():
    instance = random_instance(
        n_left=300, n_right=300, e_left=2, e_right=2, num_keys=30, k=10, seed=2
    )
    shards, _ = partition_instance(instance, HashPartitionPlan(3))
    return [s for s in shards if len(s.left) and len(s.right)]


def make_workers(shard_instances):
    return [ShardWorker(i, inst, "FRPA") for i, inst in enumerate(shard_instances)]


class TestExecConfig:
    def test_defaults(self):
        config = ExecConfig()
        assert config.shards == 1 and config.backend == "thread"

    @pytest.mark.parametrize("kwargs", [
        {"shards": 0},
        {"quantum": 0},
        {"backend": "gpu"},
        {"partitioner": "range"},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(InstanceError):
            ExecConfig(**kwargs)


class TestShardWorker:
    def test_advance_respects_quantum(self, shard_instances):
        worker = ShardWorker(0, shard_instances[0], "FRPA")
        outcome = worker.advance(10)
        assert outcome.pulls <= 10
        assert outcome.depth_left + outcome.depth_right == outcome.pulls

    def test_results_in_decreasing_score_order(self, shard_instances):
        worker = ShardWorker(0, shard_instances[0], "FRPA")
        scores = []
        while not worker.exhausted:
            outcome = worker.advance(50)
            scores.extend(r.score for r in outcome.results)
        assert scores == sorted(scores, reverse=True)

    def test_frontier_is_non_increasing(self, shard_instances):
        worker = ShardWorker(0, shard_instances[0], "FRPA")
        previous = float("inf")
        while not worker.exhausted:
            outcome = worker.advance(25)
            assert outcome.frontier <= previous + 1e-9
            previous = outcome.frontier

    def test_frontier_bounds_future_results(self, shard_instances):
        worker = ShardWorker(0, shard_instances[0], "FRPA")
        outcome = worker.advance(40)
        frontier = outcome.frontier
        later = []
        while not worker.exhausted:
            later.extend(worker.advance(50).results)
        assert all(r.score <= frontier + 1e-9 for r in later)

    def test_exhausted_worker_advance_is_noop(self, shard_instances):
        worker = ShardWorker(0, shard_instances[0], "FRPA")
        while not worker.exhausted:
            worker.advance(100)
        outcome = worker.advance(100)
        assert outcome.exhausted and outcome.results == () and outcome.pulls == 0

    def test_total_results_match_shard_join_size(self, shard_instances):
        for index, shard in enumerate(shard_instances):
            worker = ShardWorker(index, shard, "FRPA")
            total = 0
            while not worker.exhausted:
                total += len(worker.advance(100).results)
            assert total == shard.join_size()


class TestBackends:
    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_backends_agree(self, shard_instances, name):
        backend = make_backend(name)
        backend.start(make_workers(shard_instances))
        reference = make_backend("serial")
        reference.start(make_workers(shard_instances))
        try:
            for _ in range(5):
                requests = [(i, 20) for i in range(len(shard_instances))]
                got = backend.advance(requests)
                want = reference.advance(requests)
                assert [o.pulls for o in got] == [o.pulls for o in want]
                assert [
                    [r.score for r in o.results] for o in got
                ] == [[r.score for r in o.results] for o in want]
                assert [o.frontier for o in got] == [o.frontier for o in want]
        finally:
            backend.close()
            reference.close()

    def test_unknown_backend(self):
        with pytest.raises(InstanceError, match="unknown backend"):
            make_backend("gpu")

    def test_close_is_idempotent(self, shard_instances):
        for name in ("serial", "thread", "process"):
            backend = make_backend(name)
            backend.start(make_workers(shard_instances))
            backend.advance([(0, 5)])
            backend.close()
            backend.close()

    def test_thread_backend_reopens_after_close(self, shard_instances):
        backend = make_backend("thread")
        backend.start(make_workers(shard_instances))
        first = backend.advance([(0, 10)])
        backend.close()
        second = backend.advance([(0, 10)])
        assert second[0].pulls > 0
        assert second[0].depth_left + second[0].depth_right \
            == first[0].pulls + second[0].pulls
        backend.close()
