"""`ShardedRankJoin` tests — headlined by the correctness invariant:

    sharded top-K == serial top-K (scores bit-for-bit, ties in canonical
    identity order) on every seed workload, for shards ∈ {1, 2, 4, 8}.
"""

import pytest

from repro.core.stepping import PENDING, ResumableOperator
from repro.exec import ExecConfig, ShardedRankJoin
from repro.obs import Observability
from repro.service import QuerySession, QueryService, QuerySpec, SessionState

from tests.exec.conftest import SEED_WORKLOADS, canonical_top_k, identity_view


class TestShardedEqualsSerial:
    """The test-enforced invariant from the merge design."""

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("workload", SEED_WORKLOADS)
    def test_invariant_on_seed_workloads(self, workloads, workload, shards):
        instance = workloads[workload]
        k = instance.k
        reference = canonical_top_k(instance, k)
        with ShardedRankJoin(
            instance, "FRPA", config=ExecConfig(shards=shards, backend="serial")
        ) as engine:
            sharded = engine.top_k(k)
        assert identity_view(sharded) == identity_view(reference)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_never_changes_the_answer(self, workloads, backend):
        instance = workloads["uniform"]
        reference = canonical_top_k(instance, instance.k)
        with ShardedRankJoin(
            instance, "FRPA", config=ExecConfig(shards=4, backend=backend)
        ) as engine:
            sharded = engine.top_k(instance.k)
        assert identity_view(sharded) == identity_view(reference)

    @pytest.mark.parametrize("operator", ["HRJN", "HRJN*", "a-FRPA"])
    def test_invariant_holds_for_other_operators(self, workloads, operator):
        instance = workloads["zipf"]
        reference = canonical_top_k(instance, instance.k, operator=operator)
        with ShardedRankJoin(
            instance, operator, config=ExecConfig(shards=4, backend="serial")
        ) as engine:
            sharded = engine.top_k(instance.k)
        assert identity_view(sharded) == identity_view(reference)

    def test_skew_partitioner_same_answer(self, workloads):
        instance = workloads["zipf"]
        reference = canonical_top_k(instance, instance.k)
        config = ExecConfig(shards=4, backend="serial", partitioner="skew")
        with ShardedRankJoin(instance, "FRPA", config=config) as engine:
            sharded = engine.top_k(instance.k)
        assert identity_view(sharded) == identity_view(reference)

    def test_full_drain_matches_serial(self, workloads):
        instance = workloads["uniform"]
        join_size = instance.join_size()
        reference = canonical_top_k(instance, join_size)
        with ShardedRankJoin(
            instance, "FRPA", config=ExecConfig(shards=4, backend="serial")
        ) as engine:
            sharded = list(engine)
        assert len(sharded) == join_size
        assert identity_view(sharded) == identity_view(reference)


class TestResumableContract:
    def test_satisfies_resumable_operator_protocol(self, workloads):
        with ShardedRankJoin(workloads["uniform"], "FRPA") as engine:
            assert isinstance(engine, ResumableOperator)

    def test_try_next_budget_is_respected(self, workloads):
        instance = workloads["uniform"]
        engine = ShardedRankJoin(
            instance, "FRPA", config=ExecConfig(shards=4, backend="serial")
        )
        results = []
        with engine:
            while True:
                before = engine.pulls
                step = engine.try_next(max_pulls=7)
                assert engine.pulls - before <= 7
                if step is None:
                    break
                if step is not PENDING:
                    results.append(step)
        reference = canonical_top_k(instance, instance.join_size())
        assert identity_view(results) == identity_view(reference)

    def test_try_next_zero_budget_never_pulls(self, workloads):
        engine = ShardedRankJoin(
            workloads["uniform"], "FRPA",
            config=ExecConfig(shards=2, backend="serial"),
        )
        with engine:
            assert engine.try_next(max_pulls=0) is PENDING
            assert engine.pulls == 0

    def test_top_k_is_resumable(self, workloads):
        instance = workloads["uniform"]
        with ShardedRankJoin(
            instance, "FRPA", config=ExecConfig(shards=4, backend="serial")
        ) as engine:
            first = engine.top_k(5)
            pulls_after_five = engine.pulls
            extended = engine.top_k(10)
            assert extended[:5] == first
            assert engine.pulls >= pulls_after_five
            # Shrinking k is answered from the retained prefix, zero pulls.
            pulls_before = engine.pulls
            assert engine.top_k(3) == extended[:3]
            assert engine.pulls == pulls_before

    def test_exhaustion_is_terminal(self, workloads):
        with ShardedRankJoin(
            workloads["uniform"], "FRPA",
            config=ExecConfig(shards=2, backend="serial"),
        ) as engine:
            list(engine)
            assert engine.get_next() is None
            assert engine.try_next(max_pulls=5) is None


class TestInstrumentation:
    def test_per_shard_pull_counters_sum_to_total(self, workloads):
        obs = Observability()
        config = ExecConfig(shards=4, backend="serial")
        with ShardedRankJoin(
            workloads["uniform"], "FRPA", config=config, obs=obs
        ) as engine:
            engine.top_k(10)
            total = sum(
                obs.metrics.value(
                    "exec_shard_pulls_total", op=engine.name, shard=str(shard)
                ) or 0
                for shard in range(4)
            )
            assert total == engine.pulls > 0
            assert obs.metrics.value(
                "exec_shard_imbalance", op=engine.name
            ) == engine.partition_stats.imbalance
            assert obs.metrics.value(
                "exec_rounds_total", op=engine.name
            ) == engine.rounds

    def test_merge_wait_histogram_records_emissions(self, workloads):
        obs = Observability()
        with ShardedRankJoin(
            workloads["uniform"], "FRPA",
            config=ExecConfig(shards=2, backend="serial"), obs=obs,
        ) as engine:
            emitted = len(engine.top_k(10))
        histogram = obs.metrics.histogram(
            "exec_merge_wait_rounds", op=engine.name
        )
        assert histogram.count == emitted

    def test_depth_reporting(self, workloads):
        with ShardedRankJoin(
            workloads["uniform"], "FRPA",
            config=ExecConfig(shards=4, backend="serial"),
        ) as engine:
            engine.top_k(10)
            depths = engine.depths()
            assert depths.left + depths.right == engine.pulls
            per_shard = engine.shard_depths()
            assert sum(left for left, _ in per_shard.values()) == depths.left

    def test_snapshot_shape(self, workloads):
        with ShardedRankJoin(
            workloads["uniform"], "FRPA",
            config=ExecConfig(shards=2, backend="serial"),
        ) as engine:
            engine.top_k(5)
            snap = engine.snapshot()
        assert snap["config"]["shards"] == 2
        assert snap["emitted"] == 5
        assert snap["merge"]["released"] >= 5


class TestServiceIntegration:
    def test_drop_in_query_session(self, workloads):
        instance = workloads["uniform"]
        k = instance.k
        engine = ShardedRankJoin(
            instance, "FRPA", config=ExecConfig(shards=4, backend="serial")
        )
        with engine:
            session = QuerySession("s1", engine, k, quantum=16)
            while session.state not in (
                SessionState.DONE, SessionState.FAILED, SessionState.CANCELLED
            ):
                session.step()
            assert session.state is SessionState.DONE
            assert identity_view(session.results) \
                == identity_view(canonical_top_k(instance, k))

    def test_sharded_spec_through_service(self, workloads):
        instance = workloads["uniform"]
        service = QueryService()
        spec = QuerySpec(
            relations=(instance.left, instance.right), k=8,
            shards=4, exec_backend="serial",
        )
        answer = service.run_query(spec)
        assert identity_view(answer) == identity_view(canonical_top_k(instance, 8))
        # Repeat is a cache hit (sharded specs have their own namespace).
        again = service.run_query(QuerySpec(
            relations=(instance.left, instance.right), k=8,
            shards=4, exec_backend="serial",
        ))
        assert identity_view(again) == identity_view(answer)
        assert service.cache.stats()["hits"] == 1

    def test_sharded_and_serial_specs_do_not_share_cache(self, workloads):
        instance = workloads["uniform"]
        serial = QuerySpec(relations=(instance.left, instance.right), k=8)
        sharded = QuerySpec(
            relations=(instance.left, instance.right), k=8, shards=4
        )
        assert serial.fingerprint() != sharded.fingerprint()
        # Backend choice must NOT split the cache namespace.
        threaded = QuerySpec(
            relations=(instance.left, instance.right), k=8, shards=4,
            exec_backend="thread",
        )
        assert sharded.fingerprint() == threaded.fingerprint()

    def test_multiway_rejects_shards(self, workloads):
        instance = workloads["uniform"]
        with pytest.raises(Exception, match="binary"):
            QuerySpec(
                relations=(instance.left, instance.right, instance.left),
                k=5, join_attrs=("a", "b"), shards=2,
            )
