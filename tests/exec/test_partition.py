"""Partitioner tests: determinism, order preservation, skew handling."""

import subprocess
import sys

import pytest

from repro.data.workload import random_instance
from repro.errors import InstanceError
from repro.exec import (
    HashPartitionPlan,
    SkewAwarePlan,
    make_plan,
    partition_instance,
    partition_relation,
    skew_aware_plan,
    stable_key_hash,
)
from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.relation.relation import RankJoinInstance, Relation


def make_relation(name, rows):
    return Relation(
        name,
        [RankTuple(key=key, scores=tuple(scores), payload=None)
         for key, scores in rows],
    )


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_key_hash(42) == stable_key_hash(42)
        assert stable_key_hash("abc") == stable_key_hash("abc")

    def test_deterministic_across_processes(self):
        # Python's builtin hash() is salted per process for strings; the
        # partitioner hash must not be.
        code = "from repro.exec import stable_key_hash; print(stable_key_hash('abc'))"
        runs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": str(seed)},
            ).stdout.strip()
            for seed in (1, 2)
        }
        assert len(runs) == 1
        assert runs == {str(stable_key_hash("abc"))}

    def test_spreads_over_shards(self):
        plan = HashPartitionPlan(8)
        used = {plan.shard_of(key) for key in range(1000)}
        assert used == set(range(8))


class TestHashPartition:
    def test_one_shard_is_identity(self):
        rel = make_relation("r", [(1, (0.9, 0.1)), (2, (0.5, 0.5))])
        [shard] = partition_relation(rel, HashPartitionPlan(1))
        assert [t.key for t in shard.tuples] == [1, 2]

    def test_preserves_input_order_per_shard(self):
        rel = make_relation("r", [(k, (1.0 - k / 100, 0.0)) for k in range(50)])
        shards = partition_relation(rel, HashPartitionPlan(4))
        for shard in shards:
            positions = [rel.tuples.index(t) for t in shard.tuples]
            assert positions == sorted(positions)

    def test_partition_is_exact_cover(self):
        rel = make_relation("r", [(k % 7, (k / 100, 0.5)) for k in range(60)])
        shards = partition_relation(rel, HashPartitionPlan(4))
        assert sum(len(s) for s in shards) == len(rel)
        # Same key never lands on two shards.
        for key in range(7):
            owners = [i for i, s in enumerate(shards)
                      if any(t.key == key for t in s.tuples)]
            assert len(owners) <= 1

    def test_empty_shards_keep_parent_dimension(self):
        rel = make_relation("r", [(1, (0.9, 0.1))])
        shards = partition_relation(rel, HashPartitionPlan(4))
        assert all(s.dimension == 2 for s in shards)

    def test_rejects_zero_shards(self):
        with pytest.raises(InstanceError):
            HashPartitionPlan(0)


class TestSkewAwarePlan:
    def make_skewed(self):
        # Key 0 carries ~78% of all join pairs (a zipf-style heavy hitter).
        left = make_relation(
            "l", [(0, (0.9, 0.1))] * 30 + [(k, (0.5, 0.5)) for k in range(1, 11)]
        )
        right = make_relation(
            "r", [(0, (0.8, 0.2))] * 30 + [(k, (0.4, 0.6)) for k in range(1, 11)]
        )
        return left, right

    def test_heavy_key_gets_dedicated_shard(self):
        left, right = self.make_skewed()
        plan = skew_aware_plan(left, right, 4)
        assert 0 in plan.dedicated
        heavy_shard = plan.shard_of(0)
        # No light key shares the heavy hitter's shard.
        assert all(plan.shard_of(k) != heavy_shard for k in range(1, 11))

    def test_skew_plan_beats_hash_on_imbalance(self):
        left, right = self.make_skewed()
        instance = RankJoinInstance(left, right, SumScore(), 2)
        _, hash_stats = partition_instance(instance, make_plan(left, right, 4))
        _, skew_stats = partition_instance(
            instance, make_plan(left, right, 4, partitioner="skew")
        )
        assert skew_stats.imbalance <= hash_stats.imbalance

    def test_no_heavy_keys_degenerates_to_hash(self):
        left = make_relation("l", [(k, (0.5, 0.5)) for k in range(40)])
        right = make_relation("r", [(k, (0.5, 0.5)) for k in range(40)])
        plan = skew_aware_plan(left, right, 4, heavy_fraction=0.9)
        assert plan.dedicated == {}

    def test_single_shard_trivial(self):
        left, right = self.make_skewed()
        plan = skew_aware_plan(left, right, 1)
        assert plan.shard_of(0) == 0 and plan.shard_of(5) == 0


class TestPartitionInstance:
    def test_stats_account_every_pair(self):
        instance = random_instance(
            n_left=200, n_right=200, e_left=2, e_right=2,
            num_keys=20, k=5, seed=7,
        )
        shards, stats = partition_instance(instance, HashPartitionPlan(4))
        assert stats.total_pairs == instance.join_size()
        assert sum(len(s.left) for s in shards) == len(instance.left)
        assert sum(len(s.right) for s in shards) == len(instance.right)
        assert stats.imbalance >= 1.0

    def test_shards_inherit_scoring_and_k(self):
        instance = random_instance(
            n_left=50, n_right=50, e_left=2, e_right=2, num_keys=5, k=3, seed=7
        )
        shards, _ = partition_instance(instance, HashPartitionPlan(2))
        assert all(s.scoring is instance.scoring for s in shards)
        assert all(s.k == instance.k for s in shards)

    def test_unknown_partitioner_rejected(self):
        rel = make_relation("r", [(1, (0.5, 0.5))])
        with pytest.raises(InstanceError, match="unknown partitioner"):
            make_plan(rel, rel, 2, partitioner="range")

    def test_describe(self):
        rel = make_relation("r", [(1, (0.5, 0.5))])
        assert make_plan(rel, rel, 4).describe() == "hash(4)"
        assert SkewAwarePlan(4, {1: 0}).describe() == "skew(4, heavy=1)"
