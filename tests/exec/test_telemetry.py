"""Tests for the worker telemetry relay: capsules, deltas, sink merging."""

import pickle

from repro.exec import CapsuleSink, WorkerTelemetry
from repro.obs import JsonlExporter, Observability, TraceContext, read_events


def _telemetry(shard: int = 0) -> WorkerTelemetry:
    return WorkerTelemetry(shard, TraceContext.root().child())


class TestWorkerTelemetry:
    def test_record_quantum_updates_counters(self):
        telemetry = _telemetry()
        telemetry.record_quantum(0, pulls=32, results=3, seconds=0.01)
        capsule = telemetry.drain()
        metrics = {
            (r["name"], r["labels"].get("shard")): r for r in capsule.metrics
        }
        assert metrics[("worker_pulls_total", "0")]["value"] == 32
        assert metrics[("worker_results_total", "0")]["value"] == 3
        assert metrics[("worker_quanta_total", "0")]["value"] == 1

    def test_drain_is_delta(self):
        telemetry = _telemetry()
        telemetry.record_quantum(0, pulls=10, results=1, seconds=0.01)
        first = telemetry.drain()
        assert first is not None and not first.empty
        # Nothing recorded since: the next drain ships nothing.
        assert telemetry.drain() is None
        telemetry.record_quantum(1, pulls=5, results=0, seconds=0.01)
        second = telemetry.drain()
        pulls = [
            r for r in second.metrics if r["name"] == "worker_pulls_total"
        ]
        assert pulls and pulls[0]["value"] == 5  # delta, not cumulative 15

    def test_capsule_pickles(self):
        telemetry = _telemetry()
        telemetry.record_quantum(0, pulls=8, results=2, seconds=0.001)
        capsule = telemetry.drain()
        clone = pickle.loads(pickle.dumps(capsule))
        assert clone.shard == capsule.shard
        assert clone.metrics == capsule.metrics
        assert clone.traces == capsule.traces

    def test_trace_records_parent_to_context(self):
        ctx = TraceContext.root().child()
        telemetry = WorkerTelemetry(2, ctx)
        telemetry.record_quantum(0, pulls=4, results=0, seconds=0.001)
        (record,) = telemetry.drain().traces
        assert record["name"] == "quantum"
        assert record["trace"] == ctx.trace_id
        assert record["parent"] == ctx.span_id
        assert record["shard"] == 2

    def test_clone_keeps_identity_resets_counters(self):
        telemetry = _telemetry()
        telemetry.record_quantum(0, pulls=10, results=1, seconds=0.01)
        fresh = telemetry.clone()
        assert fresh.shard == telemetry.shard
        assert fresh.ctx == telemetry.ctx
        assert fresh.drain() is None


class TestCapsuleSink:
    def test_absorb_merges_with_shard_labels(self):
        obs = Observability(enabled=True)
        sink = CapsuleSink(obs, "hrjn")
        for shard in (0, 1):
            telemetry = _telemetry(shard)
            telemetry.record_quantum(0, pulls=16, results=1, seconds=0.001)
            sink.absorb(telemetry.drain())
        registry = obs.metrics
        assert registry.counter("worker_pulls_total", shard="0").value == 16
        assert registry.counter("worker_pulls_total", shard="1").value == 16

    def test_absorb_none_is_noop(self):
        obs = Observability(enabled=True)
        CapsuleSink(obs, "hrjn").absorb(None)
        assert obs.metrics.snapshot() == []

    def test_replayed_capsules_labelled(self):
        obs = Observability(enabled=True)
        sink = CapsuleSink(obs, "hrjn")
        telemetry = _telemetry()
        telemetry.record_quantum(0, pulls=16, results=1, seconds=0.001)
        sink.absorb(telemetry.drain(), replayed=True)
        registry = obs.metrics
        assert registry.counter(
            "worker_pulls_total", shard="0", replay="1"
        ).value == 16
        # The unlabelled series stays untouched.
        assert registry.counter("worker_pulls_total", shard="0").value == 0

    def test_replayed_trace_records_flagged(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs = Observability(enabled=True, exporters=[JsonlExporter(path)])
        sink = CapsuleSink(obs, "hrjn")
        telemetry = _telemetry()
        telemetry.record_quantum(0, pulls=4, results=0, seconds=0.001)
        sink.absorb(telemetry.drain(), replayed=True)
        obs.close()
        quanta = [e for e in read_events(path) if e.get("name") == "quantum"]
        assert quanta and all(e.get("replay") for e in quanta)
