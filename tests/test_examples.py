"""Smoke tests: the fast example scripts run end-to-end and print sanely.

The slower, experiment-scale examples (reproduce_paper, bound_evolution)
are exercised by the benchmark suite instead.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

FAST_EXAMPLES = {
    "quickstart.py": ["sumDepths", "naive reads all"],
    "robustness.py": ["FRPA", "naive join would read"],
    "middleware_aggregation.py": ["sorted accesses", "restaurant-"],
}


@pytest.mark.parametrize("script,markers", sorted(FAST_EXAMPLES.items()))
def test_example_runs(script, markers):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for marker in markers:
        assert marker in completed.stdout


def test_all_examples_present_and_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 8
    for path in EXAMPLES.glob("*.py"):
        head = path.read_text().split("\n", 3)
        assert head[1].startswith('"""'), f"{path.name} lacks a docstring"
