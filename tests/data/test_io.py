"""Tests for CSV persistence of relations."""

import pytest

from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.data.io import (
    load_csv,
    load_relation_csv,
    save_relation_csv,
    save_tables_csv,
)
from repro.data.tpch import TPCHConfig, generate_tpch
from repro.errors import InstanceError, WorkloadError
from repro.relation.relation import RankJoinInstance, Relation


@pytest.fixture
def relation():
    return Relation(
        "demo",
        [
            RankTuple(key=1, scores=(0.9, 0.1), payload={"city": 7, "name": "a"}),
            RankTuple(key=2, scores=(0.5, 0.5), payload={"city": 8, "name": "b"}),
            RankTuple(key=1, scores=(0.2, 0.8), payload=None),
        ],
    )


class TestRoundTrip:
    def test_roundtrip_preserves_tuples(self, relation, tmp_path):
        path = tmp_path / "demo.csv"
        save_relation_csv(relation, path)
        loaded = load_relation_csv(path)
        assert loaded.name == "demo"
        assert len(loaded) == 3
        assert loaded.dimension == 2
        assert loaded.tuples[0].key == 1
        assert loaded.tuples[0].scores == (0.9, 0.1)
        assert loaded.tuples[0].payload == {"city": 7, "name": "a"}

    def test_roundtrip_none_payload(self, relation, tmp_path):
        path = tmp_path / "demo.csv"
        save_relation_csv(relation, path)
        loaded = load_relation_csv(path)
        assert loaded.tuples[2].payload is None

    def test_loaded_relation_is_usable_in_instance(self, relation, tmp_path):
        path = tmp_path / "demo.csv"
        save_relation_csv(relation, path)
        loaded = load_relation_csv(path)
        instance = RankJoinInstance(loaded, relation, SumScore(), k=1)
        assert instance.join_size() > 0

    def test_custom_name(self, relation, tmp_path):
        path = tmp_path / "x.csv"
        save_relation_csv(relation, path)
        assert load_relation_csv(path, name="renamed").name == "renamed"

    def test_string_keys_preserved(self, tmp_path):
        rel = Relation("s", [RankTuple(key="paris", scores=(0.5,))])
        path = tmp_path / "s.csv"
        save_relation_csv(rel, path)
        assert load_relation_csv(path).tuples[0].key == "paris"

    def test_zero_score_relation(self, tmp_path):
        rel = Relation("z", [RankTuple(key=1, scores=())])
        path = tmp_path / "z.csv"
        save_relation_csv(rel, path)
        loaded = load_relation_csv(path)
        assert loaded.dimension == 0


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(InstanceError):
            load_relation_csv(path)

    def test_missing_key_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(InstanceError):
            load_relation_csv(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("key,score_0\n1,0.5\n2\n")
        with pytest.raises(InstanceError):
            load_relation_csv(path)


class TestTables:
    def test_save_tables_writes_all(self, tmp_path):
        tables = generate_tpch(TPCHConfig(scale=0.0002), seed=0)
        written = save_tables_csv(tables, tmp_path)
        assert {p.name for p in written} == {
            "customer.csv", "orders.csv", "lineitem.csv", "part.csv",
        }
        lineitem = load_relation_csv(tmp_path / "lineitem.csv")
        assert len(lineitem) == tables["lineitem"].size
        assert "partkey" in lineitem.tuples[0].payload


class TestLoadCSV:
    """The external-data loader (``score_col`` names the score columns)."""

    def write(self, tmp_path, text, name="data.csv"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_loads_scores_and_payload(self, tmp_path):
        path = self.write(
            tmp_path, "title,rating,year,key\nHeat,9.1,1995,1\nRonin,8.0,1998,2\n"
        )
        relation = load_csv(path, "rating")
        assert relation.name == "data"
        assert [t.scores for t in relation.tuples] == [(9.1,), (8.0,)]
        assert relation.tuples[0].payload == {"title": "Heat", "year": 1995}
        assert relation.tuples[0].key == 1

    def test_multiple_score_columns(self, tmp_path):
        path = self.write(tmp_path, "key,a,b\n1,0.5,0.25\n")
        relation = load_csv(path, ["a", "b"], name="scored")
        assert relation.name == "scored"
        assert relation.dimension == 2
        assert relation.tuples[0].scores == (0.5, 0.25)

    def test_custom_key_column(self, tmp_path):
        path = self.write(tmp_path, "orderkey,price\n7,0.9\n")
        relation = load_csv(path, "price", key_col="orderkey")
        assert relation.tuples[0].key == 7

    def test_loaded_relation_joins(self, tmp_path):
        left = load_csv(self.write(tmp_path, "key,s\n1,0.9\n2,0.5\n", "l.csv"), "s")
        right = load_csv(self.write(tmp_path, "key,s\n1,0.8\n", "r.csv"), "s")
        instance = RankJoinInstance(left, right, SumScore(), 1)
        assert instance.join_size() == 1

    def test_missing_file_is_one_line_workload_error(self, tmp_path):
        with pytest.raises(WorkloadError) as err:
            load_csv(tmp_path / "nope.csv", "s")
        assert "\n" not in str(err.value)
        assert "nope.csv" in str(err.value)

    @pytest.mark.parametrize("content,fragment", [
        ("title,rating\nHeat,9.1\n", "missing column"),
        ("key,rating\n1,high\n", "not a number"),
        ("key,rating\n1,nan\n", "must be finite"),
        ("key,rating\n1,inf\n", "must be finite"),
        ("key,rating\n1,9.1,extra\n", "expected 2 cells"),
        ("key,rating\n,9.1\n", "empty join key"),
        ("key,rating\n", "no data rows"),
        ("", "empty file"),
    ])
    def test_malformed_rows_are_one_line_errors(self, tmp_path, content, fragment):
        path = self.write(tmp_path, content)
        with pytest.raises(WorkloadError) as err:
            load_csv(path, "rating")
        message = str(err.value)
        assert fragment in message
        assert "\n" not in message

    def test_row_errors_carry_file_and_row(self, tmp_path):
        path = self.write(tmp_path, "key,rating\n1,0.5\n2,oops\n")
        with pytest.raises(WorkloadError, match=r"data\.csv:3"):
            load_csv(path, "rating")
