"""Tests for CSV persistence of relations."""

import pytest

from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.data.io import load_relation_csv, save_relation_csv, save_tables_csv
from repro.data.tpch import TPCHConfig, generate_tpch
from repro.errors import InstanceError
from repro.relation.relation import RankJoinInstance, Relation


@pytest.fixture
def relation():
    return Relation(
        "demo",
        [
            RankTuple(key=1, scores=(0.9, 0.1), payload={"city": 7, "name": "a"}),
            RankTuple(key=2, scores=(0.5, 0.5), payload={"city": 8, "name": "b"}),
            RankTuple(key=1, scores=(0.2, 0.8), payload=None),
        ],
    )


class TestRoundTrip:
    def test_roundtrip_preserves_tuples(self, relation, tmp_path):
        path = tmp_path / "demo.csv"
        save_relation_csv(relation, path)
        loaded = load_relation_csv(path)
        assert loaded.name == "demo"
        assert len(loaded) == 3
        assert loaded.dimension == 2
        assert loaded.tuples[0].key == 1
        assert loaded.tuples[0].scores == (0.9, 0.1)
        assert loaded.tuples[0].payload == {"city": 7, "name": "a"}

    def test_roundtrip_none_payload(self, relation, tmp_path):
        path = tmp_path / "demo.csv"
        save_relation_csv(relation, path)
        loaded = load_relation_csv(path)
        assert loaded.tuples[2].payload is None

    def test_loaded_relation_is_usable_in_instance(self, relation, tmp_path):
        path = tmp_path / "demo.csv"
        save_relation_csv(relation, path)
        loaded = load_relation_csv(path)
        instance = RankJoinInstance(loaded, relation, SumScore(), k=1)
        assert instance.join_size() > 0

    def test_custom_name(self, relation, tmp_path):
        path = tmp_path / "x.csv"
        save_relation_csv(relation, path)
        assert load_relation_csv(path, name="renamed").name == "renamed"

    def test_string_keys_preserved(self, tmp_path):
        rel = Relation("s", [RankTuple(key="paris", scores=(0.5,))])
        path = tmp_path / "s.csv"
        save_relation_csv(rel, path)
        assert load_relation_csv(path).tuples[0].key == "paris"

    def test_zero_score_relation(self, tmp_path):
        rel = Relation("z", [RankTuple(key=1, scores=())])
        path = tmp_path / "z.csv"
        save_relation_csv(rel, path)
        loaded = load_relation_csv(path)
        assert loaded.dimension == 0


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(InstanceError):
            load_relation_csv(path)

    def test_missing_key_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(InstanceError):
            load_relation_csv(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("key,score_0\n1,0.5\n2\n")
        with pytest.raises(InstanceError):
            load_relation_csv(path)


class TestTables:
    def test_save_tables_writes_all(self, tmp_path):
        tables = generate_tpch(TPCHConfig(scale=0.0002), seed=0)
        written = save_tables_csv(tables, tmp_path)
        assert {p.name for p in written} == {
            "customer.csv", "orders.csv", "lineitem.csv", "part.csv",
        }
        lineitem = load_relation_csv(tmp_path / "lineitem.csv")
        assert len(lineitem) == tables["lineitem"].size
        assert "partkey" in lineitem.tuples[0].payload
