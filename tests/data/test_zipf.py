"""Tests for the bounded Zipf sampler."""

import numpy as np
import pytest

from repro.data.zipf import sample_zipf_ranks, zipf_probabilities, zipf_weights


class TestWeights:
    def test_uniform_at_zero_skew(self):
        weights = zipf_weights(5, 0.0)
        np.testing.assert_allclose(weights, np.ones(5))

    def test_decreasing_with_rank(self):
        weights = zipf_weights(10, 1.0)
        assert all(weights[i] > weights[i + 1] for i in range(9))

    def test_probabilities_normalized(self):
        probs = zipf_probabilities(100, 0.7)
        assert probs.sum() == pytest.approx(1.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 0.5)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)


class TestSampling:
    def test_range(self):
        rng = np.random.default_rng(0)
        ranks = sample_zipf_ranks(rng, 1000, 50, 1.0)
        assert ranks.min() >= 0
        assert ranks.max() < 50

    def test_zero_size(self):
        rng = np.random.default_rng(0)
        assert len(sample_zipf_ranks(rng, 0, 50, 1.0)) == 0

    def test_negative_size_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_zipf_ranks(rng, -1, 50, 1.0)

    def test_uniform_when_unskewed(self):
        rng = np.random.default_rng(1)
        ranks = sample_zipf_ranks(rng, 20_000, 10, 0.0)
        counts = np.bincount(ranks, minlength=10)
        # Each bucket should get roughly 2000 hits.
        assert counts.min() > 1700
        assert counts.max() < 2300

    def test_skew_concentrates_low_ranks(self):
        rng = np.random.default_rng(2)
        ranks = sample_zipf_ranks(rng, 20_000, 100, 1.0)
        low = (ranks < 10).mean()
        high = (ranks >= 90).mean()
        assert low > 3 * high

    def test_empirical_matches_theoretical(self):
        rng = np.random.default_rng(3)
        n_ranks, skew = 20, 0.8
        ranks = sample_zipf_ranks(rng, 50_000, n_ranks, skew)
        empirical = np.bincount(ranks, minlength=n_ranks) / 50_000
        theoretical = zipf_probabilities(n_ranks, skew)
        np.testing.assert_allclose(empirical, theoretical, atol=0.01)

    def test_deterministic_for_seed(self):
        a = sample_zipf_ranks(np.random.default_rng(7), 100, 50, 0.5)
        b = sample_zipf_ranks(np.random.default_rng(7), 100, 50, 0.5)
        np.testing.assert_array_equal(a, b)
