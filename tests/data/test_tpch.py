"""Tests for the synthetic skewed TPC-H generator."""

import numpy as np
import pytest

from repro.data.tpch import TPCHConfig, generate_tpch


@pytest.fixture(scope="module")
def tables():
    return generate_tpch(TPCHConfig(scale=0.001, num_scores=2), seed=0)


class TestConfig:
    def test_cardinalities_scale(self):
        small = TPCHConfig(scale=0.001).cardinalities()
        large = TPCHConfig(scale=0.01).cardinalities()
        for table in small:
            assert large[table] > small[table]

    def test_tpch_ratios(self):
        sizes = TPCHConfig(scale=0.01).cardinalities()
        assert sizes["orders"] == 10 * sizes["customer"]
        assert sizes["lineitem"] == 4 * sizes["orders"]

    def test_minimum_sizes(self):
        sizes = TPCHConfig(scale=1e-9).cardinalities()
        assert all(n >= 2 for n in sizes.values())


class TestGeneration:
    def test_all_tables_present(self, tables):
        assert set(tables) == {"customer", "orders", "lineitem", "part"}

    def test_sizes_match_config(self, tables):
        sizes = TPCHConfig(scale=0.001).cardinalities()
        for name, table in tables.items():
            assert table.size == sizes[name]

    def test_scores_shape(self, tables):
        for table in tables.values():
            assert table.scores.shape == (table.size, 2)

    def test_foreign_keys_in_range(self, tables):
        orders = tables["orders"]
        customers = tables["customer"].size
        assert orders.columns["custkey"].min() >= 0
        assert orders.columns["custkey"].max() < customers
        lineitem = tables["lineitem"]
        assert lineitem.columns["orderkey"].max() < tables["orders"].size
        assert lineitem.columns["partkey"].max() < tables["part"].size

    def test_join_skew_present(self):
        skewed = generate_tpch(
            TPCHConfig(scale=0.001, join_skew=1.2), seed=0
        )["lineitem"]
        counts = np.bincount(skewed.columns["orderkey"])
        # With strong skew the most popular order gets far more lineitems
        # than the average of ~4.
        assert counts.max() > 12

    def test_deterministic(self):
        a = generate_tpch(TPCHConfig(scale=0.001), seed=5)
        b = generate_tpch(TPCHConfig(scale=0.001), seed=5)
        np.testing.assert_array_equal(
            a["lineitem"].columns["orderkey"], b["lineitem"].columns["orderkey"]
        )
        np.testing.assert_array_equal(a["orders"].scores, b["orders"].scores)

    def test_seeds_differ(self):
        a = generate_tpch(TPCHConfig(scale=0.001), seed=1)
        b = generate_tpch(TPCHConfig(scale=0.001), seed=2)
        assert not np.array_equal(a["orders"].scores, b["orders"].scores)


class TestToRelation:
    def test_relation_keyed_correctly(self, tables):
        relation = tables["orders"].to_relation("orderkey")
        assert len(relation) == tables["orders"].size
        assert relation.dimension == 2
        first = relation.tuples[0]
        assert first.key == first.payload["orderkey"]

    def test_payload_carries_other_keys(self, tables):
        relation = tables["orders"].to_relation("orderkey")
        assert "custkey" in relation.tuples[0].payload

    def test_rekey_on_custkey(self, tables):
        relation = tables["orders"].to_relation("custkey")
        first = relation.tuples[0]
        assert first.key == first.payload["custkey"]
        assert "orderkey" in first.payload
