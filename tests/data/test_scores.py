"""Tests for (e, z, c) score-vector generation (Section 6.1, Figure 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.scores import (
    generate_score_vectors,
    ideal_point_present,
    score_levels,
)


class TestScoreLevels:
    def test_levels_span_unit_interval(self):
        levels = score_levels(4)
        np.testing.assert_allclose(levels, [0.25, 0.5, 0.75, 1.0])

    def test_invalid(self):
        with pytest.raises(ValueError):
            score_levels(0)


class TestGeneration:
    def test_shape(self):
        rng = np.random.default_rng(0)
        vectors = generate_score_vectors(rng, 100, 3)
        assert vectors.shape == (100, 3)

    def test_range(self):
        rng = np.random.default_rng(0)
        vectors = generate_score_vectors(rng, 500, 2, skew=0.0, cut=1.0)
        assert vectors.min() > 0.0
        assert vectors.max() <= 1.0

    def test_cut_constraint_enforced(self):
        rng = np.random.default_rng(1)
        for cut in (0.25, 0.5, 0.75):
            vectors = generate_score_vectors(rng, 2000, 2, skew=0.0, cut=cut)
            dominating = (vectors > cut).all(axis=1)
            assert not dominating.any()

    def test_cut_one_allows_high_vectors(self):
        rng = np.random.default_rng(2)
        vectors = generate_score_vectors(
            rng, 5000, 1, skew=0.0, cut=1.0, num_values=10
        )
        assert (vectors == 1.0).any()

    def test_partial_high_coordinates_allowed(self):
        """Figure 9: single coordinates may reach 1, just not all at once."""
        rng = np.random.default_rng(3)
        vectors = generate_score_vectors(
            rng, 5000, 2, skew=0.0, cut=0.5, num_values=10
        )
        assert (vectors == 1.0).any()
        assert not ((vectors > 0.5).all(axis=1)).any()

    def test_skew_lowers_scores(self):
        rng = np.random.default_rng(4)
        uniform = generate_score_vectors(rng, 5000, 1, skew=0.0, cut=1.0)
        skewed = generate_score_vectors(rng, 5000, 1, skew=1.0, cut=1.0)
        assert skewed.mean() < uniform.mean()

    def test_zero_rows(self):
        rng = np.random.default_rng(0)
        assert generate_score_vectors(rng, 0, 2).shape == (0, 2)

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_score_vectors(rng, 10, 0)
        with pytest.raises(ValueError):
            generate_score_vectors(rng, 10, 2, cut=0.0)
        with pytest.raises(ValueError):
            generate_score_vectors(rng, -1, 2)

    def test_deterministic_for_seed(self):
        a = generate_score_vectors(np.random.default_rng(9), 50, 2)
        b = generate_score_vectors(np.random.default_rng(9), 50, 2)
        np.testing.assert_array_equal(a, b)

    @given(
        e=st.integers(1, 4),
        cut=st.sampled_from([0.25, 0.5, 0.75, 1.0]),
        skew=st.sampled_from([0.0, 0.5, 1.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_constraint_property(self, e, cut, skew):
        rng = np.random.default_rng(0)
        vectors = generate_score_vectors(rng, 200, e, skew=skew, cut=cut)
        assert vectors.shape == (200, e)
        assert not ((vectors > cut).all(axis=1)).any()


class TestIdealPoint:
    def test_detects_presence(self):
        assert ideal_point_present(np.array([[0.5, 0.5], [1.0, 1.0]]))

    def test_detects_absence(self):
        assert not ideal_point_present(np.array([[0.5, 1.0], [1.0, 0.5]]))
