"""Tests for workload factories."""

import json

import pytest

from repro.core.scoring import MinScore
from repro.data.workload import (
    WorkloadParams,
    anti_correlated_instance,
    lineitem_orders_instance,
    load_workload,
    pipeline_tables,
    random_instance,
)
from repro.errors import WorkloadError


class TestWorkloadParams:
    def test_paper_defaults(self):
        params = WorkloadParams()
        assert (params.e, params.c, params.z, params.k) == (2, 0.5, 0.5, 10)

    def test_tpch_config_propagates(self):
        params = WorkloadParams(e=3, c=0.25, z=1.0, join_skew=0.8)
        config = params.tpch_config()
        assert config.num_scores == 3
        assert config.score_cut == 0.25
        assert config.score_skew == 1.0
        assert config.join_skew == 0.8


class TestWorkloadFileExecutionKeys:
    """Execution-shape keys (shards / exec_backend / algorithm) validate
    at load time with one-line errors — not deep inside engine setup."""

    def _load(self, tmp_path, payload):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps(payload))
        return load_workload(path)

    def test_valid_execution_shape(self, tmp_path):
        params = self._load(
            tmp_path,
            {"shards": 4, "exec_backend": "serial", "algorithm": "anyk"},
        )
        assert params.shards == 4
        assert params.exec_backend == "serial"
        assert params.algorithm == "anyk"

    def test_auto_values_accepted(self, tmp_path):
        params = self._load(tmp_path, {"shards": "auto", "algorithm": "auto"})
        assert params.shards == "auto"
        assert params.algorithm == "auto"

    @pytest.mark.parametrize("shards", [0, -2, 1.5, "many", True, None])
    def test_invalid_shards_rejected(self, tmp_path, shards):
        with pytest.raises(WorkloadError) as info:
            self._load(tmp_path, {"shards": shards})
        message = str(info.value)
        assert "shards must be a positive integer or 'auto'" in message
        assert "\n" not in message  # one line, CLI-displayable

    def test_unknown_exec_backend_rejected(self, tmp_path):
        with pytest.raises(WorkloadError) as info:
            self._load(tmp_path, {"exec_backend": "gpu"})
        message = str(info.value)
        assert "unknown exec_backend 'gpu'" in message
        assert "serial" in message and "thread" in message
        assert "\n" not in message

    def test_unknown_algorithm_rejected(self, tmp_path):
        with pytest.raises(WorkloadError, match="unknown algorithm"):
            self._load(tmp_path, {"algorithm": "lawler"})


class TestLineitemOrders:
    def test_shape(self):
        instance = lineitem_orders_instance(WorkloadParams(scale=0.0003, e=2))
        assert instance.dims == (2, 2)
        assert len(instance.left) == 4 * len(instance.right)

    def test_custom_scoring(self):
        instance = lineitem_orders_instance(
            WorkloadParams(scale=0.0003), scoring=MinScore()
        )
        assert isinstance(instance.scoring, MinScore)

    def test_deterministic_per_seed(self):
        a = lineitem_orders_instance(WorkloadParams(scale=0.0003, seed=3))
        b = lineitem_orders_instance(WorkloadParams(scale=0.0003, seed=3))
        assert [t.scores for t in a.sorted_tuples(0)[:20]] == [
            t.scores for t in b.sorted_tuples(0)[:20]
        ]

    def test_keys_join(self):
        instance = lineitem_orders_instance(WorkloadParams(scale=0.0003))
        assert instance.join_size() == len(instance.left)  # FK join: 1 order each


class TestPipelineTables:
    def test_all_tables(self):
        tables = pipeline_tables(WorkloadParams(scale=0.0003, e=1))
        assert set(tables) == {"customer", "orders", "lineitem", "part"}
        assert tables["customer"].scores.shape[1] == 1


class TestRandomInstance:
    def test_independent_dimensions(self):
        instance = random_instance(
            n_left=50, n_right=40, e_left=3, e_right=1,
            num_keys=5, k=2, seed=0,
        )
        assert instance.dims == (3, 1)
        assert len(instance.left) == 50
        assert len(instance.right) == 40

    def test_expected_join_size(self):
        instance = random_instance(
            n_left=400, n_right=400, e_left=1, e_right=1,
            num_keys=40, k=1, seed=1,
        )
        expected = 400 * 400 / 40
        assert instance.join_size() == pytest.approx(expected, rel=0.3)


class TestAntiCorrelated:
    def test_scores_hug_the_diagonal(self):
        instance = anti_correlated_instance(
            n_left=500, n_right=500, num_keys=10, k=5, seed=0
        )
        sums = [sum(t.scores) for t in instance.left.tuples]
        mean = sum(sums) / len(sums)
        assert 0.9 < mean < 1.1

    def test_large_skylines(self):
        """Nearly every tuple should be a skyline point — the stress regime."""
        from repro.geometry.skyline import skyline

        instance = anti_correlated_instance(
            n_left=200, n_right=200, num_keys=10, k=5, jitter=0.01, seed=1
        )
        points = [t.scores for t in instance.left.tuples]
        assert len(skyline(points)) > len(points) / 4

    def test_runs_with_operators(self):
        from repro.core.operators import a_frpa

        instance = anti_correlated_instance(
            n_left=300, n_right=300, num_keys=10, k=5, seed=2
        )
        operator = a_frpa(instance, max_cr_size=16)
        assert len(operator.top_k(5)) == 5
