"""Cost-model propagation through instances, operators and pipelines."""

import pytest

from repro.core.operators import frpa, hrjn_star
from repro.core.tuples import RankTuple
from repro.data.workload import WorkloadParams, lineitem_orders_instance
from repro.plan.pipeline import Pipeline
from repro.relation.cost import CostModel
from repro.relation.relation import Relation

PARAMS = WorkloadParams(e=1, c=0.5, z=0.5, k=5, scale=0.0005, seed=0)


class TestInstanceCosts:
    def test_default_is_clustered(self):
        instance = lineitem_orders_instance(PARAMS)
        assert instance.cost_model.per_tuple == CostModel.clustered_index().per_tuple

    def test_custom_model_charged(self):
        instance = lineitem_orders_instance(
            PARAMS, cost_model=CostModel(per_tuple=10.0, seek=100.0)
        )
        operator = frpa(instance)
        operator.top_k(PARAMS.k)
        depths = operator.depths()
        expected = depths.sum_depths * 10.0 + 2 * 100.0  # both seeks paid
        assert operator.stats().io_cost == pytest.approx(expected)

    def test_costlier_access_scales_io_cost_not_depth(self):
        cheap = lineitem_orders_instance(PARAMS, cost_model=CostModel.free())
        costly = lineitem_orders_instance(
            PARAMS, cost_model=CostModel.network_stream()
        )
        op_cheap = frpa(cheap)
        op_costly = frpa(costly)
        op_cheap.top_k(PARAMS.k)
        op_costly.top_k(PARAMS.k)
        assert op_cheap.depths() == op_costly.depths()
        assert op_cheap.stats().io_cost == 0.0
        assert op_costly.stats().io_cost > 0.0

    def test_relative_operator_cost_ordering(self):
        instance = lineitem_orders_instance(
            WorkloadParams(e=1, c=0.25, z=0.5, k=5, scale=0.001, seed=0),
            cost_model=CostModel.unclustered_index(),
        )
        robust = frpa(instance)
        corner = hrjn_star(instance)
        robust.top_k(5)
        corner.top_k(5)
        assert robust.stats().io_cost < corner.stats().io_cost


class TestPipelineCosts:
    def _relations(self):
        def rel(name, attr, n):
            return Relation(
                name,
                [
                    RankTuple(
                        key=i % 4, scores=(1 - i / n,), payload={attr: i % 4}
                    )
                    for i in range(n)
                ],
            )

        return [rel("A", "k", 30), rel("B", "k", 30)]

    def test_pipeline_charges_base_scans(self):
        pipeline = Pipeline(
            self._relations(), [], operator="HRJN*",
            cost_model=CostModel(per_tuple=2.0, seek=0.0),
        )
        pipeline.top_k(3)
        assert pipeline.io_cost == pytest.approx(2.0 * pipeline.sum_depths)

    def test_intermediate_pulls_are_free(self):
        pipeline = Pipeline(
            self._relations(), [], operator="HRJN*",
            cost_model=CostModel.free(),
        )
        pipeline.top_k(3)
        assert pipeline.io_cost == 0.0
