"""Direct unit tests for the simulated I/O cost model.

``test_cost_integration.py`` covers cost accounting through operators;
these tests pin the :class:`CostModel` / :class:`AccessStats` contract
itself (seek charged exactly once, reset semantics, preset shapes).
"""

import pytest

from repro.relation.cost import AccessStats, CostModel


class TestCostModel:
    def test_defaults(self):
        model = CostModel()
        assert model.per_tuple == 1.0
        assert model.seek == 0.0

    def test_presets_are_ordered_by_access_cost(self):
        clustered = CostModel.clustered_index()
        unclustered = CostModel.unclustered_index()
        network = CostModel.network_stream()
        assert clustered.per_tuple < unclustered.per_tuple < network.per_tuple
        assert network.seek > clustered.seek

    def test_free_charges_nothing(self):
        stats = AccessStats()
        for _ in range(5):
            stats.charge(CostModel.free())
        assert stats.pulls == 5
        assert stats.cost == 0.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CostModel().per_tuple = 2.0


class TestAccessStats:
    def test_seek_charged_exactly_once(self):
        model = CostModel(per_tuple=2.0, seek=10.0)
        stats = AccessStats()
        stats.charge(model)
        assert stats.cost == 12.0
        assert stats.touched is True
        stats.charge(model)
        stats.charge(model)
        assert stats.pulls == 3
        assert stats.cost == 10.0 + 3 * 2.0

    def test_no_seek_model(self):
        stats = AccessStats()
        stats.charge(CostModel(per_tuple=1.5, seek=0.0))
        assert stats.cost == 1.5

    def test_reset_clears_everything_including_touched(self):
        model = CostModel(per_tuple=1.0, seek=100.0)
        stats = AccessStats()
        stats.charge(model)
        stats.reset()
        assert (stats.pulls, stats.cost, stats.touched) == (0, 0.0, False)
        # The seek is charged again after a reset — the source was re-opened.
        stats.charge(model)
        assert stats.cost == 101.0

    def test_accumulates_across_models(self):
        # One stats object can be charged under different models (e.g. a
        # source whose cost profile changes); costs simply accumulate.
        stats = AccessStats()
        stats.charge(CostModel(per_tuple=1.0, seek=10.0))
        stats.charge(CostModel(per_tuple=5.0, seek=999.0))  # already touched
        assert stats.pulls == 2
        assert stats.cost == 10.0 + 1.0 + 5.0
