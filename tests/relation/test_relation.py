"""Tests for relations and problem instances."""

import numpy as np
import pytest

from repro.core.scoring import SumScore, WeightedSum
from repro.core.tuples import RankTuple
from repro.errors import InstanceError, NotSortedError
from repro.relation.relation import RankJoinInstance, Relation
from repro.relation.sources import VerifyingSource


def simple_relation(name, rows):
    return Relation(name, [RankTuple(key=k, scores=s) for k, s in rows])


class TestRelation:
    def test_dimension_inferred(self):
        rel = simple_relation("R", [(1, (0.5, 0.5))])
        assert rel.dimension == 2

    def test_empty_relation(self):
        rel = Relation("R", [])
        assert len(rel) == 0
        assert rel.dimension == 0

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(InstanceError):
            simple_relation("R", [(1, (0.5,)), (2, (0.5, 0.5))])

    def test_from_arrays(self):
        rel = Relation.from_arrays(
            "R", [1, 2], np.array([[0.1, 0.2], [0.3, 0.4]]), payloads=["a", "b"]
        )
        assert rel.tuples[0].payload == "a"
        assert rel.tuples[1].scores == (0.3, 0.4)

    def test_from_arrays_validates_shapes(self):
        with pytest.raises(InstanceError):
            Relation.from_arrays("R", [1], np.array([0.1, 0.2]))
        with pytest.raises(InstanceError):
            Relation.from_arrays("R", [1], np.array([[0.1], [0.2]]))
        with pytest.raises(InstanceError):
            Relation.from_arrays("R", [1], np.array([[0.1]]), payloads=[1, 2])


class TestRankJoinInstance:
    def make(self, k=1, scoring=None, **kwargs):
        left = simple_relation("L", [(1, (0.1, 0.9)), (2, (0.9, 0.9)), (1, (0.5, 0.1))])
        right = simple_relation("R", [(1, (0.2,)), (2, (0.8,))])
        return RankJoinInstance(left, right, scoring or SumScore(), k, **kwargs)

    def test_dims(self):
        instance = self.make()
        assert instance.dims == (2, 1)

    def test_sorted_access_order(self):
        instance = self.make()
        for side in (0, 1):
            bounds = [
                instance.score_bound(side, t.scores)
                for t in instance.sorted_tuples(side)
            ]
            assert bounds == sorted(bounds, reverse=True)

    def test_scans_are_fresh(self):
        instance = self.make()
        scan1, __ = instance.scans()
        scan1.next()
        scan2, __ = instance.scans()
        assert scan2.depth == 0
        assert scan1.depth == 1

    def test_scans_pass_order_verification(self):
        instance = self.make()
        left, right = instance.scans()
        verified = VerifyingSource(
            left, score_bound=lambda t: instance.score_bound(0, t.scores)
        )
        while verified.next() is not None:
            pass  # NotSortedError would propagate

    def test_join_size(self):
        instance = self.make()
        assert instance.join_size() == 3  # two key-1 lefts x one + key-2 pair

    def test_validate_rejects_large_k(self):
        with pytest.raises(InstanceError):
            self.make(k=4, validate=True)

    def test_validate_accepts_feasible_k(self):
        self.make(k=3, validate=True)

    def test_k_must_be_positive(self):
        with pytest.raises(InstanceError):
            self.make(k=0)

    def test_weighted_scoring_changes_order(self):
        scoring = WeightedSum([1.0, 0.0, 0.0])  # only first left score counts
        instance = self.make(scoring=scoring)
        first = instance.sorted_tuples(0)[0]
        assert first.scores == (0.9, 0.9)

    def test_score_bound_substitutes_ones(self):
        instance = self.make()
        assert instance.score_bound(0, (0.5, 0.5)) == pytest.approx(2.0)
        assert instance.score_bound(1, (0.5,)) == pytest.approx(2.5)
