"""Unit tests for tuple sources and cost accounting."""

import pytest

from repro.core.tuples import RankTuple
from repro.errors import NotSortedError
from repro.relation.cost import AccessStats, CostModel
from repro.relation.sources import SortedScan, StreamSource, VerifyingSource


def tuples_desc(n=5):
    return [RankTuple(key=i, scores=(1.0 - i / 10,)) for i in range(n)]


class TestCostModel:
    def test_charge_includes_seek_once(self):
        stats = AccessStats()
        model = CostModel(per_tuple=2.0, seek=10.0)
        stats.charge(model)
        stats.charge(model)
        assert stats.pulls == 2
        assert stats.cost == pytest.approx(14.0)

    def test_reset(self):
        stats = AccessStats()
        stats.charge(CostModel())
        stats.reset()
        assert stats.pulls == 0
        assert stats.cost == 0.0
        assert not stats.touched

    def test_presets_ordering(self):
        assert (
            CostModel.free().per_tuple
            < CostModel.clustered_index().per_tuple
            < CostModel.unclustered_index().per_tuple
            < CostModel.network_stream().per_tuple
        )


class TestSortedScan:
    def test_sequential_access(self):
        scan = SortedScan(tuples_desc(3))
        assert scan.has_next()
        assert scan.next().key == 0
        assert scan.next().key == 1
        assert scan.next().key == 2
        assert not scan.has_next()
        assert scan.next() is None

    def test_depth_counts_pulls(self):
        scan = SortedScan(tuples_desc(3))
        scan.next()
        scan.next()
        assert scan.depth == 2
        assert scan.remaining == 1
        assert len(scan) == 3

    def test_cost_accumulates(self):
        scan = SortedScan(tuples_desc(3), cost_model=CostModel(per_tuple=5, seek=1))
        scan.next()
        assert scan.cost == pytest.approx(6.0)

    def test_empty_scan(self):
        scan = SortedScan([])
        assert not scan.has_next()
        assert scan.next() is None
        assert scan.dimension == 0

    def test_dimension_from_tuples(self):
        scan = SortedScan([RankTuple(key=1, scores=(0.1, 0.2, 0.3))])
        assert scan.dimension == 3

    def test_order_verification_accepts_sorted(self):
        SortedScan(tuples_desc(), score_bound=lambda t: t.scores[0])

    def test_order_verification_rejects_unsorted(self):
        shuffled = list(reversed(tuples_desc()))
        with pytest.raises(NotSortedError):
            SortedScan(shuffled, score_bound=lambda t: t.scores[0])

    def test_iteration(self):
        scan = SortedScan(tuples_desc(4))
        assert [t.key for t in scan] == [0, 1, 2, 3]


class TestStreamSource:
    def test_wraps_generator(self):
        source = StreamSource(iter(tuples_desc(3)), dimension=1)
        assert source.has_next()
        assert source.next().key == 0
        assert [t.key for t in source] == [1, 2]
        assert not source.has_next()

    def test_single_lookahead_only(self):
        produced = []

        def gen():
            for t in tuples_desc(3):
                produced.append(t.key)
                yield t

        source = StreamSource(gen(), dimension=1)
        assert source.has_next()
        assert produced == [0]  # exactly one buffered
        source.next()
        assert produced == [0]

    def test_empty_stream(self):
        source = StreamSource(iter(()), dimension=1)
        assert not source.has_next()
        assert source.next() is None


class TestVerifyingSource:
    def test_passes_through_sorted_stream(self):
        inner = SortedScan(tuples_desc(4))
        verified = VerifyingSource(inner, score_bound=lambda t: t.scores[0])
        assert [t.key for t in verified] == [0, 1, 2, 3]
        assert verified.depth == 4

    def test_raises_on_out_of_order(self):
        bad = [RankTuple(key=0, scores=(0.5,)), RankTuple(key=1, scores=(0.9,))]
        verified = VerifyingSource(
            SortedScan(bad), score_bound=lambda t: t.scores[0]
        )
        verified.next()
        with pytest.raises(NotSortedError):
            verified.next()

    def test_cost_delegates_to_inner(self):
        inner = SortedScan(tuples_desc(2), cost_model=CostModel(per_tuple=3))
        verified = VerifyingSource(inner, score_bound=lambda t: t.scores[0])
        verified.next()
        assert verified.cost == pytest.approx(3.0)
