"""Relation.fingerprint(): stable order-insensitive content hashing."""

from repro.core.tuples import RankTuple
from repro.relation.relation import Relation
from repro.service import QuerySpec, scoring_fingerprint
from repro.core.scoring import SumScore, WeightedSum


def rows(spec):
    return [
        RankTuple(key=key, scores=scores, payload=payload)
        for key, scores, payload in spec
    ]


BASE = [
    (1, (0.9, 0.5), {"flag": "a"}),
    (2, (0.7, 0.3), {"flag": "b"}),
    (3, (0.1, 0.8), None),
]


class TestContentHash:
    def test_identical_content_hashes_equal(self):
        assert (
            Relation("r", rows(BASE)).fingerprint()
            == Relation("r", rows(BASE)).fingerprint()
        )

    def test_permuted_but_equal_hashes_equal(self):
        permuted = [BASE[2], BASE[0], BASE[1]]
        assert (
            Relation("r", rows(BASE)).fingerprint()
            == Relation("r", rows(permuted)).fingerprint()
        )

    def test_name_is_excluded(self):
        assert (
            Relation("lineitem", rows(BASE)).fingerprint()
            == Relation("copy-of-lineitem", rows(BASE)).fingerprint()
        )

    def test_differing_scores_hash_differently(self):
        changed = [(1, (0.9, 0.5000001), {"flag": "a"})] + BASE[1:]
        assert (
            Relation("r", rows(BASE)).fingerprint()
            != Relation("r", rows(changed)).fingerprint()
        )

    def test_differing_keys_hash_differently(self):
        changed = [(9, (0.9, 0.5), {"flag": "a"})] + BASE[1:]
        assert (
            Relation("r", rows(BASE)).fingerprint()
            != Relation("r", rows(changed)).fingerprint()
        )

    def test_differing_payloads_hash_differently(self):
        changed = [(1, (0.9, 0.5), {"flag": "z"})] + BASE[1:]
        assert (
            Relation("r", rows(BASE)).fingerprint()
            != Relation("r", rows(changed)).fingerprint()
        )

    def test_duplicate_multiplicity_matters(self):
        once = rows(BASE)
        twice = rows(BASE) + rows(BASE[:1])
        assert (
            Relation("r", once).fingerprint()
            != Relation("r", twice).fingerprint()
        )

    def test_fingerprint_is_cached(self):
        relation = Relation("r", rows(BASE))
        assert relation.fingerprint() is relation.fingerprint()


class TestMutationInvalidation:
    """In-place edits must invalidate the cached digest, not serve it stale."""

    def test_append_invalidates(self):
        relation = Relation("r", rows(BASE))
        before = relation.fingerprint()
        relation.tuples.append(RankTuple(key=9, scores=(0.2, 0.2), payload=None))
        after = relation.fingerprint()
        assert after != before
        assert after == Relation("r", list(relation.tuples)).fingerprint()

    def test_pop_restores_original_digest(self):
        relation = Relation("r", rows(BASE))
        before = relation.fingerprint()
        relation.tuples.append(RankTuple(key=9, scores=(0.2, 0.2), payload=None))
        relation.tuples.pop()
        assert relation.fingerprint() == before

    def test_setitem_and_delitem_invalidate(self):
        relation = Relation("r", rows(BASE))
        before = relation.fingerprint()
        relation.tuples[0] = RankTuple(key=1, scores=(0.95, 0.5), payload=None)
        changed = relation.fingerprint()
        assert changed != before
        del relation.tuples[0]
        assert relation.fingerprint() != changed

    def test_extend_remove_clear_invalidate(self):
        relation = Relation("r", rows(BASE))
        extra = RankTuple(key=8, scores=(0.4, 0.4), payload=None)
        before = relation.fingerprint()
        relation.tuples.extend([extra])
        assert relation.fingerprint() != before
        relation.tuples.remove(extra)
        assert relation.fingerprint() == before
        relation.tuples.clear()
        assert relation.fingerprint() != before

    def test_reorder_keeps_digest(self):
        # sort/reverse invalidate the cache, but the digest is
        # order-insensitive so the recomputed value is unchanged.
        relation = Relation("r", rows(BASE))
        before = relation.fingerprint()
        relation.tuples.reverse()
        assert relation._fingerprint is None
        assert relation.fingerprint() == before

    def test_reassignment_invalidates(self):
        relation = Relation("r", rows(BASE))
        before = relation.fingerprint()
        relation.tuples = rows(BASE[:2])
        assert relation.fingerprint() != before
        # The new list is tracked too.
        follow_up = relation.fingerprint()
        relation.tuples.append(rows(BASE)[2])
        assert relation.fingerprint() != follow_up

    def test_unmutated_relation_still_caches(self):
        relation = Relation("r", rows(BASE))
        relation.fingerprint()
        assert relation._fingerprint is not None
        assert relation.fingerprint() is relation.fingerprint()


class TestQueryFingerprint:
    def make_specs(self, **b_kwargs):
        left = Relation("L", rows(BASE))
        right = Relation("R", rows(BASE))
        a = QuerySpec(relations=(left, right), k=5)
        b = QuerySpec(relations=(left, right), k=5, **b_kwargs)
        return a, b

    def test_k_is_excluded_for_prefix_reuse(self):
        left = Relation("L", rows(BASE))
        right = Relation("R", rows(BASE))
        small = QuerySpec(relations=(left, right), k=2)
        large = QuerySpec(relations=(left, right), k=9)
        assert small.fingerprint() == large.fingerprint()

    def test_operator_choice_changes_fingerprint(self):
        a, b = self.make_specs(operator="HRJN")
        assert a.fingerprint() != b.fingerprint()

    def test_scoring_identity_changes_fingerprint(self):
        a, b = self.make_specs(scoring=WeightedSum([2.0, 1.0, 1.0, 1.0]))
        assert a.fingerprint() != b.fingerprint()

    def test_equal_weighted_sums_share_fingerprint(self):
        assert scoring_fingerprint(WeightedSum([1.0, 2.0])) == \
            scoring_fingerprint(WeightedSum([1.0, 2.0]))
        assert scoring_fingerprint(WeightedSum([1.0, 2.0])) != \
            scoring_fingerprint(WeightedSum([2.0, 1.0]))
        assert scoring_fingerprint(SumScore()) == scoring_fingerprint(SumScore())

    def test_relation_order_matters_for_queries(self):
        left = Relation("L", rows(BASE))
        other = [(7, (0.2, 0.2), None)]
        right = Relation("R", rows(other))
        a = QuerySpec(relations=(left, right), k=3)
        b = QuerySpec(relations=(right, left), k=3)
        assert a.fingerprint() != b.fingerprint()
