"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    InstanceError,
    NotSortedError,
    PullBudgetExceeded,
    ReproError,
    TimeBudgetExceeded,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            NotSortedError("x"),
            PullBudgetExceeded(10, 5),
            TimeBudgetExceeded(1.0, 0.5),
            InstanceError("x"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_catchable_as_library_error(self):
        with pytest.raises(ReproError):
            raise PullBudgetExceeded(6, 5)


class TestPayloads:
    def test_pull_budget_carries_counts(self):
        exc = PullBudgetExceeded(pulls=12, budget=10)
        assert exc.pulls == 12
        assert exc.budget == 10
        assert "12" in str(exc) and "10" in str(exc)

    def test_time_budget_carries_seconds(self):
        exc = TimeBudgetExceeded(elapsed=3.2, budget=3.0)
        assert exc.elapsed == pytest.approx(3.2)
        assert exc.budget == pytest.approx(3.0)
        assert "3.2" in str(exc)
