"""Unit and property tests for the grid tree (Section 5.1.2).

Core semantic checks:

* Theorem 5.1 analogue: after any sequence of updates, every point that
  does not weakly dominate an observed vector remains covered.
* Grid tree invariant (Lemma 5.1): the marked set stays an antichain, so
  the induced cover points form a skyline.
* Resolution reduction coarsens but never uncovers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.dominance import dominates
from repro.geometry.gridtree import GridTree, _partial_deltas
from repro.geometry.skyline import is_skyline
from repro.kernels import HAS_NUMBA, use_backend
from repro.kernels.pointset import HAS_NUMPY

unit = st.floats(0.0, 1.0, allow_nan=False)
vec2 = st.tuples(unit, unit)
vec3 = st.tuples(unit, unit, unit)

#: Every kernel the grid tree must behave identically under: the three
#: implementation tiers plus size-aware per-call dispatch.
BACKENDS = [
    "python",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy"),
    ),
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(not HAS_NUMBA, reason="requires numba"),
    ),
    "auto",
]


class TestConstruction:
    def test_initial_cover_is_ideal_corner(self):
        tree = GridTree(2, 8)
        assert tree.cover_points() == [(1.0, 1.0)]
        assert tree.num_marked == 1

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            GridTree(2, 3)
        with pytest.raises(ValueError):
            GridTree(2, 0)

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            GridTree(0, 8)

    def test_partial_deltas_count(self):
        # 2^e - 2 partial-up offsets (excluding zero and the diagonal).
        assert len(_partial_deltas(2)) == 2
        assert len(_partial_deltas(3)) == 6
        assert len(_partial_deltas(4)) == 14


class TestGeometryHelpers:
    def test_upper_corner(self):
        tree = GridTree(2, 4)
        assert tree.upper_corner((0, 0)) == (0.25, 0.25)
        assert tree.upper_corner((3, 3)) == (1.0, 1.0)

    def test_cell_containing_rounds_up(self):
        tree = GridTree(2, 4)
        assert tree.cell_containing((0.3, 0.3)) == (1, 1)  # corner (0.5, 0.5)
        assert tree.cell_containing((0.25, 0.25)) == (0, 0)  # exact corner
        assert tree.cell_containing((0.0, 1.0)) == (0, 3)

    def test_quantize_up(self):
        tree = GridTree(2, 4)
        assert tree.quantize_up((0.3, 0.6)) == (0.5, 0.75)
        assert tree.quantize_up((0.25, 1.0)) == (0.25, 1.0)
        assert tree.quantize_up((0.0, 0.0)) == (0.0, 0.0)

    def test_cell_corner_dominates_loaded_point(self):
        tree = GridTree(3, 8)
        for point in [(0.1, 0.5, 0.9), (0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]:
            corner = tree.upper_corner(tree.cell_containing(point))
            assert dominates(corner, point)


class TestUpdate:
    def test_basic_slide_2d(self):
        tree = GridTree(2, 2)
        changed = tree.update((0.5, 0.5))
        assert changed
        assert set(tree.cover_points()) == {(0.5, 1.0), (1.0, 0.5)}

    def test_update_with_unit_coordinate_is_noop(self):
        tree = GridTree(2, 4)
        assert tree.update((0.5, 1.0)) is False

    def test_update_at_minimum_resolution_is_noop(self):
        tree = GridTree(2, 1)
        assert tree.update((0.1, 0.1)) is False
        assert tree.cover_points() == [(1.0, 1.0)]

    def test_repeated_update_idempotent(self):
        tree = GridTree(2, 4)
        tree.update((0.4, 0.4))
        points = tree.cover_points()
        assert tree.update((0.4, 0.4)) is False
        assert tree.cover_points() == points

    def test_zero_vector_can_empty_the_cover(self):
        tree = GridTree(2, 2)
        tree.update((0.0, 0.0))
        assert tree.cover_points() == []

    def test_invariant_after_updates(self):
        tree = GridTree(2, 8)
        for s in [(0.7, 0.7), (0.4, 0.9), (0.9, 0.4), (0.2, 0.2)]:
            tree.update(s)
            assert is_skyline(tree.cover_points())
            for cell in tree.marked_cells:
                assert tree.covered_count(cell) == 0

    @given(st.lists(vec2, min_size=1, max_size=10), vec2)
    @settings(max_examples=150, deadline=None)
    def test_cover_correctness_2d(self, observed, probe):
        tree = GridTree(2, 8)
        for s in observed:
            tree.update(s)
        feasible = not any(dominates(probe, y) for y in observed)
        if feasible:
            assert tree.covers(probe)

    @given(st.lists(vec3, min_size=1, max_size=8), vec3)
    @settings(max_examples=80, deadline=None)
    def test_cover_correctness_3d(self, observed, probe):
        tree = GridTree(3, 4)
        for s in observed:
            tree.update(s)
        feasible = not any(dominates(probe, y) for y in observed)
        if feasible:
            assert tree.covers(probe)

    @given(st.lists(vec2, min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_invariant_is_maintained_2d(self, observed):
        tree = GridTree(2, 8)
        for s in observed:
            tree.update(s)
        assert is_skyline(tree.cover_points())

    @given(st.lists(vec3, min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_invariant_is_maintained_3d(self, observed):
        tree = GridTree(3, 4)
        for s in observed:
            tree.update(s)
        assert is_skyline(tree.cover_points())


class TestLoadAndInitialize:
    def test_load_points_covers_them(self):
        tree = GridTree(2, 8)
        points = [(0.3, 0.9), (0.9, 0.3), (0.5, 0.5)]
        tree.load_points(points)
        for p in points:
            assert tree.covers(p)

    def test_load_enforces_invariant(self):
        tree = GridTree(2, 8)
        tree.load_points([(0.2, 0.2), (0.9, 0.9)])  # first is dominated
        assert is_skyline(tree.cover_points())
        assert tree.num_marked == 1

    def test_initialize_removes_dominated_marks(self):
        tree = GridTree(2, 4)
        tree.marked_cells = {(0, 0), (3, 3), (1, 2)}
        tree.initialize()
        assert tree.marked_cells == {(3, 3)}


class TestResolutionReduction:
    def test_reduce_halves_resolution(self):
        tree = GridTree(2, 8)
        assert tree.reduce_resolution() == 4
        assert tree.resolution == 4

    def test_reduce_at_minimum_raises(self):
        tree = GridTree(2, 1)
        with pytest.raises(ValueError):
            tree.reduce_resolution()

    def test_reduce_to_minimum_gives_corner_cover(self):
        tree = GridTree(2, 4)
        tree.update((0.4, 0.4))
        while tree.resolution > 1:
            tree.reduce_resolution()
        assert tree.cover_points() == [(1.0, 1.0)]

    @given(st.lists(vec2, min_size=1, max_size=8), vec2)
    @settings(max_examples=100, deadline=None)
    def test_reduction_never_uncovers(self, observed, probe):
        tree = GridTree(2, 8)
        for s in observed:
            tree.update(s)
        covered_before = tree.covers(probe)
        while tree.resolution > 1:
            tree.reduce_resolution()
            if covered_before:
                assert tree.covers(probe)

    @given(st.lists(vec3, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_reduction_keeps_invariant(self, observed):
        tree = GridTree(3, 8)
        for s in observed:
            tree.update(s)
        while tree.resolution > 1:
            tree.reduce_resolution()
            assert is_skyline(tree.cover_points())


@pytest.mark.parametrize("backend", BACKENDS)
class TestEdgeCasesAcrossBackends:
    """Degenerate grids behave identically under every kernel tier."""

    def test_minimum_resolution_degenerates_to_corner_bound(self, backend):
        # One cell per dimension (the paper's L = 0): updates are no-ops
        # and the cover is pinned at the ideal corner — HRJN* regime.
        with use_backend(backend):
            tree = GridTree(2, 1)
            assert tree.cover_points() == [(1.0, 1.0)]
            assert tree.update((0.1, 0.1)) is False
            assert tree.update((0.0, 0.0)) is False
            assert tree.cover_points() == [(1.0, 1.0)]
            assert tree.covers((0.99, 0.99))
            tree.load_points([(0.2, 0.8), (0.2, 0.8), (0.7, 0.7)])
            assert tree.cover_points() == [(1.0, 1.0)]
            with pytest.raises(ValueError):
                tree.reduce_resolution()

    def test_duplicate_corners_collapse(self, backend):
        with use_backend(backend):
            tree = GridTree(2, 8)
            # Distinct points quantizing onto the same cell, plus exact
            # duplicates: the marked set must dedup to a single cell.
            tree.load_points([(0.31, 0.31), (0.35, 0.35), (0.35, 0.35)])
            assert tree.num_marked == 1
            assert tree.marked_cells == {(2, 2)}

    def test_duplicate_projected_corners_after_carve(self, backend):
        with use_backend(backend):
            tree = GridTree(2, 4)
            # Carving the top cell twice with equivalent vectors must not
            # re-introduce removed corners or duplicate the slid ones.
            assert tree.update((0.6, 0.6)) is True
            first = tree.marked_cells
            assert tree.update((0.6, 0.6)) is False
            assert tree.marked_cells == first
            assert is_skyline(tree.cover_points())

    def test_empty_carve_on_empty_marked_set(self, backend):
        with use_backend(backend):
            tree = GridTree(2, 2)
            assert tree.update((0.0, 0.0)) is True  # empties the cover
            assert tree.cover_points() == []
            assert tree.covers((0.5, 0.5)) is False
            # Carving an already-empty marked set reports "unchanged".
            assert tree.update((0.5, 0.5)) is False
            assert tree.cover_points() == []

    def test_update_sequence_identical_marked_sets(self, backend):
        sequence = [(0.7, 0.7), (0.4, 0.9), (0.9, 0.4), (0.2, 0.2)]
        with use_backend("python"):
            reference = GridTree(2, 8)
            for s in sequence:
                reference.update(s)
        with use_backend(backend):
            tree = GridTree(2, 8)
            for s in sequence:
                tree.update(s)
            assert tree.marked_cells == reference.marked_cells


class TestCoveredCount:
    def test_top_cell_initially_uncovered(self):
        tree = GridTree(2, 4)
        assert tree.covered_count((3, 3)) == 0

    def test_neighbour_of_marked_is_covered(self):
        tree = GridTree(2, 4)  # (3, 3) marked
        assert tree.covered_count((3, 2)) == 1
        assert tree.covered_count((2, 3)) == 1

    def test_diagonal_down_not_counted_via_strong_dominance(self):
        tree = GridTree(2, 4)
        # (2, 2)'s partial-up neighbours are (2, 3) and (3, 2); both are
        # strictly dominated by the marked (3, 3), so covered = 2.
        assert tree.covered_count((2, 2)) == 2
