"""Unit and property tests for exact feasible-region covers.

The key semantic invariant (what Theorem 4.1's tightness rests on): after
carving observed vectors ``y1..ym`` out of the trivial cover, a point ``x``
remains covered whenever ``x`` does not weakly dominate any ``y_j`` — i.e.
the cover never loses a feasible point.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.cover import CoverRegion, covers, update_cover
from repro.geometry.dominance import dominates, ones
from repro.geometry.skyline import is_skyline

unit = st.floats(0.0, 1.0, allow_nan=False)
vec2 = st.tuples(unit, unit)
vec3 = st.tuples(unit, unit, unit)


class TestUpdateCover:
    def test_no_observation_keeps_cover(self):
        assert update_cover([(1.0, 1.0)], []) == [(1.0, 1.0)]

    def test_single_observation_2d(self):
        result = update_cover([(1.0, 1.0)], [(0.5, 0.5)])
        assert set(result) == {(0.5, 1.0), (1.0, 0.5)}

    def test_observation_with_unit_coordinate(self):
        # y = (0.5, 1.0): projections are (0.5, 1.0) and (1.0, 1.0); the
        # latter is the removed point substituted at index 1 with y[1]=1.
        result = update_cover([(1.0, 1.0)], [(0.5, 1.0)])
        assert (0.5, 1.0) in result

    def test_zero_coordinate_projection_dropped(self):
        # y = (0.0, 0.5): the projection at axis 0 has coordinate 0 and is
        # clipped away; only (1.0, 0.5)-style points survive.
        result = update_cover([(1.0, 1.0)], [(0.0, 0.5)])
        assert result == [(1.0, 0.5)]

    def test_all_zero_observation_empties_cover(self):
        assert update_cover([(1.0, 1.0)], [(0.0, 0.0)]) == []

    def test_untouched_points_survive(self):
        cover = [(0.4, 1.0), (1.0, 0.4)]
        result = update_cover(cover, [(0.9, 0.2)])
        assert (0.4, 1.0) in result

    def test_1d_cover_tracks_minimum(self):
        result = update_cover([(1.0,)], [(0.7,)])
        assert result == [(0.7,)]
        result = update_cover(result, [(0.3,)])
        assert result == [(0.3,)]

    def test_dimension_mismatch_raises(self):
        import pytest

        with pytest.raises(ValueError):
            update_cover([(1.0, 1.0)], [(0.5,)])

    def test_skyline_result_mode_returns_antichain(self):
        observed = [(0.5, 0.6, 1.0), (0.4, 0.8, 1.0), (0.7, 0.3, 0.9)]
        result = update_cover([ones(3)], observed, skyline_result=True)
        assert is_skyline(result)

    @given(st.lists(vec2, min_size=1, max_size=8), vec2)
    @settings(max_examples=150, deadline=None)
    def test_cover_correctness_2d(self, observed, probe):
        """Any point not dominating an observed vector stays covered."""
        cover = update_cover([ones(2)], observed)
        feasible = not any(dominates(probe, y) for y in observed)
        if feasible:
            assert covers(cover, probe)

    @given(st.lists(vec3, min_size=1, max_size=6), vec3)
    @settings(max_examples=100, deadline=None)
    def test_cover_correctness_3d(self, observed, probe):
        cover = update_cover([ones(3)], observed)
        feasible = not any(dominates(probe, y) for y in observed)
        if feasible:
            assert covers(cover, probe)

    @given(st.lists(vec2, min_size=1, max_size=8), vec2)
    @settings(max_examples=150, deadline=None)
    def test_skyline_mode_covers_same_region(self, observed, probe):
        """Skylining the cover never changes the covered region."""
        plain = update_cover([ones(2)], observed)
        skylined = update_cover([ones(2)], observed, skyline_result=True)
        assert covers(plain, probe) == covers(skylined, probe)

    @given(st.lists(vec3, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_skyline_mode_is_antichain_3d(self, observed):
        result = update_cover([ones(3)], observed, skyline_result=True)
        assert is_skyline(result)

    @given(st.lists(vec2, min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_observed_points_interior_removed(self, observed):
        """Points strongly dominating an observation must be uncovered...

        ...whenever they are genuinely infeasible: a point that strictly
        dominates some observed y (in every coordinate) can only stay
        covered if it fails to dominate y — impossible — so it must fall
        outside the covered region *unless* another part of the region
        legitimately reaches it.  We check the unambiguous case: a point
        above every observation.
        """
        cover = update_cover([ones(2)], observed)
        tip = (1.0, 1.0)
        if any(all(c < 1.0 for c in y) for y in observed):
            # (1,1) dominates that observation -> infeasible -> uncovered
            # only when every cover point lost the corner; covered(c)=(1,1)
            # requires a cover point equal to (1,1).
            assert (1.0, 1.0) not in cover or covers(cover, tip)


class TestCoverRegion:
    def test_initial_cover_is_ideal_point(self):
        region = CoverRegion(2)
        assert region.points == [(1.0, 1.0)]
        assert region.covers((1.0, 1.0))

    def test_zero_dimension(self):
        region = CoverRegion(0)
        assert region.points == [()]
        assert region.covers(())

    def test_negative_dimension_raises(self):
        import pytest

        with pytest.raises(ValueError):
            CoverRegion(-1)

    def test_update_shrinks_region(self):
        region = CoverRegion(2)
        region.update([(0.5, 0.5)])
        assert not region.covers((0.6, 0.6))
        assert region.covers((0.4, 0.9))

    def test_len_and_iter(self):
        region = CoverRegion(2)
        region.update([(0.5, 0.5)])
        assert len(region) == 2
        assert set(region) == {(0.5, 1.0), (1.0, 0.5)}

    def test_sequential_updates_monotone_shrink(self):
        region = CoverRegion(2, skyline_mode=True)
        probes = [(i / 10, j / 10) for i in range(11) for j in range(11)]
        covered_before = {p for p in probes if region.covers(p)}
        region.update([(0.8, 0.8)])
        covered_mid = {p for p in probes if region.covers(p)}
        region.update([(0.5, 0.9), (0.9, 0.5)])
        covered_after = {p for p in probes if region.covers(p)}
        assert covered_after <= covered_mid <= covered_before
