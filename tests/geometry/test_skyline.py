"""Unit and property tests for skyline computation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.dominance import dominates
from repro.geometry.skyline import IncrementalSkyline, is_skyline, skyline

points_2d = st.lists(
    st.tuples(
        st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)
    ),
    max_size=60,
)
points_3d = st.lists(
    st.tuples(
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
    ),
    max_size=40,
)


class TestSkyline:
    def test_empty(self):
        assert skyline([]) == []

    def test_single_point(self):
        assert skyline([(0.5, 0.5)]) == [(0.5, 0.5)]

    def test_dominated_point_removed(self):
        result = skyline([(0.5, 0.5), (0.6, 0.6)])
        assert result == [(0.6, 0.6)]

    def test_insertion_order_irrelevant(self):
        forward = set(skyline([(0.5, 0.5), (0.6, 0.6), (0.2, 0.9)]))
        backward = set(skyline([(0.2, 0.9), (0.6, 0.6), (0.5, 0.5)]))
        assert forward == backward == {(0.6, 0.6), (0.2, 0.9)}

    def test_incomparable_points_all_kept(self):
        staircase = [(0.9, 0.1), (0.5, 0.5), (0.1, 0.9)]
        assert set(skyline(staircase)) == set(staircase)

    def test_duplicates_collapse(self):
        assert skyline([(0.5, 0.5), (0.5, 0.5)]) == [(0.5, 0.5)]

    @given(points_2d)
    @settings(max_examples=100, deadline=None)
    def test_skyline_is_antichain_2d(self, points):
        assert is_skyline(skyline(points))

    @given(points_3d)
    @settings(max_examples=60, deadline=None)
    def test_skyline_covers_input_3d(self, points):
        result = skyline(points)
        assert is_skyline(result)
        for p in points:
            assert any(dominates(s, p) for s in result)

    @given(points_2d)
    @settings(max_examples=100, deadline=None)
    def test_skyline_subset_of_input(self, points):
        result = skyline(points)
        normalized = {tuple(float(x) for x in p) for p in points}
        assert set(result) <= normalized


class TestIsSkyline:
    def test_detects_violation(self):
        assert not is_skyline([(0.5, 0.5), (0.6, 0.6)])

    def test_accepts_antichain(self):
        assert is_skyline([(0.9, 0.1), (0.1, 0.9)])

    def test_empty_is_skyline(self):
        assert is_skyline([])


class TestIncrementalSkyline:
    def test_matches_batch_skyline(self):
        points = [(0.3, 0.7), (0.7, 0.3), (0.5, 0.5), (0.8, 0.8), (0.1, 0.1)]
        incremental = IncrementalSkyline(points)
        assert set(incremental.points) == set(skyline(points))

    def test_add_reports_change(self):
        sky = IncrementalSkyline()
        assert sky.add((0.5, 0.5)) is True
        assert sky.add((0.4, 0.4)) is False  # dominated
        assert sky.add((0.6, 0.6)) is True  # dominates existing

    def test_frozen_since_counts_unchanged_adds(self):
        sky = IncrementalSkyline([(0.9, 0.9)])
        sky.add((0.1, 0.1))
        sky.add((0.2, 0.2))
        assert sky.frozen_since == 2
        sky.add((0.95, 0.95))
        assert sky.frozen_since == 0

    def test_covers(self):
        sky = IncrementalSkyline([(0.5, 0.9)])
        assert sky.covers((0.5, 0.5))
        assert not sky.covers((0.6, 0.5))

    def test_len_and_contains(self):
        sky = IncrementalSkyline([(0.5, 0.9), (0.9, 0.5)])
        assert len(sky) == 2
        assert (0.5, 0.9) in sky
        assert (0.1, 0.1) not in sky

    def test_inserted_counter(self):
        sky = IncrementalSkyline()
        for _ in range(5):
            sky.add((0.1, 0.1))
        assert sky.inserted == 5
        assert len(sky) == 1

    @given(points_2d)
    @settings(max_examples=100, deadline=None)
    def test_incremental_equals_batch(self, points):
        incremental = IncrementalSkyline()
        for p in points:
            incremental.add(p)
        assert set(incremental.points) == set(skyline(points))

    def test_early_freeze_under_sorted_insertion(self):
        # Insert in decreasing sum order: the skyline should change rarely
        # once the top region is seen (the paper's early-freeze property).
        points = sorted(
            [(i / 20, (20 - i) / 20) for i in range(21)],
            key=sum,
            reverse=True,
        )
        sky = IncrementalSkyline()
        changes = sum(1 for p in points if sky.add(p))
        assert changes == len(sky)  # every change added a surviving point
