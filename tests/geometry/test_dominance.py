"""Unit tests for dominance relations."""

import pytest

from repro.geometry.dominance import (
    as_point,
    dominates,
    ones,
    strictly_dominates,
    strongly_dominates,
    substitute,
)


class TestDominates:
    def test_equal_points_dominate_weakly(self):
        assert dominates((0.5, 0.5), (0.5, 0.5))

    def test_componentwise_greater(self):
        assert dominates((0.6, 0.7), (0.5, 0.5))

    def test_incomparable(self):
        assert not dominates((0.6, 0.4), (0.5, 0.5))
        assert not dominates((0.5, 0.5), (0.6, 0.4))

    def test_lower_does_not_dominate(self):
        assert not dominates((0.1, 0.1), (0.5, 0.5))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates((0.5,), (0.5, 0.5))

    def test_zero_dimensional_points(self):
        assert dominates((), ())


class TestStrictDominance:
    def test_equal_points_not_strict(self):
        assert not strictly_dominates((0.5, 0.5), (0.5, 0.5))

    def test_one_coordinate_greater_is_strict(self):
        assert strictly_dominates((0.6, 0.5), (0.5, 0.5))

    def test_all_greater_is_strict(self):
        assert strictly_dominates((0.6, 0.6), (0.5, 0.5))


class TestStrongDominance:
    def test_requires_all_coordinates_strictly_greater(self):
        assert strongly_dominates((0.6, 0.6), (0.5, 0.5))
        assert not strongly_dominates((0.6, 0.5), (0.5, 0.5))

    def test_strong_implies_strict_implies_weak(self):
        y, x = (0.8, 0.9), (0.7, 0.7)
        assert strongly_dominates(y, x)
        assert strictly_dominates(y, x)
        assert dominates(y, x)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            strongly_dominates((0.5,), (0.5, 0.5))


class TestHelpers:
    def test_substitute_replaces_single_coordinate(self):
        assert substitute((0.1, 0.2, 0.3), 1, 0.9) == (0.1, 0.9, 0.3)

    def test_substitute_out_of_range(self):
        with pytest.raises(IndexError):
            substitute((0.1,), 1, 0.9)
        with pytest.raises(IndexError):
            substitute((0.1,), -1, 0.9)

    def test_as_point_normalizes(self):
        assert as_point([1, 0]) == (1.0, 0.0)

    def test_ones(self):
        assert ones(3) == (1.0, 1.0, 1.0)
        assert ones(0) == ()
