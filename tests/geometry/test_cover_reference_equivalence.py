"""Property tests: the vectorized CoverRegion matches the reference code,
and the grid tree converges to the exact cover as resolution grows."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.cover import CoverRegion, covers, update_cover
from repro.geometry.dominance import dominates, ones
from repro.geometry.gridtree import GridTree

unit = st.floats(0.0, 1.0, allow_nan=False)
vec2 = st.tuples(unit, unit)
vec3 = st.tuples(unit, unit, unit)
grid_vec2 = st.tuples(
    st.sampled_from([i / 8 for i in range(9)]),
    st.sampled_from([i / 8 for i in range(9)]),
)


class TestCoverRegionVsReference:
    @given(st.lists(vec2, min_size=1, max_size=10), vec2)
    @settings(max_examples=150, deadline=None)
    def test_same_covered_region_2d(self, observed, probe):
        region = CoverRegion(2, skyline_mode=True)
        reference_points = [ones(2)]
        for y in observed:
            region.update([y])
            reference_points = update_cover(
                reference_points, [y], skyline_result=True
            )
        assert region.covers(probe) == covers(reference_points, probe)

    @given(st.lists(vec3, min_size=1, max_size=6), vec3)
    @settings(max_examples=80, deadline=None)
    def test_same_covered_region_3d(self, observed, probe):
        region = CoverRegion(3, skyline_mode=True)
        reference_points = [ones(3)]
        for y in observed:
            region.update([y])
            reference_points = update_cover(
                reference_points, [y], skyline_result=True
            )
        assert region.covers(probe) == covers(reference_points, probe)

    @given(st.lists(vec2, min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_same_point_sets_non_skyline_mode(self, observed):
        region = CoverRegion(2, skyline_mode=False)
        region.update(observed)
        reference = update_cover([ones(2)], observed, skyline_result=False)
        assert sorted(region.points) == sorted(reference)


class TestGridTreeVsExactCover:
    @given(st.lists(grid_vec2, min_size=1, max_size=8), grid_vec2)
    @settings(max_examples=120, deadline=None)
    def test_grid_equals_exact_on_grid_aligned_data(self, observed, probe):
        """With grid-aligned observations and probes, grid covering differs
        from the exact cover only where the exact carve uses weak dominance
        and the grid uses strict — the grid is never tighter."""
        tree = GridTree(2, 8)
        region = CoverRegion(2, skyline_mode=True)
        for y in observed:
            tree.update(y)
            region.update([y])
        if region.covers(probe):
            assert tree.covers(probe)

    @given(st.lists(vec2, min_size=1, max_size=8), vec2)
    @settings(max_examples=100, deadline=None)
    def test_grid_cover_is_superset_of_exact(self, observed, probe):
        """Quantization only loosens: anything exactly covered stays
        grid-covered at any resolution."""
        region = CoverRegion(2, skyline_mode=True)
        tree = GridTree(2, 16)
        for y in observed:
            region.update([y])
            tree.update(y)
        if region.covers(probe):
            assert tree.covers(probe)

    @given(st.lists(grid_vec2, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_feasible_probes_always_covered_both(self, observed):
        probes = [(i / 4, j / 4) for i in range(5) for j in range(5)]
        region = CoverRegion(2, skyline_mode=True)
        tree = GridTree(2, 8)
        for y in observed:
            region.update([y])
            tree.update(y)
        for probe in probes:
            feasible = not any(dominates(probe, y) for y in observed)
            if feasible:
                assert region.covers(probe)
                assert tree.covers(probe)
