"""Tests for pipelined plans (Section 6.2.3)."""

import pytest

from repro.core.naive import full_join, naive_top_k, top_scores
from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.errors import InstanceError
from repro.plan.pipeline import OperatorSource, Pipeline
from repro.relation.relation import Relation


def relation(name, rows, key_attr):
    """rows: list of (payload_dict, score_tuple); keyed on key_attr."""
    tuples = [
        RankTuple(key=payload[key_attr], scores=scores, payload=dict(payload))
        for payload, scores in rows
    ]
    return Relation(name, tuples)


@pytest.fixture
def three_relations():
    """A small L ⋈ O ⋈ C chain with known results."""
    lineitem = relation(
        "L",
        [
            ({"orderkey": 1}, (0.9,)),
            ({"orderkey": 2}, (0.8,)),
            ({"orderkey": 1}, (0.3,)),
        ],
        "orderkey",
    )
    orders = relation(
        "O",
        [
            ({"orderkey": 1, "custkey": 10}, (0.7,)),
            ({"orderkey": 2, "custkey": 11}, (0.95,)),
        ],
        "orderkey",
    )
    customer = relation(
        "C",
        [
            ({"custkey": 10}, (0.5,)),
            ({"custkey": 11}, (0.4,)),
        ],
        "custkey",
    )
    return lineitem, orders, customer


def brute_force_3way(lineitem, orders, customer):
    scoring = SumScore()
    lo = full_join(lineitem.tuples, orders.tuples, scoring)
    results = []
    for r in lo:
        custkey = r.merged_payload()["custkey"]
        for c in customer.tuples:
            if c.key == custkey:
                results.append(r.score + sum(c.scores))
    return sorted(results, reverse=True)


class TestPipelineConstruction:
    def test_needs_two_relations(self, three_relations):
        with pytest.raises(InstanceError):
            Pipeline([three_relations[0]], [])

    def test_rekey_arity_checked(self, three_relations):
        lineitem, orders, customer = three_relations
        with pytest.raises(InstanceError):
            Pipeline([lineitem, orders, customer], [])  # needs 1 rekey attr

    def test_stage_count(self, three_relations):
        pipeline = Pipeline(list(three_relations), ["custkey"], operator="HRJN*")
        assert len(pipeline.stages) == 2


@pytest.mark.parametrize("operator", ["HRJN*", "FRPA", "a-FRPA", "PBRJ_FR^RR"])
class TestPipelineCorrectness:
    def test_two_way_matches_naive(self, three_relations, operator):
        lineitem, orders, __ = three_relations
        pipeline = Pipeline([lineitem, orders], [], operator=operator)
        got = top_scores(pipeline.top_k(10))
        expected = top_scores(
            naive_top_k(lineitem.tuples, orders.tuples, SumScore(), 10)
        )
        assert got == pytest.approx(expected)

    def test_three_way_matches_bruteforce(self, three_relations, operator):
        lineitem, orders, customer = three_relations
        pipeline = Pipeline(
            [lineitem, orders, customer], ["custkey"], operator=operator
        )
        got = top_scores(pipeline.top_k(10))
        expected = brute_force_3way(lineitem, orders, customer)
        assert got == pytest.approx(expected)

    def test_results_sorted(self, three_relations, operator):
        pipeline = Pipeline(list(three_relations), ["custkey"], operator=operator)
        scores = top_scores(pipeline.top_k(10))
        assert scores == sorted(scores, reverse=True)


class TestPipelineMetrics:
    def test_base_depths_tracked(self, three_relations):
        pipeline = Pipeline(list(three_relations), ["custkey"], operator="a-FRPA")
        pipeline.top_k(1)
        depths = pipeline.base_depths()
        assert len(depths) == 3
        assert all(d >= 0 for d in depths)
        assert pipeline.sum_depths == sum(depths)

    def test_incremental_laziness(self, three_relations):
        """Asking for 1 result must not exhaust the base relations."""
        lineitem = relation(
            "L",
            [({"orderkey": i}, (1.0 - i / 100,)) for i in range(50)],
            "orderkey",
        )
        orders = relation(
            "O",
            [({"orderkey": i, "custkey": i}, (1.0 - i / 100,)) for i in range(50)],
            "orderkey",
        )
        customer = relation(
            "C",
            [({"custkey": i}, (1.0 - i / 100,)) for i in range(50)],
            "custkey",
        )
        pipeline = Pipeline([lineitem, orders, customer], ["custkey"], operator="a-FRPA")
        results = pipeline.top_k(1)
        assert len(results) == 1
        assert results[0].score == pytest.approx(3.0)
        assert pipeline.sum_depths < 120  # far from 150 total tuples

    def test_io_cost_accumulates(self, three_relations):
        pipeline = Pipeline(list(three_relations), ["custkey"])
        pipeline.top_k(1)
        assert pipeline.io_cost > 0

    def test_timing_components(self, three_relations):
        pipeline = Pipeline(list(three_relations), ["custkey"])
        pipeline.top_k(2)
        timing = pipeline.timing()
        assert timing.total >= 0
        assert timing.bound >= 0


class TestOperatorSource:
    def test_wraps_results_with_rekey(self, three_relations):
        lineitem, orders, __ = three_relations
        inner = Pipeline([lineitem, orders], [], operator="HRJN*").top
        source = OperatorSource(inner, "custkey", dimension=2)
        tup = source.next()
        assert tup is not None
        assert tup.key in {10, 11}
        assert len(tup.scores) == 2

    def test_exhaustion(self, three_relations):
        lineitem, orders, __ = three_relations
        inner = Pipeline([lineitem, orders], [], operator="HRJN*").top
        source = OperatorSource(inner, "custkey", dimension=2)
        pulled = 0
        while source.next() is not None:
            pulled += 1
        assert pulled == 3  # join size of L ⋈ O
        assert not source.has_next()
        assert source.next() is None

    def test_missing_rekey_attribute_raises(self, three_relations):
        lineitem, orders, __ = three_relations
        inner = Pipeline([lineitem, orders], [], operator="HRJN*").top
        source = OperatorSource(inner, "nope", dimension=2)
        with pytest.raises(InstanceError):
            source.next()
