"""Tests for depth estimation and pipeline order ranking."""

import numpy as np
import pytest

from repro.core.naive import naive_top_k
from repro.core.operators import hrjn_star
from repro.core.scoring import SumScore
from repro.core.tuples import RankTuple
from repro.data.workload import random_instance
from repro.plan.estimate import (
    DepthEstimate,
    chain_cardinality,
    estimate_binary_depths,
    estimate_chain_depths,
    estimate_terminal_score,
    feasible_chain_orders,
    join_cardinality,
    rank_pipeline_orders,
)
from repro.relation.relation import RankJoinInstance, Relation


def relation(name, rows, key_attr="k"):
    return Relation(
        name,
        [
            RankTuple(key=p[key_attr], scores=s, payload=dict(p))
            for p, s in rows
        ],
    )


class TestJoinCardinality:
    def test_exact_binary(self):
        instance = random_instance(
            n_left=200, n_right=200, e_left=1, e_right=1,
            num_keys=20, k=1, seed=0,
        )
        assert join_cardinality(instance.left, instance.right) == (
            instance.join_size()
        )

    def test_chain_exact_for_two(self):
        a = relation("A", [({"k": 1}, (0.5,)), ({"k": 1}, (0.4,))])
        b = relation("B", [({"k": 1}, (0.9,))])
        assert chain_cardinality([a, b], ["k"]) == 2

    def test_chain_independence_for_three(self):
        a = relation("A", [({"p": 0}, (0.5,))] * 4, key_attr="p")
        b = relation("B", [({"p": 0, "q": 0}, (0.5,))] * 2, key_attr="p")
        c = relation("C", [({"q": 0}, (0.5,))] * 3, key_attr="q")
        # True size = 4*2*3 = 24; estimate = (4*2)*(2*3)/2 = 24 (exact for
        # single-valued keys).
        assert chain_cardinality([a, b, c], ["p", "q"]) == pytest.approx(24)

    def test_arity_validation(self):
        a = relation("A", [({"k": 1}, (0.5,))])
        with pytest.raises(ValueError):
            chain_cardinality([a], [])
        with pytest.raises(ValueError):
            chain_cardinality([a, a], ["k", "k"])


class TestTerminalScore:
    def test_close_to_truth_on_random_instance(self):
        instance = random_instance(
            n_left=800, n_right=800, e_left=1, e_right=1,
            num_keys=40, k=10, cut=1.0, seed=3,
        )
        true_term = naive_top_k(
            instance.left.tuples, instance.right.tuples, SumScore(), 10
        )[-1].score
        estimated = estimate_terminal_score(
            [instance.left, instance.right],
            instance.join_size(),
            10,
            samples=8000,
            seed=0,
        )
        assert estimated == pytest.approx(true_term, abs=0.15)

    def test_rejects_infeasible_k(self):
        a = relation("A", [({"k": 1}, (0.5,))])
        with pytest.raises(ValueError):
            estimate_terminal_score([a], 1, 5)

    def test_rejects_empty_relation(self):
        a = relation("A", [({"k": 1}, (0.5,))])
        b = Relation("B", [])
        with pytest.raises(ValueError):
            estimate_terminal_score([a, b], 10, 1)


class TestBinaryDepths:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_within_factor_of_actual_hrjn_star(self, seed):
        instance = random_instance(
            n_left=600, n_right=600, e_left=1, e_right=1,
            num_keys=30, k=10, cut=1.0, seed=seed,
        )
        estimate = estimate_binary_depths(instance, seed=0)
        operator = hrjn_star(instance)
        operator.top_k(10)
        actual = operator.depths().sum_depths
        # Corner-model estimates track HRJN* within a small factor.
        assert estimate.sum_depths <= 5 * actual
        assert actual <= 5 * estimate.sum_depths + 50

    def test_depths_bounded_by_relation_sizes(self):
        instance = random_instance(
            n_left=100, n_right=50, e_left=2, e_right=2,
            num_keys=5, k=5, seed=1,
        )
        estimate = estimate_binary_depths(instance)
        assert estimate.depths[0] <= 100
        assert estimate.depths[1] <= 50


class TestBinaryDepthsDegenerate:
    """Graceful degradation: the planner feeds arbitrary instances here,
    so degenerate inputs must produce a full-scan estimate, not raise."""

    def _instance(self, left_rows, right_rows, k):
        left = relation("L", left_rows) if left_rows else Relation("L", [])
        right = relation("R", right_rows) if right_rows else Relation("R", [])
        return RankJoinInstance(left, right, SumScore(), k)

    def test_empty_relation_full_scan(self):
        instance = self._instance([({"k": 1}, (0.5,))], [], k=1)
        estimate = estimate_binary_depths(instance)
        assert estimate.depths == (1, 0)
        assert estimate.terminal_score == float("-inf")
        assert estimate.join_size == 0

    def test_both_empty(self):
        instance = self._instance([], [], k=1)
        estimate = estimate_binary_depths(instance)
        assert estimate.depths == (0, 0)
        assert estimate.sum_depths == 0

    def test_single_tuple_each_side(self):
        instance = self._instance(
            [({"k": 1}, (0.7,))], [({"k": 1}, (0.3,))], k=1
        )
        estimate = estimate_binary_depths(instance)
        assert estimate.depths == (1, 1)
        assert estimate.join_size == 1

    def test_join_smaller_than_k_full_scan(self):
        instance = self._instance(
            [({"k": 1}, (0.7,)), ({"k": 2}, (0.6,))],
            [({"k": 1}, (0.3,))],
            k=5,
        )
        estimate = estimate_binary_depths(instance)
        assert estimate.depths == (2, 1)
        assert estimate.terminal_score == float("-inf")

    def test_all_equal_scores(self):
        rows = [({"k": i % 3}, (0.5,)) for i in range(30)]
        instance = self._instance(rows, rows, k=5)
        estimate = estimate_binary_depths(instance)
        assert 1 <= estimate.depths[0] <= 30
        assert 1 <= estimate.depths[1] <= 30
        assert estimate.join_size >= 5


class TestChainDepths:
    def _chain(self):
        rng = np.random.default_rng(0)
        def mk(name, n, left, right):
            rows = []
            for __ in range(n):
                payload = {}
                if left:
                    payload[left] = int(rng.integers(0, 10))
                if right:
                    payload[right] = int(rng.integers(0, 10))
                rows.append((payload, (float(rng.random()),)))
            return relation(name, rows, left or right)
        return [mk("A", 200, None, "p"), mk("B", 150, "p", "q"),
                mk("C", 100, "q", None)], ["p", "q"]

    def test_estimates_all_relations(self):
        relations, attrs = self._chain()
        estimate = estimate_chain_depths(relations, attrs, k=10)
        assert len(estimate.depths) == 3
        assert all(d >= 1 for d in estimate.depths)
        assert estimate.join_size > 10

    def test_infeasible_k_reads_everything(self):
        a = relation("A", [({"p": 0}, (0.5,))], key_attr="p")
        b = relation("B", [({"p": 1}, (0.5,))], key_attr="p")  # join is empty
        estimate = estimate_chain_depths([a, b], ["p"], k=1)
        assert estimate.depths == (1, 1)
        assert estimate.terminal_score == float("-inf")

    def test_deeper_k_means_deeper_estimate(self):
        relations, attrs = self._chain()
        shallow = estimate_chain_depths(relations, attrs, k=1)
        deep = estimate_chain_depths(relations, attrs, k=100)
        assert deep.sum_depths >= shallow.sum_depths


class TestChainOrders:
    def test_counts(self):
        assert len(feasible_chain_orders(1)) == 1
        assert len(feasible_chain_orders(2)) == 2
        assert len(feasible_chain_orders(3)) == 4
        assert len(feasible_chain_orders(4)) == 8

    def test_orders_are_contiguous(self):
        for order in feasible_chain_orders(4):
            seen = {order[0]}
            for rel_index in order[1:]:
                assert rel_index - 1 in seen or rel_index + 1 in seen
                seen.add(rel_index)

    def test_rank_pipeline_orders_prefers_shallow_lead(self):
        # Relation B is tiny and fully high-scoring: plans leading with the
        # deep relations should rank worse.
        a = relation("A", [({"p": i % 3}, (i / 100,)) for i in range(100)],
                     key_attr="p")
        b = relation("B", [({"p": 0, "q": 0}, (0.9,))], key_attr="p")
        c = relation("C", [({"q": 0}, (i / 100,)) for i in range(100)],
                     key_attr="q")
        ranked = rank_pipeline_orders([a, b, c], ["p", "q"], k=1)
        assert len(ranked) == 4
        best_order, estimate = ranked[0]
        assert isinstance(estimate, DepthEstimate)
        # The tiny relation should not be last in the best order.
        assert best_order[-1] != 1
