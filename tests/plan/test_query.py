"""Tests for the declarative ranking-query layer."""

import pytest

from repro.core.tuples import RankTuple
from repro.errors import InstanceError
from repro.plan.query import QueryInput, RankQuery
from repro.relation.relation import Relation


def relation(name, rows, key_attr="k"):
    return Relation(
        name,
        [
            RankTuple(key=payload[key_attr], scores=scores, payload=dict(payload))
            for payload, scores in rows
        ],
    )


@pytest.fixture
def two_relations():
    left = relation(
        "L",
        [({"k": 1}, (0.9, 0.4)), ({"k": 2}, (0.5, 0.5)), ({"k": 1}, (0.2, 0.9))],
    )
    right = relation("R", [({"k": 1}, (0.8,)), ({"k": 2}, (0.6,))])
    return left, right


class TestQueryInput:
    def test_no_weights_identity(self, two_relations):
        left, __ = two_relations
        assert QueryInput(left).scaled() is left

    def test_weights_scale_scores(self, two_relations):
        left, __ = two_relations
        scaled = QueryInput(left, weights=(0.5, 1.0)).scaled()
        assert scaled.tuples[0].scores == (0.45, 0.4)

    def test_weight_arity_checked(self, two_relations):
        left, __ = two_relations
        with pytest.raises(InstanceError):
            QueryInput(left, weights=(0.5,)).scaled()

    def test_weights_must_be_unit_range(self, two_relations):
        left, __ = two_relations
        with pytest.raises(InstanceError):
            QueryInput(left, weights=(1.5, 0.5)).scaled()
        with pytest.raises(InstanceError):
            QueryInput(left, weights=(-0.1, 0.5)).scaled()

    def test_payload_preserved(self, two_relations):
        left, __ = two_relations
        scaled = QueryInput(left, weights=(1.0, 1.0)).scaled()
        assert scaled.tuples[0].payload == {"k": 1}


class TestRankQuery:
    def test_execute_returns_topk(self, two_relations):
        left, right = two_relations
        query = RankQuery(
            inputs=[QueryInput(left), QueryInput(right)], k=2
        )
        results = query.execute()
        assert len(results) == 2
        assert results[0].score >= results[1].score
        assert results[0].score == pytest.approx(0.9 + 0.4 + 0.8)

    def test_weighted_execution(self, two_relations):
        left, right = two_relations
        query = RankQuery(
            inputs=[QueryInput(left, weights=(0.0, 1.0)), QueryInput(right)],
            k=1,
        )
        top = query.execute()[0]
        # With the first attribute zeroed, (0.2, 0.9) wins on the left.
        assert top.score == pytest.approx(0.9 + 0.8)

    def test_single_relation_rejected(self, two_relations):
        left, __ = two_relations
        with pytest.raises(InstanceError):
            RankQuery(inputs=[QueryInput(left)], k=1).compile()

    def test_explain_mentions_stages(self, two_relations):
        left, right = two_relations
        query = RankQuery(
            inputs=[QueryInput(left), QueryInput(right)], k=3, operator="FRPA"
        )
        text = query.explain()
        assert "FRPA" in text
        assert "L ⋈ R" in text

    def test_operator_choice_respected(self, two_relations):
        left, right = two_relations
        query = RankQuery(
            inputs=[QueryInput(left), QueryInput(right)], k=1, operator="HRJN*"
        )
        plan = query.compile()
        assert plan.operator_name == "HRJN*"

    def test_three_way_query(self):
        a = relation("A", [({"k": 1, "j": 7}, (0.9,)), ({"k": 2, "j": 8}, (0.4,))])
        b = relation("B", [({"k": 1, "j": 7}, (0.8,)), ({"k": 2, "j": 8}, (0.7,))])
        c = relation("C", [({"j": 7}, (0.6,)), ({"j": 8}, (0.9,))], key_attr="j")
        query = RankQuery(
            inputs=[QueryInput(a), QueryInput(b), QueryInput(c)],
            rekey_attrs=["j"],
            k=2,
        )
        results = query.execute()
        assert results[0].score == pytest.approx(0.9 + 0.8 + 0.6)
        assert results[1].score == pytest.approx(0.4 + 0.7 + 0.9)
