"""Seed-workload invariant: every kernel runs the operator stack to the
*same* answer and the *same* cost.

For each of the four seed workloads (tpch / zipf / uniform /
anticorrelated — see tests/exec/conftest.py) the FR-family operators must
produce an identical top-K (scores AND emission order) and identical
sumDepths under the ``python``, ``numpy`` and — when installed —
``numba`` kernels, and under size-aware ``auto`` dispatch (whose per-call
tier choices must be invisible in the results).  This is the strongest
form of the bit-identity claim: a single float divergence anywhere in the
bound pipeline changes a stopping decision and shows up here as a depth
mismatch.
"""

import pytest

from repro.core.operators import make_operator
from repro.kernels import HAS_NUMBA, use_backend
from repro.kernels.pointset import HAS_NUMPY

from tests.exec.conftest import WORKLOAD_BUILDERS

pytestmark = pytest.mark.skipif(
    not HAS_NUMPY, reason="equivalence needs the vectorized tier installed"
)

#: FR-family operators exercising corner, FR* and adaptive aFR bounds.
#: (PBRJ_FR^RR re-skylines the full seen set per pull — too slow for the
#: pure-python leg of this matrix; its bound geometry is covered by the
#: property tests.)
OPERATORS_UNDER_TEST = ("HRJN*", "FRPA", "a-FRPA")

#: Kernels compared against the "python" reference.
COMPARE = ("numpy",) + (("numba",) if HAS_NUMBA else ()) + ("auto",)


def _run(workload_name, operator_name, backend):
    instance = WORKLOAD_BUILDERS[workload_name]()
    with use_backend(backend):
        operator = make_operator(operator_name, instance)
        results = operator.top_k(instance.k)
        depths = operator.depths()
    return (
        [(r.score, r.left.key, r.right.key) for r in results],
        (depths.left, depths.right),
    )


@pytest.mark.parametrize("workload", sorted(WORKLOAD_BUILDERS))
@pytest.mark.parametrize("operator", OPERATORS_UNDER_TEST)
def test_identical_topk_and_sumdepths(workload, operator):
    py_results, py_depths = _run(workload, operator, "python")
    assert len(py_results) > 0
    for backend in COMPARE:
        results, depths = _run(workload, operator, backend)
        # Same scores, same emission order, same stop decisions.
        assert results == py_results, backend
        assert depths == py_depths, backend
