"""Backend selection: precedence, fallback, env var, config, CLI, exec."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import kernels
from repro.config import ReproConfig
from repro.errors import InstanceError
from repro.exec import ExecConfig
from repro.kernels.pointset import HAS_NUMPY

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-wide selection as it found it."""
    previous = kernels.kernel_name()
    yield
    kernels.set_backend(previous)


class TestSetBackend:
    def test_explicit_python(self):
        assert kernels.set_backend("python") == "python"
        assert kernels.kernel_name() == "python"
        assert kernels.get_backend().name == "python"

    @pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy")
    def test_explicit_numpy(self):
        assert kernels.set_backend("numpy") == "numpy"

    def test_auto_is_the_dispatcher(self):
        # "auto" is per-call dispatch now, not a numpy alias: the active
        # kernel keeps the name "auto" and routes by batch size.
        assert kernels.set_backend("auto") == "auto"
        assert kernels.kernel_name() == "auto"
        routes = kernels.dispatch_routes()
        assert set(routes) == set(kernels.KERNEL_OPS)
        for entries in routes.values():
            assert entries[-1] == (0, "python")  # reference anchors each op

    @pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy")
    def test_auto_routes_by_batch_size(self):
        with kernels.use_backend("auto"):
            dispatcher = kernels.get_backend()
            small = dispatcher.select("cover_corner_scores", ([(0.5, 0.5)],))
            assert small.used == "python"
            bulk = [(i / 70000, 1 - i / 70000) for i in range(50_000)]
            large = dispatcher.select("cover_corner_scores", (bulk,))
            assert large.used in ("numpy", "numba")

    def test_pinned_numba_keeps_its_name(self):
        # A pinned name never silently renames itself; missing tiers
        # degrade per op (warned once, tallied) instead.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert kernels.set_backend("numba") == "numba"
            assert kernels.kernel_name() == "numba"
            assert kernels.dominates_any([(0.9, 0.9)], (0.5, 0.5)) is True

    def test_none_means_auto(self):
        assert kernels.set_backend(None) == kernels.set_backend("auto")

    def test_name_normalized(self):
        assert kernels.set_backend("  PYTHON ") == "python"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("fortran")

    def test_available_backends(self):
        names = kernels.available_backends()
        assert "python" in names
        assert ("numpy" in names) == HAS_NUMPY


class TestUseBackend:
    def test_context_restores_previous(self):
        kernels.set_backend("python")
        with kernels.use_backend("auto"):
            pass
        assert kernels.kernel_name() == "python"

    def test_context_restores_on_error(self):
        kernels.set_backend("python")
        with pytest.raises(RuntimeError):
            with kernels.use_backend("auto"):
                raise RuntimeError("boom")
        assert kernels.kernel_name() == "python"


class TestEnvVar:
    """REPRO_KERNEL is read at import time — test in a child interpreter."""

    def _probe(self, env_value):
        env = {"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}
        if env_value is not None:
            env["REPRO_KERNEL"] = env_value
        return subprocess.run(
            [sys.executable, "-W", "always", "-c",
             "from repro import kernels; print(kernels.kernel_name())"],
            capture_output=True, text=True, env=env, check=True,
        )

    def test_env_selects_python(self):
        assert self._probe("python").stdout.strip() == "python"

    def test_env_selects_auto_dispatch(self):
        assert self._probe("auto").stdout.strip() == "auto"

    def test_invalid_env_warns_and_falls_back_to_auto(self):
        proc = self._probe("no-such-backend")
        assert proc.stdout.strip() == "auto"
        assert "REPRO_KERNEL" in proc.stderr  # RuntimeWarning mentions the var


class TestReproConfig:
    def test_apply_sets_backend(self):
        assert ReproConfig(kernel="python").apply() == "python"
        assert kernels.kernel_name() == "python"

    def test_invalid_kernel_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            ReproConfig(kernel="fortran")

    def test_from_env_invalid_is_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "bogus")
        assert ReproConfig.from_env().kernel == "auto"

    def test_current_reflects_active(self):
        kernels.set_backend("python")
        assert ReproConfig.current().kernel == "python"


class TestExecConfig:
    def test_kernel_field_validated(self):
        with pytest.raises(InstanceError, match="unknown kernel"):
            ExecConfig(kernel="fortran")

    def test_kernel_default_inherits(self):
        assert ExecConfig().kernel is None

    def test_engine_applies_kernel(self):
        from repro.data.workload import random_instance
        from repro.exec import ShardedRankJoin

        instance = random_instance(
            n_left=60, n_right=60, e_left=2, e_right=2,
            num_keys=10, k=3, seed=7,
        )
        config = ExecConfig(shards=2, backend="serial", kernel="python")
        with ShardedRankJoin(instance, "FRPA", config=config) as engine:
            engine.top_k(3)
            assert kernels.kernel_name() == "python"
            assert engine.snapshot()["config"]["kernel"] == "python"


class TestCli:
    def test_kernel_flag_applies(self, capsys):
        from repro.__main__ import main

        assert main([
            "run", "FRPA", "--kernel", "python",
            "--k", "3", "--scale", "0.0002",
        ]) == 0
        out = capsys.readouterr().out
        assert "kernel=python" in out
        assert kernels.kernel_name() == "python"

    def test_info_lists_backends(self, capsys):
        from repro.__main__ import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "kernels" in out
        assert "python" in out
