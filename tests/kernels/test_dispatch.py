"""Size-aware per-call dispatch: registry, thresholds, routing, obs.

Covers the three pillars of the dispatch layer:

* :class:`~repro.kernels.registry.KernelRegistry` — per-op registration
  and *per-op* fallback (a missing tier degrades one op at a time,
  warned once, tallied — never a silent process-wide flip);
* :mod:`repro.kernels.dispatch` — threshold resolution (explicit >
  env file > cache > calibration > defaults), sizers, and the
  auto/pinned dispatcher routing semantics;
* the obs contract — ``kernel_calls_total`` labels the backend the
  dispatcher *chose* per call, ``kernel_fallbacks_total`` records
  degradations.
"""

import json
import warnings

import pytest

from repro import kernels
from repro.config import ReproConfig
from repro.kernels import dispatch
from repro.kernels.dispatch import (
    NEVER,
    AutoDispatcher,
    PinnedDispatcher,
)
from repro.kernels.pointset import HAS_NUMPY
from repro.kernels.registry import KernelRegistry
from repro.obs.metrics import MetricRegistry

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy")


@pytest.fixture(autouse=True)
def _restore_dispatch_state():
    """Leave backend selection, thresholds and obs sink as found."""
    previous = kernels.kernel_name()
    yield
    dispatch.reset()
    kernels.unobserve()
    kernels.set_backend(previous)


def _points(n, e=2):
    return [((i % 9 + 1) / 10.0,) * e for i in range(n)]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class _PartialCompiled:
    """A fake compiled tier implementing exactly one op."""

    name = "numba"

    def dominates_any(self, points, q):
        return True  # sentinel: proves this impl was selected


def _partial_registry():
    from repro.kernels.reference import ReferenceBackend

    registry = KernelRegistry(kernels.KERNEL_OPS)
    registry.register("reference", ReferenceBackend())
    registry.register("compiled", _PartialCompiled())
    return registry


class TestKernelRegistry:
    def test_resolve_requested_tier(self):
        registry = _partial_registry()
        resolved = registry.resolve("dominates_any", "compiled")
        assert (resolved.requested, resolved.used) == ("numba", "numba")
        assert not resolved.fallback
        assert resolved.impl([(0.0,)], (1.0,)) is True

    def test_per_op_fallback_walks_tier_order(self):
        registry = _partial_registry()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            resolved = registry.resolve("skyline_filter", "compiled")
        assert resolved.fallback
        assert (resolved.requested, resolved.used) == ("numba", "python")
        assert registry.fallbacks[("skyline_filter", "numba", "python")] == 1

    def test_fallback_warns_once_per_pair(self):
        registry = _partial_registry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            registry.resolve("skyline_filter", "compiled")
            registry.resolve("antichain", "compiled")
        fallback_warnings = [
            w for w in caught if "kernel_fallbacks_total" in str(w.message)
        ]
        assert len(fallback_warnings) == 1
        # ... but every degradation is tallied individually.
        assert ("antichain", "numba", "python") in registry.fallbacks

    def test_resolve_all_covers_every_op(self):
        registry = _partial_registry()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            table = registry.resolve_all("compiled")
        assert set(table) == set(kernels.KERNEL_OPS)
        assert not table["dominates_any"].fallback
        assert table["cover_carve"].fallback

    def test_unknown_op_and_tier_rejected(self):
        registry = _partial_registry()
        with pytest.raises(KeyError, match="unknown kernel op"):
            registry.resolve("transmogrify", "reference")
        with pytest.raises(ValueError, match="unknown kernel tier"):
            registry.register("gpu", object())

    def test_backend_names(self):
        assert "python" in kernels.REGISTRY.backend_names()
        assert ("numpy" in kernels.REGISTRY.backend_names()) == HAS_NUMPY


# ----------------------------------------------------------------------
# Threshold resolution
# ----------------------------------------------------------------------
class TestThresholds:
    def test_set_thresholds_partial_override(self):
        dispatch.set_thresholds({"dominates_any": {"numpy": 7}})
        table = kernels.dispatch_thresholds()
        assert table["dominates_any"]["numpy"] == 7
        # Unnamed cells keep their defaults.
        assert (
            table["cover_corner_scores"]
            == dispatch.DEFAULT_THRESHOLDS["cover_corner_scores"]
        )

    def test_unknown_ops_and_backends_ignored(self):
        dispatch.set_thresholds(
            {"warp": {"numpy": 1}, "antichain": {"gpu": 1, "numpy": 5}}
        )
        table = kernels.dispatch_thresholds()
        assert "warp" not in table
        assert "gpu" not in table["antichain"]
        assert table["antichain"]["numpy"] == 5

    def test_env_file_override(self, tmp_path, monkeypatch):
        path = tmp_path / "thresholds.json"
        path.write_text(json.dumps(
            {"thresholds": {"skyline_filter": {"numpy": 3}}}
        ))
        monkeypatch.setenv(dispatch.ENV_VAR, str(path))
        dispatch.reset()
        assert kernels.dispatch_thresholds()["skyline_filter"]["numpy"] == 3

    def test_load_thresholds_file_bare_mapping(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"antichain": {"numpy": 11}}))
        table = dispatch.load_thresholds_file(path)
        assert table["antichain"]["numpy"] == 11

    def test_cache_roundtrip_and_staleness(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        registry = kernels.REGISTRY
        dispatch._store_cache(registry, {"dominates_any": {"numpy": 42}})
        cached = dispatch._load_cache(registry)
        assert cached is not None
        assert cached["dominates_any"]["numpy"] == 42
        # A cache written under a different backend set must be ignored.
        payload = json.loads(dispatch._cache_path().read_text())
        payload["meta"]["backends"] = ["python", "cuda"]
        dispatch._cache_path().write_text(json.dumps(payload))
        assert dispatch._load_cache(registry) is None

    @needs_numpy
    def test_calibrate_measures_every_op(self):
        measured = dispatch.calibrate(kernels.REGISTRY, budget=1.0)
        assert set(measured) == set(kernels.KERNEL_OPS)
        for table in measured.values():
            assert all(isinstance(v, int) and v >= 1 for v in table.values())

    @needs_numpy
    def test_calibrate_respects_budget(self):
        # A zero budget measures nothing (every op keeps its defaults).
        assert dispatch.calibrate(kernels.REGISTRY, budget=0.0) == {}


# ----------------------------------------------------------------------
# Dispatcher routing
# ----------------------------------------------------------------------
@needs_numpy
class TestAutoDispatcher:
    def test_small_batches_stay_on_reference(self):
        dispatch.set_thresholds({"cover_corner_scores": {"numpy": 100}})
        dispatcher = AutoDispatcher(kernels.REGISTRY)
        small = dispatcher.select("cover_corner_scores", (_points(4),))
        assert small.used == "python"
        large = dispatcher.select("cover_corner_scores", (_points(200),))
        assert large.used == "numpy"

    def test_never_sentinel_disables_backend(self):
        dispatch.set_thresholds({"skyline_filter": {"numpy": NEVER}})
        dispatcher = AutoDispatcher(kernels.REGISTRY)
        chosen = dispatcher.select("skyline_filter", (_points(100_000),))
        assert chosen.used == "python"

    def test_threshold_change_rebuilds_live_routes(self):
        dispatch.set_thresholds({"antichain": {"numpy": 5}})
        dispatcher = AutoDispatcher(kernels.REGISTRY)
        assert dispatcher.select("antichain", (_points(10),)).used == "numpy"
        dispatch.set_thresholds({"antichain": {"numpy": NEVER}})
        assert dispatcher.select("antichain", (_points(10),)).used == "python"

    def test_cross_product_sizer_multiplies(self):
        dispatch.set_thresholds({"cross_product_max": {"numpy": 100}})
        dispatcher = AutoDispatcher(kernels.REGISTRY)
        scores = [0.1] * 20
        assert dispatcher.select(
            "cross_product_max", (scores, scores)
        ).used == "numpy"  # 20 * 20 = 400 >= 100
        assert dispatcher.select(
            "cross_product_max", (scores[:4], scores[:4])
        ).used == "python"  # 16 < 100

    def test_cover_carve_sizer_sums_cover_and_observed(self):
        dispatch.set_thresholds({"cover_carve": {"numpy": 30}})
        dispatcher = AutoDispatcher(kernels.REGISTRY)
        cover, observed = _points(20), _points(20)
        assert dispatcher.select(
            "cover_carve", (cover, observed)
        ).used == "numpy"  # 20 + 20 >= 30
        assert dispatcher.select(
            "cover_carve", (cover[:5], observed[:5])
        ).used == "python"

    def test_routes_snapshot_anchor(self):
        routes = AutoDispatcher(kernels.REGISTRY).routes_snapshot()
        assert set(routes) == set(kernels.KERNEL_OPS)
        for entries in routes.values():
            sizes = [size for size, _ in entries]
            assert sizes == sorted(sizes, reverse=True)
            assert entries[-1] == (0, "python")


class TestPinnedDispatcher:
    def test_python_pin_ignores_batch_size(self):
        dispatcher = PinnedDispatcher(kernels.REGISTRY, "python")
        assert dispatcher.select(
            "cover_corner_scores", (_points(100_000),)
        ).used == "python"

    @needs_numpy
    def test_numpy_pin_ignores_batch_size(self):
        dispatcher = PinnedDispatcher(kernels.REGISTRY, "numpy")
        assert dispatcher.select(
            "cover_corner_scores", (_points(1),)
        ).used == "numpy"


# ----------------------------------------------------------------------
# Observability: chosen-backend counters and fallback counters
# ----------------------------------------------------------------------
@needs_numpy
class TestDispatchObservability:
    def test_calls_counted_under_chosen_backend(self):
        dispatch.set_thresholds({"cover_corner_scores": {"numpy": 100}})
        metrics = MetricRegistry()
        kernels.observe(metrics)
        with kernels.use_backend("auto"):
            kernels.cover_corner_scores(_points(4))
            kernels.cover_corner_scores(_points(200))
        assert metrics.value(
            "kernel_calls_total", kernel="python", fn="cover_corner_scores"
        ) == 1
        assert metrics.value(
            "kernel_calls_total", kernel="numpy", fn="cover_corner_scores"
        ) == 1

    def test_fallback_counter_on_degraded_pin(self):
        if kernels.HAS_NUMBA:
            pytest.skip("needs a missing compiled tier to degrade")
        metrics = MetricRegistry()
        kernels.observe(metrics)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with kernels.use_backend("numba"):
                kernels.dominates_any(_points(4), (0.5, 0.5))
                kernels.dominates_any(_points(4), (0.5, 0.5))
        assert metrics.value(
            "kernel_fallbacks_total",
            fn="dominates_any", requested="numba", used="numpy",
        ) == 2
        # Calls are counted under the backend that actually computed.
        assert metrics.value(
            "kernel_calls_total", kernel="numpy", fn="dominates_any"
        ) == 2

    def test_unobserve_detaches(self):
        metrics = MetricRegistry()
        kernels.observe(metrics)
        kernels.unobserve()
        with kernels.use_backend("python"):
            kernels.skyline_filter(_points(3))
        assert metrics.value(
            "kernel_calls_total", kernel="python", fn="skyline_filter"
        ) is None


# ----------------------------------------------------------------------
# Config wiring
# ----------------------------------------------------------------------
class TestConfigWiring:
    def test_numba_is_a_valid_config_kernel(self):
        assert ReproConfig(kernel="numba").kernel == "numba"

    def test_kernel_thresholds_file_applied(self, tmp_path):
        path = tmp_path / "thr.json"
        path.write_text(json.dumps({"grid_carve": {"numpy": 13}}))
        config = ReproConfig(kernel="auto", kernel_thresholds=str(path))
        assert config.apply() == "auto"
        assert kernels.dispatch_thresholds()["grid_carve"]["numpy"] == 13

    def test_from_env_reads_thresholds_var(self, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_VAR, "/tmp/some-thresholds.json")
        assert ReproConfig.from_env().kernel_thresholds == (
            "/tmp/some-thresholds.json"
        )
