"""PointSet: columnar storage semantics, stable ids, and the stamp protocol."""

import pytest

from repro.kernels import PointSet
from repro.kernels.pointset import HAS_NUMPY


class TestConstruction:
    def test_empty_dimensionless(self):
        ps = PointSet()
        assert len(ps) == 0
        assert ps.dimension is None
        assert ps.tuples() == []
        assert list(ps) == []

    def test_dimension_inferred_from_first_point(self):
        ps = PointSet()
        ps.append((0.5, 0.25))
        assert ps.dimension == 2
        with pytest.raises(ValueError, match="dimension mismatch"):
            ps.append((0.1, 0.2, 0.3))

    def test_explicit_dimension_enforced(self):
        ps = PointSet(3)
        with pytest.raises(ValueError, match="dimension mismatch"):
            ps.append((0.1, 0.2))

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            PointSet(-1)

    def test_initial_points(self):
        ps = PointSet(2, [(0.1, 0.2), (0.3, 0.4)])
        assert ps.tuples() == [(0.1, 0.2), (0.3, 0.4)]


class TestMutation:
    def test_append_returns_stable_row_ids(self):
        ps = PointSet(2)
        ids = [ps.append((i / 10, i / 10)) for i in range(40)]
        assert ids == list(range(40))  # survives capacity doubling
        assert ps.row(17) == (17 / 10, 17 / 10)

    def test_extend_grows_past_initial_capacity(self):
        ps = PointSet(3)
        points = [(i / 100, i / 100, i / 100) for i in range(100)]
        ps.extend(points)
        assert len(ps) == 100
        assert ps.tuples() == points

    def test_replace_from_iterable(self):
        ps = PointSet(2, [(0.1, 0.1)])
        ps.replace([(0.9, 0.9), (0.8, 0.7)])
        assert ps.tuples() == [(0.9, 0.9), (0.8, 0.7)]

    def test_replace_from_pointset(self):
        source = PointSet(2, [(0.5, 0.5)])
        ps = PointSet(2, [(0.1, 0.1), (0.2, 0.2)])
        ps.replace(source)
        assert ps.tuples() == [(0.5, 0.5)]

    @pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy")
    def test_replace_from_array_copies(self):
        import numpy as np

        arr = np.array([[0.3, 0.4], [0.5, 0.6]])
        ps = PointSet(2)
        ps.replace(arr)
        arr[0, 0] = 99.0  # mutating the source must not leak in
        assert ps.tuples() == [(0.3, 0.4), (0.5, 0.6)]

    def test_compress_keeps_relative_order(self):
        ps = PointSet(2, [(0.1, 0.1), (0.2, 0.2), (0.3, 0.3), (0.4, 0.4)])
        removed = ps.compress([True, False, True, False])
        assert removed == 2
        assert ps.tuples() == [(0.1, 0.1), (0.3, 0.3)]

    def test_compress_mask_length_checked(self):
        ps = PointSet(2, [(0.1, 0.1)])
        with pytest.raises(ValueError, match="mask length"):
            ps.compress([True, False])

    def test_clear(self):
        ps = PointSet(2, [(0.1, 0.1)])
        ps.clear()
        assert len(ps) == 0
        assert ps.tuples() == []


class TestStampProtocol:
    """The (version, size) stamp drives lazy cache sync in prepared operands."""

    def test_append_grows_size_same_version(self):
        ps = PointSet(2)
        v0, s0 = ps.stamp
        ps.append((0.1, 0.2))
        v1, s1 = ps.stamp
        assert v1 == v0 and s1 == s0 + 1

    def test_replace_bumps_version(self):
        ps = PointSet(2, [(0.1, 0.1)])
        v0 = ps.version
        ps.replace([(0.2, 0.2)])
        assert ps.version > v0

    def test_compress_bumps_version_only_when_rows_drop(self):
        ps = PointSet(2, [(0.1, 0.1), (0.2, 0.2)])
        v0 = ps.version
        assert ps.compress([True, True]) == 0
        assert ps.version == v0  # no-op compress keeps caches valid
        ps.compress([True, False])
        assert ps.version > v0

    def test_clear_bumps_version(self):
        ps = PointSet(2, [(0.1, 0.1)])
        v0 = ps.version
        ps.clear()
        assert ps.version > v0


class TestViews:
    def test_tuples_cached_until_mutation(self):
        ps = PointSet(2, [(0.1, 0.2)])
        first = ps.tuples()
        assert ps.tuples() is first
        ps.append((0.3, 0.4))
        assert ps.tuples() == [(0.1, 0.2), (0.3, 0.4)]

    def test_row_bounds_checked(self):
        ps = PointSet(2, [(0.1, 0.2)])
        with pytest.raises(IndexError):
            ps.row(1)
        with pytest.raises(IndexError):
            ps.row(-1)

    def test_contains(self):
        ps = PointSet(2, [(0.1, 0.2)])
        assert (0.1, 0.2) in ps
        assert [0.1, 0.2] in ps  # as_point normalization
        assert (0.9, 0.9) not in ps

    @pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy")
    def test_array_view_matches_tuples(self):
        ps = PointSet(2, [(0.1, 0.2), (0.3, 0.4)])
        assert ps.array.shape == (2, 2)
        assert [tuple(row) for row in ps.array.tolist()] == ps.tuples()

    @pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy")
    def test_array_on_dimensionless_empty(self):
        assert PointSet().array.shape == (0, 0)

    def test_rows_view(self):
        ps = PointSet(2, [(0.1, 0.2)])
        rows = ps.rows()
        assert len(rows) == 1
        assert tuple(rows[0]) == (0.1, 0.2)
