"""Property tests: every kernel tier is bit-identical to the reference.

Every op is driven with the same hypothesis-generated inputs under the
pure-Python reference and each comparison kernel — ``numpy``, ``numba``
(when installed), and the size-aware ``auto`` dispatcher, which must be
bit-identical *by construction* no matter which tier each call lands on.
Dominance masks, skyline index lists, partial scores (exact float
equality — all tiers accumulate left-to-right), cover carves and grid
ops must agree.  Dimensions e ∈ {2, 3, 4}, duplicate rows, and the 0/1
boundary coordinates are all drawn deliberately.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.kernels import HAS_NUMBA, PointSet, use_backend
from repro.kernels.pointset import HAS_NUMPY

pytestmark = pytest.mark.skipif(
    not HAS_NUMPY, reason="equivalence needs the vectorized tier installed"
)

#: Kernels compared against the "python" reference.  "numba" joins the
#: list only when importable; "auto" is always compared — per-call
#: dispatch must be invisible in the results.
COMPARE = ["numpy"] + (["numba"] if HAS_NUMBA else []) + ["auto"]

# Boundary values 0.0 and 1.0 are drawn often: they exercise the cover
# carve's corner substitutions and the grid's edge cells.
coord = st.one_of(
    st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
    st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
)


def point_sets(dims=(2, 3, 4), min_size=0, max_size=24):
    """Lists of same-dimension unit vectors, duplicates allowed."""
    return st.integers(0, len(dims) - 1).flatmap(
        lambda i: st.lists(
            st.tuples(*([coord] * dims[i])), min_size=min_size, max_size=max_size
        ).flatmap(
            lambda pts: st.one_of(
                st.just(pts),
                # Re-sample with replacement to force duplicate rows.
                st.lists(st.sampled_from(pts), min_size=1, max_size=max_size)
                if pts else st.just(pts),
            )
        )
    )


def _mask(m):
    return [bool(v) for v in m]


def _floats(values):
    return [float(v) for v in values]


def _cells(cells):
    return sorted(tuple(int(c) for c in cell) for cell in cells)


def _points(points):
    return sorted(tuple(float(v) for v in p) for p in points)


def variants(fn, *args, **kwargs):
    """(reference result, {kernel name: result}) for one op call."""
    with use_backend("python"):
        base = fn(*args, **kwargs)
    others = {}
    for name in COMPARE:
        with use_backend(name):
            others[name] = fn(*args, **kwargs)
    return base, others


def check(normalize, fn, *args, **kwargs):
    """Assert every comparison kernel matches the reference; return it."""
    base, others = variants(fn, *args, **kwargs)
    expected = normalize(base)
    for name, value in others.items():
        assert normalize(value) == expected, f"kernel {name} diverged"
    return base


class TestDominanceOps:
    @given(point_sets(min_size=1), st.data())
    @settings(max_examples=200, deadline=None)
    def test_dominance_masks_equal(self, points, data):
        e = len(points[0])
        q = data.draw(st.tuples(*([coord] * e)))
        ps = PointSet(e, points)
        weak = check(_mask, kernels.weak_dominance_mask, ps, q)
        check(_mask, kernels.strict_dominance_mask, ps, q)
        any_dom = check(bool, kernels.dominates_any, ps, q)
        assert any_dom == any(_mask(weak))

    @given(point_sets())
    @settings(max_examples=200, deadline=None)
    def test_skyline_filter_identical_indices(self, points):
        # Exact index equality — emission order downstream depends on it.
        check(list, kernels.skyline_filter, points)


class TestScoreOps:
    @given(point_sets())
    @settings(max_examples=200, deadline=None)
    def test_corner_scores_bitwise_equal(self, points):
        e = len(points[0]) if points else 2
        ps = PointSet(e, points)
        check(_floats, kernels.cover_corner_scores, ps)  # exact: same order
        check(float, kernels.max_corner_score, ps)

    @given(point_sets(min_size=1), st.data())
    @settings(max_examples=150, deadline=None)
    def test_weighted_corner_scores_bitwise_equal(self, points, data):
        e = len(points[0])
        weights = data.draw(st.tuples(*([st.floats(0.0, 2.0)] * e)))
        ps = PointSet(e, points)
        check(_floats, kernels.cover_corner_scores, ps, weights)
        check(float, kernels.max_corner_score, ps, weights)

    @given(
        st.lists(st.floats(0.0, 2.0), max_size=12),
        st.lists(st.floats(0.0, 2.0), max_size=12),
    )
    @settings(max_examples=150, deadline=None)
    def test_cross_product_max_equal(self, left, right):
        check(float, kernels.cross_product_max, left, right)


class TestCoverOps:
    @given(point_sets(min_size=1, max_size=12), st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_cover_carve_same_point_set(self, observed, skyline_mode):
        e = len(observed[0])
        start = [kernels.ones(e)]
        check(
            _points,
            kernels.cover_carve, start, observed, skyline_mode=skyline_mode,
        )

    @given(point_sets(min_size=1, max_size=12), st.data())
    @settings(max_examples=150, deadline=None)
    def test_carved_covers_agree_on_probes(self, observed, data):
        e = len(observed[0])
        probe = data.draw(st.tuples(*([coord] * e)))
        carved = check(
            _points, kernels.cover_carve, [kernels.ones(e)], observed
        )
        check(bool, kernels.dominates_any, list(carved), probe)


class TestGridOps:
    resolutions = st.sampled_from([1, 2, 4, 8, 64])

    @given(point_sets(min_size=1, max_size=16), resolutions)
    @settings(max_examples=150, deadline=None)
    def test_grid_cell_assign_equal(self, points, resolution):
        # Per-row assignment: order is meaningful, compare positionally.
        check(
            lambda cells: [tuple(int(c) for c in cell) for cell in cells],
            kernels.grid_cell_assign, points, resolution,
        )

    @given(point_sets(min_size=1, max_size=16), resolutions)
    @settings(max_examples=150, deadline=None)
    def test_antichain_same_cell_set(self, points, resolution):
        with use_backend("python"):
            cells = kernels.grid_cell_assign(points, resolution)
        check(_cells, kernels.antichain, cells)

    @given(point_sets(min_size=2, max_size=10), resolutions, st.data())
    @settings(max_examples=150, deadline=None)
    def test_grid_carve_same_cells_and_flag(self, points, resolution, data):
        e = len(points[0])
        vector = data.draw(st.tuples(*([coord] * e)))
        with use_backend("python"):
            cells = kernels.antichain(
                kernels.grid_cell_assign(points, resolution)
            )
        check(
            lambda out: (_cells(out[0]), bool(out[1])),
            kernels.grid_carve, cells, vector, resolution,
        )


class TestStructureUsesKernels:
    """End-to-end geometry structures agree across every kernel."""

    @given(point_sets(min_size=1, max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_incremental_skyline_same_points(self, points):
        from repro.geometry.skyline import IncrementalSkyline

        results = {}
        for name in ["python"] + COMPARE:
            with use_backend(name):
                sky = IncrementalSkyline()
                for p in points:
                    sky.add(p)
                results[name] = sorted(sky.points)
        for name in COMPARE:
            assert results[name] == results["python"], name

    @given(point_sets(min_size=1, max_size=12), st.data())
    @settings(max_examples=100, deadline=None)
    def test_cover_region_same_cover(self, observed, data):
        from repro.geometry.cover import CoverRegion

        e = len(observed[0])
        probe = data.draw(st.tuples(*([coord] * e)))
        results = {}
        for name in ["python"] + COMPARE:
            with use_backend(name):
                region = CoverRegion(e, skyline_mode=True)
                region.update(observed)
                results[name] = (sorted(region.points), region.covers(probe))
        for name in COMPARE:
            assert results[name] == results["python"], name
