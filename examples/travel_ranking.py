#!/usr/bin/env python3
"""The paper's motivating scenario: a yelp-style travel ranking query.

    SELECT h.name, b.name, t.name
    FROM   Hotels h, Bars b, Theaters t
    WHERE  h.city = b.city AND b.city = t.city
    RANK BY 0.9*h.rating + 0.6*b.rating + 1.0*t.proximity
    LIMIT  5

The query compiles to a pipelined plan of binary rank join operators
(Hotels ⋈ Bars feeding (Hotels ⋈ Bars) ⋈ Theaters); the plan returns the
top results while reading only a prefix of each input.  The same plan with
HRJN* operators reads the *entire* input — venue quality is scarce (most
ratings are mediocre), so the corner bound's assumption that a perfect
partner may still appear never pays off.

Run:  python examples/travel_ranking.py
"""

import numpy as np

from repro import QueryInput, RankQuery, RankTuple, Relation

WEIGHTS = {"hotels": (0.9,), "bars": (0.6,), "theaters": (1.0,)}


def make_city_relation(name: str, n: int, n_cities: int, seed: int) -> Relation:
    """A venue relation: city join key, one quality score, a name payload."""
    rng = np.random.default_rng(seed)
    cities = rng.integers(0, n_cities, size=n)
    # Quality is scarce: most venues mediocre, a few excellent.
    scores = rng.beta(2.0, 5.0, size=n).round(3)
    tuples = [
        RankTuple(
            key=int(city),
            scores=(float(score),),
            payload={"city": int(city), "name": f"{name}-{index}"},
        )
        for index, (city, score) in enumerate(zip(cities, scores))
    ]
    return Relation(name, tuples)


def build_query(operator: str) -> RankQuery:
    hotels = make_city_relation("hotel", 1500, 40, seed=1)
    bars = make_city_relation("bar", 2500, 40, seed=2)
    theaters = make_city_relation("theater", 800, 40, seed=3)
    return RankQuery(
        inputs=[
            QueryInput(hotels, weights=WEIGHTS["hotels"]),
            QueryInput(bars, weights=WEIGHTS["bars"]),
            QueryInput(theaters, weights=WEIGHTS["theaters"]),
        ],
        rekey_attrs=["city"],  # intermediate (h ⋈ b) re-keyed on city
        k=5,
        operator=operator,
    )


def main() -> None:
    query = build_query("a-FRPA")
    print(query.explain())

    plan = query.compile()
    results = plan.top_k(query.k)

    print("\ntop-5 (hotel, bar, theater) triples:")
    for rank, result in enumerate(results, start=1):
        payload = result.merged_payload()
        print(f"  {rank}. score={result.score:.3f}  city={payload['city']:3d}  "
              f"last-joined venue: {payload['name']}")

    names = ("hotels", "bars", "theaters")
    sizes = dict(zip(names, (1500, 2500, 800)))
    print("\ntuples read per input (a-FRPA plan):")
    for name, depth in zip(names, plan.base_depths()):
        print(f"  {name:9s} {depth:5d} / {sizes[name]}")
    total = sum(sizes.values())
    print(f"  total    {plan.sum_depths:6d} / {total} "
          f"({100 * plan.sum_depths / total:.0f}%)")

    corner_plan = build_query("HRJN*").compile()
    corner_plan.top_k(query.k)
    print(f"\nsame query with HRJN* operators: {corner_plan.sum_depths} / {total} "
          f"tuples read ({100 * corner_plan.sum_depths / total:.0f}%)")
    print("the feasible-region bound learns that no perfect partner exists; "
          "the corner bound keeps hoping.")


if __name__ == "__main__":
    main()
