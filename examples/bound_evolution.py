#!/usr/bin/env python3
"""Visualize how each bounding scheme's threshold converges.

Attaches a :class:`~repro.stats.trace.BoundTrace` to each operator on the
same instance and prints sparklines of the bound's descent.  The corner
bound (HRJN*) starts from the ideal-vector assumption and descends slowly;
the feasible-region bounds learn the input's actual score geometry and dive
— which is exactly why they stop reading earlier.

Run:  python examples/bound_evolution.py
"""

from repro import WorkloadParams, lineitem_orders_instance, make_operator
from repro.stats.trace import BoundTrace

OPERATORS = ["HRJN*", "FRPA", "a-FRPA"]  # PBRJ_FR^RR omitted: slow bound


def main() -> None:
    params = WorkloadParams(e=2, c=0.25, z=0.5, k=10, scale=0.004, seed=0)
    instance = lineitem_orders_instance(params)
    print(f"instance: {instance}  (score cut c={params.c})\n")

    for name in OPERATORS:
        trace = BoundTrace()
        operator = make_operator(name, instance, trace=trace)
        results = operator.top_k(params.k)
        final_bound = trace.bounds()[-1] if len(trace) else float("nan")
        print(f"{name}")
        print(f"  pulls={operator.pulls:5d}  "
              f"10th score={results[-1].score:.3f}  "
              f"final bound={final_bound:.3f}")
        print(f"  bound descent: {trace.sparkline(width=64)}")
        print()

    print("the corner bound must wait for the input frontier to fall below")
    print("the K-th score + the ideal-partner assumption; the feasible-region")
    print("bounds learn early that no high-scoring partners exist.")


if __name__ == "__main__":
    main()
