#!/usr/bin/env python3
"""The rank join's ancestry: Fagin's middleware aggregation (TA vs NRA).

Several ranked lists grade the *same* objects (say, restaurants graded by
food, service and ambience); the goal is the top-K under a monotone
aggregate.  TA may look grades up by object id (random access); NRA may
not.  Their access counts illustrate the trade the rank join literature
inherited: random access buys much earlier termination.

Run:  python examples/middleware_aggregation.py
"""

import numpy as np

from repro.aggregation import RankedList, no_random_access, threshold_algorithm
from repro.core.scoring import SumScore


def make_lists(n_restaurants: int, seed: int) -> list[RankedList]:
    rng = np.random.default_rng(seed)
    aspects = ("food", "service", "ambience")
    # Correlated quality: a base niceness plus per-aspect noise.
    base = rng.beta(2, 4, n_restaurants)
    lists = []
    for aspect in aspects:
        grades = np.clip(base + rng.normal(0, 0.15, n_restaurants), 0, 1)
        lists.append(
            RankedList(
                [(f"restaurant-{i}", float(g)) for i, g in enumerate(grades)],
                name=aspect,
            )
        )
    return lists


def main() -> None:
    n = 5000
    scoring = SumScore()

    print(f"{n} restaurants, 3 ranked lists (food / service / ambience), top-5\n")
    for label, algorithm in (
        ("TA  (sorted + random access)", threshold_algorithm),
        ("NRA (sorted access only)", no_random_access),
    ):
        lists = make_lists(n, seed=7)
        result = algorithm(lists, scoring, 5)
        print(f"{label}")
        for obj, score in result.top:
            print(f"    {obj:16s} score={score:.3f}")
        print(f"    sorted accesses: {result.sorted_accesses:6d}   "
              f"random accesses: {result.random_accesses:6d}\n")

    print("TA terminates as soon as K seen objects beat the threshold of the")
    print("current list frontiers; NRA must keep reading until the bookkeeping")
    print("bounds close — the price of forgoing random access.  The rank join")
    print("operators in this library generalize exactly this trade to joins.")


if __name__ == "__main__":
    main()
