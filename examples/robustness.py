#!/usr/bin/env python3
"""Robustness (instance-optimality) in action.

The corner bound assumes a perfect ``(1, …, 1)`` partner may still appear,
so HRJN* keeps reading long after the feasible region rules such partners
out.  This example builds inputs with a score cut — no tuple scores above
``c`` in every coordinate — and shows the corner-bound operator reading an
order of magnitude more than the feasible-region operators, while a naive
join reads everything.  It also prints the simulated I/O cost under a
network-stream cost model, where robustness decides total cost.

Run:  python examples/robustness.py
"""

from repro import CostModel, WorkloadParams, lineitem_orders_instance, make_operator

OPERATORS = ["HRJN", "HRJN*", "PBRJ_FR^RR", "FRPA", "a-FRPA"]


def main() -> None:
    print("score cut c = 0.25, e = 1, K = 10 — the corner bound's nightmare\n")
    params = WorkloadParams(e=1, c=0.25, z=0.5, k=10, scale=0.002, seed=7)
    instance = lineitem_orders_instance(
        params, cost_model=CostModel.network_stream()
    )
    available = len(instance.left) + len(instance.right)

    print(f"{'operator':12s} {'sumDepths':>10s} {'% of input':>11s} "
          f"{'sim. I/O cost':>14s}")
    baseline = None
    for name in OPERATORS:
        operator = make_operator(name, instance)
        operator.top_k(instance.k)
        stats = operator.stats()
        if name == "FRPA":
            baseline = stats.sum_depths
        print(
            f"{name:12s} {stats.sum_depths:>10d} "
            f"{100 * stats.sum_depths / available:>10.1f}% "
            f"{stats.io_cost:>14,.0f}"
        )

    print(f"\nnaive join would read {available:,} tuples "
          f"(cost {available * CostModel.network_stream().per_tuple:,.0f})")
    if baseline:
        print("instance-optimality bounds FRPA within a constant factor of "
              "*any* rank join operator on *any* input — the corner bound "
              "enjoys no such guarantee, as the gap above shows.")


if __name__ == "__main__":
    main()
