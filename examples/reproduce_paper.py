#!/usr/bin/env python3
"""Regenerate every evaluation figure of the paper in one go.

Prints the series for Figures 2, 10, 11, 12, 13, 14, 15 plus the skew
sweep and the Section 5.1.1 cover ablation.  This is the same code the
benchmark suite runs; here it is packaged as a single script for quick
inspection.  Expect a few minutes of runtime with the default (reduced)
data scale.

Run:  python examples/reproduce_paper.py [--quick]
"""

import argparse
import time

from repro.experiments import (
    FigureConfig,
    ablation_cover,
    ablation_pulling,
    figure_02,
    figure_10,
    figure_11,
    figure_12,
    figure_13,
    figure_14,
    figure_15,
    skew_sweep,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller data scale and one seed (roughly 4x faster)",
    )
    args = parser.parse_args()

    config = FigureConfig(scale=0.002, num_seeds=1) if args.quick else None
    experiments = [
        ("Figure 2", lambda: figure_02(config)),
        ("Figure 10", lambda: figure_10(config)),
        ("Figure 11", lambda: figure_11(config)),
        ("Figure 12", lambda: figure_12(config)),
        ("Figure 13", lambda: figure_13(config)),
        ("Figure 14", lambda: figure_14(config)),
        ("Figure 15", lambda: figure_15(config)),
        ("Skew sweep", lambda: skew_sweep(config)),
        ("Cover ablation", lambda: ablation_cover(config)),
        ("Pulling ablation", lambda: ablation_pulling(config)),
    ]
    for label, runner in experiments:
        start = time.perf_counter()
        table = runner()
        elapsed = time.perf_counter() - start
        print()
        print(table.render())
        print(f"[{label} regenerated in {elapsed:.1f}s]")


if __name__ == "__main__":
    main()
