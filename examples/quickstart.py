#!/usr/bin/env python3
"""Quickstart: answer a top-K rank join with every operator in the library.

Builds the paper's default workload (synthetic skewed TPC-H, Lineitem ⋈
Orders on orderkey, summed score attributes), runs the naive baseline and
all five rank join operators, and compares their answers and I/O.

Run:  python examples/quickstart.py
"""

from repro import OPERATORS, WorkloadParams, lineitem_orders_instance, make_operator
from repro.core.naive import naive_top_k, top_scores


def main() -> None:
    # The paper's Table 2 defaults: e=2 score attributes, skew z=.5,
    # score cut c=.5, K=10 results.  scale=0.002 keeps this instant.
    params = WorkloadParams(e=2, z=0.5, c=0.5, k=10, scale=0.002, seed=42)
    instance = lineitem_orders_instance(params)
    print(f"instance: {instance}")
    print(f"  |Lineitem| = {len(instance.left):,}  |Orders| = {len(instance.right):,}")

    # Ground truth: materialize the full join and sort (what a system
    # without rank join operators would do — it reads *everything*).
    expected = naive_top_k(
        instance.left.tuples, instance.right.tuples, instance.scoring, instance.k
    )
    print(f"\ntop-{instance.k} scores (naive full join): "
          f"{[round(r.score, 3) for r in expected]}")

    print(f"\n{'operator':12s} {'correct':>8s} {'left':>7s} {'right':>7s} "
          f"{'sumDepths':>10s} {'time (s)':>9s}")
    for name in sorted(OPERATORS):
        operator = make_operator(name, instance)
        results = operator.top_k(instance.k)
        correct = top_scores(results) == top_scores(expected)
        depths = operator.depths()
        timing = operator.timing()
        print(
            f"{name:12s} {str(correct):>8s} {depths.left:>7d} "
            f"{depths.right:>7d} {depths.sum_depths:>10d} {timing.total:>9.3f}"
        )

    total = len(instance.left) + len(instance.right)
    print(f"\n(naive reads all {total:,} tuples; rank join operators read a prefix)")


if __name__ == "__main__":
    main()
