#!/usr/bin/env python3
"""Watch a-FRPA adapt: exact covers → grid covers → coarser grids.

This example constructs an input whose feasible-region covers keep growing
(a long anti-correlated score staircase), runs a-FRPA with a small cover
budget, and prints the per-input cover mode and grid resolution as results
are produced — the FRPA → HRJN* morphing of Section 5.

Run:  python examples/adaptive_behavior.py
"""

import numpy as np

from repro import RankJoinInstance, RankTuple, Relation, SumScore
from repro.core.operators import a_frpa, frpa, hrjn_star


def anti_correlated_relation(name: str, n: int, num_keys: int, seed: int) -> Relation:
    """Anti-correlated 2-d scores: the worst case for cover sizes.

    Points hug the diagonal x + y ≈ 1 with jitter, so nearly every tuple
    is a skyline point and the feasible-region staircase keeps gaining
    steps — exactly the regime where exact covers outgrow any budget.
    """
    rng = np.random.default_rng(seed)
    first = rng.random(n)
    second = np.clip(1.0 - first + rng.normal(0, 0.05, n), 0.001, 1.0)
    keys = rng.integers(0, num_keys, size=n)
    return Relation(
        name,
        [
            RankTuple(key=int(k), scores=(float(a), float(b)))
            for k, a, b in zip(keys, first, second)
        ],
    )


def main() -> None:
    left = anti_correlated_relation("R1", 6000, 60, seed=1)
    right = anti_correlated_relation("R2", 6000, 60, seed=2)
    instance = RankJoinInstance(left, right, SumScore(), k=20)

    operator = a_frpa(instance, max_cr_size=64, resolution=64)
    bound = operator.bound_scheme
    print("a-FRPA with maxCRSize=64, L0=64 — cover state per result:\n")
    print(f"{'result':>6s} {'score':>7s} {'pulls':>6s} "
          f"{'left cover':>22s} {'right cover':>22s}")

    def describe(side: int) -> str:
        mode = bound.cover_modes[side]
        resolution = bound.cover_resolutions[side]
        size = len(bound._cr[side])
        if mode == "exact":
            return f"exact ({size} pts)"
        return f"grid res={resolution} ({size} pts)"

    for index in range(20):
        result = operator.get_next()
        if result is None:
            break
        print(
            f"{index + 1:>6d} {result.score:>7.3f} {operator.pulls:>6d} "
            f"{describe(0):>22s} {describe(1):>22s}"
        )

    print("\nthe morphing spectrum at K=20 (same instance):")
    contenders = [("FRPA (exact covers)", lambda: frpa(instance))]
    for budget in (256, 64, 16):
        contenders.append(
            (f"a-FRPA (budget {budget})",
             lambda budget=budget: a_frpa(instance, max_cr_size=budget))
        )
    contenders.append(("HRJN* (corner bound)", lambda: hrjn_star(instance)))
    for label, factory in contenders:
        op = factory()
        op.top_k(20)
        print(f"  {label:24s} sumDepths={op.depths().sum_depths:6d} "
              f"time={op.timing().total:.3f}s")
    print("\nshrinking the cover budget morphs a-FRPA from the instance-"
          "optimal FRPA\ntoward the corner-bound HRJN*, trading I/O for "
          "bound-computation time.")


if __name__ == "__main__":
    main()
