#!/usr/bin/env python3
"""Rank joins over streamed (single-pass, never-materialized) inputs.

The paper's setting assumes single-pass sequential access — exactly what a
network stream provides.  This example feeds a PBRJ operator from lazy
generators: tuples are *produced on demand*, the stream is never
materialized, and the operator's early termination means most of it is
never even generated.  A `VerifyingSource` asserts the decreasing-score
contract as tuples flow by, and the network cost model prices each pull.

Run:  python examples/streamed_inputs.py
"""

import numpy as np

from repro import CostModel, RankTuple, SumScore
from repro.core.bounds import CornerBound
from repro.core.frstar_bound import FRStarBound
from repro.core.pbrj import PBRJ
from repro.core.pulling import PotentialAdaptive
from repro.relation.sources import StreamSource, VerifyingSource


def score_stream(name: str, n: int, num_keys: int, cut: float, seed: int):
    """A lazy generator of tuples in decreasing score order.

    Scores follow a deterministic decreasing schedule (as an index on a
    remote server would produce); keys arrive pseudo-randomly.
    """
    rng = np.random.default_rng(seed)
    produced = 0
    for i in range(n):
        score = cut * (1.0 - i / n) ** 0.5  # decreasing, capped at `cut`
        produced += 1
        yield RankTuple(
            key=int(rng.integers(0, num_keys)),
            scores=(round(score, 6),),
            payload={"stream": name, "position": i},
        )


def build_operator(bound, n=50_000):
    left = VerifyingSource(
        StreamSource(
            score_stream("left", n, 500, cut=0.5, seed=1),
            dimension=1,
            cost_model=CostModel.network_stream(),
        ),
        score_bound=lambda t: t.scores[0] + 1.0,
    )
    right = VerifyingSource(
        StreamSource(
            score_stream("right", n, 500, cut=0.5, seed=2),
            dimension=1,
            cost_model=CostModel.network_stream(),
        ),
        score_bound=lambda t: 1.0 + t.scores[0],
    )
    return PBRJ(left, right, SumScore(), bound, PotentialAdaptive(),
                name=type(bound).__name__)


def main() -> None:
    n = 50_000
    print(f"two remote streams of {n:,} tuples each (never materialized), "
          "top-5 join results\n")
    for bound in (FRStarBound(), CornerBound()):
        operator = build_operator(bound, n)
        results = operator.top_k(5)
        stats = operator.stats()
        print(f"{operator.name}")
        print(f"  top scores    : {[round(r.score, 3) for r in results]}")
        print(f"  tuples pulled : {stats.sum_depths:,} of {2 * n:,} "
              f"({100 * stats.sum_depths / (2 * n):.2f}%)")
        print(f"  sim. net cost : {stats.io_cost:,.0f} units\n")
    print("the feasible-region bound learns the 0.5 score ceiling from the")
    print("stream itself and stops; the corner bound keeps paying network")
    print("round-trips for a perfect partner that never comes.")


if __name__ == "__main__":
    main()
