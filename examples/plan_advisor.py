#!/usr/bin/env python3
"""Depth estimation and join-order advice for a ranking query.

Uses the estimator of :mod:`repro.plan.estimate` (after Schnaitter,
Spiegel & Polyzotis's depth-estimation work, which the paper builds on) to
predict how deep a rank join plan will read, compares the prediction to an
actual run, and ranks the feasible left-deep orders of a 3-way chain.

Run:  python examples/plan_advisor.py
"""

from repro.core.operators import hrjn_star
from repro.data.workload import WorkloadParams, lineitem_orders_instance, pipeline_tables
from repro.plan.estimate import (
    estimate_binary_depths,
    estimate_chain_depths,
    rank_pipeline_orders,
)


def binary_demo() -> None:
    params = WorkloadParams(e=2, c=0.5, z=0.5, k=10, scale=0.002, seed=0)
    instance = lineitem_orders_instance(params)
    estimate = estimate_binary_depths(instance)
    operator = hrjn_star(instance)
    operator.top_k(params.k)
    actual = operator.depths()
    print("binary instance (Lineitem ⋈ Orders, e=2, c=.5, K=10)")
    print(f"  estimated terminal score : {estimate.terminal_score:.3f}")
    print(f"  estimated join size      : {estimate.join_size:,.0f}")
    print(f"  estimated depths         : {estimate.depths} "
          f"(sum {estimate.sum_depths})")
    print(f"  actual HRJN* depths      : ({actual.left}, {actual.right}) "
          f"(sum {actual.sum_depths})")


def chain_demo() -> None:
    params = WorkloadParams(e=1, c=0.5, z=0.5, k=10, scale=0.001, seed=0)
    tables = pipeline_tables(params)
    relations = [
        tables["lineitem"].to_relation("orderkey"),
        tables["orders"].to_relation("orderkey"),
        tables["customer"].to_relation("custkey"),
    ]
    names = [rel.name for rel in relations]
    attrs = ["orderkey", "custkey"]

    estimate = estimate_chain_depths(relations, attrs, k=params.k)
    print("\n3-way chain (L ⋈ O ⋈ C, e=1)")
    print(f"  estimated join size : {estimate.join_size:,.0f}")
    for name, depth, size in zip(names, estimate.depths, map(len, relations)):
        print(f"  est. depth {name:9s}: {depth:6d} / {size}")

    print("\nfeasible left-deep orders, ranked by estimated weighted depth:")
    for order, __ in rank_pipeline_orders(relations, attrs, k=params.k):
        print("  " + " → ".join(names[i] for i in order))


def main() -> None:
    binary_demo()
    chain_demo()


if __name__ == "__main__":
    main()
