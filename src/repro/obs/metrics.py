"""Metric registry: counters, gauges, and fixed-bucket histograms.

Metrics are identified by name plus a set of string labels, e.g.
``registry.counter("pulls_total", side="left")``.  Handles are resolved
once (typically at operator construction) and then updated with plain
attribute mutations, so the hot-path cost of a metric update is one method
call.  A disabled registry hands out a shared no-op metric, letting
instrumented code run unconditionally.

Histogram buckets are fixed upper boundaries (Prometheus-style ``le``
semantics with a final overflow bucket), chosen per metric at first
registration.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default histogram boundaries: sizes of covers/skylines/heaps are small
#: integers that grow multiplicatively, so powers-of-two-ish edges.
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-set value plus its running maximum."""

    __slots__ = ("value", "max")
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float | None = None
        self.max: float | None = None

    def set(self, value: float) -> None:
        self.value = value
        if self.max is None or value > self.max:
            self.max = value


class Histogram:
    """Fixed-boundary histogram with count/sum, cheap to update."""

    __slots__ = ("boundaries", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, boundaries: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be sorted")
        self.boundaries = tuple(boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)  # last is overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def bucket_pairs(self) -> list[tuple[float | None, int]]:
        """``(upper_bound, count)`` pairs; ``None`` bound = overflow."""
        bounds: list[float | None] = list(self.boundaries)
        bounds.append(None)
        return list(zip(bounds, self.counts))

    def percentile(self, q: float) -> float | None:
        """The ``q``-quantile estimated by linear interpolation in-bucket.

        Prometheus ``histogram_quantile`` semantics: observations are
        assumed uniform within their bucket, the first bucket
        interpolates from 0, and any quantile landing in the overflow
        bucket clamps to the largest finite boundary (the estimate
        cannot exceed what the buckets resolve).  Returns ``None`` on an
        empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for bound, bucket_count in zip(self.boundaries, self.counts):
            if bucket_count and cumulative + bucket_count >= rank:
                fraction = (rank - cumulative) / bucket_count
                return lower + (bound - lower) * fraction
            cumulative += bucket_count
            lower = bound
        return float(self.boundaries[-1])


class _NullMetric:
    """Accepts every update and records nothing (disabled registry)."""

    __slots__ = ()
    kind = "null"
    value = 0
    max = None
    sum = 0.0
    count = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class MetricRegistry:
    """Registry of labelled counters, gauges, and histograms."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[tuple[str, str, LabelKey], object] = {}

    # ------------------------------------------------------------------
    # Handle resolution
    # ------------------------------------------------------------------
    def _resolve(self, kind: str, name: str, factory, labels: dict) -> object:
        if not self.enabled:
            return NULL_METRIC
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._resolve("counter", name, Counter, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._resolve("gauge", name, Gauge, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._resolve("histogram", name, lambda: Histogram(buckets), labels)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: str):
        """Current value of a counter/gauge (None if never registered)."""
        for kind in ("counter", "gauge"):
            metric = self._metrics.get((kind, name, _label_key(labels)))
            if metric is not None:
                return metric.value
        return None

    def snapshot(self) -> list[dict]:
        """All metrics as plain dict records (JSONL/export friendly)."""
        records = []
        for (kind, name, labels), metric in sorted(self._metrics.items()):
            record: dict = {"type": "metric", "kind": kind, "name": name,
                            "labels": dict(labels)}
            if kind == "counter":
                record["value"] = metric.value
            elif kind == "gauge":
                record["value"] = metric.value
                record["max"] = metric.max
            else:
                record["sum"] = metric.sum
                record["count"] = metric.count
                record["buckets"] = [
                    {"le": bound, "count": count}
                    for bound, count in metric.bucket_pairs()
                ]
            records.append(record)
        return records

    def metrics_named(self, name: str, kind: str | None = None):
        """``(kind, labels, metric)`` triples for one metric name."""
        out = []
        for (metric_kind, metric_name, label_key), metric in sorted(
            self._metrics.items()
        ):
            if metric_name != name:
                continue
            if kind is not None and metric_kind != kind:
                continue
            out.append((metric_kind, dict(label_key), metric))
        return out

    def merge_snapshot(self, records, **extra_labels: str) -> None:
        """Fold snapshot records from another registry into this one.

        The worker-telemetry relay path: child processes ship *delta*
        snapshots (see :class:`repro.exec.telemetry.WorkerTelemetry`)
        and the supervisor merges them here, adding ``extra_labels``
        (typically ``shard=`` and ``replay=``) to every series.
        Counters and histograms accumulate; gauges take the incoming
        value (last write wins, matching gauge semantics).
        """
        if not self.enabled:
            return
        for record in records:
            if record.get("type") != "metric":
                continue
            labels = {**record.get("labels", {}), **extra_labels}
            kind = record["kind"]
            name = record["name"]
            if kind == "counter":
                self.counter(name, **labels).inc(record["value"])
            elif kind == "gauge":
                if record.get("value") is not None:
                    self.gauge(name, **labels).set(record["value"])
            elif kind == "histogram":
                boundaries = tuple(
                    bucket["le"]
                    for bucket in record["buckets"]
                    if bucket["le"] is not None
                )
                histogram = self.histogram(name, buckets=boundaries, **labels)
                if histogram.boundaries != boundaries:  # pragma: no cover
                    continue  # defensively skip incompatible layouts
                for index, bucket in enumerate(record["buckets"]):
                    histogram.counts[index] += bucket["count"]
                histogram.sum += record["sum"]
                histogram.count += record["count"]

    def reset(self) -> None:
        self._metrics.clear()
