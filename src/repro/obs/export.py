"""Exporters: console summary and append-only JSONL event streams.

Every exporter consumes plain-dict *events*.  The stream contains four
event shapes:

``{"type": "event", "name": ..., ...}``
    A discrete occurrence (a per-seed run record, a figure table, …).
``{"type": "span", "op": ..., "path": "get_next/pull", "count": n,
"seconds": s}``
    One aggregated span path of one operator, emitted at flush time.
``{"type": "metric", "kind": "counter"|"gauge"|"histogram", ...}``
    A metric snapshot record (see :meth:`MetricRegistry.snapshot`).
``{"type": "meta", ...}``
    Stream header describing the producing command/workload.

:func:`read_events` loads a stream back, and
:func:`reconstruct_timing` rebuilds the paper's Figure 2(b)
io/bound/other breakdown from span events alone — the round-trip the test
suite holds the exporters to.
"""

from __future__ import annotations

import json
from pathlib import Path


class JsonlExporter:
    """Appends one JSON document per event to a file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    def export(self, event: dict) -> None:
        self._file.write(json.dumps(event, default=_jsonable) + "\n")

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()


def _jsonable(value):
    """Fallback serializer: tuples of dataclasses, numpy scalars, etc.

    ``vars`` only works on objects that actually carry a ``__dict__``;
    ``__slots__``-only instances (and classes, whose mappingproxy is not
    JSON-serializable) raise ``TypeError`` from ``json`` downstream, so
    both fall back to ``repr`` — lossy but never a crashed export.
    """
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if not isinstance(value, type):
        try:
            return vars(value)
        except TypeError:  # __slots__-only object
            pass
    return repr(value)


class ConsoleExporter:
    """Buffers events and renders a human-readable run summary."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def export(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Grouped plain-text summary of spans, metrics, and events."""
        lines: list[str] = []
        spans = [e for e in self.events if e.get("type") == "span"]
        if spans:
            lines.append("spans")
            for event in spans:
                indent = "  " * event["path"].count("/")
                name = event["path"].rsplit("/", 1)[-1]
                lines.append(
                    f"  [{event.get('op', '?')}] {indent}{name:<12} "
                    f"x{event['count']:<7} {event['seconds']:.4f}s"
                )
        metrics = [e for e in self.events if e.get("type") == "metric"]
        if metrics:
            lines.append("metrics")
            for event in metrics:
                labels = ",".join(
                    f"{k}={v}" for k, v in sorted(event.get("labels", {}).items())
                )
                label_text = f"{{{labels}}}" if labels else ""
                if event["kind"] == "histogram":
                    mean = event["sum"] / event["count"] if event["count"] else 0.0
                    detail = f"count={event['count']} mean={mean:.2f}"
                else:
                    detail = str(event.get("value"))
                lines.append(f"  {event['name']}{label_text} = {detail}")
        discrete = [e for e in self.events if e.get("type") == "event"]
        if discrete:
            lines.append("events")
            for event in discrete:
                fields = {
                    k: v for k, v in event.items() if k not in ("type", "name")
                }
                lines.append(f"  {event['name']}: {fields}")
        return "\n".join(lines) if lines else "no observability data recorded"


def read_events(path: str | Path) -> list[dict]:
    """Load a JSONL event stream back into dict events."""
    events = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def reconstruct_timing(events: list[dict], op: str | None = None) -> dict:
    """Rebuild the Figure 2(b) breakdown from span events.

    Returns ``{"io": s, "bound": s, "other": s, "total": s}`` summed over
    all operators in the stream, or over a single operator when ``op`` is
    given.  ``io`` is time inside ``pull`` spans (source access), ``bound``
    inside ``bound`` spans, ``total`` the enclosing ``get_next`` spans.
    """
    io = bound = total = 0.0
    for event in events:
        if event.get("type") != "span":
            continue
        if op is not None and event.get("op") != op:
            continue
        leaf = event["path"].rsplit("/", 1)[-1]
        if leaf == "pull":
            io += event["seconds"]
        elif leaf == "bound":
            bound += event["seconds"]
        elif leaf == "get_next":
            total += event["seconds"]
    return {
        "io": io,
        "bound": bound,
        "other": max(total - io - bound, 0.0),
        "total": total,
    }
