"""Live metric exposition: Prometheus text format and computed SLO gauges.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.
MetricRegistry` into the Prometheus text exposition format (``# TYPE``
lines, cumulative ``_bucket{le=...}`` histogram series, ``_sum`` and
``_count``).  :func:`compute_slos` derives the serving-level objectives
the ROADMAP's streaming item needs — p50/p95/p99 session latency, queue
depth, cache hit ratio, worst shard imbalance — from metrics the service
and exec layers already record, and :func:`set_slo_gauges` writes them
back into the registry as ``slo_*`` gauges so they appear in the same
scrape.

Everything here is read-only over registry internals plus gauge writes;
nothing touches the operator hot path.
"""

from __future__ import annotations

from repro.obs.metrics import Histogram, MetricRegistry

#: The percentiles exposed as ``slo_session_seconds{quantile=...}``.
SLO_QUANTILES = (0.5, 0.95, 0.99)


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _label_text(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(registry: MetricRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Metrics are grouped by name with one ``# TYPE`` header each;
    histograms expand to cumulative ``le`` buckets (including ``+Inf``)
    plus ``_sum``/``_count``.  Gauges never set are skipped — an unset
    gauge has no meaningful sample value.
    """
    by_name: dict[str, list[tuple[str, dict, object]]] = {}
    for (kind, name, label_key), metric in sorted(registry._metrics.items()):
        by_name.setdefault(name, []).append((kind, dict(label_key), metric))

    lines: list[str] = []
    for name, entries in sorted(by_name.items()):
        kind = entries[0][0]
        lines.append(f"# TYPE {name} {kind}")
        for _, labels, metric in entries:
            if kind == "counter":
                lines.append(f"{name}{_label_text(labels)} {metric.value}")
            elif kind == "gauge":
                if metric.value is None:
                    continue
                lines.append(
                    f"{name}{_label_text(labels)} {_format_value(metric.value)}"
                )
            else:  # histogram
                cumulative = 0
                for bound, count in metric.bucket_pairs():
                    cumulative += count
                    le = "+Inf" if bound is None else _format_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_label_text(labels, {'le': le})} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_label_text(labels)} "
                    f"{_format_value(float(metric.sum))}"
                )
                lines.append(f"{name}_count{_label_text(labels)} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# SLO derivation
# ----------------------------------------------------------------------
def _merged_histogram(registry: MetricRegistry, name: str) -> Histogram | None:
    """All label sets of one histogram merged into a single distribution."""
    merged: Histogram | None = None
    for _, _, metric in registry.metrics_named(name, kind="histogram"):
        if merged is None:
            merged = Histogram(metric.boundaries)
        if metric.boundaries != merged.boundaries:  # pragma: no cover
            continue  # defensively skip incompatible bucket layouts
        for index, count in enumerate(metric.counts):
            merged.counts[index] += count
        merged.sum += metric.sum
        merged.count += metric.count
    return merged


def compute_slos(registry: MetricRegistry) -> dict:
    """Serving-level objectives derived from the live registry.

    Returns a plain dict (JSON-friendly; absent signals are ``None``)::

        {"session_seconds": {"p50": ..., "p95": ..., "p99": ...},
         "first_result_seconds": {"p50": ..., "p95": ..., "p99": ...},
         "sessions_finished": int, "queue_depth": ..., "live_sessions": ...,
         "cache_hit_ratio": ..., "shard_imbalance_max": ...,
         "throttled_total": int}

    ``first_result_seconds`` is time-to-first-result — the anytime
    latency the ``stream`` verb serves; ``throttled_total`` counts
    per-tenant quota rejections across all tenants.
    """
    latency = _merged_histogram(registry, "service_session_seconds")
    percentiles: dict[str, float | None] = {}
    for quantile in SLO_QUANTILES:
        key = f"p{int(quantile * 100)}"
        percentiles[key] = latency.percentile(quantile) if latency else None

    first = _merged_histogram(registry, "service_first_result_seconds")
    first_percentiles: dict[str, float | None] = {}
    for quantile in SLO_QUANTILES:
        key = f"p{int(quantile * 100)}"
        first_percentiles[key] = first.percentile(quantile) if first else None

    throttled = 0
    for _, _, metric in registry.metrics_named(
        "service_throttled_total", kind="counter"
    ):
        throttled += metric.value

    hits = misses = 0
    for _, _, metric in registry.metrics_named(
        "service_cache_hits_total", kind="counter"
    ):
        hits += metric.value
    for _, _, metric in registry.metrics_named(
        "service_cache_misses_total", kind="counter"
    ):
        misses += metric.value
    lookups = hits + misses
    hit_ratio = (hits / lookups) if lookups else None

    imbalance: float | None = None
    for _, _, metric in registry.metrics_named("exec_shard_imbalance", kind="gauge"):
        if metric.value is not None:
            imbalance = (
                metric.value if imbalance is None else max(imbalance, metric.value)
            )

    return {
        "session_seconds": percentiles,
        "first_result_seconds": first_percentiles,
        "sessions_finished": latency.count if latency else 0,
        "queue_depth": registry.value("service_queue_depth"),
        "live_sessions": registry.value("service_live_sessions"),
        "cache_hit_ratio": hit_ratio,
        "shard_imbalance_max": imbalance,
        "throttled_total": throttled,
    }


def set_slo_gauges(registry: MetricRegistry) -> dict:
    """Compute the SLOs and publish them as ``slo_*`` gauges.

    Called on every stats/metrics scrape, so the gauges are as fresh as
    the scrape that reads them.  Returns the computed dict (the ``slo``
    block of the ``stats`` verb payload).
    """
    slos = compute_slos(registry)
    if registry.enabled:
        for key, value in slos["session_seconds"].items():
            if value is not None:
                quantile = f"0.{key[1:]}" if key != "p50" else "0.5"
                registry.gauge("slo_session_seconds", quantile=quantile).set(value)
        for key, value in slos["first_result_seconds"].items():
            if value is not None:
                quantile = f"0.{key[1:]}" if key != "p50" else "0.5"
                registry.gauge(
                    "slo_first_result_seconds", quantile=quantile
                ).set(value)
        if slos["cache_hit_ratio"] is not None:
            registry.gauge("slo_cache_hit_ratio").set(slos["cache_hit_ratio"])
        if slos["shard_imbalance_max"] is not None:
            registry.gauge("slo_shard_imbalance_max").set(
                slos["shard_imbalance_max"]
            )
    return slos


def shard_pull_counts(registry: MetricRegistry) -> dict[str, int]:
    """Cumulative pulls per shard label, summed over all operators.

    The ``stats`` verb's per-shard counter block: engine-side accounting
    (``exec_shard_pulls_total``) is authoritative; worker-relayed
    ``worker_pulls_total`` agrees with it and adds replay attribution.
    """
    totals: dict[str, int] = {}
    for _, labels, metric in registry.metrics_named(
        "exec_shard_pulls_total", kind="counter"
    ):
        shard = labels.get("shard", "?")
        totals[shard] = totals.get(shard, 0) + metric.value
    return dict(sorted(totals.items()))
