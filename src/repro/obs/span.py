"""Span-based profiling: nested, named wall-clock measurements.

A :class:`Tracer` accumulates *spans* — named regions of execution entered
via ``with tracer.span("pull"):``.  Spans nest: entering a span while
another is open records the child under the parent's path, so one operator
run yields an aggregate tree such as::

    get_next            152   0.0410s
    get_next/pull       300   0.0121s
    get_next/bound      300   0.0203s

Only aggregates are kept (per-path call count and total seconds), which
keeps the per-call overhead to one ``perf_counter`` pair and a dict
update — cheap enough to leave enabled on hot paths.  A disabled tracer
hands out a shared no-op context manager, making instrumented code
essentially free when observability is off.
"""

from __future__ import annotations

import time


class SpanStats:
    """Mutable per-path accumulator: how often and how long."""

    __slots__ = ("count", "seconds")

    def __init__(self) -> None:
        self.count = 0
        self.seconds = 0.0

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.seconds += elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanStats(count={self.count}, seconds={self.seconds:.6f})"


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """Context manager pushing one named region onto the tracer stack."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        path = tuple(tracer._stack)
        tracer._stack.pop()
        stats = tracer._spans.get(path)
        if stats is None:
            stats = tracer._spans[path] = SpanStats()
        stats.add(elapsed)
        return False


class Tracer:
    """Aggregating span profiler.

    Spans are keyed by their full path (tuple of names from the outermost
    open span down); exceptions raised inside a span still accumulate its
    elapsed time, mirroring ``try/finally`` timer semantics.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._stack: list[str] = []
        self._spans: dict[tuple[str, ...], SpanStats] = {}

    def span(self, name: str):
        """Context manager measuring ``name`` nested under open spans."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spans(self) -> dict[str, SpanStats]:
        """All aggregates keyed by ``"/"``-joined path."""
        return {"/".join(path): stats for path, stats in self._spans.items()}

    def seconds(self, name: str) -> float:
        """Total seconds across every path whose innermost span is ``name``."""
        return sum(
            stats.seconds for path, stats in self._spans.items() if path[-1] == name
        )

    def count(self, name: str) -> int:
        """Total entries across every path whose innermost span is ``name``."""
        return sum(
            stats.count for path, stats in self._spans.items() if path[-1] == name
        )

    def totals_by_name(self) -> dict[str, float]:
        """Seconds aggregated by innermost span name (flat timer view)."""
        totals: dict[str, float] = {}
        for path, stats in self._spans.items():
            name = path[-1]
            totals[name] = totals.get(name, 0.0) + stats.seconds
        return totals

    def reset(self) -> None:
        self._spans.clear()
        self._stack.clear()
