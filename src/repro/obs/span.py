"""Span-based profiling: nested, named wall-clock measurements.

A :class:`Tracer` accumulates *spans* — named regions of execution entered
via ``with tracer.span("pull"):``.  Spans nest: entering a span while
another is open records the child under the parent's path, so one operator
run yields an aggregate tree such as::

    get_next            152   0.0410s
    get_next/pull       300   0.0121s
    get_next/bound      300   0.0203s

Only aggregates are kept (per-path call count and total seconds), which
keeps the per-call overhead to one ``perf_counter`` pair and a dict
update — cheap enough to leave enabled on hot paths.  A disabled tracer
hands out a shared no-op context manager, making instrumented code
essentially free when observability is off.
"""

from __future__ import annotations

import time


class SpanStats:
    """Mutable per-path accumulator: how often and how long.

    Nodes double as tree vertices: ``children`` maps a child span name to
    its stats so the hot path resolves the current path with one string
    dict lookup instead of materialising and hashing a path tuple per
    span exit.  ``registered`` marks nodes present in the tracer's
    canonical path index (intermediate nodes created by
    :meth:`Tracer.record` stay invisible to queries until entered).
    """

    __slots__ = ("count", "seconds", "children", "registered")

    def __init__(self) -> None:
        self.count = 0
        self.seconds = 0.0
        self.children: dict | None = None
        self.registered = False

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.seconds += elapsed

    def add_scaled(self, elapsed: float, scale: int) -> None:
        """Fold one *sampled* measurement standing in for ``scale`` calls.

        Used by hot loops that time only every Nth iteration: the scaled
        accumulation keeps ``count``/``seconds`` unbiased estimators of
        the unsampled totals.
        """
        self.count += scale
        self.seconds += elapsed * scale

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanStats(count={self.count}, seconds={self.seconds:.6f})"


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """Context manager pushing one named region onto the tracer stack.

    Instances are cached per (tracer, name) and reused across entries —
    span() on a hot path costs one dict lookup, no allocation.  The
    ``entered`` flag routes same-name reentrancy (``work/work`` nesting)
    to a throwaway instance so the cached one's state stays private.
    """

    __slots__ = ("_tracer", "_name", "_start", "_stats", "entered")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self.entered = False

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        name = self._name
        parent = tracer._frames[-1]
        children = parent.children
        if children is None:
            children = parent.children = {}
        stats = children.get(name)
        tracer._stack.append(name)
        if stats is None or not stats.registered:
            if stats is None:
                stats = children[name] = SpanStats()
            tracer._spans[tuple(tracer._stack)] = stats
            stats.registered = True
        tracer._frames.append(stats)
        self._stats = stats
        self.entered = True
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        tracer._frames.pop()
        tracer._stack.pop()
        self._stats.add(elapsed)
        self.entered = False
        return False


class Tracer:
    """Aggregating span profiler.

    Spans are keyed by their full path (tuple of names from the outermost
    open span down); exceptions raised inside a span still accumulate its
    elapsed time, mirroring ``try/finally`` timer semantics.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._stack: list[str] = []
        self._spans: dict[tuple[str, ...], SpanStats] = {}
        self._root = SpanStats()
        self._frames: list[SpanStats] = [self._root]
        self._cached: dict[str, _Span] = {}

    def span(self, name: str):
        """Context manager measuring ``name`` nested under open spans."""
        if not self.enabled:
            return NULL_SPAN
        span = self._cached.get(name)
        if span is None:
            span = self._cached[name] = _Span(self, name)
        elif span.entered:
            return _Span(self, name)
        return span

    def record(self, path, seconds: float, count: int = 1) -> None:
        """Merge an externally-measured aggregate into this tracer.

        ``path`` is a span path as a tuple of names or a ``"/"``-joined
        string.  This is how relayed worker span deltas (measured in a
        child process by that worker's own tracer) fold into a
        supervisor-side tracer without re-timing anything.
        """
        if not self.enabled:
            return
        stats = self._resolve(path)
        stats.count += count
        stats.seconds += seconds

    def handle(self, path) -> SpanStats:
        """A pre-resolved accumulator for a fixed *absolute* span path.

        The returned :class:`SpanStats` is the same node ``with
        tracer.span(...)`` would update at that nesting, so hot loops can
        skip the span machinery entirely and pay only a ``perf_counter``
        pair plus :meth:`SpanStats.add` per region — roughly a third of
        the context-manager cost.  Callers own the enabled check (this is
        a hot-path API; handles on a disabled tracer still accumulate but
        are never exported).  Handles go stale across :meth:`reset`.
        """
        return self._resolve(path)

    def _resolve(self, path) -> SpanStats:
        key = tuple(path.split("/")) if isinstance(path, str) else tuple(path)
        stats = self._spans.get(key)
        if stats is None:
            node = self._root
            for name in key:
                if node.children is None:
                    node.children = {}
                child = node.children.get(name)
                if child is None:
                    child = node.children[name] = SpanStats()
                node = child
            stats = self._spans[key] = node
            stats.registered = True
        return stats

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spans(self) -> dict[str, SpanStats]:
        """All aggregates keyed by ``"/"``-joined path."""
        return {"/".join(path): stats for path, stats in self._spans.items()}

    def seconds(self, name: str) -> float:
        """Total seconds across every path whose innermost span is ``name``."""
        return sum(
            stats.seconds for path, stats in self._spans.items() if path[-1] == name
        )

    def count(self, name: str) -> int:
        """Total entries across every path whose innermost span is ``name``."""
        return sum(
            stats.count for path, stats in self._spans.items() if path[-1] == name
        )

    def totals_by_name(self) -> dict[str, float]:
        """Seconds aggregated by innermost span name (flat timer view)."""
        totals: dict[str, float] = {}
        for path, stats in self._spans.items():
            name = path[-1]
            totals[name] = totals.get(name, 0.0) + stats.seconds
        return totals

    def reset(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self._root = SpanStats()
        self._frames = [self._root]
        self._cached.clear()
