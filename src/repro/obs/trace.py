"""Distributed trace context: one reconstructable tree per service request.

A :class:`TraceContext` is the minimal identity a span needs to land in a
trace tree: the request-wide ``trace_id``, this span's own ``span_id``,
and the parent span it hangs under.  Contexts are *immutable*; crossing a
component boundary mints a child context (:meth:`TraceContext.child`), so
the tree shape mirrors the call shape::

    request (client/server)                       trace=T span=a
      └─ session (scheduler)                      trace=T span=b parent=a
           └─ exec (ShardedRankJoin)              trace=T span=c parent=b
                ├─ shard 0 (ShardWorker)          trace=T span=d parent=c
                │    ├─ quantum …                 trace=T span=e parent=d
                │    └─ quantum …
                ├─ shard 1 …
                ├─ retry / respawn (resilience)   parent=shard span
                └─ replayed quantum (replay=true)

Span ids are random (``os.urandom``), which makes them unique across
forked process-backend children without any coordination — exactly the
property the worker telemetry relay needs.  Contexts serialize to plain
dicts (:meth:`to_wire` / :meth:`from_wire`) so they ride the JSON-lines
protocol and the process-backend pickles unchanged.

Trace *records* (``{"type": "trace", ...}``, built by :func:`span_record`)
are exported immediately through :meth:`repro.obs.Observability.trace`;
:class:`TraceTree` reloads a JSONL stream into a navigable tree and is
what the round-trip tests assert connectivity on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


def _new_id() -> str:
    """A 64-bit random hex id (collision-safe across forked children)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """Immutable identity of one span inside one trace.

    ``parent_id`` is ``None`` only for the root (request) span.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def root(cls) -> "TraceContext":
        """Mint a fresh trace with a fresh root span (one per request)."""
        return cls(trace_id=_new_id(), span_id=_new_id())

    def child(self) -> "TraceContext":
        """A new span in the same trace, parented under this one."""
        return TraceContext(
            trace_id=self.trace_id, span_id=_new_id(), parent_id=self.span_id
        )

    # ------------------------------------------------------------------
    # Wire format (JSON-lines protocol field ``trace``)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        wire = {"trace": self.trace_id, "span": self.span_id}
        if self.parent_id is not None:
            wire["parent"] = self.parent_id
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "TraceContext":
        return cls(
            trace_id=str(wire["trace"]),
            span_id=str(wire["span"]),
            parent_id=(str(wire["parent"]) if wire.get("parent") else None),
        )


def span_record(ctx: TraceContext, name: str, *, seconds=None, **fields) -> dict:
    """An export-ready trace record for one span occurrence.

    Structural spans (exec, shard) carry no ``seconds``; timed spans
    (quantum, session) do.  Extra ``fields`` are free-form span
    attributes (shard index, pull counts, session id, …).
    """
    record = {
        "type": "trace",
        "name": name,
        "trace": ctx.trace_id,
        "span": ctx.span_id,
        "parent": ctx.parent_id,
    }
    if seconds is not None:
        record["seconds"] = seconds
    record.update(fields)
    return record


class TraceTree:
    """A reloaded trace: records indexed by span id, navigable as a tree.

    Built from a JSONL event stream (``type == "trace"`` records only).
    Multiple traces may share a stream; :meth:`spans_of` and
    :meth:`connected` scope every question to one ``trace_id``.
    """

    def __init__(self, records: list[dict]) -> None:
        self.records = [r for r in records if r.get("type") == "trace"]
        self._by_span: dict[str, dict] = {r["span"]: r for r in self.records}

    @classmethod
    def from_events(cls, events: list[dict]) -> "TraceTree":
        return cls(events)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def trace_ids(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record["trace"] not in seen:
                seen.append(record["trace"])
        return seen

    def spans_of(self, trace_id: str) -> list[dict]:
        return [r for r in self.records if r["trace"] == trace_id]

    def roots(self, trace_id: str | None = None) -> list[dict]:
        records = self.records if trace_id is None else self.spans_of(trace_id)
        return [r for r in records if r.get("parent") is None]

    def children(self, span_id: str) -> list[dict]:
        return [r for r in self.records if r.get("parent") == span_id]

    def named(self, name: str, trace_id: str | None = None) -> list[dict]:
        records = self.records if trace_id is None else self.spans_of(trace_id)
        return [r for r in records if r.get("name") == name]

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def path_to_root(self, span_id: str, limit: int = 64) -> list[dict]:
        """Parent chain from ``span_id`` up; stops at a root or a break."""
        chain: list[dict] = []
        record = self._by_span.get(span_id)
        while record is not None and len(chain) < limit:
            chain.append(record)
            parent = record.get("parent")
            if parent is None:
                break
            record = self._by_span.get(parent)
        return chain

    def connected(self, trace_id: str) -> bool:
        """True when every span of the trace parents back to its root."""
        spans = self.spans_of(trace_id)
        if not spans:
            return False
        for record in spans:
            chain = self.path_to_root(record["span"])
            if not chain or chain[-1].get("parent") is not None:
                return False
            if chain[-1]["trace"] != trace_id:
                return False
        return True

    def orphans(self, trace_id: str) -> list[dict]:
        """Spans whose parent chain does not reach the trace root."""
        return [
            r
            for r in self.spans_of(trace_id)
            if not (chain := self.path_to_root(r["span"]))
            or chain[-1].get("parent") is not None
        ]
