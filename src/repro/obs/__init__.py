"""Structured observability: spans, metrics, and pluggable exporters.

:class:`Observability` bundles the three primitives every instrumented
component consumes:

* a per-operator span :class:`~repro.obs.span.Tracer` (nested wall-clock
  regions with call counts) obtained via :meth:`Observability.tracer`;
* a shared :class:`~repro.obs.metrics.MetricRegistry` (counters, gauges,
  histograms with labels);
* pluggable exporters (:class:`~repro.obs.export.ConsoleExporter`,
  :class:`~repro.obs.export.JsonlExporter`) that receive discrete events
  immediately and span/metric aggregates at :meth:`Observability.flush`.

Operators take an optional ``obs=`` argument; passing ``None`` selects the
shared :data:`NULL_OBS` instance, whose tracer/metric handles are no-ops —
instrumentation stays in place at near-zero cost.

Typical use::

    from repro.obs import Observability, JsonlExporter

    obs = Observability(exporters=[JsonlExporter("events.jsonl")])
    operator = frpa(instance, obs=obs)
    operator.top_k(10)
    obs.close()          # flush span + metric aggregates, close the file
"""

from __future__ import annotations

from repro.obs.export import (
    ConsoleExporter,
    JsonlExporter,
    read_events,
    reconstruct_timing,
)
from repro.obs.expose import (
    compute_slos,
    render_prometheus,
    set_slo_gauges,
    shard_pull_counts,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_METRIC,
)
from repro.obs.span import SpanStats, Tracer
from repro.obs.trace import TraceContext, TraceTree, span_record

__all__ = [
    "ConsoleExporter",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MetricRegistry",
    "NULL_METRIC",
    "NULL_OBS",
    "Observability",
    "SpanStats",
    "TraceContext",
    "TraceTree",
    "Tracer",
    "compute_slos",
    "read_events",
    "reconstruct_timing",
    "render_prometheus",
    "set_slo_gauges",
    "shard_pull_counts",
    "span_record",
]


class Observability:
    """A shared observability pipeline for one run/experiment."""

    def __init__(self, enabled: bool = True, exporters=()) -> None:
        self.enabled = enabled
        self.metrics = MetricRegistry(enabled=enabled)
        self.exporters = list(exporters)
        self._tracers: list[tuple[str, Tracer]] = []
        self._flushed_events = 0

    # ------------------------------------------------------------------
    # Component hooks
    # ------------------------------------------------------------------
    def tracer(self, name: str) -> Tracer:
        """A fresh span tracer registered under ``name`` (operator label).

        Each operator gets its own tracer so per-operator timings stay
        separable (pipelines nest operators inside each other's spans).
        Disabled pipelines hand out unregistered, disabled tracers.
        """
        tracer = Tracer(enabled=self.enabled)
        if self.enabled:
            self._tracers.append((name, tracer))
        return tracer

    def event(self, name: str, **fields) -> None:
        """Emit a discrete event to every exporter immediately."""
        if not self.enabled:
            return
        record = {"type": "event", "name": name, **fields}
        for exporter in self.exporters:
            exporter.export(record)

    def meta(self, **fields) -> None:
        """Emit a stream-header event describing the producing command."""
        if not self.enabled:
            return
        record = {"type": "meta", **fields}
        for exporter in self.exporters:
            exporter.export(record)

    def trace(self, record: dict) -> None:
        """Export one trace record (see :func:`repro.obs.trace.span_record`).

        Trace records are discrete occurrences like events — they go to
        every exporter immediately, so a JSONL stream interleaves spans
        from the service, the engine, and relayed worker quanta in
        arrival order; :class:`~repro.obs.trace.TraceTree` reassembles
        them by ids, not position.
        """
        if not self.enabled:
            return
        for exporter in self.exporters:
            exporter.export(record)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def aggregate_events(self) -> list[dict]:
        """Span and metric aggregates as export-ready dict records."""
        records: list[dict] = []
        for op_name, tracer in self._tracers:
            for path, stats in sorted(tracer.spans().items()):
                records.append({
                    "type": "span",
                    "op": op_name,
                    "path": path,
                    "count": stats.count,
                    "seconds": stats.seconds,
                })
        records.extend(self.metrics.snapshot())
        return records

    def flush(self) -> None:
        """Push current span/metric aggregates to every exporter."""
        if not self.enabled:
            return
        for record in self.aggregate_events():
            for exporter in self.exporters:
                exporter.export(record)

    def close(self) -> None:
        """Flush aggregates and close every exporter."""
        self.flush()
        for exporter in self.exporters:
            exporter.close()

    def summary(self) -> str:
        """Human-readable rendering of the current aggregates."""
        console = ConsoleExporter()
        for record in self.aggregate_events():
            console.export(record)
        return console.render()


#: Shared disabled pipeline: every handle it returns is a no-op.
NULL_OBS = Observability(enabled=False)
