"""Columnar point-set kernels: the compute plane of the FR-family bounds.

The paper's empirical finding (Figure 2(b)) is that *bound computation*
dominates rank-join runtime.  This package concentrates that hot path
into a small batch-kernel interface over columnar :class:`PointSet`
storage, with three interchangeable implementation tiers behind a
per-op :class:`~repro.kernels.registry.KernelRegistry`:

* ``"python"`` — :class:`~repro.kernels.reference.ReferenceBackend`,
  pure loops, the semantic oracle and dependency-free fallback;
* ``"numpy"`` — :class:`~repro.kernels.vectorized.NumpyBackend`,
  one broadcast per batch, fastest on bulk;
* ``"numba"`` — :class:`~repro.kernels.compiled.CompiledBackend`,
  jit-compiled reference loops (lazy compilation, registered only when
  numba is importable).

All tiers are **bit-identical**: same skylines, same cover sets, same
partial scores (float additions happen left-to-right in every tier), so
every operator-level invariant test doubles as a kernel-equivalence
oracle.

Per-call dispatch
-----------------
BENCH_kernels.json showed that no tier wins at every batch size — numpy
is 59–73× faster on bulk ops but *loses* to the early-exit loops on
small batches.  The default ``"auto"`` kernel therefore routes **each
call** by batch size against per-op crossover thresholds
(:mod:`repro.kernels.dispatch`: calibrated once per machine, cached to
``~/.cache/repro/kernel_thresholds.json``, overridable via
``$REPRO_KERNEL_THRESHOLDS`` / ``ReproConfig.kernel_thresholds``).
Pinned names (``python``/``numpy``/``numba``) bypass the size test and
resolve every op at one tier — with *per-op* fallback down the tier
order when an implementation is missing, warned once and tallied in the
``kernel_fallbacks_total`` counter, never a silent process-wide flip.

Selection
---------
The active kernel is resolved, in priority order, from

1. an explicit :func:`set_backend` call (the CLI ``--kernel`` flag and
   :class:`repro.config.ReproConfig` end here),
2. the ``REPRO_KERNEL`` environment variable
   (``auto``/``numpy``/``python``/``numba``),
3. ``auto``: size-aware per-call dispatch over the installed tiers.

Observability
-------------
:func:`observe` attaches a :class:`~repro.obs.metrics.MetricRegistry`;
afterwards every kernel call increments
``kernel_calls_total{kernel=…, fn=…}`` labelled with the backend the
dispatcher actually **chose** for that call (so ``python -m repro
trace`` shows the dispatch mix under ``auto``), per-op degradations
increment ``kernel_fallbacks_total{fn=…, requested=…, used=…}``, and a
deterministic 1-in-16 sample of calls records wall-clock in the
``bound_kernel_seconds{kernel=…}`` histogram.  Call counts are exact;
only the latency histogram is sampled.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from time import perf_counter

from repro.kernels import dispatch as _dispatch
from repro.kernels.dispatch import (
    AutoDispatcher,
    PinnedDispatcher,
    set_thresholds,
)
from repro.kernels.pointset import HAS_NUMPY, PointSet
from repro.kernels.reference import ReferenceBackend
from repro.kernels.registry import BACKEND_TIER, KernelRegistry
from repro.kernels.types import (
    Cell,
    Point,
    as_cell,
    as_point,
    ones,
    substitute,
)

#: The operations every kernel backend must implement.
KERNEL_OPS = (
    "dominates_any",
    "weak_dominance_mask",
    "strict_dominance_mask",
    "skyline_filter",
    "cover_corner_scores",
    "max_corner_score",
    "cross_product_max",
    "cover_carve",
    "grid_cell_assign",
    "antichain",
    "grid_carve",
)

#: Histogram boundaries for per-call kernel latencies (seconds).
KERNEL_SECONDS_BUCKETS = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1.0,
)

#: The per-op implementation registry all dispatchers resolve against.
REGISTRY = KernelRegistry(KERNEL_OPS)
REGISTRY.register("reference", ReferenceBackend())
if HAS_NUMPY:
    from repro.kernels.vectorized import NumpyBackend

    REGISTRY.register("vectorized", NumpyBackend())

from repro.kernels.compiled import HAS_NUMBA  # noqa: E402  (cheap probe)

if HAS_NUMBA:
    from repro.kernels.compiled import CompiledBackend

    REGISTRY.register("compiled", CompiledBackend())

#: Names accepted by :func:`set_backend` / ``REPRO_KERNEL`` / ``--kernel``.
BACKEND_CHOICES = ("auto", "numpy", "python", "numba")

ENV_VAR = "REPRO_KERNEL"


def available_backends() -> tuple[str, ...]:
    """Installed backend names (``python`` always; ``numpy``/``numba``
    when importable)."""
    return REGISTRY.backend_names()


#: Dispatcher instances are cached per name so route tables and resolved
#: op tables survive backend switches (tests flip constantly).
_DISPATCHERS: dict[str, object] = {}


def _dispatcher(name: str):
    cached = _DISPATCHERS.get(name)
    if cached is None:
        if name == "auto":
            cached = AutoDispatcher(REGISTRY)
        else:
            cached = PinnedDispatcher(REGISTRY, name)
        _DISPATCHERS[name] = cached
    return cached


def _resolve(name: str | None):
    if name is None:
        name = "auto"
    name = str(name).strip().lower()
    if name not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {BACKEND_CHOICES}"
        )
    return _dispatcher(name)


def _from_env():
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return _resolve("auto")
    try:
        return _resolve(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid {ENV_VAR}={raw!r}; using 'auto' "
            f"(choose from {BACKEND_CHOICES})",
            RuntimeWarning,
        )
        return _resolve("auto")


_active = _from_env()


def set_backend(name: str | None) -> str:
    """Select the active kernel; returns the selected name.

    ``name`` is one of :data:`BACKEND_CHOICES` (``None`` means ``auto``).
    ``auto`` dispatches per call by batch size; a pinned name keeps its
    identity even when some ops degrade (per-op fallback is warned once
    and tallied in ``kernel_fallbacks_total`` instead of silently
    renaming the backend).
    """
    global _active
    _active = _resolve(name)
    return _active.name


def get_backend():
    """The active dispatcher (``auto`` routes per call; pinned names
    resolve every op at one tier)."""
    return _active


def kernel_name() -> str:
    """Name of the active kernel (``"auto"``, ``"numpy"``, ``"python"``
    or ``"numba"``)."""
    return _active.name


@contextmanager
def use_backend(name: str):
    """Temporarily switch kernels (tests and benchmarks)."""
    global _active
    previous = _active
    _active = _resolve(name)
    try:
        yield _active
    finally:
        _active = previous


def dispatch_routes() -> dict[str, list[tuple[int, str]]]:
    """The auto dispatcher's live route table: op -> [(min_size, backend)].

    Entries are scanned high-to-low; the first whose ``min_size`` fits
    the batch wins.  Shown by ``python -m repro info``.
    """
    return _dispatcher("auto").routes_snapshot()


def dispatch_thresholds() -> dict[str, dict[str, int]]:
    """The resolved per-op crossover thresholds (min batch size per
    backend; ``dispatch.NEVER`` disables a backend for an op)."""
    return {
        op: dict(table)
        for op, table in _dispatch.thresholds(REGISTRY).items()
    }


def calibrate_thresholds(
    *, budget: float = 0.15, include_compiled: bool = False
) -> dict[str, dict[str, int]]:
    """Re-measure crossover thresholds on this machine and install them."""
    measured = _dispatch.calibrate(
        REGISTRY, budget=budget, include_compiled=include_compiled
    )
    set_thresholds(measured)
    return dispatch_thresholds()


def kernel_fallbacks() -> dict[tuple[str, str, str], int]:
    """Resolution-time fallback tally: (op, requested, used) -> count."""
    return dict(REGISTRY.fallbacks)


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------
#: Latency sampling period: every call is *counted*, but only one call
#: in ``_SAMPLE`` pays the ``perf_counter`` pair feeding the
#: ``bound_kernel_seconds`` histogram.  Kernel calls are by far the most
#: frequent instrumented operation on the serial hot path; deterministic
#: sampling (first call of each series always sampled) keeps the
#: histogram representative while holding total overhead inside the
#: observability plane's 5% budget.
_SAMPLE = 16


class _KernelHandle:
    """Pre-resolved metric handles for one (chosen backend, fn) series."""

    __slots__ = ("counter", "hist", "tick")

    def __init__(self, counter, hist) -> None:
        self.counter = counter
        self.hist = hist
        self.tick = _SAMPLE - 1  # first call is sampled

    def should_sample(self) -> bool:
        self.tick += 1
        if self.tick < _SAMPLE:
            return False
        self.tick = 0
        return True


class _InstrumentationSink:
    """Resolves and caches metric handles for kernel-call accounting.

    ``handles`` is keyed by the backend the dispatcher *chose* for the
    call plus the op name, and read directly by :func:`_call` — the
    steady-state cost of an instrumented kernel call is one dict lookup
    plus a counter increment.  ``fallback_handles`` is keyed
    ``(fn, requested, used)`` and only touched on degraded calls.
    """

    __slots__ = ("_metrics", "handles", "fallback_handles")

    def __init__(self, metrics) -> None:
        self._metrics = metrics
        self.handles: dict[tuple[str, str], _KernelHandle] = {}
        self.fallback_handles: dict[tuple[str, str, str], object] = {}

    def handle(self, backend: str, fn: str) -> _KernelHandle:
        key = (backend, fn)
        handle = self.handles.get(key)
        if handle is None:
            handle = self.handles[key] = _KernelHandle(
                self._metrics.counter("kernel_calls_total",
                                      kernel=backend, fn=fn),
                self._metrics.histogram("bound_kernel_seconds",
                                        buckets=KERNEL_SECONDS_BUCKETS,
                                        kernel=backend),
            )
        return handle

    def fallback(self, fn: str, requested: str, used: str):
        key = (fn, requested, used)
        counter = self.fallback_handles.get(key)
        if counter is None:
            counter = self.fallback_handles[key] = self._metrics.counter(
                "kernel_fallbacks_total",
                fn=fn, requested=requested, used=used,
            )
        return counter


_sink: _InstrumentationSink | None = None


def observe(metrics) -> None:
    """Route kernel-call counters/latencies into ``metrics``.

    Called by instrumented operators (PBRJ with an observability
    pipeline).  The sink is process-global — concurrent pipelines share
    it, last registration wins — and adds one ``perf_counter`` pair per
    sampled kernel call, nothing when never registered.
    """
    global _sink
    _sink = _InstrumentationSink(metrics)


def unobserve() -> None:
    """Detach kernel instrumentation (zero-overhead dispatch again)."""
    global _sink
    _sink = None


def _call(fn: str, *args, **kwargs):
    entry = _active.select(fn, args)
    sink = _sink
    if sink is None:
        return entry.impl(*args, **kwargs)
    handle = sink.handles.get((entry.used, fn))
    if handle is None:
        handle = sink.handle(entry.used, fn)
    handle.counter.inc()
    if entry.fallback:
        sink.fallback(fn, entry.requested, entry.used).inc()
    if not handle.should_sample():
        return entry.impl(*args, **kwargs)
    start = perf_counter()
    try:
        return entry.impl(*args, **kwargs)
    finally:
        handle.hist.observe(perf_counter() - start)


# ----------------------------------------------------------------------
# Dispatch surface — one thin wrapper per kernel op
# ----------------------------------------------------------------------
def dominates_any(points, q) -> bool:
    """True if some row of ``points`` weakly dominates ``q``."""
    return _call("dominates_any", points, q)


def weak_dominance_mask(points, q):
    """Per-row mask: the row weakly dominates ``q`` (row ``⪰ q``)."""
    return _call("weak_dominance_mask", points, q)


def strict_dominance_mask(points, q):
    """Per-row mask: the row is strictly dominated by ``q`` (``q ≻`` row)."""
    return _call("strict_dominance_mask", points, q)


def skyline_filter(points) -> list[int]:
    """Indices (input order, first-occurrence dedup) of the skyline."""
    return _call("skyline_filter", points)


def cover_corner_scores(points, weights=None):
    """Per-row partial score: plain or weighted left-to-right sum."""
    return _call("cover_corner_scores", points, weights)


def max_corner_score(points, weights=None) -> float:
    """Max partial score over the rows; ``-inf`` on an empty set."""
    return _call("max_corner_score", points, weights)


def cross_product_max(left, right) -> float:
    """Max of ``l + r`` over the full cross product of two score lists."""
    return _call("cross_product_max", left, right)


def cover_carve(cover, observed, *, skyline_mode: bool = False):
    """``FR::UpdateCR`` (``FR*`` with ``skyline_mode``): new cover points."""
    return _call("cover_carve", cover, observed, skyline_mode=skyline_mode)


def grid_cell_assign(points, resolution: int):
    """Cell containing each point (coordinates rounded up onto the grid)."""
    return _call("grid_cell_assign", points, resolution)


def antichain(cells):
    """Reduce integer grid cells to their dominance antichain."""
    return _call("antichain", cells)


def grid_carve(cells, point, resolution: int):
    """``aFR::UpdateGridCR`` for one vector: ``(new_cells, changed)``."""
    return _call("grid_carve", cells, point, resolution)


def mask_any(mask) -> bool:
    """Truthiness of a backend-native mask (ndarray or plain list)."""
    if hasattr(mask, "any"):
        return bool(mask.any())
    return any(mask)


__all__ = [
    "BACKEND_CHOICES",
    "BACKEND_TIER",
    "Cell",
    "HAS_NUMBA",
    "HAS_NUMPY",
    "KERNEL_OPS",
    "Point",
    "PointSet",
    "REGISTRY",
    "antichain",
    "as_cell",
    "as_point",
    "available_backends",
    "calibrate_thresholds",
    "cover_carve",
    "cover_corner_scores",
    "cross_product_max",
    "dispatch_routes",
    "dispatch_thresholds",
    "dominates_any",
    "get_backend",
    "grid_carve",
    "grid_cell_assign",
    "kernel_fallbacks",
    "kernel_name",
    "mask_any",
    "max_corner_score",
    "observe",
    "ones",
    "set_backend",
    "set_thresholds",
    "skyline_filter",
    "strict_dominance_mask",
    "substitute",
    "unobserve",
    "use_backend",
    "weak_dominance_mask",
]
