"""Columnar point-set kernels: the compute plane of the FR-family bounds.

The paper's empirical finding (Figure 2(b)) is that *bound computation*
dominates rank-join runtime.  This package concentrates that hot path
into a small batch-kernel interface over columnar :class:`PointSet`
storage, with two interchangeable backends:

* ``"python"`` — :class:`~repro.kernels.reference.ReferenceBackend`,
  pure loops, the semantic oracle and numpy-free fallback;
* ``"numpy"`` — :class:`~repro.kernels.vectorized.NumpyBackend`,
  one broadcast per batch (default when numpy is importable).

The two backends are **bit-identical**: same skylines, same cover sets,
same partial scores (float additions happen in the same order), so every
operator-level invariant test doubles as a kernel-equivalence oracle.

Selection
---------
The active backend is resolved, in priority order, from

1. an explicit :func:`set_backend` call (the CLI ``--kernel`` flag and
   :class:`repro.config.ReproConfig` end here),
2. the ``REPRO_KERNEL`` environment variable (``numpy``/``python``/``auto``),
3. ``auto``: numpy when importable, else the pure-Python fallback.

Requesting ``numpy`` without numpy installed warns and falls back.

Observability
-------------
:func:`observe` attaches a :class:`~repro.obs.metrics.MetricRegistry`;
afterwards every kernel call increments
``kernel_calls_total{kernel=…, fn=…}`` and a deterministic 1-in-16
sample of calls records wall-clock in the
``bound_kernel_seconds{kernel=…}`` histogram — the per-backend
Figure 2(b) breakdown shown by ``python -m repro trace``.  Call counts
are exact; only the latency histogram is sampled.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from time import perf_counter

from repro.kernels.pointset import HAS_NUMPY, PointSet
from repro.kernels.reference import ReferenceBackend
from repro.kernels.types import (
    Cell,
    Point,
    as_cell,
    as_point,
    ones,
    substitute,
)

#: The operations every kernel backend must implement.
KERNEL_OPS = (
    "dominates_any",
    "weak_dominance_mask",
    "strict_dominance_mask",
    "skyline_filter",
    "cover_corner_scores",
    "max_corner_score",
    "cross_product_max",
    "cover_carve",
    "grid_cell_assign",
    "antichain",
    "grid_carve",
)

#: Histogram boundaries for per-call kernel latencies (seconds).
KERNEL_SECONDS_BUCKETS = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1.0,
)

_BACKENDS: dict[str, object] = {"python": ReferenceBackend()}
if HAS_NUMPY:
    from repro.kernels.vectorized import NumpyBackend

    _BACKENDS["numpy"] = NumpyBackend()

#: Names accepted by :func:`set_backend` / ``REPRO_KERNEL`` / ``--kernel``.
BACKEND_CHOICES = ("auto", "numpy", "python")

ENV_VAR = "REPRO_KERNEL"


def available_backends() -> tuple[str, ...]:
    """Installed backend names (``python`` always, ``numpy`` if importable)."""
    return tuple(sorted(_BACKENDS))


def _resolve(name: str | None):
    if name is None:
        name = "auto"
    name = str(name).strip().lower()
    if name == "auto":
        return _BACKENDS.get("numpy", _BACKENDS["python"])
    if name not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {BACKEND_CHOICES}"
        )
    backend = _BACKENDS.get(name)
    if backend is None:  # numpy requested but unavailable
        warnings.warn(
            f"kernel backend {name!r} unavailable; falling back to 'python'",
            RuntimeWarning,
            stacklevel=3,
        )
        return _BACKENDS["python"]
    return backend


def _from_env():
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return _resolve("auto")
    try:
        return _resolve(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid {ENV_VAR}={raw!r}; using 'auto' "
            f"(choose from {BACKEND_CHOICES})",
            RuntimeWarning,
        )
        return _resolve("auto")


_active = _from_env()


def set_backend(name: str | None) -> str:
    """Select the active kernel backend; returns the resolved name.

    ``name`` is one of :data:`BACKEND_CHOICES` (``None`` means ``auto``).
    ``auto`` prefers numpy and falls back to pure Python; an explicit
    ``numpy`` without numpy installed warns and falls back.
    """
    global _active
    _active = _resolve(name)
    return _active.name


def get_backend():
    """The active backend object (exposes the :data:`KERNEL_OPS` methods)."""
    return _active


def kernel_name() -> str:
    """Name of the active backend (``"numpy"`` or ``"python"``)."""
    return _active.name


@contextmanager
def use_backend(name: str):
    """Temporarily switch backends (tests and benchmarks)."""
    global _active
    previous = _active
    _active = _resolve(name)
    try:
        yield _active
    finally:
        _active = previous


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------
#: Latency sampling period: every call is *counted*, but only one call
#: in ``_SAMPLE`` pays the ``perf_counter`` pair feeding the
#: ``bound_kernel_seconds`` histogram.  Kernel calls are by far the most
#: frequent instrumented operation on the serial hot path; deterministic
#: sampling (first call of each series always sampled) keeps the
#: histogram representative while holding total overhead inside the
#: observability plane's 5% budget.
_SAMPLE = 16


class _KernelHandle:
    """Pre-resolved metric handles for one (backend, fn) series."""

    __slots__ = ("counter", "hist", "tick")

    def __init__(self, counter, hist) -> None:
        self.counter = counter
        self.hist = hist
        self.tick = _SAMPLE - 1  # first call is sampled

    def should_sample(self) -> bool:
        self.tick += 1
        if self.tick < _SAMPLE:
            return False
        self.tick = 0
        return True


class _InstrumentationSink:
    """Resolves and caches metric handles for kernel-call accounting.

    ``handles`` is keyed ``(backend_name, fn)`` and read directly by
    :func:`_call` — the steady-state cost of an instrumented kernel call
    is one dict lookup plus a counter increment.
    """

    __slots__ = ("_metrics", "handles")

    def __init__(self, metrics) -> None:
        self._metrics = metrics
        self.handles: dict[tuple[str, str], _KernelHandle] = {}

    def handle(self, backend: str, fn: str) -> _KernelHandle:
        key = (backend, fn)
        handle = self.handles.get(key)
        if handle is None:
            handle = self.handles[key] = _KernelHandle(
                self._metrics.counter("kernel_calls_total",
                                      kernel=backend, fn=fn),
                self._metrics.histogram("bound_kernel_seconds",
                                        buckets=KERNEL_SECONDS_BUCKETS,
                                        kernel=backend),
            )
        return handle


_sink: _InstrumentationSink | None = None


def observe(metrics) -> None:
    """Route kernel-call counters/latencies into ``metrics``.

    Called by instrumented operators (PBRJ with an observability
    pipeline).  The sink is process-global — concurrent pipelines share
    it, last registration wins — and adds one ``perf_counter`` pair per
    kernel call, nothing when never registered.
    """
    global _sink
    _sink = _InstrumentationSink(metrics)


def unobserve() -> None:
    """Detach kernel instrumentation (zero-overhead dispatch again)."""
    global _sink
    _sink = None


def _call(fn: str, *args, **kwargs):
    backend = _active
    sink = _sink
    if sink is None:
        return getattr(backend, fn)(*args, **kwargs)
    handle = sink.handles.get((backend.name, fn))
    if handle is None:
        handle = sink.handle(backend.name, fn)
    handle.counter.inc()
    if not handle.should_sample():
        return getattr(backend, fn)(*args, **kwargs)
    start = perf_counter()
    try:
        return getattr(backend, fn)(*args, **kwargs)
    finally:
        handle.hist.observe(perf_counter() - start)


# ----------------------------------------------------------------------
# Dispatch surface — one thin wrapper per kernel op
# ----------------------------------------------------------------------
def dominates_any(points, q) -> bool:
    """True if some row of ``points`` weakly dominates ``q``."""
    return _call("dominates_any", points, q)


def weak_dominance_mask(points, q):
    """Per-row mask: the row weakly dominates ``q`` (row ``⪰ q``)."""
    return _call("weak_dominance_mask", points, q)


def strict_dominance_mask(points, q):
    """Per-row mask: the row is strictly dominated by ``q`` (``q ≻`` row)."""
    return _call("strict_dominance_mask", points, q)


def skyline_filter(points) -> list[int]:
    """Indices (input order, first-occurrence dedup) of the skyline."""
    return _call("skyline_filter", points)


def cover_corner_scores(points, weights=None):
    """Per-row partial score: plain or weighted left-to-right sum."""
    return _call("cover_corner_scores", points, weights)


def max_corner_score(points, weights=None) -> float:
    """Max partial score over the rows; ``-inf`` on an empty set."""
    return _call("max_corner_score", points, weights)


def cross_product_max(left, right) -> float:
    """Max of ``l + r`` over the full cross product of two score lists."""
    return _call("cross_product_max", left, right)


def cover_carve(cover, observed, *, skyline_mode: bool = False):
    """``FR::UpdateCR`` (``FR*`` with ``skyline_mode``): new cover points."""
    return _call("cover_carve", cover, observed, skyline_mode=skyline_mode)


def grid_cell_assign(points, resolution: int):
    """Cell containing each point (coordinates rounded up onto the grid)."""
    return _call("grid_cell_assign", points, resolution)


def antichain(cells):
    """Reduce integer grid cells to their dominance antichain."""
    return _call("antichain", cells)


def grid_carve(cells, point, resolution: int):
    """``aFR::UpdateGridCR`` for one vector: ``(new_cells, changed)``."""
    return _call("grid_carve", cells, point, resolution)


def mask_any(mask) -> bool:
    """Truthiness of a backend-native mask (ndarray or plain list)."""
    if hasattr(mask, "any"):
        return bool(mask.any())
    return any(mask)


__all__ = [
    "BACKEND_CHOICES",
    "Cell",
    "HAS_NUMPY",
    "KERNEL_OPS",
    "Point",
    "PointSet",
    "antichain",
    "as_cell",
    "as_point",
    "available_backends",
    "cover_carve",
    "cover_corner_scores",
    "cross_product_max",
    "dominates_any",
    "get_backend",
    "grid_carve",
    "grid_cell_assign",
    "kernel_name",
    "mask_any",
    "max_corner_score",
    "observe",
    "ones",
    "set_backend",
    "skyline_filter",
    "strict_dominance_mask",
    "substitute",
    "unobserve",
    "use_backend",
    "weak_dominance_mask",
]
