"""Size-aware per-call kernel dispatch with calibrated crossovers.

BENCH_kernels.json established that no single backend wins everywhere:
numpy is 59–73× faster on bulk ops (``cover_corner_scores``, bound
refresh) yet *loses* to the pure-Python loops on small batches
(``dominates_any`` 0.03×, ``skyline_filter`` 0.29×, ``cover_carve``
0.78×), because a broadcast pays fixed per-call overhead that a
four-point early-exit loop never does.  This module routes **each call**
by batch size instead of pinning one backend per process.

Route tables
------------
Every op owns a route table — ``((min_size, ResolvedOp), …)`` sorted by
descending ``min_size`` — plus a *sizer* that extracts the batch size
from the call's arguments (row count for most ops, ``|L|·|R|`` for
``cross_product_max``, ``|cover| + |observed|`` for ``cover_carve``).
Selection scans the table for the first entry whose ``min_size`` fits;
the pure-Python reference tier anchors the table at size 0, so selection
cannot fail.  The scan is 2–3 comparisons — cheap enough that pinned
backends route through the same machinery (a one-entry table), keeping
auto-vs-pinned overhead identical by construction.

Thresholds
----------
Per-op crossover sizes resolve in priority order:

1. an explicit :func:`set_thresholds` call
   (``ReproConfig.kernel_thresholds`` ends here),
2. a JSON file named by ``$REPRO_KERNEL_THRESHOLDS``,
3. the per-machine cache ``~/.cache/repro/kernel_thresholds.json``
   (``$XDG_CACHE_HOME``-aware, invalidated when the Python version or
   the set of installed backends changes),
4. a ~100 ms one-shot calibration à la ``planner/cost.py:measure()``
   — synthetic batches per op, doubling size ladder, crossover at the
   geometric midpoint of the bracketing sizes — whose result is written
   to the cache,
5. library defaults (hand-set from BENCH_kernels.json).

Calibration never touches the compiled tier by default: the first numba
call pays jit compilation, which would blow the 100 ms budget by two
orders of magnitude.  ``calibrate(..., include_compiled=True)`` (used by
``benchmarks/bench_kernels.py``) opts in after warmup.

Threshold values are *minimum batch sizes*: ``{"dominates_any":
{"numpy": 512}}`` means "use numpy for dominates_any once the batch has
≥ 512 rows".  The sentinel :data:`NEVER` disables a backend for an op.
"""

from __future__ import annotations

import json
import os
import sys
from collections.abc import Callable, Mapping
from math import sqrt
from pathlib import Path
from time import perf_counter

from repro.kernels.registry import (
    BACKEND_TIER,
    TIER_BACKEND,
    KernelRegistry,
    ResolvedOp,
)

#: Environment variable naming a JSON threshold-override file.
ENV_VAR = "REPRO_KERNEL_THRESHOLDS"

#: Cache schema version — bump to invalidate every on-disk cache.
SCHEMA_VERSION = 1

#: Threshold sentinel: "never route this op to this backend".
NEVER = 1 << 30

#: Hand-set crossover defaults (minimum batch size per backend), tuned
#: from BENCH_kernels.json: loop ops with early exits keep the reference
#: tier far longer than streaming ops, and the compiled tier — plain
#: jitted loops, no broadcast temporaries — takes over earlier than
#: numpy wherever it is installed.
DEFAULT_THRESHOLDS: dict[str, dict[str, int]] = {
    "dominates_any": {"numpy": 512, "numba": 48},
    "weak_dominance_mask": {"numpy": 64, "numba": 32},
    "strict_dominance_mask": {"numpy": 64, "numba": 32},
    # Per-insertion broadcasts never amortize for the incremental
    # skyline (0.2–0.4× at every measured size) and the antichain's
    # dedup-then-pairwise shape (unique cells are bounded by the grid
    # resolution, so the pairwise part never grows) — reference only.
    "skyline_filter": {"numpy": NEVER, "numba": 48},
    "cover_corner_scores": {"numpy": 32, "numba": 32},
    "max_corner_score": {"numpy": 32, "numba": 32},
    "cross_product_max": {"numpy": 256, "numba": 64},
    "cover_carve": {"numpy": 128, "numba": 96},
    "grid_cell_assign": {"numpy": 64, "numba": 48},
    "antichain": {"numpy": NEVER, "numba": 48},
    "grid_carve": {"numpy": 128, "numba": 96},
}

#: Ops whose vectorized tier structurally never amortizes (see the
#: DEFAULT_THRESHOLDS comment).  Calibration records :data:`NEVER` for
#: these instead of probing: near the tie a single noisy low-budget
#: probe can flip every bulk call onto the slower tier, and the full
#: sweep in BENCH_dispatch.json confirms reference wins at every size.
#: An explicit :func:`set_thresholds` override still re-enables numpy.
VECTORIZED_NEVER_WINS = frozenset({"skyline_filter", "antichain"})

#: Tie-break rank when two tiers share a crossover size (prefer the
#: cheaper-per-call tier).
_TIER_RANK = {"reference": 0, "vectorized": 1, "compiled": 2}


# ----------------------------------------------------------------------
# Sizers — batch size from a call's positional arguments
# ----------------------------------------------------------------------
def _length(obj) -> int:
    try:
        return len(obj)
    except TypeError:
        return 0


def _first_len(args) -> int:
    return _length(args[0])


def _cross_size(args) -> int:
    return _length(args[0]) * _length(args[1])


def _carve_size(args) -> int:
    return _length(args[0]) + _length(args[1])


#: op -> sizer; anything absent sizes by its first argument's length.
SIZERS: dict[str, Callable] = {
    "cross_product_max": _cross_size,
    "cover_carve": _carve_size,
}


# ----------------------------------------------------------------------
# Threshold resolution
# ----------------------------------------------------------------------
_installed: dict[str, dict[str, int]] | None = None
_resolved: dict[str, dict[str, int]] | None = None
#: Bumped whenever thresholds change; dispatchers rebuild lazily.
_EPOCH = 0


def _merge(
    overrides: Mapping[str, Mapping[str, int]],
) -> dict[str, dict[str, int]]:
    """Overrides layered over the defaults (unknown ops are ignored)."""
    merged = {op: dict(table) for op, table in DEFAULT_THRESHOLDS.items()}
    for op, table in overrides.items():
        if op not in merged or not isinstance(table, Mapping):
            continue
        for backend, value in table.items():
            if backend in BACKEND_TIER:
                merged[op][backend] = int(value)
    return merged


def load_thresholds_file(path: str | os.PathLike) -> dict[str, dict[str, int]]:
    """Parse a threshold JSON file (bare mapping or ``{"thresholds": …}``)."""
    payload = json.loads(Path(path).read_text())
    if isinstance(payload, Mapping) and "thresholds" in payload:
        payload = payload["thresholds"]
    if not isinstance(payload, Mapping):
        raise ValueError(f"threshold file {path!s} is not a mapping")
    return _merge(payload)


def _cache_path() -> Path:
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(root) / "repro" / "kernel_thresholds.json"


def _cache_meta(registry: KernelRegistry) -> dict:
    return {
        "version": SCHEMA_VERSION,
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        "backends": list(registry.backend_names()),
    }


def _load_cache(registry: KernelRegistry):
    path = _cache_path()
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, Mapping):
        return None
    if payload.get("meta") != _cache_meta(registry):
        return None  # stale: interpreter or backend set changed
    table = payload.get("thresholds")
    return _merge(table) if isinstance(table, Mapping) else None


def _store_cache(
    registry: KernelRegistry, measured: Mapping[str, Mapping[str, int]]
) -> None:
    path = _cache_path()
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "meta": _cache_meta(registry),
            "thresholds": {op: dict(t) for op, t in measured.items()},
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        tmp.replace(path)
    except OSError:
        pass  # read-only HOME: calibration still applies for this process


def set_thresholds(
    overrides: Mapping[str, Mapping[str, int]] | None,
) -> None:
    """Install explicit crossover overrides (``None`` → auto-resolution).

    Overrides are partial: only the named ``(op, backend)`` cells change,
    everything else keeps its resolved value.  Active dispatchers pick
    the change up on their next call.
    """
    global _installed, _resolved, _EPOCH
    _installed = None if overrides is None else _merge(overrides)
    _resolved = None
    _EPOCH += 1


def reset() -> None:
    """Drop every resolved/installed threshold (tests)."""
    global _installed, _resolved, _EPOCH
    _installed = None
    _resolved = None
    _EPOCH += 1


def thresholds(registry: KernelRegistry) -> dict[str, dict[str, int]]:
    """The active per-op crossover table (resolved once, then cached)."""
    global _resolved
    if _installed is not None:
        return _installed
    if _resolved is None:
        _resolved = _resolve(registry)
    return _resolved


def _resolve(registry: KernelRegistry) -> dict[str, dict[str, int]]:
    path = os.environ.get(ENV_VAR)
    if path:
        try:
            return load_thresholds_file(path)
        except (OSError, ValueError, TypeError):
            pass  # unreadable override — fall through to the cache
    cached = _load_cache(registry)
    if cached is not None:
        return cached
    try:
        measured = calibrate(registry)
    except Exception:
        return _merge({})
    _store_cache(registry, measured)
    return _merge(measured)


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
#: Doubling batch-size ladders; quadratic ops get capped ladders so the
#: reference timing stays inside the budget.
_DEFAULT_LADDER = (4, 16, 64, 256, 1024)
_SIZE_LADDERS: dict[str, tuple[int, ...]] = {
    "antichain": (4, 16, 64, 256),
    "cross_product_max": (16, 64, 256, 1024),
    "cover_carve": (8, 32, 128, 512),
    "grid_carve": (8, 32, 128, 512),
    "skyline_filter": (4, 16, 64, 256, 1024),
}


def synthetic_points(n: int, e: int = 3) -> list[tuple[float, ...]]:
    """Deterministic point batch in ``(0, 1]^e`` (shared with the bench)."""
    return [
        tuple(((i * (j + 3) + 7 * j + 1) % 97 + 1) / 128.0 for j in range(e))
        for i in range(n)
    ]


def _point_set(n: int, e: int = 3):
    """Points wrapped the way the geometry layer feeds the kernels.

    The hot path hands kernels a columnar :class:`PointSet` whose array
    view is built once and cached — timing on plain lists would charge
    the vectorized tier a per-call list→array conversion it never pays
    in production, skewing every crossover upward.
    """
    from repro.kernels.pointset import PointSet

    return PointSet(e, synthetic_points(n, e))


def synthetic_cells(n: int, e: int = 3, resolution: int = 8) -> list[tuple[int, ...]]:
    return [
        tuple((i * (2 * j + 3) + j) % resolution for j in range(e))
        for i in range(n)
    ]


def _side(n: int) -> int:
    return max(1, int(sqrt(n)))


#: op -> size -> positional argument tuple for one timed call.  Point
#: operands are PointSets (as the geometry layer passes them); the
#: dominance target sits high so early-exit loops scan realistically.
ARG_BUILDERS: dict[str, Callable[[int], tuple]] = {
    "dominates_any": lambda n: (_point_set(n), (0.99, 0.99, 0.99)),
    "weak_dominance_mask": lambda n: (_point_set(n), (0.5, 0.5, 0.5)),
    "strict_dominance_mask": lambda n: (_point_set(n), (0.5, 0.5, 0.5)),
    "skyline_filter": lambda n: (_point_set(n),),
    "cover_corner_scores": lambda n: (_point_set(n), (0.6, 0.3, 0.1)),
    "max_corner_score": lambda n: (_point_set(n), None),
    "cross_product_max": lambda n: (
        [v / _side(n) for v in range(_side(n))],
        [v / _side(n) for v in range(_side(n))],
    ),
    "cover_carve": lambda n: (
        _point_set(max(n - 1, 1)),
        [(0.5, 0.5, 0.5)],
    ),
    "grid_cell_assign": lambda n: (_point_set(n), 8),
    "antichain": lambda n: (synthetic_cells(n),),
    "grid_carve": lambda n: (synthetic_cells(n), (0.5, 0.5, 0.5), 8),
}


def _time_call(impl: Callable, args: tuple, reps: int) -> float:
    """Best-of-2 mean seconds per call over ``reps`` back-to-back calls."""
    best = float("inf")
    for _ in range(2):
        started = perf_counter()
        for _ in range(reps):
            impl(*args)
        elapsed = (perf_counter() - started) / reps
        if elapsed < best:
            best = elapsed
    return best


def _reps_for(size: int) -> int:
    # Loop-and-divide: small batches finish in ~1 µs, far below timer
    # noise for a single call; mid-size batches still get a few reps —
    # a single ~200 µs sample is noisy enough to flip a crossover.
    return max(1, min(32, 2048 // max(size, 1)))


#: A candidate tier must beat the reference by this margin to win a
#: calibration probe.  Near the crossover the two tiers sit within
#: timer noise of each other; without a margin a single noisy probe on
#: a never-wins op (antichain, skyline) flips every bulk call onto the
#: slower tier.  Ties route to the reference — the safe choice.
_WIN_MARGIN = 0.92


def _fast_wins(base, fast, builder, size: int) -> bool:
    args = builder(size)
    reps = _reps_for(size)
    return _time_call(fast, args, reps) < _WIN_MARGIN * _time_call(
        base, args, reps
    )


def _refine(base, fast, builder, lo: int, hi: int, deadline: float) -> int:
    """Shrink a ``(lo, hi]`` win bracket with up to two bisection probes.

    The doubling ladder leaves a 4× bracket; returning its raw midpoint
    can misroute a batch sitting exactly there by ~20 %.  Two geometric
    bisections narrow the bracket enough that the midpoint error stays
    inside the dispatch tolerance.
    """
    for _ in range(2):
        mid = int(sqrt(lo * hi))
        if mid <= lo or mid >= hi or perf_counter() > deadline:
            break
        if _fast_wins(base, fast, builder, mid):
            hi = mid
        else:
            lo = mid
    return max(1, int(sqrt(lo * hi)))


def _crossover(
    base: Callable,
    fast: Callable,
    builder: Callable[[int], tuple],
    sizes: tuple[int, ...],
    deadline: float,
) -> int:
    """Smallest batch size where ``fast`` beats ``base``.

    Walks the doubling ladder to bracket the crossover, then bisects the
    bracket.  Returns :data:`NEVER` when ``fast`` never wins inside the
    ladder.
    """
    previous = 0
    for size in sizes:
        if perf_counter() > deadline:
            return NEVER if previous == 0 else previous
        if _fast_wins(base, fast, builder, size):
            if previous == 0:
                return max(1, size // 2)
            return _refine(base, fast, builder, previous, size, deadline)
        previous = size
    return NEVER


def calibrate(
    registry: KernelRegistry,
    *,
    budget: float = 0.15,
    include_compiled: bool = False,
) -> dict[str, dict[str, int]]:
    """Measure per-op reference→{numpy,numba} crossover sizes (~100 ms).

    Ops not reached before the budget expires keep their defaults, and
    the :data:`VECTORIZED_NEVER_WINS` ops record :data:`NEVER` without a
    probe.  The compiled tier is skipped unless ``include_compiled`` (its
    first call jit-compiles, which must never happen inside the
    import-time budget).
    """
    deadline = perf_counter() + budget
    tiers = [t for t in ("vectorized", "compiled") if t in registry.tiers()]
    if not include_compiled and "compiled" in tiers:
        tiers.remove("compiled")
    measured: dict[str, dict[str, int]] = {}
    if not tiers:
        return measured
    for op in registry.ops:
        if perf_counter() > deadline:
            break
        builder = ARG_BUILDERS.get(op)
        if builder is None:
            continue
        base = registry.implementations(op).get("reference")
        if base is None:
            continue
        sizes = _SIZE_LADDERS.get(op, _DEFAULT_LADDER)
        for tier in tiers:
            fast = registry.implementations(op).get(tier)
            if fast is None:
                continue
            if tier == "vectorized" and op in VECTORIZED_NEVER_WINS:
                value = NEVER
            else:
                value = _crossover(base, fast, builder, sizes, deadline)
            measured.setdefault(op, {})[TIER_BACKEND[tier]] = value
    return measured


# ----------------------------------------------------------------------
# Dispatchers
# ----------------------------------------------------------------------
class PinnedDispatcher:
    """Every op resolved once at a single tier (``--kernel python|numpy|numba``).

    ``select`` is one dict lookup; per-op fallback (say ``numba``
    requested without numba installed) was recorded at resolution time
    and is re-surfaced per call through :attr:`ResolvedOp.fallback`.
    """

    __slots__ = ("name", "table")

    def __init__(self, registry: KernelRegistry, backend: str) -> None:
        self.name = backend
        self.table = registry.resolve_all(BACKEND_TIER[backend])

    def select(self, fn: str, args: tuple) -> ResolvedOp:
        return self.table[fn]


class AutoDispatcher:
    """Routes each call by batch size against the per-op crossover table.

    Route tables are built lazily (the first selection triggers threshold
    resolution, possibly calibration) and rebuilt whenever
    :func:`set_thresholds`/:func:`reset` bump the epoch — the steady-state
    cost per call is one sizer call plus a 2–3 entry scan.
    """

    __slots__ = ("name", "registry", "_routes", "_epoch")

    def __init__(self, registry: KernelRegistry) -> None:
        self.name = "auto"
        self.registry = registry
        self._routes: dict[str, tuple] | None = None
        self._epoch = -1

    def _rebuild(self) -> None:
        table = thresholds(self.registry)
        routes: dict[str, tuple] = {}
        for op in self.registry.ops:
            entries: list[tuple[int, int, ResolvedOp]] = [
                (0, 0, self.registry.resolve(op, "reference"))
            ]
            for backend, min_size in table.get(op, {}).items():
                tier = BACKEND_TIER[backend]
                if min_size >= NEVER or not self.registry.has(op, tier):
                    continue
                entries.append(
                    (int(min_size), _TIER_RANK[tier],
                     self.registry.resolve(op, tier))
                )
            entries.sort()  # ascending size; preferred tier last on ties
            entries.reverse()
            routes[op] = (
                SIZERS.get(op, _first_len),
                tuple((size, resolved) for size, _, resolved in entries),
            )
        self._routes = routes
        self._epoch = _EPOCH

    def select(self, fn: str, args: tuple) -> ResolvedOp:
        if self._epoch != _EPOCH:
            self._rebuild()
        sizer, entries = self._routes[fn]
        n = sizer(args)
        for min_size, resolved in entries:
            if n >= min_size:
                return resolved
        return entries[-1][1]  # pragma: no cover - size-0 anchor always hits

    def routes_snapshot(self) -> dict[str, list[tuple[int, str]]]:
        """Human-readable route table: op -> [(min_size, backend), …]."""
        if self._epoch != _EPOCH:
            self._rebuild()
        return {
            op: [(size, resolved.used) for size, resolved in entries]
            for op, (_, entries) in self._routes.items()
        }
