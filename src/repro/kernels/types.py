"""Canonical score-vector and grid-cell types.

This is the single home of the ``Point``/``Cell`` aliases and the tiny
point constructors that used to be scattered across the ``geometry``
modules.  ``repro.geometry.dominance`` and ``repro.geometry.gridtree``
re-export everything here for backward compatibility.

Score vectors are plain tuples of floats in ``[0, 1]``.  Tuples are used
for the *scalar* (one-point-at-a-time) plane because the vectors are tiny
(``e <= 4`` in the paper's experiments) and hashing/equality on tuples is
what the skyline and cover structures need; the *columnar* plane stores
the same vectors contiguously in a :class:`~repro.kernels.PointSet`.
"""

from __future__ import annotations

from collections.abc import Sequence

Point = tuple[float, ...]
Cell = tuple[int, ...]


def as_point(values: Sequence[float]) -> Point:
    """Normalize any sequence of floats into the canonical tuple form."""
    return tuple(float(v) for v in values)


def as_cell(values: Sequence[int]) -> Cell:
    """Normalize any sequence of ints into the canonical cell form."""
    return tuple(int(v) for v in values)


def ones(dimension: int) -> Point:
    """The ideal point ``(1, …, 1)`` of the given dimension."""
    return (1.0,) * dimension


def substitute(point: Sequence[float], index: int, value: float) -> Point:
    """Return ``point[index ↦ value]`` — the paper's coordinate substitution."""
    if not 0 <= index < len(point):
        raise IndexError(f"coordinate {index} out of range for {len(point)}-d point")
    replaced = list(point)
    replaced[index] = value
    return tuple(replaced)
