"""The pure-Python reference kernel backend.

Every kernel is written as the plainest possible loop over canonical
tuples — no numpy on the compute path.  This backend is the *semantic
oracle*: the vectorized backend must produce bit-identical results (same
point sets, same masks, same scores), which the property-test suite
enforces.  It is also the automatic fallback when numpy is unavailable.

Floating-point discipline: partial scores are accumulated strictly
left-to-right (``s = 0.0; s += w*x``).  The vectorized backend sums the
same way (numpy's reduction is sequential for rows of <= 8 elements, and
the wide-row path falls back to explicit loops), so the two backends
agree bit-for-bit, not just approximately.
"""

from __future__ import annotations

from math import ceil
from collections.abc import Sequence

from repro.kernels.pointset import PointSet
from repro.kernels.types import Cell, Point, as_point, substitute

NEG_INF = float("-inf")


def _rows(points) -> list[Point]:
    """Materialize any supported operand as a list of tuples."""
    if isinstance(points, PointSet):
        return points.tuples()
    if hasattr(points, "tolist"):  # numpy array
        return [tuple(row) for row in points.tolist()]
    return [tuple(p) for p in points]


def _weak_dom(a: Sequence[float], b: Sequence[float]) -> bool:
    """``a ⪰ b`` componentwise (NaN anywhere ⇒ False, like numpy ``>=``)."""
    for ai, bi in zip(a, b):
        if not ai >= bi:
            return False
    return True


def _strict_dom(a: Sequence[float], b: Sequence[float]) -> bool:
    """``a ≻ b``: weakly dominates and differs somewhere."""
    strict = False
    for ai, bi in zip(a, b):
        if not ai >= bi:
            return False
        if ai != bi:
            strict = True
    return strict


class ReferenceBackend:
    """Loop-based kernels with oracle semantics."""

    name = "python"

    # ------------------------------------------------------------------
    # Dominance primitives
    # ------------------------------------------------------------------
    def dominates_any(self, points, q: Sequence[float]) -> bool:
        """True if some row of ``points`` weakly dominates ``q``."""
        q = tuple(q)
        for row in _rows(points):
            if _weak_dom(row, q):
                return True
        return False

    def weak_dominance_mask(self, points, q: Sequence[float]) -> list[bool]:
        """Per-row mask: row ``⪰ q`` (the row weakly dominates ``q``)."""
        q = tuple(q)
        return [_weak_dom(row, q) for row in _rows(points)]

    def strict_dominance_mask(self, points, q: Sequence[float]) -> list[bool]:
        """Per-row mask: ``q ≻ row`` (the row is strictly dominated)."""
        q = tuple(q)
        return [_strict_dom(q, row) for row in _rows(points)]

    # ------------------------------------------------------------------
    # Skylines
    # ------------------------------------------------------------------
    def skyline_filter(self, points) -> list[int]:
        """Indices (input order) of the skyline of ``points``.

        A point survives iff no other point strictly dominates it and no
        earlier point equals it (duplicates collapse to their first
        occurrence) — exactly the result of the classic incremental
        insertion loop.
        """
        rows = _rows(points)
        kept: list[int] = []
        for i, point in enumerate(rows):
            dominated = False
            for j in kept:
                if _weak_dom(rows[j], point):
                    dominated = True
                    break
            if dominated:
                continue
            kept = [j for j in kept if not _strict_dom(point, rows[j])]
            kept.append(i)
        return kept

    # ------------------------------------------------------------------
    # Partial scores
    # ------------------------------------------------------------------
    def cover_corner_scores(
        self, points, weights: Sequence[float] | None = None
    ) -> list[float]:
        """Per-row partial score: plain sum, or weighted sum if given."""
        scores: list[float] = []
        if weights is None:
            for row in _rows(points):
                s = 0.0
                for v in row:
                    s += v
                scores.append(s)
        else:
            for row in _rows(points):
                s = 0.0
                for w, v in zip(weights, row):
                    s += w * v
                scores.append(s)
        return scores

    def max_corner_score(
        self, points, weights: Sequence[float] | None = None
    ) -> float:
        """``max`` of :meth:`cover_corner_scores`; ``-inf`` on empty."""
        scores = self.cover_corner_scores(points, weights)
        if not scores:
            return NEG_INF
        best = NEG_INF
        for s in scores:
            if s > best:
                best = s
        return best

    def cross_product_max(self, left, right) -> float:
        """``max(l + r)`` over the full cross product of two score lists.

        The nested loop is deliberate: this is the combinatorial cost the
        paper ascribes to cover bounds, kept intact (only constant-factor
        acceleration differs between backends).  ``-inf`` if either side
        is empty.
        """
        best = NEG_INF
        right_list = [float(r) for r in right]
        if not right_list:
            return best
        for l_val in left:
            l_val = float(l_val)
            for r_val in right_list:
                if l_val + r_val > best:
                    best = l_val + r_val
        return best

    # ------------------------------------------------------------------
    # Cover maintenance (FR::UpdateCR / FR*::UpdateCR)
    # ------------------------------------------------------------------
    def cover_carve(
        self, cover, observed, *, skyline_mode: bool = False
    ) -> list[Point]:
        """Carve the regions dominating each observed vector out of ``cover``.

        Returns the new cover point list.  With ``skyline_mode`` the result
        is kept an antichain (FR* behaviour); new points are considered in
        sorted order so both backends emit identical sets deterministically.
        """
        current = _rows(cover)
        for raw in observed:
            y = as_point(raw)
            if not current:
                break
            removed = [s for s in current if _weak_dom(s, y)]
            if not removed:
                continue
            survivors = [s for s in current if not _weak_dom(s, y)]
            projected: set[Point] = set()
            for s in removed:
                for axis, value in enumerate(y):
                    candidate = substitute(s, axis, value)
                    if all(coord > 0.0 for coord in candidate):
                        projected.add(candidate)
            fresh = sorted(projected)
            if skyline_mode:
                # Survivors are an antichain by induction: only new-vs-new
                # and new-vs-survivor dominations need resolving.
                fresh = [fresh[i] for i in self.skyline_filter(fresh)]
                fresh = [
                    p
                    for p in fresh
                    if not any(_weak_dom(s, p) for s in survivors)
                ]
                survivors = [
                    s
                    for s in survivors
                    if not any(_strict_dom(p, s) for p in fresh)
                ]
            current = survivors + fresh
        return current

    # ------------------------------------------------------------------
    # Grid kernels (aFR)
    # ------------------------------------------------------------------
    def grid_cell_assign(self, points, resolution: int) -> list[Cell]:
        """Cell containing each point: coordinates rounded *up* onto the grid.

        Matches ``GridTree.cell_containing``: exact ``ceil`` so float fuzz
        can only push a corner upward (the corner keeps weakly dominating
        the point).
        """
        cells: list[Cell] = []
        for row in _rows(points):
            cell = []
            for value in row:
                index = ceil(value * resolution) - 1
                cell.append(min(max(index, 0), resolution - 1))
            cells.append(tuple(cell))
        return cells

    def antichain(self, cells) -> list[Cell]:
        """Reduce integer cells to their dominance antichain (dedup'd).

        Result is in sorted order — cell sets are order-insensitive (the
        grid tree exposes them as a set), and sorting keeps the two
        backends trivially comparable.
        """
        unique = sorted({tuple(int(v) for v in row) for row in _rows(cells)})
        kept = []
        for i, cell in enumerate(unique):
            dominated = False
            for j, other in enumerate(unique):
                if i != j and _weak_dom(other, cell) and other != cell:
                    dominated = True
                    break
            if not dominated:
                kept.append(cell)
        return kept

    def grid_carve(
        self, cells, point: Sequence[float], resolution: int
    ) -> tuple[list[Cell], bool]:
        """``aFR::UpdateGridCR`` for one observed vector.

        Returns ``(new_cells, changed)``.  The observed vector is
        up-quantized to integer grid coordinates ``m``; a marked cell is
        unmarked iff its corner strictly dominates the quantized point
        (``cell >= m`` componentwise), and its replacements are the
        single-coordinate projections onto ``m - 1``.
        """
        m = tuple(
            min(max(ceil(v * resolution), 0), resolution) for v in point
        )
        rows = [tuple(int(v) for v in row) for row in _rows(cells)]
        dimension = len(m)
        removed = [c for c in rows if _weak_dom(c, m)]
        if not removed:
            return rows, False
        survivors = [c for c in rows if not _weak_dom(c, m)]
        projected: set[Cell] = set()
        for cell in removed:
            for axis in range(dimension):
                slid = list(cell)
                slid[axis] = m[axis] - 1
                if all(coord >= 0 for coord in slid):
                    projected.add(tuple(slid))
        fresh = self.antichain(sorted(projected))
        fresh = [
            c for c in fresh if not any(_weak_dom(s, c) for s in survivors)
        ]
        survivors = [
            s for s in survivors if not any(_strict_dom(c, s) for c in fresh)
        ]
        return survivors + fresh, True
