"""The numpy kernel backend: one broadcast per batch, no per-tuple loops.

Bit-identical to :class:`repro.kernels.reference.ReferenceBackend` by
construction:

* dominance tests and grid arithmetic are exact comparisons/integers;
* partial scores accumulate column-by-column (``out += arr[:, j]``),
  which is the same left-to-right float addition order as the reference
  loops — never a pairwise/blocked reduction that could round differently;
* set-producing kernels (covers, antichains) emit the same point sets
  (order may differ only where the consumer is order-insensitive, and the
  deterministic paths sort exactly like the reference).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.kernels.pointset import PointSet

NEG_INF = float("-inf")

#: Below this many points the skyline uses one pairwise broadcast; above,
#: an incremental scan keeps memory O(n·s) instead of O(n²).
_PAIRWISE_LIMIT = 512


def _arr(points) -> np.ndarray:
    """Any supported operand as an ``(n, e)`` float64 array."""
    if isinstance(points, PointSet):
        return points.array
    array = np.asarray(points, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(0, 0) if array.size == 0 else array.reshape(1, -1)
    return array


def _cells_arr(cells) -> np.ndarray:
    """Any supported cell operand as an ``(n, e)`` int64 array."""
    array = np.asarray(cells, dtype=np.int64)
    if array.ndim == 1:
        array = array.reshape(0, 0) if array.size == 0 else array.reshape(1, -1)
    return array


def _column_sum(array: np.ndarray, weights: Sequence[float] | None) -> np.ndarray:
    """Left-to-right per-row sum (optionally weighted), column at a time.

    Matches the reference backend's ``s = 0.0; s += w*x`` accumulation
    bit-for-bit for any row width.
    """
    n, e = array.shape
    out = np.zeros(n, dtype=np.float64)
    if weights is None:
        for j in range(e):
            out += array[:, j]
    else:
        for j in range(min(e, len(weights))):
            out += float(weights[j]) * array[:, j]
    return out


class NumpyBackend:
    """Vectorized kernels over contiguous float64 rows."""

    name = "numpy"

    # ------------------------------------------------------------------
    # Dominance primitives
    # ------------------------------------------------------------------
    def dominates_any(self, points, q: Sequence[float]) -> bool:
        array = _arr(points)
        if not array.shape[0]:
            return False
        target = np.asarray(tuple(q), dtype=np.float64)
        return bool((array >= target).all(axis=1).any())

    def weak_dominance_mask(self, points, q: Sequence[float]) -> np.ndarray:
        array = _arr(points)
        if not array.shape[0]:
            return np.zeros(0, dtype=bool)
        target = np.asarray(tuple(q), dtype=np.float64)
        return (array >= target).all(axis=1)

    def strict_dominance_mask(self, points, q: Sequence[float]) -> np.ndarray:
        array = _arr(points)
        if not array.shape[0]:
            return np.zeros(0, dtype=bool)
        target = np.asarray(tuple(q), dtype=np.float64)
        return (array <= target).all(axis=1) & (array != target).any(axis=1)

    # ------------------------------------------------------------------
    # Skylines
    # ------------------------------------------------------------------
    def skyline_filter(self, points) -> list[int]:
        array = _arr(points)
        n = array.shape[0]
        if n <= 1:
            return list(range(n))
        if n <= _PAIRWISE_LIMIT:
            # One broadcast: keep j iff nothing strictly dominates it and
            # no earlier row equals it (first-occurrence dedup).
            ge = (array[:, None, :] >= array[None, :, :]).all(axis=2)
            eq = ge & ge.T
            strict = ge & ~eq
            dominated = strict.any(axis=0)
            earlier_dup = np.triu(eq, 1).any(axis=0)
            return np.flatnonzero(~(dominated | earlier_dup)).tolist()
        # Incremental scan with a vectorized kept-set check per point.
        kept_rows = np.empty_like(array)
        kept_idx: list[int] = []
        k = 0
        for i in range(n):
            p = array[i]
            if k:
                view = kept_rows[:k]
                if (view >= p).all(axis=1).any():
                    continue
                strict = (view <= p).all(axis=1) & (view != p).any(axis=1)
                if strict.any():
                    keep = ~strict
                    survivors = view[keep]
                    m = survivors.shape[0]
                    kept_rows[:m] = survivors
                    kept_idx = [
                        j for j, flag in zip(kept_idx, keep.tolist()) if flag
                    ]
                    k = m
            kept_rows[k] = p
            kept_idx.append(i)
            k += 1
        return kept_idx

    # ------------------------------------------------------------------
    # Partial scores
    # ------------------------------------------------------------------
    def cover_corner_scores(
        self, points, weights: Sequence[float] | None = None
    ) -> np.ndarray:
        return _column_sum(_arr(points), weights)

    def max_corner_score(
        self, points, weights: Sequence[float] | None = None
    ) -> float:
        array = _arr(points)
        if not array.shape[0]:
            return NEG_INF
        return float(_column_sum(array, weights).max())

    def cross_product_max(self, left, right) -> float:
        left_vals = np.asarray(left, dtype=np.float64)
        right_vals = np.asarray(right, dtype=np.float64)
        if not left_vals.size or not right_vals.size:
            return NEG_INF
        # Full cross product, one broadcast — the paper's combinatorial
        # cover-bound cost with compiled constants.
        return float((left_vals[:, None] + right_vals[None, :]).max())

    # ------------------------------------------------------------------
    # Cover maintenance (FR::UpdateCR / FR*::UpdateCR)
    # ------------------------------------------------------------------
    def cover_carve(
        self, cover, observed, *, skyline_mode: bool = False
    ) -> np.ndarray:
        current = _arr(cover)
        if current.shape[0]:
            current = current.copy()
        dimension = current.shape[1]
        for raw in observed:
            y = np.asarray(tuple(raw), dtype=np.float64)
            if not current.shape[0]:
                break
            removed_mask = (current >= y).all(axis=1)
            if not removed_mask.any():
                continue
            removed = current[removed_mask]
            survivors = current[~removed_mask]
            # Project each removed point one coordinate down onto y.
            projected = np.repeat(removed, dimension, axis=0)
            cols = np.tile(np.arange(dimension), removed.shape[0])
            projected[np.arange(projected.shape[0]), cols] = y[cols]
            projected = projected[(projected > 0.0).all(axis=1)]
            projected = np.unique(projected, axis=0)
            if skyline_mode and projected.shape[0]:
                fresh = projected[self.skyline_filter(projected)]
                if survivors.shape[0] and fresh.shape[0]:
                    dominated_new = (
                        (survivors[:, None, :] >= fresh[None, :, :])
                        .all(axis=2)
                        .any(axis=0)
                    )
                    fresh = fresh[~dominated_new]
                if survivors.shape[0] and fresh.shape[0]:
                    strictly = (
                        (fresh[:, None, :] >= survivors[None, :, :]).all(axis=2)
                        & (fresh[:, None, :] > survivors[None, :, :]).any(axis=2)
                    ).any(axis=0)
                    survivors = survivors[~strictly]
                current = np.concatenate([survivors, fresh], axis=0)
            else:
                current = np.concatenate([survivors, projected], axis=0)
        return current

    # ------------------------------------------------------------------
    # Grid kernels (aFR)
    # ------------------------------------------------------------------
    def grid_cell_assign(self, points, resolution: int) -> np.ndarray:
        array = _arr(points)
        if not array.shape[0]:
            return np.zeros((0, array.shape[1]), dtype=np.int64)
        cells = np.ceil(array * resolution).astype(np.int64) - 1
        return np.clip(cells, 0, resolution - 1)

    def antichain(self, cells) -> np.ndarray:
        array = _cells_arr(cells)
        if array.shape[0] <= 1:
            return array
        array = np.unique(array, axis=0)
        ge = (array[:, None, :] >= array[None, :, :]).all(axis=2)
        np.fill_diagonal(ge, False)
        return array[~ge.any(axis=0)]

    def grid_carve(
        self, cells, point: Sequence[float], resolution: int
    ) -> tuple[np.ndarray, bool]:
        array = _cells_arr(cells)
        m = np.ceil(np.asarray(tuple(point), dtype=np.float64) * resolution)
        m = np.clip(m, 0, resolution).astype(np.int64)
        removed_mask = (array >= m).all(axis=1) if array.shape[0] else None
        if removed_mask is None or not removed_mask.any():
            return array, False
        dimension = array.shape[1]
        removed = array[removed_mask]
        survivors = array[~removed_mask]
        projected = np.repeat(removed, dimension, axis=0)
        cols = np.tile(np.arange(dimension), removed.shape[0])
        projected[np.arange(projected.shape[0]), cols] = m[cols] - 1
        projected = projected[(projected >= 0).all(axis=1)]
        fresh = self.antichain(projected)
        if survivors.shape[0] and fresh.shape[0]:
            dominated_new = (
                (survivors[:, None, :] >= fresh[None, :, :]).all(axis=2).any(axis=0)
            )
            fresh = fresh[~dominated_new]
        if survivors.shape[0] and fresh.shape[0]:
            strictly = (
                (fresh[:, None, :] >= survivors[None, :, :]).all(axis=2)
                & (fresh[:, None, :] > survivors[None, :, :]).any(axis=2)
            ).any(axis=0)
            survivors = survivors[~strictly]
        return np.concatenate([survivors, fresh], axis=0), True
