"""Columnar point sets: the storage half of the kernel data plane.

A :class:`PointSet` holds ``n`` e-dimensional score vectors contiguously —
a capacity-doubling ``(capacity, e)`` float64 array when numpy is
available, a plain list of tuples otherwise — so the batch kernels in
:mod:`repro.kernels` can scan whole sets without materializing one tuple
per row.  Row ids are stable under :meth:`append`/:meth:`extend` (the row
id is the row index at insertion time); :meth:`replace`, :meth:`compress`
and :meth:`clear` renumber and bump :attr:`version` so cached views (e.g.
the prepared partial-score operands in :mod:`repro.core.scoring`) know to
rebuild instead of extending incrementally.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.kernels.types import Point, as_point

try:  # pragma: no cover - exercised implicitly on every import
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - numpy is a declared dependency
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

_INITIAL_CAPACITY = 16


class PointSet:
    """A growable columnar set of fixed-dimension score vectors.

    Parameters
    ----------
    dimension:
        Number of coordinates per point, or ``None`` to infer it from the
        first point added (a dimensionless empty set).
    points:
        Optional initial contents.
    """

    __slots__ = ("_dimension", "_buf", "_size", "_version", "_tuple_cache")

    def __init__(
        self,
        dimension: int | None = None,
        points: Iterable[Sequence[float]] = (),
    ) -> None:
        if dimension is not None and dimension < 0:
            raise ValueError("dimension must be non-negative")
        self._dimension = dimension
        self._size = 0
        self._version = 0
        self._tuple_cache: tuple[tuple[int, int], list[Point]] | None = None
        self._buf = self._new_buffer(_INITIAL_CAPACITY)
        self.extend(points)

    # ------------------------------------------------------------------
    # Storage plumbing
    # ------------------------------------------------------------------
    def _new_buffer(self, capacity: int):
        if HAS_NUMPY and self._dimension is not None:
            return np.empty((capacity, self._dimension), dtype=np.float64)
        return []  # list mode: no numpy yet, or dimension still unknown

    def _settle_dimension(self, dimension: int) -> None:
        """Fix a lazily-inferred dimension on first data."""
        if self._dimension is None:
            self._dimension = dimension
            if HAS_NUMPY:
                self._buf = np.empty(
                    (_INITIAL_CAPACITY, dimension), dtype=np.float64
                )
        elif dimension != self._dimension:
            raise ValueError(
                f"dimension mismatch: PointSet is {self._dimension}-d, "
                f"point is {dimension}-d"
            )

    @property
    def dimension(self) -> int | None:
        """Coordinates per point (``None`` until the first point arrives)."""
        return self._dimension

    @property
    def version(self) -> int:
        """Bumped by every non-append mutation (replace/compress/clear)."""
        return self._version

    @property
    def stamp(self) -> tuple[int, int]:
        """``(version, size)`` — cheap cache-validity token for views.

        Same version, larger size means "rows were appended, prefix
        unchanged"; a version change means "start over".
        """
        return (self._version, self._size)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, point: Sequence[float]) -> int:
        """Add one point; return its (stable) row id."""
        values = as_point(point)
        self._settle_dimension(len(values))
        self._tuple_cache = None
        if HAS_NUMPY:
            if self._size == self._buf.shape[0]:
                grown = np.empty(
                    (max(2 * self._size, _INITIAL_CAPACITY), self._dimension),
                    dtype=np.float64,
                )
                grown[: self._size] = self._buf[: self._size]
                self._buf = grown
            self._buf[self._size] = values
        else:
            self._buf.append(values)
        self._size += 1
        return self._size - 1

    def extend(self, points: Iterable[Sequence[float]]) -> None:
        for point in points:
            self.append(point)

    def replace(self, points) -> None:
        """Swap in a new point set wholesale (bumps :attr:`version`).

        Accepts another :class:`PointSet`, an ``(n, e)`` numpy array, or
        any iterable of coordinate sequences.
        """
        self._version += 1
        self._tuple_cache = None
        if isinstance(points, PointSet):
            points = points.rows()
        if HAS_NUMPY and isinstance(points, np.ndarray):
            array = np.ascontiguousarray(points, dtype=np.float64)
            if array.ndim != 2:
                raise ValueError("replace expects an (n, e) array")
            self._settle_dimension(array.shape[1])
            self._buf = array.copy()
            self._size = array.shape[0]
            return
        rows = [as_point(p) for p in points]
        self._size = 0
        if rows:
            self._settle_dimension(len(rows[0]))
        self._buf = self._new_buffer(max(len(rows), _INITIAL_CAPACITY))
        if HAS_NUMPY and self._dimension is not None:
            for row in rows:
                if len(row) != self._dimension:
                    raise ValueError(
                        f"dimension mismatch: PointSet is {self._dimension}-d, "
                        f"point is {len(row)}-d"
                    )
                self._buf[self._size] = row
                self._size += 1
        else:
            for row in rows:
                self.append(row)
            self._version += 1  # appends above must still read as a rebuild

    def compress(self, keep) -> int:
        """Drop rows whose ``keep`` entry is falsy; return rows removed.

        ``keep`` is a boolean mask over the current rows — a numpy bool
        array or any sequence of truthy/falsy values.  Surviving rows keep
        their relative order; row ids are renumbered (version bump).
        """
        flags = [bool(k) for k in keep]
        if len(flags) != self._size:
            raise ValueError(
                f"mask length {len(flags)} != point count {self._size}"
            )
        removed = flags.count(False)
        if not removed:
            return 0
        self._version += 1
        self._tuple_cache = None
        if HAS_NUMPY:
            if self._dimension is None:  # pragma: no cover - defensive
                self._size = 0
                return removed
            mask = np.asarray(flags, dtype=bool)
            survivors = self._buf[: self._size][mask]
            self._buf = self._new_buffer(
                max(survivors.shape[0], _INITIAL_CAPACITY)
            )
            self._buf[: survivors.shape[0]] = survivors
            self._size = survivors.shape[0]
        else:
            self._buf = [row for row, flag in zip(self._buf, flags) if flag]
            self._size = len(self._buf)
        return removed

    def clear(self) -> None:
        self._version += 1
        self._tuple_cache = None
        self._size = 0
        self._buf = self._new_buffer(_INITIAL_CAPACITY)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def array(self):
        """The points as an ``(n, e)`` float64 view (do not mutate).

        Only valid while numpy is available; the view aliases internal
        storage and is invalidated by the next mutation.
        """
        if not HAS_NUMPY:
            raise RuntimeError("PointSet.array requires numpy")
        if self._dimension is None:
            return np.empty((0, 0), dtype=np.float64)
        return self._buf[: self._size]

    def rows(self):
        """Backend-agnostic row view: ndarray if numpy, tuple list if not."""
        if HAS_NUMPY:
            return self.array
        return list(self._buf)

    def tuples(self) -> list[Point]:
        """The points as canonical tuples (cached until the set mutates)."""
        stamp = self.stamp
        if self._tuple_cache is not None and self._tuple_cache[0] == stamp:
            return self._tuple_cache[1]
        if HAS_NUMPY and self._dimension is not None:
            rows = [tuple(row) for row in self._buf[: self._size].tolist()]
        else:
            rows = list(self._buf)
        self._tuple_cache = (stamp, rows)
        return rows

    def row(self, index: int) -> Point:
        """One point by row id."""
        if not 0 <= index < self._size:
            raise IndexError(f"row {index} out of range for {self._size} points")
        if HAS_NUMPY and self._dimension is not None:
            return tuple(float(v) for v in self._buf[index])
        return self._buf[index]

    def __iter__(self) -> Iterator[Point]:
        return iter(self.tuples())

    def __contains__(self, point: Sequence[float]) -> bool:
        return as_point(point) in self.tuples()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PointSet(dim={self._dimension}, n={self._size})"
