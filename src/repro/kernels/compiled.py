"""The numba kernel backend: jit-compiled loops, lazily compiled.

Third interchangeable compute tier next to the pure-Python reference and
the numpy broadcasts.  Each op is the *reference loop* re-expressed over
contiguous float64 arrays and compiled with ``numba.njit`` on first call
(`fastmath` stays off), so the bit-identity contract holds by
construction:

* dominance tests are the same exact comparisons;
* partial scores accumulate strictly left-to-right
  (``s = 0.0; s += w*x``), never a reassociated reduction;
* set-producing ops (cover carve, grid carve, antichain) keep the
  reference orchestration in Python — sorted-set projection order and
  all — and delegate only the inner dominance scans to jitted kernels.

Compilation is **lazy twice over**: the module imports without numba
(``HAS_NUMBA`` is probed via ``find_spec``, numba itself is only imported
inside the first kernel call), and each jitted function is compiled the
first time its op runs.  When numba is absent the backend is simply not
registered and the :class:`~repro.kernels.registry.KernelRegistry`
resolves ``numba`` requests per op down to numpy/python with a
once-per-process warning — warn-and-skip, never a hard failure.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from importlib.util import find_spec
from math import ceil

from repro.kernels.pointset import HAS_NUMPY, PointSet
from repro.kernels.types import Cell, Point, as_point, substitute

try:  # pragma: no cover - exercised implicitly on import
    HAS_NUMBA = HAS_NUMPY and find_spec("numba") is not None
except (ImportError, ValueError):  # pragma: no cover - broken metadata
    HAS_NUMBA = False

if HAS_NUMPY:
    import numpy as np

NEG_INF = float("-inf")

#: Lazily-populated cache of jitted functions, keyed by kernel name.
_JITTED: dict[str, Callable] = {}


def _jit(fn: Callable) -> Callable:
    """The njit-compiled form of ``fn``, compiled once per process."""
    compiled = _JITTED.get(fn.__name__)
    if compiled is None:
        import numba

        compiled = numba.njit(cache=False, fastmath=False)(fn)
        _JITTED[fn.__name__] = compiled
    return compiled


def _arr(points):
    """Any supported operand as an ``(n, e)`` float64 C-contiguous array."""
    if isinstance(points, PointSet):
        return np.ascontiguousarray(points.array)
    array = np.asarray(points, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(0, 0) if array.size == 0 else array.reshape(1, -1)
    return np.ascontiguousarray(array)


# ----------------------------------------------------------------------
# Jitted kernels (plain functions here; compiled on first use).
# Every loop mirrors repro.kernels.reference line for line.
# ----------------------------------------------------------------------
def _k_any_weak(arr, q):
    """True if some row weakly dominates q (row >= q componentwise)."""
    for i in range(arr.shape[0]):
        ok = True
        for j in range(arr.shape[1]):
            if not arr[i, j] >= q[j]:
                ok = False
                break
        if ok:
            return True
    return False


def _k_weak_mask(arr, q):
    n = arr.shape[0]
    out = np.zeros(n, dtype=np.bool_)
    for i in range(n):
        ok = True
        for j in range(arr.shape[1]):
            if not arr[i, j] >= q[j]:
                ok = False
                break
        out[i] = ok
    return out


def _k_strict_mask(arr, q):
    """Per-row mask: q strictly dominates the row (q >= row, q != row)."""
    n = arr.shape[0]
    out = np.zeros(n, dtype=np.bool_)
    for i in range(n):
        ok = True
        strict = False
        for j in range(arr.shape[1]):
            if not arr[i, j] <= q[j]:
                ok = False
                break
            if arr[i, j] != q[j]:
                strict = True
        out[i] = ok and strict
    return out


def _k_any_strict_over(arr, q):
    """True if some row strictly dominates q (row >= q, row != q)."""
    for i in range(arr.shape[0]):
        ok = True
        strict = False
        for j in range(arr.shape[1]):
            if not arr[i, j] >= q[j]:
                ok = False
                break
            if arr[i, j] != q[j]:
                strict = True
        if ok and strict:
            return True
    return False


def _k_skyline(arr):
    """Kept indices of the incremental-insertion skyline (reference order)."""
    n = arr.shape[0]
    e = arr.shape[1]
    kept = np.empty(n, dtype=np.int64)
    k = 0
    for i in range(n):
        dominated = False
        for t in range(k):
            row = kept[t]
            ok = True
            for j in range(e):
                if not arr[row, j] >= arr[i, j]:
                    ok = False
                    break
            if ok:
                dominated = True
                break
        if dominated:
            continue
        m = 0
        for t in range(k):
            row = kept[t]
            ok = True
            strict = False
            for j in range(e):
                if not arr[row, j] <= arr[i, j]:
                    ok = False
                    break
                if arr[row, j] != arr[i, j]:
                    strict = True
            if not (ok and strict):
                kept[m] = row
                m += 1
        k = m
        kept[k] = i
        k += 1
    return kept[:k]


def _k_scores_plain(arr):
    n = arr.shape[0]
    out = np.zeros(n, dtype=np.float64)
    for i in range(n):
        s = 0.0
        for j in range(arr.shape[1]):
            s += arr[i, j]
        out[i] = s
    return out


def _k_scores_weighted(arr, weights):
    n = arr.shape[0]
    width = min(arr.shape[1], weights.shape[0])
    out = np.zeros(n, dtype=np.float64)
    for i in range(n):
        s = 0.0
        for j in range(width):
            s += weights[j] * arr[i, j]
        out[i] = s
    return out


def _k_max(values):
    best = NEG_INF
    for i in range(values.shape[0]):
        if values[i] > best:
            best = values[i]
    return best


def _k_cross_max(left, right):
    best = NEG_INF
    for i in range(left.shape[0]):
        l_val = left[i]
        for j in range(right.shape[0]):
            if l_val + right[j] > best:
                best = l_val + right[j]
    return best


def _k_cell_assign(arr, resolution):
    n = arr.shape[0]
    e = arr.shape[1]
    out = np.empty((n, e), dtype=np.int64)
    for i in range(n):
        for j in range(e):
            index = int(ceil(arr[i, j] * resolution)) - 1
            if index < 0:
                index = 0
            elif index > resolution - 1:
                index = resolution - 1
            out[i, j] = index
    return out


def _k_antichain_mask(arr):
    """Keep mask over unique rows: no other row weakly dominates this one."""
    n = arr.shape[0]
    out = np.ones(n, dtype=np.bool_)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            ok = True
            for c in range(arr.shape[1]):
                if not arr[j, c] >= arr[i, c]:
                    ok = False
                    break
            if ok:
                out[i] = False
                break
    return out


class CompiledBackend:
    """Numba-jitted kernels with reference semantics.

    Construction is cheap and import-safe; the first call of each op
    pays one jit compilation (cached for the process).  Instances are
    only registered when :data:`HAS_NUMBA` is true.
    """

    name = "numba"

    # ------------------------------------------------------------------
    # Dominance primitives
    # ------------------------------------------------------------------
    def dominates_any(self, points, q: Sequence[float]) -> bool:
        arr = _arr(points)
        if not arr.shape[0]:
            return False
        target = np.asarray(tuple(q), dtype=np.float64)
        return bool(_jit(_k_any_weak)(arr, target))

    def weak_dominance_mask(self, points, q: Sequence[float]):
        arr = _arr(points)
        if not arr.shape[0]:
            return np.zeros(0, dtype=bool)
        target = np.asarray(tuple(q), dtype=np.float64)
        return _jit(_k_weak_mask)(arr, target)

    def strict_dominance_mask(self, points, q: Sequence[float]):
        arr = _arr(points)
        if not arr.shape[0]:
            return np.zeros(0, dtype=bool)
        target = np.asarray(tuple(q), dtype=np.float64)
        return _jit(_k_strict_mask)(arr, target)

    # ------------------------------------------------------------------
    # Skylines
    # ------------------------------------------------------------------
    def skyline_filter(self, points) -> list[int]:
        arr = _arr(points)
        if arr.shape[0] <= 1:
            return list(range(arr.shape[0]))
        return _jit(_k_skyline)(arr).tolist()

    # ------------------------------------------------------------------
    # Partial scores
    # ------------------------------------------------------------------
    def cover_corner_scores(
        self, points, weights: Sequence[float] | None = None
    ):
        arr = _arr(points)
        if not arr.shape[0]:
            return np.zeros(0, dtype=np.float64)
        if weights is None:
            return _jit(_k_scores_plain)(arr)
        w = np.asarray(tuple(float(v) for v in weights), dtype=np.float64)
        return _jit(_k_scores_weighted)(arr, w)

    def max_corner_score(
        self, points, weights: Sequence[float] | None = None
    ) -> float:
        arr = _arr(points)
        if not arr.shape[0]:
            return NEG_INF
        return float(_jit(_k_max)(self.cover_corner_scores(arr, weights)))

    def cross_product_max(self, left, right) -> float:
        left_vals = np.asarray(
            [float(v) for v in left], dtype=np.float64
        )
        right_vals = np.asarray(
            [float(v) for v in right], dtype=np.float64
        )
        if not left_vals.size or not right_vals.size:
            return NEG_INF
        return float(_jit(_k_cross_max)(left_vals, right_vals))

    # ------------------------------------------------------------------
    # Cover maintenance (FR::UpdateCR / FR*::UpdateCR)
    # ------------------------------------------------------------------
    def cover_carve(
        self, cover, observed, *, skyline_mode: bool = False
    ) -> list[Point]:
        """Reference orchestration; jitted dominance scans inside."""
        current = [as_point(p) for p in _arr(cover).tolist()] \
            if not isinstance(cover, list) else [as_point(p) for p in cover]
        for raw in observed:
            y = as_point(raw)
            if not current:
                break
            cur_arr = np.asarray(current, dtype=np.float64)
            target = np.asarray(y, dtype=np.float64)
            mask = _jit(_k_weak_mask)(cur_arr, target)
            if not mask.any():
                continue
            removed = [p for p, hit in zip(current, mask) if hit]
            survivors = [p for p, hit in zip(current, mask) if not hit]
            projected: set[Point] = set()
            for s in removed:
                for axis, value in enumerate(y):
                    candidate = substitute(s, axis, value)
                    if all(coord > 0.0 for coord in candidate):
                        projected.add(candidate)
            fresh = sorted(projected)
            if skyline_mode:
                fresh = [fresh[i] for i in self.skyline_filter(fresh)]
                if survivors and fresh:
                    surv_arr = np.asarray(survivors, dtype=np.float64)
                    fresh = [
                        p for p in fresh
                        if not _jit(_k_any_weak)(
                            surv_arr, np.asarray(p, dtype=np.float64)
                        )
                    ]
                if survivors and fresh:
                    fresh_arr = np.asarray(fresh, dtype=np.float64)
                    survivors = [
                        s for s in survivors
                        if not _jit(_k_any_strict_over)(
                            fresh_arr, np.asarray(s, dtype=np.float64)
                        )
                    ]
            current = survivors + fresh
        return current

    # ------------------------------------------------------------------
    # Grid kernels (aFR)
    # ------------------------------------------------------------------
    def grid_cell_assign(self, points, resolution: int):
        arr = _arr(points)
        if not arr.shape[0]:
            return np.zeros((0, arr.shape[1]), dtype=np.int64)
        return _jit(_k_cell_assign)(arr, resolution)

    def antichain(self, cells) -> list[Cell]:
        rows = cells.tolist() if hasattr(cells, "tolist") else cells
        unique = sorted({tuple(int(v) for v in row) for row in rows})
        if len(unique) <= 1:
            return unique
        # Integer cells are exact in float64 (coordinates are tiny), so
        # the float dominance scan below is exact too.
        arr = np.asarray(unique, dtype=np.float64)
        keep = _jit(_k_antichain_mask)(arr)
        return [cell for cell, flag in zip(unique, keep) if flag]

    def grid_carve(
        self, cells, point: Sequence[float], resolution: int
    ) -> tuple[list[Cell], bool]:
        m = tuple(
            min(max(ceil(v * resolution), 0), resolution) for v in point
        )
        raw = cells.tolist() if hasattr(cells, "tolist") else cells
        rows = [tuple(int(v) for v in row) for row in raw]
        if not rows:
            return rows, False
        arr = np.asarray(rows, dtype=np.float64)
        target = np.asarray(m, dtype=np.float64)
        mask = _jit(_k_weak_mask)(arr, target)
        if not mask.any():
            return rows, False
        dimension = len(m)
        removed = [c for c, hit in zip(rows, mask) if hit]
        survivors = [c for c, hit in zip(rows, mask) if not hit]
        projected: set[Cell] = set()
        for cell in removed:
            for axis in range(dimension):
                slid = list(cell)
                slid[axis] = m[axis] - 1
                if all(coord >= 0 for coord in slid):
                    projected.add(tuple(slid))
        fresh = self.antichain(sorted(projected))
        if survivors and fresh:
            surv_arr = np.asarray(survivors, dtype=np.float64)
            fresh = [
                c for c in fresh
                if not _jit(_k_any_weak)(
                    surv_arr, np.asarray(c, dtype=np.float64)
                )
            ]
        if survivors and fresh:
            fresh_arr = np.asarray(fresh, dtype=np.float64)
            survivors = [
                s for s in survivors
                if not _jit(_k_any_strict_over)(
                    fresh_arr, np.asarray(s, dtype=np.float64)
                )
            ]
        return survivors + fresh, True
