"""Per-op kernel implementation registry with per-op fallback.

The registry is the factual record of *which* implementation exists for
*which* kernel op.  Three tiers are defined:

* ``reference`` — pure-Python loops (:mod:`repro.kernels.reference`),
  always present, the semantic oracle;
* ``vectorized`` — numpy broadcasts (:mod:`repro.kernels.vectorized`),
  present when numpy is importable;
* ``compiled`` — numba-jitted loops (:mod:`repro.kernels.compiled`),
  present when numba is importable (compilation itself is lazy).

Fallback is **per op**, not per process: requesting a tier that lacks an
implementation of some op resolves that one op down the tier order
(``compiled → vectorized → reference``) while every other op keeps its
requested tier.  Each distinct ``(op, requested, used)`` degradation is
warned about exactly once per process and tallied in
:attr:`KernelRegistry.fallbacks`, which the instrumentation layer
publishes as the ``kernel_fallbacks_total{fn,requested,used}`` counter —
so a missing numpy is a *recorded* event, not a silent process-wide flip.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable

#: Tier order, fastest-on-bulk first.  Fallback walks left-to-right from
#: the requested tier.
TIER_ORDER = ("compiled", "vectorized", "reference")

#: Canonical backend name per tier (what counters and ``--kernel`` use).
TIER_BACKEND = {
    "reference": "python",
    "vectorized": "numpy",
    "compiled": "numba",
}

#: Inverse: backend name -> tier.
BACKEND_TIER = {name: tier for tier, name in TIER_BACKEND.items()}


class ResolvedOp:
    """One op's resolved implementation: callable plus provenance.

    ``fallback`` is True when ``used`` differs from the tier the caller
    asked for — the per-call instrumentation uses it to feed the
    ``kernel_fallbacks_total`` counter without re-deriving anything.
    """

    __slots__ = ("op", "impl", "requested", "used", "fallback")

    def __init__(
        self, op: str, impl: Callable, requested: str, used: str
    ) -> None:
        self.op = op
        self.impl = impl
        self.requested = requested  # backend name, e.g. "numba"
        self.used = used            # backend name actually implementing
        self.fallback = requested != used


class KernelRegistry:
    """Maps each kernel op to its per-tier implementations.

    Backends register as objects exposing one method per op they
    implement; a backend may cover only a subset of the op list (the
    compiled tier, for instance, may omit an op on old numba versions)
    and the per-op fallback chain fills the gaps.
    """

    def __init__(self, ops: tuple[str, ...]) -> None:
        self.ops = ops
        self._impls: dict[str, dict[str, Callable]] = {op: {} for op in ops}
        self._backends: dict[str, object] = {}
        #: (op, requested_backend, used_backend) -> resolution count.
        self.fallbacks: dict[tuple[str, str, str], int] = {}
        self._warned: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, tier: str, backend: object) -> None:
        """Bind every op method ``backend`` exposes under ``tier``."""
        if tier not in TIER_BACKEND:
            raise ValueError(
                f"unknown kernel tier {tier!r}; choose from {TIER_ORDER}"
            )
        self._backends[tier] = backend
        table = {}
        for op in self.ops:
            impl = getattr(backend, op, None)
            if callable(impl):
                table[op] = impl
        for op, impl in table.items():
            self._impls[op][tier] = impl

    def backend(self, tier: str):
        """The registered backend object for ``tier`` (None if absent)."""
        return self._backends.get(tier)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def tiers(self) -> tuple[str, ...]:
        """Registered tiers, in :data:`TIER_ORDER`."""
        return tuple(t for t in TIER_ORDER if t in self._backends)

    def backend_names(self) -> tuple[str, ...]:
        """Canonical backend names with at least one registered op."""
        return tuple(sorted(TIER_BACKEND[t] for t in self._backends))

    def has(self, op: str, tier: str) -> bool:
        return tier in self._impls.get(op, ())

    def implementations(self, op: str) -> dict[str, Callable]:
        """Tier -> callable for one op (a copy)."""
        return dict(self._impls[op])

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, op: str, tier: str) -> ResolvedOp:
        """The implementation of ``op`` at ``tier``, falling back per op.

        Walks the tier order starting at ``tier``; the reference tier is
        always present, so resolution cannot fail for a known op.  Each
        distinct degradation is warned once per process and tallied in
        :attr:`fallbacks`.
        """
        if op not in self._impls:
            raise KeyError(f"unknown kernel op {op!r}")
        requested = TIER_BACKEND[tier]
        start = TIER_ORDER.index(tier)
        for candidate in TIER_ORDER[start:]:
            impl = self._impls[op].get(candidate)
            if impl is None:
                continue
            used = TIER_BACKEND[candidate]
            resolved = ResolvedOp(op, impl, requested, used)
            if resolved.fallback:
                self._note_fallback(op, requested, used)
            return resolved
        raise RuntimeError(  # pragma: no cover - reference is always there
            f"no implementation registered for kernel op {op!r}"
        )

    def resolve_all(self, tier: str) -> dict[str, ResolvedOp]:
        """Every op resolved at ``tier`` (the pinned-backend table)."""
        return {op: self.resolve(op, tier) for op in self.ops}

    def _note_fallback(self, op: str, requested: str, used: str) -> None:
        key = (op, requested, used)
        self.fallbacks[key] = self.fallbacks.get(key, 0) + 1
        warn_key = (requested, used)
        if warn_key not in self._warned:
            self._warned.add(warn_key)
            warnings.warn(
                f"kernel backend {requested!r} has no implementation for "
                f"some ops (first: {op!r}); affected calls fall back to "
                f"{used!r} per op — install the missing dependency to "
                f"silence this (recorded in kernel_fallbacks_total)",
                RuntimeWarning,
                stacklevel=4,
            )
