"""Physical plans: pipelines, the declarative query layer, estimation."""

from repro.plan.estimate import (
    DepthEstimate,
    chain_cardinality,
    estimate_binary_depths,
    estimate_chain_depths,
    estimate_terminal_score,
    feasible_chain_orders,
    join_cardinality,
    rank_pipeline_orders,
)
from repro.plan.pipeline import OperatorSource, Pipeline
from repro.plan.query import QueryInput, RankQuery

__all__ = [
    "DepthEstimate",
    "OperatorSource",
    "Pipeline",
    "QueryInput",
    "RankQuery",
    "chain_cardinality",
    "estimate_binary_depths",
    "estimate_chain_depths",
    "estimate_terminal_score",
    "feasible_chain_orders",
    "join_cardinality",
    "rank_pipeline_orders",
]
