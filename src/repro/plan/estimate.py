"""Depth estimation for rank join planning.

The paper's companion work (Schnaitter, Spiegel & Polyzotis, *Depth
estimation for ranking query optimization*, VLDB 2007) observes that a cost
model for ranking plans needs to predict how deep a rank join will read.
This module provides a lightweight estimator in that spirit:

1. **Join cardinality** from key-frequency statistics (exact for the
   equi-join of two relations; independence-chained for longer pipelines).
2. **Terminal score** ``S^term`` — the score of the K-th best result —
   estimated by Monte-Carlo convolution of the per-relation score
   distributions (attribute-independence assumption).
3. **Depths** under the corner-bound termination model: an operator stops
   reading input ``R_i`` once ``S̄(R_i[d]) < S^term``, so the estimated
   depth is the number of tuples whose score bound reaches ``S^term``.

The estimates drive :func:`rank_pipeline_orders`, a tiny advisor that ranks
the feasible left-deep orders of a chain query by estimated total depth.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.scoring import ScoringFunction, SumScore
from repro.relation.relation import RankJoinInstance, Relation


def join_cardinality(left: Relation, right: Relation) -> int:
    """Exact ``|L ⋈ R|`` on the relations' keys (frequency product)."""
    left_counts = Counter(t.key for t in left.tuples)
    right_counts = Counter(t.key for t in right.tuples)
    return sum(
        count * right_counts.get(key, 0) for key, count in left_counts.items()
    )


def chain_cardinality(
    relations: list[Relation],
    join_attrs: list[str],
) -> float:
    """Estimated result count of a chain join, assuming independence.

    Exact pairwise frequency products are chained with the standard
    independence correction (divide by the intermediate relation size, the
    textbook ``|A ⋈ B ⋈ C| ≈ |A ⋈ B| · |B ⋈ C| / |B|`` rule).
    """
    if len(relations) < 2:
        raise ValueError("need at least two relations")
    if len(join_attrs) != len(relations) - 1:
        raise ValueError("need one join attribute per adjacent pair")

    def pair_size(a: Relation, b: Relation, attr: str) -> int:
        a_counts = Counter(t.payload[attr] for t in a.tuples)
        b_counts = Counter(t.payload[attr] for t in b.tuples)
        return sum(n * b_counts.get(k, 0) for k, n in a_counts.items())

    estimate = float(pair_size(relations[0], relations[1], join_attrs[0]))
    for index in range(1, len(relations) - 1):
        step = pair_size(relations[index], relations[index + 1], join_attrs[index])
        middle = max(len(relations[index]), 1)
        estimate *= step / middle
    return estimate


@dataclass(frozen=True)
class DepthEstimate:
    """Predicted depths for one rank join instance or plan."""

    depths: tuple[int, ...]
    terminal_score: float
    join_size: float

    @property
    def sum_depths(self) -> int:
        return sum(self.depths)


def estimate_terminal_score(
    relations: list[Relation],
    join_size: float,
    k: int,
    scoring: ScoringFunction | None = None,
    *,
    samples: int = 4000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of ``S^term`` (the K-th best result score).

    Result scores are modeled as the aggregate of independently drawn
    per-relation score vectors; the K-th best of ``join_size`` results sits
    at the ``1 - K/join_size`` quantile of that distribution.
    """
    if join_size < k:
        raise ValueError(f"join too small ({join_size}) for K={k}")
    scoring = scoring or SumScore()
    rng = np.random.default_rng(seed)
    draws = np.zeros((samples, 0))
    parts = []
    for rel in relations:
        if not rel.tuples:
            raise ValueError(f"relation {rel.name} is empty")
        indexes = rng.integers(0, len(rel.tuples), size=samples)
        vectors = np.array([rel.tuples[i].scores for i in indexes], dtype=float)
        parts.append(vectors)
    draws = np.concatenate(parts, axis=1)
    scores = scoring.batch(draws)
    quantile = max(0.0, min(1.0, 1.0 - k / join_size))
    return float(np.quantile(scores, quantile))


def _depth_at_threshold(
    sorted_bounds_desc: list[float], threshold: float
) -> int:
    """How many leading tuples have score bound >= threshold."""
    ascending = sorted_bounds_desc[::-1]
    position = bisect_left(ascending, threshold)
    return len(ascending) - position


def estimate_binary_depths(
    instance: RankJoinInstance,
    *,
    samples: int = 4000,
    seed: int = 0,
) -> DepthEstimate:
    """Corner-model depth estimate for a binary rank join instance.

    Degenerate instances degrade gracefully (mirroring
    :func:`estimate_chain_depths`): when the join is smaller than ``k``
    or an input is empty, any operator reads everything, so the estimate
    is the full input depths with a ``-inf`` terminal score.
    """
    join_size = join_cardinality(instance.left, instance.right)
    if join_size < instance.k or not (len(instance.left) and len(instance.right)):
        return DepthEstimate(
            (len(instance.left), len(instance.right)), float("-inf"), join_size
        )
    terminal = estimate_terminal_score(
        [instance.left, instance.right],
        join_size,
        instance.k,
        instance.scoring,
        samples=samples,
        seed=seed,
    )
    depths = []
    for side in (0, 1):
        bounds = [
            instance.score_bound(side, t.scores)
            for t in instance.sorted_tuples(side)
        ]
        depths.append(min(_depth_at_threshold(bounds, terminal) + 1, len(bounds)))
    return DepthEstimate(tuple(depths), terminal, join_size)


def estimate_chain_depths(
    relations: list[Relation],
    join_attrs: list[str],
    k: int,
    scoring: ScoringFunction | None = None,
    *,
    samples: int = 4000,
    seed: int = 0,
) -> DepthEstimate:
    """Corner-model depth estimate for a chain rank join (any arity).

    The score bound of a tuple of relation ``i`` substitutes 1 for every
    other relation's attributes; the depth is where that bound crosses the
    estimated terminal score.
    """
    scoring = scoring or SumScore()
    join_size = chain_cardinality(relations, join_attrs)
    if join_size < k:
        # The request is unsatisfiable (or the estimate says so); any
        # operator would read everything.
        return DepthEstimate(
            tuple(len(rel) for rel in relations), float("-inf"), join_size
        )
    terminal = estimate_terminal_score(
        relations, join_size, k, scoring, samples=samples, seed=seed
    )
    dims = [rel.dimension for rel in relations]
    prefix = [sum(dims[:i]) for i in range(len(relations))]
    total = sum(dims)
    depths = []
    for index, rel in enumerate(relations):
        ones_before = prefix[index]
        ones_after = total - ones_before - dims[index]

        def bound(t, b=ones_before, a=ones_after):
            return scoring((1.0,) * b + t.scores + (1.0,) * a)

        bounds = sorted((bound(t) for t in rel.tuples), reverse=True)
        depths.append(min(_depth_at_threshold(bounds, terminal) + 1, len(bounds)))
    return DepthEstimate(tuple(depths), terminal, join_size)


def feasible_chain_orders(n: int) -> list[list[int]]:
    """Left-deep orders of a chain query that keep every join an equi-join.

    A left-deep plan over a chain graph must grow a contiguous interval of
    the chain, so each order is determined by the start relation and the
    sequence of left/right extensions: ``2^(n-1)`` orders in total.
    """
    if n < 1:
        return []
    orders: list[list[int]] = []

    def grow(low: int, high: int, acc: list[int]) -> None:
        if len(acc) == n:
            orders.append(list(acc))
            return
        if low > 0:
            grow(low - 1, high, acc + [low - 1])
        if high < n - 1:
            grow(low, high + 1, acc + [high + 1])

    for start in range(n):
        grow(start, start, [start])
    return orders


def rank_pipeline_orders(
    relations: list[Relation],
    join_attrs: list[str],
    k: int,
    scoring: ScoringFunction | None = None,
    *,
    samples: int = 2000,
    seed: int = 0,
) -> list[tuple[list[int], DepthEstimate]]:
    """Rank feasible chain orders by estimated total depth (best first).

    The estimator is order-independent in its terminal score but not in
    which relations a plan touches first; here the (simple) proxy is the
    chain-depth estimate restricted to the prefix relations, so orders that
    lead with shallow relations score better.
    """
    estimate = estimate_chain_depths(
        relations, join_attrs, k, scoring, samples=samples, seed=seed
    )
    orders = feasible_chain_orders(len(relations))
    ranked = []
    for order in orders:
        # Weight earlier plan positions more: relations joined early are
        # re-read (via intermediate results) by every later stage.
        weighted = sum(
            estimate.depths[rel_index] * (len(order) - position)
            for position, rel_index in enumerate(order)
        )
        ranked.append((order, estimate, weighted))
    ranked.sort(key=lambda item: item[2])
    return [(order, est) for order, est, __ in ranked]
