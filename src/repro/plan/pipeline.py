"""Pipelined physical plans of binary rank join operators (Section 6.2.3).

A plan for ``R1 ⋈ R2 ⋈ … ⋈ Rn`` is left-deep: the output of each binary
rank join feeds the left input of the next.  The crucial observation (from
the HRJN line of work) is that an inner operator's output order — decreasing
``S`` over the concatenated scores so far — *is* the decreasing-``S̄`` order
the outer operator requires, because for additive scoring
``S̄(τ) = S(b(τ)) + (#missing)``.  The plan therefore satisfies Definition
2.1 at every level and the whole pipeline is incremental: asking the top
operator for K results pulls only prefixes of every base relation.

:class:`OperatorSource` adapts a PBRJ operator into a
:class:`~repro.relation.sources.TupleSource`, re-keying each intermediate
result on the next join attribute carried in the tuple payloads.
"""

from __future__ import annotations

from repro.core.operators import make_components
from repro.core.pbrj import PBRJ
from repro.core.scoring import ScoringFunction, SumScore
from repro.core.tuples import JoinResult, RankTuple
from repro.errors import InstanceError
from repro.relation.cost import CostModel
from repro.relation.relation import Relation
from repro.relation.sources import SortedScan, TupleSource
from repro.stats.metrics import DepthReport, TimingBreakdown


class OperatorSource(TupleSource):
    """Adapts a rank join operator's output stream into a tuple source.

    Each :class:`~repro.core.tuples.JoinResult` becomes a
    :class:`~repro.core.tuples.RankTuple` whose score vector is the
    concatenated vector and whose key is drawn from the merged payloads
    (``key_attr``).  Exhaustion is discovered lazily — ``has_next`` stays
    optimistic so the outer operator never forces speculative work on the
    inner one.
    """

    def __init__(
        self,
        operator: PBRJ,
        key_attr: str,
        dimension: int,
        *,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(dimension, cost_model or CostModel.free())
        self.operator = operator
        self.key_attr = key_attr
        self._done = False

    def has_next(self) -> bool:
        return not self._done

    def _advance(self) -> RankTuple:  # pragma: no cover - next() overridden
        raise AssertionError("OperatorSource overrides next()")

    def next(self) -> RankTuple | None:
        if self._done:
            return None
        result = self.operator.get_next()
        if result is None:
            self._done = True
            return None
        self.stats.charge(self.cost_model)
        return self._wrap(result)

    def _wrap(self, result: JoinResult) -> RankTuple:
        payload = result.merged_payload()
        if self.key_attr not in payload:
            raise InstanceError(
                f"intermediate result lacks join attribute {self.key_attr!r}; "
                f"available: {sorted(payload)}"
            )
        return RankTuple(
            key=payload[self.key_attr], scores=result.scores, payload=payload
        )


class Pipeline:
    """A left-deep pipeline of binary rank join operators.

    Parameters
    ----------
    relations:
        The base relations in join order; each must already be keyed
        (via :meth:`repro.data.tpch.Table.to_relation`) on its join
        attribute with the *previous* plan step.
    rekey_attrs:
        For each intermediate result level ``j`` (0-based, between join
        ``j`` and join ``j+1``), the payload attribute to key the
        intermediate tuples on — length ``len(relations) - 2``.
    operator:
        Operator name from :data:`repro.core.operators.OPERATORS`; every
        stage uses the same type, as in the paper's experiments.
    scoring:
        Per-stage scoring must be dimension-agnostic and additive so the
        order-compatibility argument holds; the default (and the paper's
        choice) is :class:`~repro.core.scoring.SumScore`.
    obs:
        Optional :class:`~repro.obs.Observability` pipeline shared by all
        stages; each stage registers its own span tracer (labelled
        ``<operator>#<index>``) so per-stage timings stay separable.
    """

    def __init__(
        self,
        relations: list[Relation],
        rekey_attrs: list[str],
        *,
        operator: str = "a-FRPA",
        scoring: ScoringFunction | None = None,
        cost_model: CostModel | None = None,
        operator_kwargs: dict | None = None,
        track_time: bool = True,
        obs=None,
    ) -> None:
        if len(relations) < 2:
            raise InstanceError("a pipeline needs at least two relations")
        if len(rekey_attrs) != len(relations) - 2:
            raise InstanceError(
                f"need {len(relations) - 2} rekey attributes for "
                f"{len(relations)} relations, got {len(rekey_attrs)}"
            )
        self.operator_name = operator
        self.scoring = scoring or SumScore()
        cost_model = cost_model or CostModel.clustered_index()
        operator_kwargs = operator_kwargs or {}

        self.base_scans: list[SortedScan] = [
            self._scan(rel, cost_model) for rel in relations
        ]
        self.stages: list[PBRJ] = []
        left: TupleSource = self.base_scans[0]
        for index in range(1, len(relations)):
            bound, strategy = make_components(operator, **operator_kwargs)
            stage = PBRJ(
                left,
                self.base_scans[index],
                self.scoring,
                bound,
                strategy,
                name=f"{operator}#{index}",
                track_time=track_time,
                obs=obs,
            )
            self.stages.append(stage)
            if index < len(relations) - 1:
                dimension = left.dimension + relations[index].dimension
                left = OperatorSource(stage, rekey_attrs[index - 1], dimension)
        self.top = self.stages[-1]

    def _scan(self, relation: Relation, cost_model: CostModel) -> SortedScan:
        """Sort a base relation in decreasing score order (≡ decreasing S̄)."""
        ordered = sorted(
            relation.tuples, key=lambda t: self.scoring(t.scores), reverse=True
        )
        return SortedScan(ordered, cost_model=cost_model)

    # ------------------------------------------------------------------
    def get_next(self) -> JoinResult | None:
        """Next result of the full n-way join in decreasing score order."""
        return self.top.get_next()

    def top_k(self, k: int) -> list[JoinResult]:
        return self.top.top_k(k)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def base_depths(self) -> list[int]:
        """Tuples pulled from each base relation."""
        return [scan.depth for scan in self.base_scans]

    @property
    def sum_depths(self) -> int:
        """Total base-relation tuples pulled — the paper's plan I/O metric."""
        return sum(self.base_depths())

    @property
    def io_cost(self) -> float:
        """Total simulated I/O cost across base relations."""
        return sum(scan.cost for scan in self.base_scans)

    def depths(self) -> DepthReport:
        """Two-way summary: left = first relation, right = all others."""
        base = self.base_depths()
        return DepthReport(base[0], sum(base[1:]))

    def timing(self) -> TimingBreakdown:
        """Pipeline-level breakdown.

        The top stage's ``total`` already encloses all nested work.  Bound
        time sums across stages; base I/O is the innermost stage's I/O plus
        each outer stage's I/O with the enclosed inner-stage total removed.
        """
        total = self.stages[-1].timing().total
        bound = sum(stage.timing().bound for stage in self.stages)
        io = self.stages[0].timing().io
        for index in range(1, len(self.stages)):
            outer_io = self.stages[index].timing().io
            inner_total = self.stages[index - 1].timing().total
            io += max(outer_io - inner_total, 0.0)
        return TimingBreakdown(io=io, bound=bound, total=total)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Pipeline({self.operator_name}, stages={len(self.stages)}, "
            f"sumDepths={self.sum_depths})"
        )
