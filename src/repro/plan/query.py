"""A small declarative layer for ranking (top-k) queries.

Models the paper's motivating SQL::

    SELECT ... FROM R1, R2, ... WHERE <equi-join chain>
    RANK BY w11*R1.s1 + w12*R1.s2 + ... LIMIT K

Per-attribute weights are folded into the data by pre-scaling the score
columns (a monotone transformation that keeps scores inside the unit cube
as long as each weight is in ``[0, 1]``), after which the plan runs with
plain :class:`~repro.core.scoring.SumScore` — preserving the additive
structure pipelining relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tuples import JoinResult, RankTuple
from repro.errors import InstanceError
from repro.plan.pipeline import Pipeline
from repro.relation.cost import CostModel
from repro.relation.relation import Relation


@dataclass(frozen=True)
class QueryInput:
    """One relation in the query, with optional per-score weights."""

    relation: Relation
    weights: tuple[float, ...] | None = None

    def scaled(self) -> Relation:
        """Apply the weights to the score columns (identity if none)."""
        if self.weights is None:
            return self.relation
        if len(self.weights) != self.relation.dimension:
            raise InstanceError(
                f"{self.relation.name}: {len(self.weights)} weights for "
                f"{self.relation.dimension} score attributes"
            )
        if any(not 0.0 <= w <= 1.0 for w in self.weights):
            raise InstanceError("weights must lie in [0, 1] to stay in the unit cube")
        scaled_tuples = [
            RankTuple(
                key=t.key,
                scores=tuple(w * s for w, s in zip(self.weights, t.scores)),
                payload=t.payload,
            )
            for t in self.relation.tuples
        ]
        return Relation(self.relation.name, scaled_tuples)


@dataclass
class RankQuery:
    """A declarative ranking query over a chain of equi-joins.

    ``inputs`` are joined left-deep in order; ``rekey_attrs`` name the join
    attribute between each intermediate result and the next relation (one
    entry per relation beyond the second).
    """

    inputs: list[QueryInput]
    k: int
    rekey_attrs: list[str] = field(default_factory=list)
    operator: str = "a-FRPA"
    cost_model: CostModel | None = None

    def compile(self) -> Pipeline:
        """Build the physical plan (a pipeline of rank join operators)."""
        if len(self.inputs) < 2:
            raise InstanceError("a ranking query needs at least two relations")
        relations = [q.scaled() for q in self.inputs]
        return Pipeline(
            relations,
            self.rekey_attrs,
            operator=self.operator,
            cost_model=self.cost_model,
        )

    def execute(self) -> list[JoinResult]:
        """Compile and run, returning the top-K results."""
        return self.compile().top_k(self.k)

    def explain(self) -> str:
        """Human-readable plan description."""
        names = [q.relation.name for q in self.inputs]
        lines = [f"RankQuery(K={self.k}, operator={self.operator})"]
        plan = names[0]
        for index, name in enumerate(names[1:], start=1):
            plan = f"({plan} ⋈ {name})"
            lines.append(f"  stage {index}: {plan}")
        return "\n".join(lines)
