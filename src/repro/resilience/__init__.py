"""Fault injection and recovery for the service/exec stack.

The paper's robustness is algorithmic (instance-optimal pull depths);
this subsystem adds *infrastructure* robustness on top, exploiting the
same property that makes operators suspendable — the resumable
``try_next`` protocol — to make them **recoverable**:

* :mod:`repro.resilience.faults` — a seeded, deterministic fault
  injector (:class:`FaultPlan` / :class:`FaultSpec`: worker-kill at pull
  N, pipe drop, delayed reply, transient :class:`~repro.errors.
  ShardError`) hooked into the execution backends and the server loop
  behind a no-op default;
* :mod:`repro.resilience.retry` — exponential backoff with seeded
  jitter (:class:`RetryPolicy`);
* :mod:`repro.resilience.supervisor` — :class:`ResilientBackend`:
  transparent retry, process-worker respawn with state replay, and
  graceful backend degradation (process → thread → serial), reported
  through ``repro.obs`` counters and the ``degraded`` flag;
* :mod:`repro.resilience.chaos` — the chaos harness behind
  ``python -m repro chaos``: seed workloads under seeded fault schedules
  must stay bit-identical to the fault-free run.

Enable recovery on any sharded run via
:class:`~repro.exec.ExecConfig`::

    from repro.exec import ExecConfig, ShardedRankJoin
    from repro.resilience import FaultPlan, ResilienceConfig

    config = ExecConfig(
        shards=4, backend="process",
        resilience=ResilienceConfig(plan=FaultPlan.single("worker-kill")),
    )
    with ShardedRankJoin(instance, "FRPA", config=config) as engine:
        engine.top_k(10)          # same answer, one respawn along the way
"""

from repro.resilience.chaos import (
    CHAOS_KINDS,
    SEED_WORKLOADS,
    ChaosCase,
    chaos_plan,
    chaos_run,
    emission_view,
    reference_run,
    render_report,
    reshard_chaos_run,
    run_chaos_suite,
    seed_instance,
    stream_chaos_run,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    LOST_KINDS,
    NO_FAULTS,
    TRANSIENT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectingWorker,
    RequestChaos,
)
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.resilience.supervisor import (
    ADVANCE_RECOVERY_CAP,
    ResilienceConfig,
    ResilientBackend,
)

__all__ = [
    "ADVANCE_RECOVERY_CAP",
    "CHAOS_KINDS",
    "ChaosCase",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectingWorker",
    "LOST_KINDS",
    "NO_FAULTS",
    "RequestChaos",
    "ResilienceConfig",
    "ResilientBackend",
    "RetryPolicy",
    "SEED_WORKLOADS",
    "TRANSIENT_KINDS",
    "call_with_retry",
    "chaos_plan",
    "chaos_run",
    "emission_view",
    "reference_run",
    "render_report",
    "reshard_chaos_run",
    "run_chaos_suite",
    "stream_chaos_run",
    "seed_instance",
]
