"""The resilient execution backend: retry, respawn, replay, degrade.

:class:`ResilientBackend` wraps any raw :class:`~repro.exec.backends.
ExecBackend` and makes shard faults invisible to the engine above it —
every ``advance`` round returns exactly the outcomes a fault-free run
would have produced, in the same order, bit for bit:

* **Transient faults** (:class:`~repro.errors.ShardError`) — the advance
  is re-issued to the intact worker under exponential backoff with
  seeded jitter (:class:`~repro.resilience.retry.RetryPolicy`).
* **Lost workers** (:class:`~repro.errors.WorkerLost`) — the shard is
  *respawned with state replay*: a pristine worker is rebuilt over the
  shard's partition (``ShardWorker.clone_fresh``), fast-forwarded by
  replaying the recorded sequence of successful advance quanta through
  the resumable ``try_next`` protocol (deterministic operators make the
  replayed state bit-identical to the state that died, including the
  frontier the merger last saw), reinstalled via
  ``ExecBackend.replace_worker``, and the failed advance re-issued.
  Replayed emissions are discarded — the merger already holds them.
* **Repeated respawn failure** — after ``max_respawns`` respawns of one
  shard, the whole backend *degrades* one tier along
  :data:`~repro.exec.backends.DEGRADE_ORDER` (process → thread →
  serial): every shard is rebuilt by replay on the lower tier and the
  in-flight round resumes there.  ``serial`` is the floor — in-process
  replay recovery always completes.

Correctness argument, in one paragraph: the merge gate only ever consumes
``AdvanceOutcome`` values, and the supervisor guarantees the stream of
outcomes per shard is exactly the fault-free stream.  A fault fires
before its worker advances, so the failed advance contributed nothing;
replaying the recorded quanta reproduces the pre-fault operator state
(same pulls → same emissions → same frontier, by operator determinism);
re-issuing the failed quantum then yields the outcome the fault-free run
would have produced.  Emission order is fixed by the engine's
deterministic round/request order, which the supervisor preserves.

Observability: ``resilience_retries_total{kind}``,
``worker_respawns_total``, ``resilience_degrades_total`` counters, plus
the :attr:`ResilientBackend.degraded` flag surfaced through engine
snapshots and serve responses.  With tracing armed (workers carrying a
:class:`~repro.exec.telemetry.WorkerTelemetry`), every retry and respawn
also emits a ``retry``/``respawn`` span under the shard's trace context,
and telemetry from replayed quanta merges in under a ``replay="1"``
label — the whole recovery story is reconstructable per request.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import ShardError, WorkerLost
from repro.exec.backends import DEGRADE_ORDER, ExecBackend, make_backend
from repro.exec.telemetry import CapsuleSink
from repro.exec.worker import AdvanceOutcome, ShardWorker
from repro.obs import NULL_OBS, Observability, span_record
from repro.resilience.faults import (
    LOST_KINDS,
    NO_FAULTS,
    TRANSIENT_KINDS,
    FaultPlan,
    InjectingWorker,
)
from repro.resilience.retry import RetryPolicy

#: Hard cap on recovery actions for a single advance — a backstop against
#: pathological schedules; finite fault plans never reach it.
ADVANCE_RECOVERY_CAP = 32


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for :class:`ResilientBackend` (pure data, picklable).

    ``plan`` defaults to the empty :data:`~repro.resilience.faults.
    NO_FAULTS` — recovery machinery armed, nothing injected.  ``seed``
    drives backoff jitter (and nothing else): results are identical for
    any seed, only retry timing varies.
    """

    plan: FaultPlan = NO_FAULTS
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_respawns: int = 3
    degrade: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_respawns < 0:
            raise ValueError("ResilienceConfig.max_respawns must be >= 0")


class ResilientBackend(ExecBackend):
    """Fault-tolerant wrapper around a raw execution backend."""

    def __init__(
        self,
        inner: ExecBackend,
        *,
        config: ResilienceConfig | None = None,
        obs: Observability | None = None,
        sleep=time.sleep,
    ) -> None:
        self._inner = inner
        self._cfg = config or ResilienceConfig()
        self._rng = random.Random(self._cfg.seed)
        self._sleep = sleep
        self._tier = inner.name
        self.degraded = False
        self._recipes: dict[int, ShardWorker] = {}
        #: Shard → successful advance quanta, in order (the replay log).
        self._log: dict[int, list[int]] = {}
        #: Shard → remaining fault schedule (supervisor's authoritative copy).
        self._schedules: dict[int, list] = {}
        self._respawn_count: dict[int, int] = {}
        #: Requests begun but not yet collected in the current round.
        self._round: dict[int, int] = {}

        self._obs = obs if obs is not None else NULL_OBS
        #: Receiver for telemetry capsules produced by *replayed* quanta —
        #: the engine never sees those outcomes, so the supervisor merges
        #: them itself, labelled ``replay="1"``.
        self._sink = CapsuleSink(self._obs, "resilient")
        metrics = self._obs.metrics
        self._m_retries = {
            "transient": metrics.counter("resilience_retries_total", kind="transient"),
            "worker-lost": metrics.counter(
                "resilience_retries_total", kind="worker-lost"
            ),
        }
        self._m_respawns = metrics.counter("worker_respawns_total")
        self._m_degrades = metrics.counter("resilience_degrades_total")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:  # type: ignore[override]
        return f"resilient[{self._tier}]"

    @property
    def tier(self) -> str:
        """The currently-active raw backend tier."""
        return self._tier

    @property
    def respawns(self) -> dict[int, int]:
        return dict(self._respawn_count)

    # ------------------------------------------------------------------
    # ExecBackend interface
    # ------------------------------------------------------------------
    def start(self, workers: list[ShardWorker]) -> None:
        self._recipes = {worker.shard: worker.clone_fresh() for worker in workers}
        self._log = {worker.shard: [] for worker in workers}
        self._respawn_count = {worker.shard: 0 for worker in workers}
        self._schedules = {
            worker.shard: list(self._cfg.plan.for_shard(worker.shard))
            for worker in workers
        }
        self._install(self._inner, workers)

    def advance(self, requests: list[tuple[int, int]]) -> list[AdvanceOutcome]:
        self._round = dict(requests)
        self._inner.begin(requests)
        outcomes = []
        for shard, quantum in requests:
            outcomes.append(self._collect_recovering(shard, quantum))
            self._round.pop(shard, None)
        return outcomes

    def close(self) -> None:
        self._inner.close()

    # ------------------------------------------------------------------
    # Recovery core
    # ------------------------------------------------------------------
    def _collect_recovering(self, shard: int, quantum: int) -> AdvanceOutcome:
        transient_attempts = 0
        recoveries = 0
        while True:
            try:
                outcome = self._inner.collect(shard, quantum)
            except WorkerLost:
                recoveries += 1
                if recoveries > ADVANCE_RECOVERY_CAP:
                    raise
                self._m_retries["worker-lost"].inc()
                self._m_respawns.inc()
                self._trace_recovery(shard, "respawn", quantum=quantum)
                if self._inner.ships_faults:
                    self._consume_observed(shard, LOST_KINDS)
                self._respawn_count[shard] += 1
                if (
                    self._cfg.degrade
                    and self._respawn_count[shard] > self._cfg.max_respawns
                    and self._degrade()
                ):
                    continue  # degraded tier re-began the whole round
                self._respawn_shard(shard)
                self._inner.begin([(shard, quantum)])
                continue
            except ShardError:
                transient_attempts += 1
                if transient_attempts >= self._cfg.retry.max_attempts:
                    raise
                self._m_retries["transient"].inc()
                self._trace_recovery(
                    shard, "retry", quantum=quantum, attempt=transient_attempts
                )
                if self._inner.ships_faults:
                    self._consume_observed(shard, TRANSIENT_KINDS)
                self._sleep(self._cfg.retry.delay(transient_attempts, self._rng))
                self._inner.begin([(shard, quantum)])
                continue
            self._log[shard].append(quantum)
            return outcome

    def _rebuild(self, shard: int) -> ShardWorker:
        """A fresh worker fast-forwarded to the shard's recorded depth.

        Re-feeds the shard's partition (``clone_fresh``) and replays the
        recorded pull history through the resumable advance protocol.
        Replayed emissions are dropped — the merge layer absorbed the
        originals from the successful outcomes being replayed.
        """
        worker = self._recipes[shard].clone_fresh()
        for quantum in self._log[shard]:
            outcome = worker.advance(quantum)
            # Replayed quanta still produce telemetry (the fresh worker
            # re-earns its counters); the engine never sees these
            # outcomes, so absorb them here under a ``replay`` label —
            # primary series stay exact, recovery cost stays visible.
            self._sink.absorb(outcome.telemetry, replayed=True)
        return worker

    def _respawn_shard(self, shard: int) -> None:
        worker = self._rebuild(shard)
        if self._inner.ships_faults:
            self._inner.replace_worker(
                shard, worker, tuple(self._schedules[shard])
            )
        else:
            self._inner.replace_worker(
                shard,
                InjectingWorker(worker, self._schedules[shard], sleep=self._sleep),
            )

    def _degrade(self) -> bool:
        """Fall one tier (process → thread → serial); False at the floor."""
        try:
            index = DEGRADE_ORDER.index(self._tier)
        except ValueError:  # pragma: no cover - unknown custom tier
            index = len(DEGRADE_ORDER) - 1
        if index >= len(DEGRADE_ORDER) - 1:
            return False
        next_tier = DEGRADE_ORDER[index + 1]
        replacement = make_backend(next_tier)
        workers = [self._rebuild(shard) for shard in sorted(self._recipes)]
        self._install(replacement, workers)
        old = self._inner
        self._inner = replacement
        self._tier = next_tier
        old.close()
        self.degraded = True
        self._m_degrades.inc()
        self._obs.event(
            "resilience_degrade", from_tier=old.name, to_tier=next_tier
        )
        # Resume the in-flight round on the new tier: every uncollected
        # request (including the one that triggered degradation) is
        # re-begun here, so the collect loop just retries.
        pending = list(self._round.items())
        if pending:
            replacement.begin(pending)
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _install(self, backend: ExecBackend, workers: list[ShardWorker]) -> None:
        """Start ``backend`` over ``workers`` with fault injection wired."""
        if backend.ships_faults:
            backend.fault_specs = {
                worker.shard: tuple(self._schedules.get(worker.shard, ()))
                for worker in workers
            }
            backend.start(workers)
        else:
            backend.start([
                InjectingWorker(
                    worker,
                    self._schedules.setdefault(worker.shard, []),
                    sleep=self._sleep,
                )
                for worker in workers
            ])

    def _trace_recovery(self, shard: int, name: str, **fields) -> None:
        """Emit a recovery span under the shard's trace context.

        Recipes keep each shard's :class:`~repro.obs.TraceContext`
        through ``clone_fresh``, so retries and respawns land in the
        same trace tree as the quanta they recover — the acceptance
        criterion that recovery actions are attributable per request.
        """
        if not self._obs.enabled:
            return
        recipe = self._recipes.get(shard)
        ctx = getattr(recipe, "trace_ctx", None)
        if ctx is None:
            return
        self._obs.trace(
            span_record(ctx.child(), name, shard=shard, tier=self._tier, **fields)
        )

    def _consume_observed(self, shard: int, kinds: frozenset[str]) -> None:
        """Mirror a child-side fault pop in the supervisor's schedule.

        Children consume their shipped schedule in order; the parent only
        *observes* kill/pipe/transient firings.  Any skipped leading
        entries (delays that fired silently in the child) are dropped
        along with the first entry of the observed class.
        """
        schedule = self._schedules.get(shard, [])
        while schedule:
            fault = schedule.pop(0)
            if fault.kind in kinds:
                break
