"""The chaos harness: seeded fault schedules, bit-identity verification.

Runs the standard seed workloads through the sharded engine under a
randomized-but-seeded fault schedule and checks the *resilience
invariant*:

    final top-K, emission order, and scores are bit-identical to the
    fault-free run, and at least one injected fault actually fired.

The fault-free reference is the serial-backend sharded run with the same
shard count (shard count fixes the canonical emission order; backend and
faults must not).  Exposed through ``python -m repro chaos`` and the
pytest suite in ``tests/resilience/``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.data.workload import (
    WorkloadParams,
    anti_correlated_instance,
    lineitem_orders_instance,
    random_instance,
)
from repro.exec import ExecConfig, ShardedRankJoin, result_identity
from repro.obs import Observability
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import ResilienceConfig

#: The four seed workloads every correctness invariant runs over (the
#: same matrix as ``tests/exec/conftest.SEED_WORKLOADS``).
WORKLOAD_BUILDERS = {
    "tpch": lambda: lineitem_orders_instance(
        WorkloadParams(e=2, c=0.5, z=0.5, k=10, scale=0.0005, seed=0)
    ),
    "zipf": lambda: lineitem_orders_instance(
        WorkloadParams(e=2, c=0.5, z=0.5, k=10, scale=0.0005,
                       join_skew=0.9, seed=1)
    ),
    "uniform": lambda: random_instance(
        n_left=400, n_right=400, e_left=2, e_right=2,
        num_keys=40, k=12, seed=3,
    ),
    "anticorrelated": lambda: anti_correlated_instance(
        n_left=300, n_right=300, num_keys=30, k=10, seed=5,
    ),
}

SEED_WORKLOADS = tuple(sorted(WORKLOAD_BUILDERS))

#: Fault kinds the chaos suite schedules by default.  ``delay`` is
#: excluded from the default matrix: it cannot affect results, only
#: latency, and the suite optimizes for fault-path coverage per second.
CHAOS_KINDS = ("worker-kill", "pipe-drop", "transient")

#: Fast backoff for chaos runs — correctness is timing-independent.
CHAOS_RETRY = RetryPolicy(max_attempts=6, base_delay=0.001, max_delay=0.01)


@lru_cache(maxsize=None)
def seed_instance(name: str):
    """Build (and memoize) one of the named seed workload instances."""
    try:
        builder = WORKLOAD_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {SEED_WORKLOADS}"
        ) from None
    return builder()


def chaos_plan(kind: str, shards: int, seed: int) -> FaultPlan:
    """A seeded per-case schedule: one ``kind`` fault on every shard.

    Shard 0 fires at pull depth 0 (guaranteed: every live shard advances
    in round one), the rest at seeded shallow depths so most fire before
    small top-K runs drain.
    """
    rng = random.Random((seed, kind, shards).__hash__())
    specs = [FaultSpec(kind, 0, 0)]
    for shard in range(1, shards):
        specs.append(FaultSpec(kind, shard, rng.randrange(0, 48)))
    return FaultPlan(tuple(specs))


def reference_run(instance, shards: int, operator: str = "FRPA") -> list:
    """The fault-free serial-backend sharded run (the bit-identity oracle)."""
    config = ExecConfig(shards=shards, backend="serial")
    with ShardedRankJoin(instance, operator, config=config) as engine:
        return engine.top_k(instance.k)


def emission_view(results) -> list[tuple]:
    """Comparable projection preserving emission order: (score, identity)."""
    return [(r.score, result_identity(r)) for r in results]


@dataclass(frozen=True)
class ChaosCase:
    """Outcome of one chaos run: did faults fire, did results survive."""

    workload: str
    shards: int
    backend: str
    kind: str
    matched: bool
    fired: int
    respawns: int
    retries: int
    degraded: bool
    #: Completed live re-shard migrations (reshard cases require exactly 1).
    reshards: int = 0
    #: Request-level injected errors ridden through (stream cases).
    injected: int = 0

    @property
    def ok(self) -> bool:
        return self.matched and self.fired > 0


def chaos_run(
    workload: str,
    shards: int,
    backend: str,
    kind: str,
    *,
    seed: int = 0,
    operator: str = "FRPA",
    plan: FaultPlan | None = None,
) -> ChaosCase:
    """Run one workload under faults and verify bit-identity.

    ``plan`` overrides the default per-case seeded schedule.
    """
    instance = seed_instance(workload)
    reference = emission_view(reference_run(instance, shards, operator))
    plan = plan if plan is not None else chaos_plan(kind, shards, seed)
    obs = Observability()
    config = ExecConfig(
        shards=shards,
        backend=backend,
        resilience=ResilienceConfig(plan=plan, retry=CHAOS_RETRY, seed=seed),
    )
    with ShardedRankJoin(instance, operator, config=config, obs=obs) as engine:
        chaotic = emission_view(engine.top_k(instance.k))
        degraded = engine.degraded
    respawns = obs.metrics.value("worker_respawns_total") or 0
    retries = sum(
        obs.metrics.value("resilience_retries_total", kind=k) or 0
        for k in ("transient", "worker-lost")
    )
    return ChaosCase(
        workload=workload,
        shards=shards,
        backend=backend,
        kind=kind,
        matched=chaotic == reference,
        fired=respawns + retries,
        respawns=respawns,
        retries=retries,
        degraded=degraded,
    )


def reshard_chaos_run(
    workload: str,
    shards: int,
    backend: str,
    kind: str,
    *,
    seed: int = 0,
    operator: str = "FRPA",
) -> ChaosCase:
    """Fire a fault DURING a live re-shard migration; verify bit-identity.

    The engine is forced to migrate almost immediately (threshold 0, one
    pull / one emitted result), and the seeded fault plan is attached as
    the *migration* resilience config — shard 0's fault fires at pull
    depth 0 of the replacement engine, i.e. while it is replaying the
    emission history mid-migration.  The case passes only if the fault
    fired, exactly one migration completed, and the final top-K is
    bit-identical (scores, identities, emission order) to the fault-free
    serial run.
    """
    from repro.planner import AdaptiveConfig, AdaptiveShardedRankJoin

    instance = seed_instance(workload)
    reference = emission_view(reference_run(instance, shards, operator))
    plan = chaos_plan(kind, shards, seed)
    obs = Observability()
    config = ExecConfig(shards=shards, backend=backend)
    adaptive = AdaptiveConfig(
        threshold=0.0,
        min_pulls=1,
        min_emitted=1,
        target_partitioner="skew",
        migration_resilience=ResilienceConfig(
            plan=plan, retry=CHAOS_RETRY, seed=seed
        ),
    )
    with AdaptiveShardedRankJoin(
        instance, operator, config=config, adaptive=adaptive, obs=obs
    ) as engine:
        chaotic = emission_view(engine.top_k(instance.k))
        degraded = engine.degraded
        reshards = engine.reshards
    respawns = obs.metrics.value("worker_respawns_total") or 0
    retries = sum(
        obs.metrics.value("resilience_retries_total", kind=k) or 0
        for k in ("transient", "worker-lost")
    )
    return ChaosCase(
        workload=workload,
        shards=shards,
        backend=backend,
        kind=f"{kind}+reshard",
        matched=chaotic == reference and reshards == 1,
        fired=respawns + retries,
        respawns=respawns,
        retries=retries,
        degraded=degraded,
        reshards=reshards,
    )


def stream_chaos_run(
    workload: str,
    shards: int,
    backend: str,
    kind: str,
    *,
    seed: int = 0,
    operator: str = "FRPA",
    error_rate: float = 0.25,
) -> ChaosCase:
    """Stream a query off a chaotic server; verify the event sequence.

    Two fault layers run at once: the seeded exec-level plan
    (worker-kill / transients inside the sharded engine, with
    respawn-replay) *and* request-level chaos intercepting the
    ``submit``/``poll``/``stream`` verbs.  The client rides both through
    the **raw** stream reader — no client-side dedup or reordering — so
    the case passes only if the *server* itself never emitted a wrong,
    duplicated, or out-of-order event: every result event's index must
    equal the strict cursor and its score must match the fault-free
    serial reference at that index, across any number of mid-stream
    reattachments.  Already-streamed prefixes must survive respawn-replay
    untouched (indexes only ever append).
    """
    import threading

    from repro.resilience.faults import RequestChaos
    from repro.service import QueryService, RankJoinServer, ServiceClient
    from repro.service.client import ServiceError

    instance = seed_instance(workload)
    reference = [
        round(r.score, 6) for r in reference_run(instance, shards, operator)
    ]
    plan = chaos_plan(kind, shards, seed)
    obs = Observability()
    service = QueryService(quantum=16, obs=obs)
    chaos = RequestChaos(
        seed=seed,
        error_rate=error_rate,
        verbs=("submit", "poll", "stream"),
        sleep=lambda _delay: None,
    )
    server = RankJoinServer(
        service,
        {"left": instance.left, "right": instance.right},
        default_shards=shards,
        resilience=ResilienceConfig(plan=plan, retry=CHAOS_RETRY, seed=seed),
        chaos=chaos,
    )
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    server.ready.wait(10.0)

    matched = True
    degraded = False
    cursor = 0
    reattach = 0
    try:
        with ServiceClient(server.host, server.port) as client:
            response = client.request({
                "verb": "submit", "left": "left", "right": "right",
                "k": instance.k, "operator": operator, "backend": backend,
            }, max_retries=16)
            sid = response["session"]
            done = None
            while done is None:
                try:
                    for event in client.stream_raw(sid, from_index=cursor):
                        if event.get("event") == "result":
                            if (
                                event["index"] != cursor
                                or cursor >= len(reference)
                                or round(event["score"], 6) != reference[cursor]
                            ):
                                matched = False
                            cursor += 1
                        elif event.get("event") == "done":
                            done = event
                except ServiceError as error:
                    if not error.retryable or reattach >= 64:
                        matched = False
                        break
                    reattach += 1
            if done is not None:
                degraded = bool(done.get("degraded"))
                if done.get("scores") != reference or cursor != len(reference):
                    matched = False
            else:
                matched = False
    finally:
        try:
            with ServiceClient(server.host, server.port) as closer:
                closer.shutdown()
        except (OSError, ConnectionError, ServiceError):  # pragma: no cover
            pass
        thread.join(timeout=10.0)

    respawns = obs.metrics.value("worker_respawns_total") or 0
    retries = sum(
        obs.metrics.value("resilience_retries_total", kind=k) or 0
        for k in ("transient", "worker-lost")
    )
    return ChaosCase(
        workload=workload,
        shards=shards,
        backend=backend,
        kind=f"{kind}+stream",
        matched=matched,
        fired=respawns + retries + chaos.injected_errors,
        respawns=respawns,
        retries=retries,
        degraded=degraded,
        injected=chaos.injected_errors,
    )


def run_chaos_suite(
    *,
    seed: int = 0,
    workloads: tuple[str, ...] = SEED_WORKLOADS,
    shards: tuple[int, ...] = (2, 4),
    backends: tuple[str, ...] = ("thread", "process"),
    kinds: tuple[str, ...] = CHAOS_KINDS,
    operator: str = "FRPA",
    reshard: bool = False,
    stream: bool = False,
) -> list[ChaosCase]:
    """The full chaos matrix: workload × shards × backend × fault kind.

    ``reshard=True`` appends one extra case per matrix point with the
    fault firing during a live re-shard migration (see
    :func:`reshard_chaos_run`); ``stream=True`` appends one with the
    query consumed over the server's ``stream`` verb under request-level
    chaos (see :func:`stream_chaos_run`).
    """
    cases = []
    for workload in workloads:
        for n_shards in shards:
            for backend in backends:
                for kind in kinds:
                    cases.append(
                        chaos_run(
                            workload, n_shards, backend, kind,
                            seed=seed, operator=operator,
                        )
                    )
                    if reshard:
                        cases.append(
                            reshard_chaos_run(
                                workload, n_shards, backend, kind,
                                seed=seed, operator=operator,
                            )
                        )
                    if stream:
                        cases.append(
                            stream_chaos_run(
                                workload, n_shards, backend, kind,
                                seed=seed, operator=operator,
                            )
                        )
    return cases


def render_report(cases: list[ChaosCase]) -> str:
    """A fixed-width table of the suite results."""
    header = (
        f"{'workload':<16}{'shards':>6}  {'backend':<8}{'fault':<20}"
        f"{'match':<7}{'fired':>5}{'respawns':>9}{'retries':>8}  degraded"
    )
    lines = [header, "-" * len(header)]
    for case in cases:
        lines.append(
            f"{case.workload:<16}{case.shards:>6}  {case.backend:<8}"
            f"{case.kind:<20}{'yes' if case.matched else 'NO':<7}"
            f"{case.fired:>5}{case.respawns:>9}{case.retries:>8}  "
            f"{'yes' if case.degraded else 'no'}"
        )
    passed = sum(case.ok for case in cases)
    lines.append("-" * len(header))
    lines.append(f"{passed}/{len(cases)} cases bit-identical with faults fired")
    return "\n".join(lines)
