"""Retry with exponential backoff and seeded jitter.

The delay schedule is fully deterministic given the policy and the RNG
seed — chaos runs replay bit-identically.  Jitter decorrelates shard
retries in real deployments (thundering-herd avoidance) while staying
reproducible under a fixed seed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.errors import ShardError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base * multiplier**attempt``, capped, jittered.

    ``jitter`` is a fraction: each delay is scaled by a factor drawn
    uniformly from ``[1 - jitter, 1 + jitter]``.
    """

    max_attempts: int = 4
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("RetryPolicy.max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("RetryPolicy delays must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("RetryPolicy.jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.base_delay * self.multiplier ** (attempt - 1),
                  self.max_delay)
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw


def call_with_retry(
    fn,
    *,
    policy: RetryPolicy,
    rng: random.Random,
    retry_on: tuple[type[BaseException], ...] = (ShardError,),
    on_retry=None,
    sleep=time.sleep,
):
    """Call ``fn()`` retrying ``retry_on`` failures under ``policy``.

    ``on_retry(attempt, exc)`` is invoked before each backoff sleep (for
    counters/logging).  The final failure is re-raised unchanged.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            attempt += 1
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(attempt, rng))
