"""Deterministic, seeded fault injection for the exec and service stacks.

A :class:`FaultPlan` is a frozen schedule of :class:`FaultSpec` entries —
*which shard*, *at which cumulative pull depth*, *which failure*.  Plans
are pure data (picklable, hashable) so the process backend can ship a
shard's schedule into its child, and a seeded plan replays identically
run after run.  The default plan is empty: every injection hook is a
strict no-op unless a plan is supplied.

Fault kinds
-----------
``worker-kill``
    The shard's worker dies before advancing (process child ``_exit``;
    thread/serial workers raise :class:`~repro.errors.WorkerLost`).
    Recovery requires respawn + state replay.
``pipe-drop``
    The worker's reply channel drops mid-round (child closes its pipe and
    exits).  Indistinguishable from a kill at the parent; exercises the
    EOF path specifically.
``delay``
    The reply is delayed by :attr:`FaultSpec.delay` seconds.  Never
    changes results; exercises deadline/latency machinery.
``transient``
    The shard reports a retryable :class:`~repro.errors.ShardError`
    *without* touching operator state — a clean re-issue succeeds.

Every fault fires **before** the worker advances, so an injected failure
never leaves an operator half-advanced: replay from the recorded history
reconstructs the exact pre-fault state.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.errors import ShardError, WorkerLost
from repro.exec.backends import _due_fault
from repro.exec.worker import ShardWorker

#: Fault kinds a plan may schedule (see module docstring).
FAULT_KINDS = ("worker-kill", "pipe-drop", "delay", "transient")

#: Kinds whose firing destroys the worker (recovery = respawn + replay).
LOST_KINDS = frozenset({"worker-kill", "pipe-drop"})

#: Kinds that are retryable in place (worker state intact).
TRANSIENT_KINDS = frozenset({"transient"})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` on ``shard`` at pull depth ``at_pull``.

    ``at_pull`` matches against the worker's cumulative pull count: the
    fault fires on the first advance where ``worker.pulls >= at_pull``
    (so ``at_pull=0`` fires on the shard's very first advance), exactly
    once.
    """

    kind: str
    shard: int
    at_pull: int = 0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.at_pull < 0:
            raise ValueError("FaultSpec.at_pull must be >= 0")
        if self.delay < 0:
            raise ValueError("FaultSpec.delay must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults across shards.

    Build one explicitly from specs, or derive a randomized-but-seeded
    schedule with :meth:`random` — the chaos harness's generator.
    """

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def for_shard(self, shard: int) -> tuple[FaultSpec, ...]:
        """The shard's schedule, ordered by firing depth (stable)."""
        return tuple(
            sorted(
                (f for f in self.faults if f.shard == shard),
                key=lambda f: f.at_pull,
            )
        )

    @classmethod
    def single(cls, kind: str, shard: int = 0, at_pull: int = 0,
               delay: float = 0.0) -> "FaultPlan":
        return cls((FaultSpec(kind, shard, at_pull, delay),))

    @classmethod
    def random(
        cls,
        seed: int,
        shards: int,
        *,
        kinds: tuple[str, ...] = FAULT_KINDS,
        count: int | None = None,
        max_pull: int = 64,
        delay: float = 0.002,
    ) -> "FaultPlan":
        """A seeded random schedule — identical for identical arguments.

        Guarantees at least one fault fires: shard 0 always gets one
        fault at ``at_pull=0`` (every live shard is advanced in the first
        round, so depth 0 always triggers).
        """
        rng = random.Random(seed)
        count = count if count is not None else max(2, shards)
        specs = [FaultSpec(rng.choice(kinds), 0, 0, delay)]
        for _ in range(count - 1):
            specs.append(
                FaultSpec(
                    rng.choice(kinds),
                    rng.randrange(shards),
                    rng.randrange(max_pull),
                    delay,
                )
            )
        return cls(tuple(specs))


#: The no-op default: injection hooks given this plan do nothing.
NO_FAULTS = FaultPlan()


class InjectingWorker:
    """A :class:`ShardWorker` wrapper firing scheduled faults in-process.

    Used by the thread and serial backends (the process backend enforces
    schedules inside its children instead).  The wrapper shares its
    ``schedule`` list with the resilience supervisor, so faults it
    consumes are visibly consumed — a respawned replacement wrapper picks
    up exactly the remaining schedule.
    """

    def __init__(self, worker: ShardWorker, schedule: list[FaultSpec],
                 sleep=time.sleep) -> None:
        self.worker = worker
        self.schedule = schedule
        self._sleep = sleep

    @property
    def shard(self) -> int:
        return self.worker.shard

    @property
    def pulls(self) -> int:
        return self.worker.pulls

    @property
    def exhausted(self) -> bool:
        return self.worker.exhausted

    def advance(self, quantum: int):
        fault = _due_fault(self.schedule, self.worker.pulls)
        if fault is not None:
            if fault.kind in LOST_KINDS:
                raise WorkerLost(self.shard, f"injected {fault.kind}")
            if fault.kind == "transient":
                raise ShardError(
                    f"shard {self.shard}: injected transient fault",
                    shard=self.shard,
                )
            if fault.kind == "delay":
                self._sleep(fault.delay)
        return self.worker.advance(quantum)


class RequestChaos:
    """Seeded request-level chaos for the server loop.

    Installed on :class:`~repro.service.server.RankJoinServer` via its
    ``chaos`` parameter (default ``None`` — a strict no-op).  Each
    intercepted request may, with seeded probability, be answered with a
    retryable transient error or delayed briefly before normal handling.
    Responses carry ``"retryable": true`` so clients can distinguish
    injected turbulence from real errors.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        error_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay: float = 0.002,
        verbs: tuple[str, ...] = ("submit", "poll"),
        sleep=time.sleep,
    ) -> None:
        if not 0.0 <= error_rate <= 1.0 or not 0.0 <= delay_rate <= 1.0:
            raise ValueError("error_rate and delay_rate must be in [0, 1]")
        self._rng = random.Random(seed)
        self.error_rate = error_rate
        self.delay_rate = delay_rate
        self.delay = delay
        self.verbs = tuple(verbs)
        self._sleep = sleep
        self.injected_errors = 0
        self.injected_delays = 0

    def intercept(self, request: dict) -> dict | None:
        """An injected error response, or None to handle the request normally."""
        if request.get("verb") not in self.verbs:
            return None
        draw = self._rng.random()
        if draw < self.error_rate:
            self.injected_errors += 1
            return {
                "ok": False,
                "error": "injected transient fault; safe to retry",
                "retryable": True,
            }
        if draw < self.error_rate + self.delay_rate:
            self.injected_delays += 1
            self._sleep(self.delay)
        return None
