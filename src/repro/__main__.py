"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``   regenerate one or all of the paper's evaluation figures
``run``       run one operator on a synthetic workload and report metrics
``compare``   run every operator on one workload and tabulate the results
``trace``     run one operator with full observability and print the
              span/metric/bound-evolution summary
``serve``     start the concurrent top-K query service (JSON-lines TCP
              protocol; see ``repro.service``)
``metrics``   scrape a running server's metric registry and print it in
              Prometheus text exposition format
``top``       live terminal dashboard over a running server (SLO
              percentiles, shard pull rates, in-flight sessions)
``chaos``     run the seed workloads under seeded fault schedules and
              verify bit-identity with the fault-free run
``info``      print the library inventory (operators, figures, defaults)

``run`` and ``compare`` accept ``--workload params.json`` to load the
workload knobs from a JSON file instead of flags.  ``run``, ``compare``,
``figures`` and ``trace`` accept ``--obs-out events.jsonl`` to append a
machine-readable JSONL event stream (spans, metrics, per-run records) for
offline analysis.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import kernels
from repro.core.operators import ALGORITHMS, ANYK_OPERATOR, OPERATORS
from repro.data.workload import WorkloadParams, lineitem_orders_instance, load_workload
from repro.errors import ReproError
from repro.experiments import figures as figure_module
from repro.experiments.figures import FigureConfig
from repro.experiments.harness import run_comparison, run_operator
from repro.experiments.report import ExperimentTable
from repro.obs import JsonlExporter, Observability
from repro.stats.trace import BoundTrace

FIGURES = {
    "2": figure_module.figure_02,
    "10": figure_module.figure_10,
    "11": figure_module.figure_11,
    "12": figure_module.figure_12,
    "13": figure_module.figure_13,
    "14": figure_module.figure_14,
    "15": figure_module.figure_15,
    "skew": figure_module.skew_sweep,
    "ablation-cover": figure_module.ablation_cover,
    "ablation-pulling": figure_module.ablation_pulling,
}


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--e", type=int, default=2, help="score attributes per input")
    parser.add_argument("--c", type=float, default=0.5, help="score cut")
    parser.add_argument("--z", type=float, default=0.5, help="score skew")
    parser.add_argument("--k", type=int, default=10, help="results requested")
    parser.add_argument("--scale", type=float, default=0.002, help="data scale factor")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workload", metavar="PATH",
        help="JSON file of WorkloadParams fields; overrides the flags above",
    )


def _add_kernel_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel", choices=kernels.BACKEND_CHOICES, default=None,
        help="point-set kernel: 'auto' dispatches per call by batch size; "
             "python/numpy/numba pin one backend "
             "(default: REPRO_KERNEL env or auto)",
    )


def _workload(args: argparse.Namespace) -> WorkloadParams:
    """Workload knobs from --workload file (wins) or individual flags.

    Raises :class:`~repro.errors.WorkloadError` on a missing or malformed
    file; command handlers turn that into a clean one-line error.
    """
    if getattr(args, "workload", None):
        return load_workload(args.workload)
    return WorkloadParams(
        e=args.e, c=args.c, z=args.z, k=args.k, scale=args.scale, seed=args.seed
    )


def _fail(exc: ReproError) -> int:
    """Print a one-line error to stderr (no traceback) and exit nonzero."""
    print(f"error: {exc}", file=sys.stderr)
    return 2


def _algorithm(args: argparse.Namespace) -> str | None:
    """The validated ``--algorithm`` value, or None (error printed).

    Same contract as :class:`~repro.errors.WorkloadError` handling: one
    line on stderr, exit code 2 at the caller.
    """
    algorithm = getattr(args, "algorithm", "pbrj")
    if algorithm not in ALGORITHMS + ("auto",):
        print(
            f"error: unknown algorithm {algorithm!r}; "
            f"choose from {list(ALGORITHMS) + ['auto']}",
            file=sys.stderr,
        )
        return None
    return algorithm


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs-out", metavar="PATH",
        help="append a JSONL observability event stream to PATH",
    )


def _build_obs(args: argparse.Namespace, command: str) -> Observability | None:
    """An Observability pipeline when ``--obs-out`` was given, else None."""
    if not getattr(args, "obs_out", None):
        return None
    obs = Observability(exporters=[JsonlExporter(args.obs_out)])
    obs.meta(command=command, argv={
        k: v for k, v in vars(args).items() if k != "func" and v is not None
    })
    return obs


def _finish_obs(obs: Observability | None, args: argparse.Namespace) -> None:
    if obs is None:
        return
    obs.close()
    if getattr(args, "obs_out", None):
        print(f"observability events appended to {args.obs_out}")


def cmd_figures(args: argparse.Namespace) -> int:
    requested = args.name or ["all"]
    names = list(FIGURES) if "all" in requested else list(requested)
    # Validate every requested name before doing any work: rejecting
    # mid-loop would leave earlier figures already run and printed.
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        for name in unknown:
            print(f"unknown figure {name!r}; choose from {sorted(FIGURES)}")
        return 2
    config = FigureConfig(
        scale=args.scale, num_seeds=args.seeds, algorithm=args.algorithm
    )
    if config.algorithm == "anyk" and "all" in requested:
        # Only the operator-comparison figures have an any-k leg; the
        # PBRJ-internal ones (strategy/cover ablations) stay pbrj-only.
        names = [n for n in names if n in figure_module.ANYK_FIGURES]
    obs = _build_obs(args, "figures")
    for name in names:
        table: ExperimentTable = FIGURES[name](config)
        if obs is not None:
            obs.event("figure", figure=name, table=table.to_dict())
        print()
        print(table.render())
        if args.chart:
            numeric = [
                h for h in table.headers[1:]
                if any(isinstance(v, (int, float)) for v in table.column(h))
            ]
            if numeric:
                print()
                print(table.chart(table.headers[0], numeric[0]))
        if args.out:
            out_dir = Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            stem = name.replace("-", "_")
            table.save(out_dir / f"figure_{stem}.{args.format}")
    _finish_obs(obs, args)
    return 0


def _run_sharded(args: argparse.Namespace, instance, obs, operator=None) -> int:
    """``run --shards N``: drive the sharded engine and report."""
    import time

    from repro.exec import ExecConfig, ShardedRankJoin

    operator = operator if operator is not None else args.operator
    config = ExecConfig(
        shards=args.shards, backend=args.exec_backend,
        kernel=getattr(args, "kernel", None),
    )
    started = time.perf_counter()
    with ShardedRankJoin(instance, operator, config=config, obs=obs) as engine:
        results = engine.top_k(instance.k)
        elapsed = time.perf_counter() - started
        depths = engine.depths()
        print(f"operator     : {operator} "
              f"(sharded x{config.shards}, backend={config.backend}, "
              f"kernel={kernels.kernel_name()})")
        print(f"instance     : L={len(instance.left)} O={len(instance.right)} "
              f"K={instance.k}")
        print(f"top scores   : {[round(r.score, 4) for r in results]}")
        print(f"depths       : left={depths.left} right={depths.right} "
              f"sum={depths.left + depths.right}")
        print(f"rounds       : {engine.rounds} "
              f"(imbalance {engine.partition_stats.imbalance:.2f})")
        print(f"time         : total={elapsed:.4f}s")
    _finish_obs(obs, args)
    return 0


def _run_planned(args: argparse.Namespace, instance, obs,
                 algorithm: str, shards: int | str) -> int:
    """``run --plan auto``: let the planner choose, print its cost table."""
    import time

    from repro.service.query import QuerySpec

    spec = QuerySpec(
        relations=(instance.left, instance.right),
        k=instance.k,
        scoring=instance.scoring,
        operator=args.operator if args.operator in OPERATORS else "FRPA",
        algorithm=algorithm,
        shards=shards,
        exec_backend=args.exec_backend,
    )
    resolved = spec.resolve(obs=obs)
    print(resolved.decision.table())
    print()
    started = time.perf_counter()
    operator = resolved.build_operator(obs=obs)
    try:
        results = operator.top_k(instance.k)
        elapsed = time.perf_counter() - started
        reshards = getattr(operator, "reshards", 0)
        print(f"plan         : {resolved.plan_summary()} "
              f"(kernel={kernels.kernel_name()})")
        print(f"instance     : L={len(instance.left)} O={len(instance.right)} "
              f"K={instance.k}")
        print(f"top scores   : {[round(r.score, 4) for r in results]}")
        print(f"pulls        : {operator.pulls}"
              + (f" (re-sharded x{reshards})" if reshards else ""))
        print(f"time         : total={elapsed:.4f}s "
              f"(planning {resolved.decision.planning_seconds:.4f}s)")
    finally:
        close = getattr(operator, "close", None)
        if callable(close):
            close()
    _finish_obs(obs, args)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    algorithm = _algorithm(args)
    if algorithm is None:
        return 2
    try:
        params = _workload(args)
    except ReproError as exc:
        return _fail(exc)
    shards: int | str = args.shards
    if getattr(args, "workload", None):
        # The workload file owns the whole execution shape when given.
        algorithm = params.algorithm
        shards = params.shards
        args.exec_backend = params.exec_backend
    if args.plan == "auto":
        algorithm = "auto"
        shards = "auto"
    operator = ANYK_OPERATOR if algorithm == "anyk" else args.operator
    if algorithm == "pbrj" and args.operator not in OPERATORS:
        print(f"unknown operator {args.operator!r}; choose from {sorted(OPERATORS)}")
        return 2
    instance = lineitem_orders_instance(params)
    obs = _build_obs(args, "run")
    if algorithm == "auto" or shards == "auto":
        try:
            return _run_planned(args, instance, obs, algorithm, shards)
        except ReproError as exc:
            return _fail(exc)
    if shards > 1:
        args.shards = shards
        return _run_sharded(args, instance, obs, operator)
    result = run_operator(operator, instance, obs=obs)
    stats = result.stats
    print(f"operator     : {operator} (kernel={kernels.kernel_name()})")
    print(f"instance     : L={len(instance.left)} O={len(instance.right)} K={instance.k}")
    print(f"top scores   : {[round(s, 4) for s in result.scores]}")
    print(f"depths       : left={stats.depths.left} right={stats.depths.right} "
          f"sum={stats.sum_depths}")
    print(f"time         : io={stats.timing.io:.4f}s bound={stats.timing.bound:.4f}s "
          f"total={stats.timing.total:.4f}s")
    print(f"sim. I/O cost: {stats.io_cost:,.0f}")
    _finish_obs(obs, args)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    try:
        params = _workload(args)
    except ReproError as exc:
        return _fail(exc)
    instance = lineitem_orders_instance(params)
    obs = _build_obs(args, "compare")
    results = run_comparison(instance, sorted(OPERATORS), obs=obs)
    table = ExperimentTable(
        title=f"Operator comparison (e={params.e}, c={params.c}, "
              f"z={params.z}, K={params.k})",
        headers=["operator", "left", "right", "sumDepths", "total_time"],
    )
    for name, result in results.items():
        table.add_row(
            name,
            result.stats.depths.left,
            result.stats.depths.right,
            result.sum_depths,
            result.stats.timing.total,
        )
    print(table.render())
    _finish_obs(obs, args)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one operator fully instrumented and print what it did."""
    if args.operator not in OPERATORS:
        print(f"unknown operator {args.operator!r}; choose from {sorted(OPERATORS)}")
        return 2
    try:
        params = _workload(args)
    except ReproError as exc:
        return _fail(exc)
    instance = lineitem_orders_instance(params)
    exporters = [JsonlExporter(args.obs_out)] if args.obs_out else []
    obs = Observability(exporters=exporters)
    obs.meta(command="trace", operator=args.operator)
    trace = BoundTrace(obs=obs if args.pulls else None)
    result = run_operator(
        args.operator, instance,
        obs=obs, operator_kwargs={"trace": trace},
    )
    print(f"operator : {args.operator} (kernel={kernels.kernel_name()})")
    print(f"instance : L={len(instance.left)} O={len(instance.right)} "
          f"K={instance.k}")
    print()
    print("bound evolution")
    print(trace.summary())
    print()
    print(obs.summary())
    stats = result.stats
    print()
    print(f"sumDepths={stats.sum_depths} results={stats.results} "
          f"capped={result.capped}")
    _finish_obs(obs, args)
    return 0


def _serve_cache(args: argparse.Namespace, obs):
    """A shared-dir-backed ResultCache for single-server serve, or None.

    None lets :class:`QueryService` build its plain in-memory cache from
    ``cache_capacity``/``cache_ttl`` as before.
    """
    if args.shared_cache_dir is None or args.cache_capacity < 1:
        return None
    from repro.service import ResultCache

    return ResultCache(
        capacity=args.cache_capacity, ttl=args.cache_ttl,
        shared_dir=args.shared_cache_dir, obs=obs,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Start the concurrent query service over shared synthetic relations."""
    from repro.data.tpch import generate_tpch
    from repro.service import QueryService, RankJoinServer

    algorithm = _algorithm(args)
    if algorithm is None:
        return 2
    try:
        params = _workload(args)
    except ReproError as exc:
        return _fail(exc)
    if getattr(args, "workload", None):
        algorithm = params.algorithm
    default_shards: int | str = args.shards
    if args.plan == "auto":
        algorithm = "auto"
        default_shards = "auto"
    obs = _build_obs(args, "serve") or Observability()
    quotas = None
    if args.tenant_rate > 0:
        from repro.service import TenantQuotas

        quotas = TenantQuotas(rate=args.tenant_rate, burst=args.tenant_burst)
    tables = generate_tpch(params.tpch_config(), seed=params.seed)
    relations = {
        "lineitem": tables["lineitem"].to_relation("orderkey"),
        "orders": tables["orders"].to_relation("orderkey"),
    }
    chaos = None
    if args.chaos_error_rate > 0 or args.chaos_delay_rate > 0:
        from repro.resilience import RequestChaos

        chaos = RequestChaos(
            seed=args.chaos_seed,
            error_rate=args.chaos_error_rate,
            delay_rate=args.chaos_delay_rate,
        )
    if args.workers > 1:
        from repro.service import ServeFleet

        if chaos is not None:
            print("note: request chaos applies to single-server mode only; "
                  "ignoring --chaos-* with --workers > 1", file=sys.stderr)
        try:
            server = ServeFleet(
                relations,
                workers=args.workers,
                host=args.host,
                port=args.port,
                quotas=quotas,
                shared_cache_dir=args.shared_cache_dir,
                service_kwargs={
                    "policy": args.policy,
                    "max_live": args.max_sessions,
                    "quantum": args.quantum,
                    "cache_capacity": args.cache_capacity,
                    "cache_ttl": args.cache_ttl,
                    "default_max_pulls": args.max_pulls,
                },
                server_kwargs={
                    "default_shards": default_shards,
                    "default_algorithm": algorithm,
                },
                obs=obs,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            service = QueryService(
                policy=args.policy,
                max_live=args.max_sessions,
                quantum=args.quantum,
                cache=_serve_cache(args, obs),
                cache_capacity=args.cache_capacity,
                cache_ttl=args.cache_ttl,
                default_max_pulls=args.max_pulls,
                quotas=quotas,
                obs=obs,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        server = RankJoinServer(
            service, relations, host=args.host, port=args.port,
            default_shards=default_shards, default_algorithm=algorithm,
            chaos=chaos,
        )
    sizes = ", ".join(f"{name}={len(rel)}" for name, rel in relations.items())
    print(f"relations loaded: {sizes}", flush=True)

    # Announce the bound address as soon as the socket listens (the port
    # may be ephemeral); clients and the CI smoke job key off this line.
    import threading

    def announce() -> None:
        server.ready.wait()
        print(f"serving on {server.host}:{server.port}", flush=True)

    threading.Thread(target=announce, daemon=True).start()
    try:
        server.run()
    except KeyboardInterrupt:
        pass
    print("server stopped", flush=True)
    _finish_obs(obs if getattr(args, "obs_out", None) else None, args)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Scrape a running server's metrics endpoint (Prometheus text)."""
    from repro.service import ServiceClient

    try:
        with ServiceClient(args.host, args.port, timeout=5.0) as client:
            text = client.metrics()
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    print(text, end="" if text.endswith("\n") else "\n")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a running server's stats endpoint."""
    from repro.service import run_top

    return run_top(
        args.host, args.port,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
    )


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos suite: seeded faults, bit-identity verification."""
    from repro.resilience import (
        CHAOS_KINDS,
        SEED_WORKLOADS,
        render_report,
        run_chaos_suite,
    )

    unknown = [w for w in args.workloads if w not in SEED_WORKLOADS]
    if unknown:
        print(f"unknown workloads {unknown}; choose from {sorted(SEED_WORKLOADS)}")
        return 2
    unknown = [k for k in args.kinds if k not in CHAOS_KINDS]
    if unknown:
        print(f"unknown fault kinds {unknown}; choose from {sorted(CHAOS_KINDS)}")
        return 2
    cases = run_chaos_suite(
        seed=args.seed,
        workloads=tuple(args.workloads),
        shards=tuple(args.shards),
        backends=tuple(args.backends),
        kinds=tuple(args.kinds),
        operator=args.operator,
        reshard=args.reshard,
        stream=args.stream,
    )
    print(render_report(cases))
    return 0 if all(case.ok for case in cases) else 1


def cmd_info(args: argparse.Namespace) -> int:
    from repro import __version__

    print(f"repro {__version__} — SIGMOD 2009 rank join reproduction")
    print(f"operators : {', '.join(sorted(OPERATORS))}")
    print(f"figures   : {', '.join(sorted(FIGURES))}")
    print(f"kernels   : {', '.join(kernels.available_backends())} "
          f"(active: {kernels.kernel_name()})")
    if kernels.kernel_name() == "auto":
        print("dispatch  : op -> [(min batch size, backend)], scanned high→low")
        for op, entries in sorted(kernels.dispatch_routes().items()):
            table = ", ".join(f"{size}:{name}" for size, name in entries)
            print(f"  {op:<22} {table}")
    print("defaults  : e=2 c=.5 z=.5 K=10 (the paper's Table 2)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate evaluation figures")
    p_fig.add_argument("name", nargs="*", default=["all"],
                       help="figure ids (2, 10-15, skew, ablation-*) or 'all'")
    p_fig.add_argument("--scale", type=float, default=0.002)
    p_fig.add_argument("--seeds", type=int, default=1)
    p_fig.add_argument("--out", help="directory to save tables into")
    p_fig.add_argument("--format", choices=["txt", "csv", "json"], default="txt")
    p_fig.add_argument("--chart", action="store_true",
                       help="also print an ASCII chart of the first series")
    p_fig.add_argument("--algorithm", default="pbrj",
                       choices=["pbrj", "anyk"],
                       help="evaluation core for the operator-comparison "
                            "figures (anyk swaps in the any-k leg)")
    _add_obs_args(p_fig)
    p_fig.set_defaults(func=cmd_figures)

    p_run = sub.add_parser("run", help="run one operator on a workload")
    p_run.add_argument("operator", nargs="?", default="FRPA",
                       help="PBRJ operator name (ignored with --algorithm anyk)")
    p_run.add_argument("--algorithm", default="pbrj",
                       help="evaluation core: pbrj (default) or anyk")
    _add_workload_args(p_run)
    _add_obs_args(p_run)
    _add_kernel_arg(p_run)
    p_run.add_argument("--shards", type=int, default=1,
                       help="hash-partitioned parallel execution (1 = serial)")
    p_run.add_argument("--exec-backend", default="thread",
                       choices=["serial", "thread", "process"],
                       help="sharded execution backend (with --shards > 1)")
    p_run.add_argument("--plan", choices=["static", "auto"], default="static",
                       help="'auto' delegates algorithm/operator/shards/"
                            "backend to the cost-based planner and prints "
                            "its candidate table")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="run every operator on a workload")
    _add_workload_args(p_cmp)
    _add_obs_args(p_cmp)
    _add_kernel_arg(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_trace = sub.add_parser(
        "trace", help="run one operator with spans, metrics, and bound trace"
    )
    p_trace.add_argument("operator")
    _add_workload_args(p_trace)
    _add_obs_args(p_trace)
    _add_kernel_arg(p_trace)
    p_trace.add_argument(
        "--pulls", action="store_true",
        help="also stream one bound_trace event per pull to --obs-out",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_serve = sub.add_parser(
        "serve", help="start the concurrent top-K query service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 picks an ephemeral port)")
    p_serve.add_argument("--policy", default="round-robin",
                         choices=["round-robin", "deadline", "bound-gap"],
                         help="scheduling policy")
    p_serve.add_argument("--max-sessions", type=int, default=16,
                         help="admission-control bound on live sessions")
    p_serve.add_argument("--quantum", type=int, default=64,
                         help="pulls per scheduling step")
    p_serve.add_argument("--max-pulls", type=int, default=None,
                         help="default per-session pull budget")
    p_serve.add_argument("--cache-capacity", type=int, default=128,
                         help="result cache entries (0 disables caching)")
    p_serve.add_argument("--cache-ttl", type=float, default=None,
                         help="result cache TTL in seconds")
    p_serve.add_argument("--algorithm", default="pbrj",
                         help="default evaluation core for submitted "
                              "queries: pbrj (default) or anyk")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="sharded execution for every binary query "
                              "(1 = serial; requests may override)")
    p_serve.add_argument("--plan", choices=["static", "auto"],
                         default="static",
                         help="'auto' makes the planner choose algorithm "
                              "and shards for every query that does not "
                              "pin them")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="server worker processes (1 = single server; "
                              "N>1 boots a fleet behind one front-end)")
    p_serve.add_argument("--tenant-rate", type=float, default=0.0,
                         help="per-tenant admitted submits per second "
                              "(0 disables quotas)")
    p_serve.add_argument("--tenant-burst", type=float, default=20.0,
                         help="per-tenant admission burst capacity")
    p_serve.add_argument("--shared-cache-dir", default=None,
                         help="cross-process result-cache directory "
                              "(fleet default: a private temp dir)")
    p_serve.add_argument("--chaos-seed", type=int, default=0,
                         help="request-chaos RNG seed")
    p_serve.add_argument("--chaos-error-rate", type=float, default=0.0,
                         help="inject retryable errors on this fraction "
                              "of submit/poll requests")
    p_serve.add_argument("--chaos-delay-rate", type=float, default=0.0,
                         help="delay this fraction of submit/poll requests")
    _add_workload_args(p_serve)
    _add_obs_args(p_serve)
    _add_kernel_arg(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_metrics = sub.add_parser(
        "metrics", help="scrape a running server's Prometheus-format metrics"
    )
    p_metrics.add_argument("--host", default="127.0.0.1")
    p_metrics.add_argument("--port", type=int, required=True,
                           help="port of the running repro serve instance")
    p_metrics.set_defaults(func=cmd_metrics)

    p_top = sub.add_parser(
        "top", help="live terminal dashboard over a running server"
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, required=True,
                       help="port of the running repro serve instance")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between polls")
    p_top.add_argument("--iterations", type=int, default=None,
                       help="stop after N redraws (default: run until ^C)")
    p_top.add_argument("--no-clear", action="store_true",
                       help="append screens instead of clearing (logs, CI)")
    p_top.set_defaults(func=cmd_top)

    p_chaos = sub.add_parser(
        "chaos",
        help="run seed workloads under seeded faults; verify bit-identity",
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="fault-schedule seed")
    p_chaos.add_argument("--workloads", nargs="+",
                         default=["tpch", "zipf", "uniform", "anticorrelated"],
                         help="seed workloads to run")
    p_chaos.add_argument("--shards", nargs="+", type=int, default=[2, 4],
                         help="shard counts in the matrix")
    p_chaos.add_argument("--backends", nargs="+",
                         default=["thread", "process"],
                         choices=["serial", "thread", "process"],
                         help="execution backends to chaos-test")
    p_chaos.add_argument("--kinds", nargs="+",
                         default=["worker-kill", "pipe-drop", "transient"],
                         help="fault kinds to schedule")
    p_chaos.add_argument("--operator", default="FRPA",
                         help="operator every shard runs")
    p_chaos.add_argument("--reshard", action="store_true",
                         help="also fire each fault DURING a live re-shard "
                              "migration (planner adaptivity path)")
    p_chaos.add_argument("--stream", action="store_true",
                         help="also consume each case over the server's "
                              "stream verb under request-level chaos "
                              "(event-sequence bit-identity)")
    p_chaos.set_defaults(func=cmd_chaos)

    p_info = sub.add_parser("info", help="library inventory")
    p_info.set_defaults(func=cmd_info)

    args = parser.parse_args(argv)
    if getattr(args, "kernel", None) is not None:
        kernels.set_backend(args.kernel)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
