"""Ranked-list aggregation (Fagin et al.) — the rank join's ancestry.

The paper grounds rank join evaluation in the seminal middleware work of
Fagin, Lotem and Naor ("Optimal aggregation algorithms for middleware",
PODS 2001): m sorted lists grade the *same* objects, and the goal is the
top-K objects under a monotone aggregate.  Rank join generalizes this to
joins; several rank-join ideas (thresholds, instance-optimality) originate
here.  This subpackage implements the two classic algorithms as a
self-contained substrate:

* :func:`threshold_algorithm` (TA) — sorted access plus random access,
  stopping at Fagin's threshold.
* :func:`no_random_access` (NRA) — sorted access only, maintaining
  lower/upper score bounds per object.
"""

from repro.aggregation.lists import GradedObject, RankedList
from repro.aggregation.ta import AggregationResult, no_random_access, threshold_algorithm

__all__ = [
    "AggregationResult",
    "GradedObject",
    "RankedList",
    "no_random_access",
    "threshold_algorithm",
]
