"""The TA and NRA aggregation algorithms (Fagin, Lotem & Naor).

Both return the top-K objects of m ranked lists under a monotone scoring
function over the grade vector ``(g_1, …, g_m)``.

* **TA** interleaves sorted accesses round-robin across the lists; each
  newly seen object's missing grades are fetched by random access and its
  exact score computed.  The stopping threshold is
  ``S(last_grade_1, …, last_grade_m)`` — once K seen objects score at or
  above it, no unseen object can beat them.  TA is instance-optimal among
  algorithms that use random access.
* **NRA** uses sorted access only.  Each partially seen object keeps a
  lower bound (missing grades → 0) and an upper bound (missing grades →
  the list's current frontier); the algorithm stops when the K-th best
  lower bound is at least every other object's upper bound.  NRA is
  instance-optimal among algorithms without random access.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable

from repro.aggregation.lists import RankedList
from repro.core.scoring import ScoringFunction


@dataclass(frozen=True)
class AggregationResult:
    """Top-K answer plus the access counts the algorithms are judged by."""

    top: list[tuple[Hashable, float]]
    sorted_accesses: int
    random_accesses: int

    @property
    def total_accesses(self) -> int:
        """Fagin's middleware cost (unit costs for both access kinds)."""
        return self.sorted_accesses + self.random_accesses


def _validate(lists: list[RankedList], k: int) -> None:
    if not lists:
        raise ValueError("need at least one ranked list")
    if k < 1:
        raise ValueError("k must be positive")


def threshold_algorithm(
    lists: list[RankedList],
    scoring: ScoringFunction,
    k: int,
) -> AggregationResult:
    """Fagin's TA: sorted access round-robin + random access completion."""
    _validate(lists, k)
    m = len(lists)
    scores: dict[Hashable, float] = {}
    # Max-heap free: track the current top-k in a small sorted list.
    while True:
        progressed = False
        for index, ranked in enumerate(lists):
            entry = ranked.next()
            if entry is None:
                continue
            progressed = True
            if entry.obj not in scores:
                grades = [0.0] * m
                grades[index] = entry.grade
                for other_index, other in enumerate(lists):
                    if other_index != index:
                        grades[other_index] = other.grade_of(entry.obj)
                scores[entry.obj] = scoring(tuple(grades))
        threshold = scoring(tuple(ranked.last_grade for ranked in lists))
        best = heapq.nlargest(k, scores.items(), key=lambda item: item[1])
        if len(best) >= k and best[-1][1] >= threshold - 1e-12:
            break
        if not progressed:
            break  # all lists exhausted
    top = heapq.nlargest(k, scores.items(), key=lambda item: item[1])
    return AggregationResult(
        top=[(obj, score) for obj, score in top],
        sorted_accesses=sum(rl.sorted_accesses for rl in lists),
        random_accesses=sum(rl.random_accesses for rl in lists),
    )


@dataclass
class _Partial:
    """NRA bookkeeping for one partially seen object."""

    grades: list[float | None]

    def lower(self, scoring: ScoringFunction) -> float:
        return scoring(tuple(0.0 if g is None else g for g in self.grades))

    def upper(self, scoring: ScoringFunction, frontiers: list[float]) -> float:
        return scoring(
            tuple(
                frontiers[i] if g is None else g
                for i, g in enumerate(self.grades)
            )
        )

    @property
    def complete(self) -> bool:
        return all(g is not None for g in self.grades)


def no_random_access(
    lists: list[RankedList],
    scoring: ScoringFunction,
    k: int,
    *,
    check_every: int = 1,
) -> AggregationResult:
    """Fagin's NRA: sorted access only, lower/upper bound bookkeeping.

    ``check_every`` batches the (quadratic-ish) stopping test over several
    rounds, trading a few extra accesses for less bookkeeping — with the
    default 1 the algorithm is the textbook NRA.
    """
    _validate(lists, k)
    m = len(lists)
    partials: dict[Hashable, _Partial] = {}
    rounds = 0
    while True:
        progressed = False
        for index, ranked in enumerate(lists):
            entry = ranked.next()
            if entry is None:
                continue
            progressed = True
            partial = partials.get(entry.obj)
            if partial is None:
                partial = _Partial(grades=[None] * m)
                partials[entry.obj] = partial
            partial.grades[index] = entry.grade
        rounds += 1
        frontiers = [
            0.0 if ranked.exhausted else ranked.last_grade for ranked in lists
        ]
        if rounds % check_every == 0 or not progressed:
            lowers = {
                obj: p.lower(scoring) for obj, p in partials.items()
            }
            best = heapq.nlargest(k, lowers.items(), key=lambda item: item[1])
            if len(best) >= k:
                kth_lower = best[-1][1]
                top_ids = {obj for obj, __ in best}
                contender = max(
                    (
                        p.upper(scoring, frontiers)
                        for obj, p in partials.items()
                        if obj not in top_ids
                    ),
                    default=float("-inf"),
                )
                unseen_upper = scoring(tuple(frontiers))
                top_uppers_ok = all(
                    partials[obj].upper(scoring, frontiers) <= kth_lower + 1e-12
                    or partials[obj].complete
                    for obj, __ in best
                )
                if (
                    kth_lower >= contender - 1e-12
                    and kth_lower >= unseen_upper - 1e-12
                    and top_uppers_ok
                ):
                    break
        if not progressed:
            break
    lowers = {obj: p.lower(scoring) for obj, p in partials.items()}
    top = heapq.nlargest(k, lowers.items(), key=lambda item: item[1])
    return AggregationResult(
        top=[(obj, score) for obj, score in top],
        sorted_accesses=sum(rl.sorted_accesses for rl in lists),
        random_accesses=sum(rl.random_accesses for rl in lists),
    )
