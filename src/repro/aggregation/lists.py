"""Ranked lists: the access model of the middleware aggregation problem."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass(frozen=True)
class GradedObject:
    """One entry of a ranked list: an object id and its grade in [0, 1]."""

    obj: Hashable
    grade: float


class RankedList:
    """One attribute's ranked list with sorted and random access.

    Sorted access returns entries in non-increasing grade order and counts
    toward ``sorted_accesses``; random access looks a grade up by object id
    and counts toward ``random_accesses`` (the TA cost model charges both).
    """

    def __init__(self, entries: list[tuple[Hashable, float]], name: str = "") -> None:
        self.name = name
        ordered = sorted(entries, key=lambda e: e[1], reverse=True)
        self._entries = [GradedObject(obj, float(grade)) for obj, grade in ordered]
        self._grades: dict[Hashable, float] = {
            obj: float(grade) for obj, grade in entries
        }
        if len(self._grades) != len(entries):
            raise ValueError(f"ranked list {name!r} grades an object twice")
        self._position = 0
        self.sorted_accesses = 0
        self.random_accesses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._entries)

    @property
    def last_grade(self) -> float:
        """Grade of the last sorted-accessed entry (1.0 before any access)."""
        if self._position == 0:
            return 1.0
        return self._entries[self._position - 1].grade

    def next(self) -> GradedObject | None:
        """Sorted access: the next entry, or None when exhausted."""
        if self.exhausted:
            return None
        entry = self._entries[self._position]
        self._position += 1
        self.sorted_accesses += 1
        return entry

    def grade_of(self, obj: Hashable) -> float:
        """Random access: the object's grade (0.0 if absent, per Fagin)."""
        self.random_accesses += 1
        return self._grades.get(obj, 0.0)

    def peek_grade(self, obj: Hashable) -> float | None:
        """Uncharged lookup for tests/diagnostics."""
        return self._grades.get(obj)

    def reset(self) -> None:
        """Rewind and clear counters (each algorithm run gets fresh lists)."""
        self._position = 0
        self.sorted_accesses = 0
        self.random_accesses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankedList({self.name!r}, n={len(self)}, pos={self._position})"
