"""Metrics and timing instrumentation."""

from repro.stats.metrics import (
    DepthReport,
    MemoryHighWater,
    OperatorStats,
    TimingBreakdown,
    mean_depths,
    mean_timing,
)
from repro.stats.timing import ComponentTimer
from repro.stats.trace import BoundTrace, TraceEntry

__all__ = [
    "BoundTrace",
    "ComponentTimer",
    "TraceEntry",
    "DepthReport",
    "MemoryHighWater",
    "OperatorStats",
    "TimingBreakdown",
    "mean_depths",
    "mean_timing",
]
