"""Bound-evolution tracing: watch an operator's threshold converge.

A :class:`BoundTrace` attached to a PBRJ operator records, per pulled
tuple, the chosen input, the updated bound ``t`` and the buffered-output
state.  This makes the operators' dynamics inspectable — e.g. how quickly
the feasible-region bound drops relative to the corner bound — and powers
the ``examples/bound_evolution.py`` visualization.

A trace can be wired into an observability pipeline
(``BoundTrace(obs=...)``): every recorded pull is then also emitted as a
``bound_trace`` event on the JSONL stream, giving offline tools the full
per-pull evolution rather than the in-memory aggregate alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability


@dataclass(frozen=True)
class TraceEntry:
    """State right after one pull was processed."""

    pull: int
    side: int
    bound: float
    buffered: int
    emitted: int


@dataclass
class BoundTrace:
    """An append-only log of per-pull operator state."""

    entries: list[TraceEntry] = field(default_factory=list)
    obs: "Observability | None" = None
    operator: str = ""

    def record(
        self, pull: int, side: int, bound: float, buffered: int, emitted: int
    ) -> None:
        self.entries.append(TraceEntry(pull, side, bound, buffered, emitted))
        if self.obs is not None:
            self.obs.event(
                "bound_trace",
                op=self.operator,
                pull=pull,
                side=side,
                bound=bound if math.isfinite(bound) else None,
                buffered=buffered,
                emitted=emitted,
            )

    def __len__(self) -> int:
        return len(self.entries)

    def bounds(self) -> list[float]:
        """The bound value after each pull."""
        return [entry.bound for entry in self.entries]

    def pulls_per_side(self) -> tuple[int, int]:
        left = sum(1 for entry in self.entries if entry.side == 0)
        return (left, len(self.entries) - left)

    def bound_at_emission(self, n: int) -> float | None:
        """The bound when the n-th result (1-based) became emittable."""
        for entry in self.entries:
            if entry.emitted >= n:
                return entry.bound
        return None

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    _BLOCKS = "▁▂▃▄▅▆▇█"

    def sparkline(self, width: int = 60) -> str:
        """A unicode sparkline of the (finite) bound values over time."""
        finite = [b for b in self.bounds() if math.isfinite(b)]
        if not finite:
            return ""
        if len(finite) > width:
            # Endpoint-inclusive resampling: the last sample must be the
            # final bound value, or the sparkline's right edge misreports
            # the converged threshold.
            if width == 1:
                finite = [finite[-1]]
            else:
                last = len(finite) - 1
                finite = [
                    finite[round(i * last / (width - 1))] for i in range(width)
                ]
        low, high = min(finite), max(finite)
        span = (high - low) or 1.0
        chars = [
            self._BLOCKS[
                min(
                    int((value - low) / span * (len(self._BLOCKS) - 1)),
                    len(self._BLOCKS) - 1,
                )
            ]
            for value in finite
        ]
        return "".join(chars)

    def summary(self) -> str:
        """A few human-readable lines about the run."""
        if not self.entries:
            return "empty trace"
        left, right = self.pulls_per_side()
        finite = [b for b in self.bounds() if math.isfinite(b)]
        lines = [
            f"pulls: {len(self.entries)} (left {left} / right {right})",
        ]
        if finite:
            lines.append(
                f"bound: start {finite[0]:.4f} → end {finite[-1]:.4f}"
            )
            lines.append(self.sparkline())
        return "\n".join(lines)
