"""Lightweight wall-clock accounting for operator components.

:class:`ComponentTimer` predates the span-based profiler in
:mod:`repro.obs` and is kept as the flat-timer facade over it: each
``measure`` is a (possibly nested) span on an internal
:class:`~repro.obs.span.Tracer`, and the legacy queries aggregate by
component name across paths.
"""

from __future__ import annotations

from repro.obs.span import Tracer


class ComponentTimer:
    """Accumulates wall-clock time per named component.

    Used to reproduce Figure 2(b)'s breakdown: time in I/O, time in the
    bounding scheme, and everything else.  Timing can be disabled
    (``enabled=False``) to remove the measurement overhead from depth-only
    experiments.  A caller may supply a shared ``tracer`` to merge the
    components into an existing span tree.
    """

    def __init__(self, enabled: bool = True, tracer: Tracer | None = None) -> None:
        self._tracer = tracer if tracer is not None else Tracer(enabled=enabled)

    @property
    def enabled(self) -> bool:
        return self._tracer.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._tracer.enabled = value

    @property
    def tracer(self) -> Tracer:
        """The underlying span tracer (nested-path view of the totals)."""
        return self._tracer

    def measure(self, component: str):
        """Context manager accumulating elapsed time under ``component``.

        Exceptions propagate but the elapsed time is still recorded.
        """
        return self._tracer.span(component)

    def total(self, component: str) -> float:
        """Accumulated seconds for ``component`` (0.0 if never measured)."""
        return self._tracer.seconds(component)

    def totals(self) -> dict[str, float]:
        return self._tracer.totals_by_name()

    def reset(self) -> None:
        self._tracer.reset()
