"""Lightweight wall-clock accounting for operator components."""

from __future__ import annotations

import time
from contextlib import contextmanager


class ComponentTimer:
    """Accumulates wall-clock time per named component.

    Used by the PBRJ template to reproduce Figure 2(b)'s breakdown: time in
    I/O, time in the bounding scheme, and everything else.  Timing can be
    disabled (``enabled=False``) to remove the measurement overhead from
    depth-only experiments.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._totals: dict[str, float] = {}

    @contextmanager
    def measure(self, component: str):
        """Context manager accumulating elapsed time under ``component``."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[component] = self._totals.get(component, 0.0) + elapsed

    def total(self, component: str) -> float:
        """Accumulated seconds for ``component`` (0.0 if never measured)."""
        return self._totals.get(component, 0.0)

    def totals(self) -> dict[str, float]:
        return dict(self._totals)

    def reset(self) -> None:
        self._totals.clear()
