"""Evaluation metrics: depths, simulated I/O cost, and time breakdowns.

These mirror the paper's two metrics (Section 6.1): ``sumDepths`` — the
total number of tuples pulled from the inputs — and wall-clock execution
time with its breakdown into I/O, bound computation, and other work
(Figure 2(b)).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DepthReport:
    """Input depths after answering the K getNext calls."""

    left: int
    right: int

    @property
    def sum_depths(self) -> int:
        """The paper's ``sumDepths`` metric."""
        return self.left + self.right

    def __add__(self, other: "DepthReport") -> "DepthReport":
        return DepthReport(self.left + other.left, self.right + other.right)


@dataclass(frozen=True)
class TimingBreakdown:
    """Wall-clock seconds split into the paper's three components."""

    io: float
    bound: float
    total: float

    @property
    def other(self) -> float:
        """Time outside I/O and bound computation (join, buffers, control)."""
        return max(self.total - self.io - self.bound, 0.0)

    def __add__(self, other: "TimingBreakdown") -> "TimingBreakdown":
        return TimingBreakdown(
            self.io + other.io, self.bound + other.bound, self.total + other.total
        )

    def scaled(self, factor: float) -> "TimingBreakdown":
        return TimingBreakdown(self.io * factor, self.bound * factor, self.total * factor)


@dataclass(frozen=True)
class MemoryHighWater:
    """Peak buffer sizes over a run (tuple counts, not bytes).

    Rank join operators buffer every pulled tuple (the hash tables
    ``HR_i``) plus the not-yet-emitted results (the ordered buffer ``O``);
    the related work (Agrawal & Widom) targets precisely this footprint.
    """

    hash_left: int = 0
    hash_right: int = 0
    output: int = 0

    @property
    def total(self) -> int:
        return self.hash_left + self.hash_right + self.output


@dataclass(frozen=True)
class OperatorStats:
    """Everything measured about one operator run."""

    operator: str
    depths: DepthReport
    timing: TimingBreakdown
    io_cost: float
    bound_recomputations: int
    results: int
    memory: MemoryHighWater = MemoryHighWater()

    @property
    def sum_depths(self) -> int:
        return self.depths.sum_depths


def mean_depths(reports: list[DepthReport]) -> DepthReport:
    """Component-wise mean of several depth reports (rounded)."""
    if not reports:
        raise ValueError("no reports to average")
    n = len(reports)
    return DepthReport(
        round(sum(r.left for r in reports) / n),
        round(sum(r.right for r in reports) / n),
    )


def mean_timing(breakdowns: list[TimingBreakdown]) -> TimingBreakdown:
    """Component-wise mean of several timing breakdowns."""
    if not breakdowns:
        raise ValueError("no breakdowns to average")
    n = len(breakdowns)
    return TimingBreakdown(
        sum(b.io for b in breakdowns) / n,
        sum(b.bound for b in breakdowns) / n,
        sum(b.total for b in breakdowns) / n,
    )
