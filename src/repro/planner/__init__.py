"""Skew-adaptive cost-based planning for rank join evaluation.

The planner closes the loop the ROADMAP calls for: instead of hand-picking
algorithm / operator / shard count / partitioner / backend per query, a
:class:`Planner` derives statistics from the inputs
(:mod:`repro.planner.stats`), scores every candidate configuration with a
calibrated cost model (:mod:`repro.planner.cost`), and returns an
explainable :class:`PlanDecision`.  At runtime,
:class:`AdaptiveShardedRankJoin` (:mod:`repro.planner.adaptive`) watches
observed shard imbalance and live-migrates a running query to a
re-partitioned layout without changing a single emitted result.

Entry points: ``QuerySpec(algorithm="auto", shards="auto")``, the
``--plan auto`` CLI flag on ``run``/``serve``, and the ``shards`` /
``exec_backend`` workload-file keys.
"""

from repro.planner.adaptive import AdaptiveConfig, AdaptiveShardedRankJoin
from repro.planner.cost import (
    CandidateCost,
    CostCoefficients,
    PlanCandidate,
    coefficients,
    measure,
    set_coefficients,
)
from repro.planner.planner import (
    PlanDecision,
    Planner,
    PlannerConfig,
    clear_depth_cache,
)
from repro.planner.stats import (
    JoinProfile,
    RelationProfile,
    clear_stats_caches,
    collect_join_stats,
    collect_stats,
    fit_zipf_exponent,
    predicted_imbalance,
    shard_shares,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveShardedRankJoin",
    "CandidateCost",
    "CostCoefficients",
    "JoinProfile",
    "PlanCandidate",
    "PlanDecision",
    "Planner",
    "PlannerConfig",
    "RelationProfile",
    "clear_depth_cache",
    "clear_stats_caches",
    "coefficients",
    "collect_join_stats",
    "collect_stats",
    "fit_zipf_exponent",
    "measure",
    "predicted_imbalance",
    "set_coefficients",
    "shard_shares",
]
