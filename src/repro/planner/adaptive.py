"""Online adaptivity: live re-sharding of a running sharded rank join.

:class:`AdaptiveShardedRankJoin` wraps a :class:`ShardedRankJoin` behind
the same :class:`~repro.core.stepping.ResumableOperator` surface and
watches the *observed* per-shard pull counters (``shard_depths()`` — the
construction-time imbalance gauge only predicts; runtime skew is what
hurts).  When the hottest shard's pull share exceeds a configurable
threshold, the query is live-migrated to a re-partitioned layout:

1. build a fresh engine over the same instance with the skew-aware
   partitioner (and optionally a new shard count),
2. fast-forward it through the results already emitted — the replay
   primitive the resilience layer uses for respawned workers, applied to
   a whole engine, and
3. swap engines and continue from the exact emission point.

Correctness rests on the merge gate's emission-order invariance: the
global output sequence of a sharded rank join is independent of shard
count and partitioner (a result is released only when every live shard
frontier is below its score), so the replayed prefix is bit-identical to
the history by construction.  The wrapper still verifies the prefix
(content identity, not object identity) and aborts the migration — keeps
the old engine — on any mismatch, so adaptivity can never change answers.

A fault *during* migration is absorbed by the new engine's own
resilience config (``AdaptiveConfig.migration_resilience``): the replay
pulls run under the respawn-with-replay machinery like any other pulls,
which is exactly what the chaos suite's re-shard leg exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.tuples import JoinResult
from repro.exec.engine import ShardedRankJoin
from repro.exec.merge import result_identity
from repro.exec.worker import ExecConfig
from repro.obs import NULL_OBS, Observability, TraceContext
from repro.relation.relation import RankJoinInstance
from repro.stats.metrics import DepthReport


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs for the online re-sharding monitor.

    ``threshold`` is on the same scale as ``PartitionStats.imbalance``:
    the hottest shard's observed pull share over the fair share (1.0 is
    perfect balance).  The monitor only acts after ``min_pulls`` total
    pulls and ``min_emitted`` emitted results, so early noise cannot
    trigger a migration before the replay primitive has anything to
    anchor on.
    """

    threshold: float = 1.5
    min_pulls: int = 512
    min_emitted: int = 1
    max_reshards: int = 1
    target_partitioner: str = "skew"
    shards: int | None = None
    heavy_fraction: float | None = None
    migration_resilience: object | None = None


class AdaptiveShardedRankJoin:
    """A sharded rank join that re-partitions itself under observed skew."""

    def __init__(
        self,
        instance: RankJoinInstance,
        operator: str = "FRPA",
        *,
        config: ExecConfig | None = None,
        adaptive: AdaptiveConfig | None = None,
        obs: Observability | None = None,
        trace: TraceContext | None = None,
        **operator_kwargs,
    ) -> None:
        self.instance = instance
        self.operator_name = operator
        self.adaptive = adaptive or AdaptiveConfig()
        self._obs = obs if obs is not None else NULL_OBS
        self._trace = trace
        self._operator_kwargs = operator_kwargs
        self._engine = ShardedRankJoin(
            instance, operator, config=config, obs=obs, trace=trace,
            **operator_kwargs,
        )
        self._pulls_base = 0
        self._reshards = 0
        self._disabled = False
        self.plan_label: str | None = None

    # ------------------------------------------------------------------
    # Monitor
    # ------------------------------------------------------------------
    def observed_imbalance(self) -> float:
        """Hottest shard's pull share over the fair share, live."""
        per_shard = [
            left + right for left, right in self._engine.shard_depths().values()
        ]
        total = sum(per_shard)
        if not per_shard or total == 0:
            return 1.0
        return max(per_shard) * len(per_shard) / total

    def _target_config(self) -> ExecConfig:
        adaptive = self.adaptive
        return replace(
            self._engine.config,
            shards=adaptive.shards or self._engine.config.shards,
            partitioner=adaptive.target_partitioner,
            heavy_fraction=(
                adaptive.heavy_fraction
                if adaptive.heavy_fraction is not None
                else self._engine.config.heavy_fraction
            ),
            resilience=(
                adaptive.migration_resilience
                if adaptive.migration_resilience is not None
                else self._engine.config.resilience
            ),
        )

    def _maybe_reshard(self) -> None:
        if self._disabled or self._reshards >= self.adaptive.max_reshards:
            return
        engine = self._engine
        if engine.config.shards < 2:
            self._disabled = True
            return
        if (
            engine.pulls < self.adaptive.min_pulls
            or len(engine.emitted_results) < self.adaptive.min_emitted
        ):
            return
        if self.observed_imbalance() <= self.adaptive.threshold:
            return
        target = self._target_config()
        if (
            target.partitioner == engine.config.partitioner
            and target.shards == engine.config.shards
            and target.heavy_fraction == engine.config.heavy_fraction
        ):
            self._disabled = True  # nothing to change; stop checking
            return
        self._reshard(target)

    def _reshard(self, target: ExecConfig) -> None:
        """Migrate to ``target`` by replaying the emitted prefix."""
        old = self._engine
        fresh = ShardedRankJoin(
            self.instance, self.operator_name, config=target,
            obs=self._obs if self._obs.enabled else None, trace=self._trace,
            **self._operator_kwargs,
        )
        emitted = old.emitted_results
        replayed = fresh.top_k(len(emitted))
        same = len(replayed) == len(emitted) and all(
            a.score == b.score and result_identity(a) == result_identity(b)
            for a, b in zip(replayed, emitted)
        )
        if not same:  # pragma: no cover - safety net, unreachable by design
            fresh.close()
            self._disabled = True
            self._obs.metrics.counter(
                "planner_reshard_aborts_total", op=old.operator_name
            ).inc()
            return
        self._pulls_base += old.pulls
        self._engine = fresh
        self._reshards += 1
        old.close()
        self._obs.metrics.counter(
            "planner_reshards_total",
            op=self.operator_name,
            partitioner=target.partitioner,
        ).inc()

    # ------------------------------------------------------------------
    # ResumableOperator interface (delegates, monitor hooks first)
    # ------------------------------------------------------------------
    def get_next(self) -> JoinResult | None:
        self._maybe_reshard()
        return self._engine.get_next()

    def try_next(self, max_pulls: int | None = None):
        self._maybe_reshard()
        return self._engine.try_next(max_pulls)

    def top_k(self, k: int) -> list[JoinResult]:
        while len(self._engine.emitted_results) < k:
            if self.get_next() is None:
                break
        return self._engine.emitted_results[:k]

    def __iter__(self):
        while True:
            result = self.get_next()
            if result is None:
                return
            yield result

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"adaptive[{self._engine.name}]"

    @property
    def pulls(self) -> int:
        """Monotonic across migrations (includes replay pulls)."""
        return self._pulls_base + self._engine.pulls

    @property
    def reshards(self) -> int:
        return self._reshards

    @property
    def config(self) -> ExecConfig:
        return self._engine.config

    @property
    def emitted_results(self) -> list[JoinResult]:
        return self._engine.emitted_results

    @property
    def bound_value(self) -> float:
        return self._engine.bound_value

    def frontier(self) -> float:
        return self._engine.frontier()

    def depths(self) -> DepthReport:
        return self._engine.depths()

    def shard_depths(self) -> dict[int, tuple[int, int]]:
        return self._engine.shard_depths()

    @property
    def partition_stats(self):
        return self._engine.partition_stats

    @property
    def rounds(self) -> int:
        return self._engine.rounds

    @property
    def degraded(self) -> bool:
        return self._engine.degraded

    def snapshot(self) -> dict:
        snap = self._engine.snapshot()
        snap["operator"] = self.name
        snap["reshards"] = self._reshards
        snap["observed_imbalance"] = round(self.observed_imbalance(), 3)
        if self.plan_label:
            snap["plan"] = self.plan_label
        return snap

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._engine.close()

    def __enter__(self) -> "AdaptiveShardedRankJoin":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptiveShardedRankJoin({self.operator_name!r}, "
            f"shards={self._engine.config.shards}, reshards={self._reshards})"
        )
