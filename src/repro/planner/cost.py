"""Calibrated cost model for candidate rank-join plans.

The model predicts wall-clock seconds for one query under one candidate
configuration (algorithm, operator, shard count, partitioner, exec
backend, kernel backend) from:

* a depth estimate ``D`` (:mod:`repro.plan.estimate` — the corner-model
  prediction of total pulls a serial operator needs),
* the join's exact per-shard result shares under the candidate
  partitioning (:func:`repro.planner.stats.shard_shares`), and
* machine-specific :class:`CostCoefficients`.

The PBRJ formulas encode the two effects the benchmarks establish:

* **Cover shrink** — a shard holding share ``s`` of the join pairs pulls
  roughly ``D · s`` tuples *and* pays a per-pull cost that shrinks with
  shard size (smaller feasible-region covers, fewer bound candidates), so
  total work ``≈ D · Σ sᵢ^(1+γ)`` — for balanced shards an ``S^γ``
  algorithmic speedup even on one CPU (BENCH_sharded measures ~5× at 4
  shards), but under skew the hot shard's large share eats the win, which
  is exactly what steers the planner to the skew-aware partitioner.
* **Coordination overhead** — per-round dispatch and per-shard startup
  costs per backend (process startup ≈ a fork, so the process backend
  only pays off when real parallelism exists).

Coefficients resolve in priority order: explicitly installed via
:func:`set_coefficients` (or ``ReproConfig.planner_coeffs``) → a JSON
file named by ``REPRO_PLANNER_COEFFS`` → a one-shot micro-benchmark
(:func:`measure`, ~100 ms, cached for the process) → library defaults.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, fields, replace
from pathlib import Path

#: Environment variable naming a JSON file of coefficient overrides.
ENV_VAR = "REPRO_PLANNER_COEFFS"

#: Scheduling quantum assumed for round-count prediction (the engine
#: default; the planner does not enumerate quantum as an axis).
ASSUMED_QUANTUM = 32

#: (depth_factor, pull_factor) per PBRJ operator, relative to the
#: corner-model depth estimate and the HRJN* per-pull cost.  Tighter
#: bounds read shallower but cost more per pull.
OPERATOR_FACTORS: dict[str, tuple[float, float]] = {
    "HRJN": (1.05, 0.9),
    "HRJN*": (1.0, 1.0),
    "PBRJ_FR^RR": (0.95, 1.6),
    "FRPA": (0.75, 1.6),
    "FRPA_RR": (0.8, 1.5),
    "a-FRPA": (0.8, 1.4),
}
DEFAULT_OPERATOR_FACTORS = (1.0, 1.2)


@dataclass(frozen=True)
class CostCoefficients:
    """Machine-specific unit costs, in seconds (or dimensionless factors)."""

    pull_pbrj: float = 2.5e-5          # HRJN*-style cost per pull, serial
    pull_anyk: float = 1.0e-5          # any-k DP cost per input tuple
    anyk_pair: float = 2.0e-7          # any-k DP cost per joining pair
    anyk_result: float = 6.0e-5        # any-k cost per emitted result
    cover_exponent: float = 1.0        # γ in the D·Σ s^(1+γ) work model
    multiway_factor: float = 1.0       # extra per-pull cost per chain edge
    partition_per_tuple: float = 4.0e-6  # split/copy both inputs when shards > 1
    round_serial: float = 3.0e-6       # per shard-request dispatch, per round
    round_thread: float = 6.0e-5
    round_process: float = 3.0e-4
    startup_serial: float = 2.0e-5     # one-time per-shard setup
    startup_thread: float = 3.0e-4
    startup_process: float = 4.0e-2
    # Dispatch-aware kernel terms.  Since the "auto" kernel routes every
    # call to the winning tier by batch size, only *pinned* backends pay
    # a penalty: python on bulk inputs (no vectorization), vector tiers
    # (numpy/numba) on tiny inputs (per-call broadcast overhead).  Auto
    # rides the cheap side of both crossovers.
    kernel_pin_bulk_penalty: float = 1.5   # pinned python, bulk inputs
    kernel_pin_small_penalty: float = 1.05  # pinned numpy/numba, tiny inputs
    kernel_auto_bonus: float = 0.95        # small-batch early-exit win
    kernel_crossover: int = 2000       # input tuples where bulk effects win
    parallelism: int = 1               # usable cores for the process backend

    def round_overhead(self, backend: str) -> float:
        return {
            "serial": self.round_serial,
            "thread": self.round_thread,
            "process": self.round_process,
        }.get(backend, self.round_thread)

    def startup(self, backend: str) -> float:
        return {
            "serial": self.startup_serial,
            "thread": self.startup_thread,
            "process": self.startup_process,
        }.get(backend, self.startup_thread)

    def kernel_factor(self, kernel: str | None, total_tuples: int) -> float:
        """Relative per-pull cost of a kernel choice at this input scale.

        ``auto`` (and ``None``, which inherits it) models per-call
        dispatch: the lower envelope of the pinned factors on both sides
        of the crossover.
        """
        small = total_tuples <= self.kernel_crossover
        if kernel in (None, "auto"):
            return self.kernel_auto_bonus if small else 1.0
        if kernel == "python":
            return (
                self.kernel_auto_bonus if small else self.kernel_pin_bulk_penalty
            )
        return self.kernel_pin_small_penalty if small else 1.0

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "CostCoefficients":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown cost coefficient(s): {', '.join(unknown)}")
        return replace(cls(), **payload)


def measure(*, seed: int = 0) -> CostCoefficients:
    """Micro-benchmark the dominant unit costs on this machine.

    Times a serial HRJN*/FRPA run and an any-k run over one small synthetic
    instance (~600 tuples per side) — roughly 100 ms total.  Coordination
    and kernel coefficients keep their defaults: they only tilt choices
    between configurations whose compute costs are already close.
    """
    from repro.core.operators import make_operator
    from repro.data.workload import random_instance

    instance = random_instance(
        n_left=600, n_right=600, e_left=2, e_right=2,
        num_keys=60, k=20, seed=seed,
    )
    coeffs = CostCoefficients()

    def timed(name: str) -> tuple[float, object]:
        operator = make_operator(name, instance)
        started = time.perf_counter()
        operator.top_k(instance.k)
        return time.perf_counter() - started, operator

    hrjn_seconds, hrjn = timed("HRJN*")
    pull_pbrj = max(hrjn_seconds / max(hrjn.pulls, 1), 1e-8)
    anyk_seconds, _ = timed("AnyK")
    total = len(instance.left) + len(instance.right)
    pairs = instance.join_size() * coeffs.anyk_pair
    pull_anyk = max(
        (anyk_seconds - instance.k * coeffs.anyk_result - pairs) / total, 1e-8
    )
    return replace(
        coeffs,
        pull_pbrj=pull_pbrj,
        pull_anyk=pull_anyk,
        parallelism=max(1, os.cpu_count() or 1),
    )


_installed: CostCoefficients | None = None
_resolved: CostCoefficients | None = None


def set_coefficients(coeffs: CostCoefficients | None) -> None:
    """Install explicit coefficients (``None`` returns to auto-resolution)."""
    global _installed, _resolved
    _installed = coeffs
    _resolved = None


def coefficients() -> CostCoefficients:
    """The active coefficients (resolved once per process, then cached)."""
    global _resolved
    if _installed is not None:
        return _installed
    if _resolved is None:
        _resolved = _resolve()
    return _resolved


def _resolve() -> CostCoefficients:
    path = os.environ.get(ENV_VAR)
    if path:
        try:
            return CostCoefficients.from_dict(json.loads(Path(path).read_text()))
        except (OSError, ValueError, TypeError):
            pass  # unreadable override — fall through to calibration
    try:
        return measure()
    except Exception:
        return CostCoefficients()


@dataclass(frozen=True)
class PlanCandidate:
    """One point in the configuration space the planner enumerates."""

    algorithm: str
    operator: str
    shards: int
    partitioner: str
    backend: str
    kernel: str

    def label(self) -> str:
        if self.algorithm == "anyk" and self.shards == 1:
            return "anyk"
        parts = [f"{self.algorithm}/{self.operator}"]
        if self.shards > 1:
            parts.append(f"x{self.shards} {self.partitioner}/{self.backend}")
        if self.kernel != "auto":
            parts.append(f"kernel={self.kernel}")
        return " ".join(parts)


@dataclass(frozen=True)
class CandidateCost:
    """A candidate plus its predicted cost and the cost breakdown."""

    candidate: PlanCandidate
    cost: float
    detail: dict[str, float]


def _operator_factors(operator: str) -> tuple[float, float]:
    return OPERATOR_FACTORS.get(operator, DEFAULT_OPERATOR_FACTORS)


def score_pbrj_candidate(
    candidate: PlanCandidate,
    *,
    coeffs: CostCoefficients,
    depth: int,
    total_tuples: int,
    shares: tuple[float, ...],
) -> CandidateCost:
    """Predict wall-clock seconds for a (possibly sharded) PBRJ plan."""
    depth_factor, pull_factor = _operator_factors(candidate.operator)
    effective_depth = max(float(depth) * depth_factor, 1.0)
    pull_cost = (
        coeffs.pull_pbrj
        * pull_factor
        * coeffs.kernel_factor(candidate.kernel, total_tuples)
    )
    gamma = coeffs.cover_exponent
    live = [s for s in shares if s > 0] or [1.0]
    compute = effective_depth * pull_cost * sum(s ** (1.0 + gamma) for s in live)
    hottest = max(live)
    critical = effective_depth * hottest * pull_cost * hottest ** gamma
    workers = 1
    if candidate.backend == "process":
        workers = min(len(live), max(1, coeffs.parallelism))
    wall = max(compute / workers, critical)
    rounds = 0.0
    startup = 0.0
    partition = 0.0
    if candidate.shards > 1:
        rounds = effective_depth * hottest / ASSUMED_QUANTUM
        rounds_cost = rounds * len(live) * coeffs.round_overhead(candidate.backend)
        startup = len(live) * coeffs.startup(candidate.backend)
        # Splitting both inputs into per-shard sub-relations is a full
        # O(n) scan-and-copy — at small input sizes it dwarfs the cover
        # shrink, which is what keeps the planner serial on small joins.
        partition = total_tuples * coeffs.partition_per_tuple
    else:
        rounds_cost = 0.0
    cost = wall + rounds_cost + startup + partition
    return CandidateCost(
        candidate=candidate,
        cost=cost,
        detail={
            "depth": effective_depth,
            "imbalance": hottest * len(shares),
            "compute": wall,
            "rounds": rounds_cost,
            "startup": startup,
            "partition": partition,
        },
    )


def score_anyk_candidate(
    candidate: PlanCandidate,
    *,
    coeffs: CostCoefficients,
    total_tuples: int,
    k: int,
    shares: tuple[float, ...] = (1.0,),
    join_size: float = 0.0,
) -> CandidateCost:
    """Predict wall-clock seconds for an any-k plan.

    The DP is linear in the input plus the joining pairs its per-key
    match groups enumerate (dense joins tax the DP; the PBRJ threshold
    never materializes them).  Sharding buys nothing algorithmic; a
    sharded any-k plan (user-forced) just splits the linear pass and
    pays coordination.
    """
    live = [s for s in shares if s > 0] or [1.0]
    build = total_tuples * coeffs.pull_anyk + join_size * coeffs.anyk_pair
    enumerate_cost = k * coeffs.anyk_result * len(live)
    startup = 0.0
    partition = 0.0
    if candidate.shards > 1:
        startup = len(live) * coeffs.startup(candidate.backend)
        partition = total_tuples * coeffs.partition_per_tuple
    cost = build + enumerate_cost + startup + partition
    return CandidateCost(
        candidate=candidate,
        cost=cost,
        detail={
            "depth": float(total_tuples),
            "imbalance": max(live) * len(shares),
            "compute": build + enumerate_cost,
            "rounds": 0.0,
            "startup": startup,
            "partition": partition,
        },
    )


def score_multiway_pbrj(
    candidate: PlanCandidate,
    *,
    coeffs: CostCoefficients,
    depth: float,
    arity: int,
) -> CandidateCost:
    """Predict wall-clock seconds for the multiway (chain) PBRJ operator."""
    pull_cost = coeffs.pull_pbrj * (1.0 + coeffs.multiway_factor * (arity - 1))
    cost = max(depth, 1.0) * pull_cost
    return CandidateCost(
        candidate=candidate,
        cost=cost,
        detail={
            "depth": float(depth),
            "imbalance": 1.0,
            "compute": cost,
            "rounds": 0.0,
            "startup": 0.0,
        },
    )
