"""The planner facade: enumerate candidate plans, cost them, explain.

:class:`Planner` turns a query (relations + K + scoring, with any subset
of the execution axes pinned by the caller) into a :class:`PlanDecision`:
the chosen configuration plus the full per-candidate cost table, so every
decision is explainable after the fact (``decision.table()``).

Candidate enumeration is deterministic and the statistics behind it are
content-addressed and seeded, so the same inputs always produce the same
decision within a process — the property the ``algorithm="auto"`` query
cache and the bit-identity acceptance tests rely on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.operators import ALGORITHMS, ANYK_OPERATOR
from repro.core.scoring import ScoringFunction, SumScore
from repro.errors import InstanceError
from repro.plan.estimate import (
    DepthEstimate,
    estimate_binary_depths,
    estimate_chain_depths,
)
from repro.planner.cost import (
    CandidateCost,
    CostCoefficients,
    PlanCandidate,
    coefficients,
    score_anyk_candidate,
    score_multiway_pbrj,
    score_pbrj_candidate,
)
from repro.planner.stats import (
    JoinProfile,
    collect_join_stats,
    predicted_imbalance,
    shard_shares,
)
from repro.relation.relation import RankJoinInstance, Relation

_depth_cache: dict[tuple, DepthEstimate] = {}


@dataclass(frozen=True)
class PlannerConfig:
    """Enumeration bounds and estimator settings for a :class:`Planner`.

    The default backend list excludes ``process``: per-shard fork startup
    only pays off with real multi-core parallelism, and a user can always
    pin ``exec_backend="process"`` to force it into the candidate set.
    The default kernel list is ``("auto",)`` because size-aware per-call
    dispatch is the lower envelope of every pinned backend in the cost
    model (``CostCoefficients.kernel_factor``) — a pinned kernel can
    never beat it, so enumerating pins only makes sense when a user adds
    them here explicitly to compare.
    """

    shard_choices: tuple[int, ...] = (1, 2, 4, 8)
    backends: tuple[str, ...] = ("serial", "thread")
    operators: tuple[str, ...] = ("HRJN*", "FRPA")
    kernels: tuple[str, ...] = ("auto",)
    include_anyk: bool = True
    samples: int = 800
    seed: int = 0


@dataclass(frozen=True)
class PlanDecision:
    """A chosen plan plus everything needed to explain the choice."""

    chosen: CandidateCost
    candidates: tuple[CandidateCost, ...]
    join_size: float
    depth: int
    key_zipf: float
    hot_share: float
    planning_seconds: float = field(compare=False, default=0.0)

    @property
    def algorithm(self) -> str:
        return self.chosen.candidate.algorithm

    @property
    def operator(self) -> str:
        return self.chosen.candidate.operator

    @property
    def shards(self) -> int:
        return self.chosen.candidate.shards

    @property
    def partitioner(self) -> str:
        return self.chosen.candidate.partitioner

    @property
    def backend(self) -> str:
        return self.chosen.candidate.backend

    @property
    def kernel(self) -> str:
        return self.chosen.candidate.kernel

    def summary(self) -> str:
        return self.chosen.candidate.label()

    def table(self) -> str:
        """Fixed-width per-candidate cost table, cheapest first."""
        lines = [
            f"plan: {self.summary()}  "
            f"(join={self.join_size:.0f} depth~{self.depth} "
            f"key-zipf={self.key_zipf:.2f} hot={self.hot_share:.2f} "
            f"planned in {self.planning_seconds * 1e3:.1f}ms)",
            f"  {'candidate':<34} {'est cost':>10} {'depth':>8} "
            f"{'imbal':>6}  breakdown",
        ]
        for entry in self.candidates:
            mark = "*" if entry is self.chosen else " "
            detail = entry.detail
            lines.append(
                f" {mark}{entry.candidate.label():<34} "
                f"{entry.cost * 1e3:>8.2f}ms "
                f"{detail['depth']:>8.0f} "
                f"{detail['imbalance']:>6.2f}  "
                f"compute {detail['compute'] * 1e3:.2f}ms"
                f" + rounds {detail['rounds'] * 1e3:.2f}ms"
                f" + startup {detail['startup'] * 1e3:.2f}ms"
            )
        return "\n".join(lines)


def _scoring_key(scoring: ScoringFunction) -> str:
    state = getattr(scoring, "__dict__", {})
    inner = ",".join(f"{k}={state[k]!r}" for k in sorted(state))
    return f"{type(scoring).__name__}({inner})"


class Planner:
    """Cost-based plan selection over the planner statistics."""

    def __init__(
        self,
        *,
        coeffs: CostCoefficients | None = None,
        config: PlannerConfig | None = None,
        obs=None,
    ) -> None:
        self._coeffs = coeffs
        self.config = config or PlannerConfig()
        self.obs = obs

    @property
    def coeffs(self) -> CostCoefficients:
        return self._coeffs if self._coeffs is not None else coefficients()

    def plan(
        self,
        relations: list[Relation],
        k: int,
        scoring: ScoringFunction | None = None,
        *,
        algorithm: str = "auto",
        shards: int | str = "auto",
        operator: str | None = None,
        exec_backend: str | None = None,
        partitioner: str | None = None,
        kernel: str | None = None,
        join_attrs: tuple[str, ...] = (),
    ) -> PlanDecision:
        """Choose a plan; any non-``auto``/non-``None`` axis is pinned."""
        if algorithm != "auto" and algorithm not in ALGORITHMS:
            raise InstanceError(
                f"unknown algorithm {algorithm!r}; choose from "
                f"{ALGORITHMS + ('auto',)}"
            )
        if len(relations) < 2:
            raise InstanceError("planning needs at least two relations")
        scoring = scoring or SumScore()
        started = time.perf_counter()
        if len(relations) == 2:
            decision = self._plan_binary(
                relations, k, scoring,
                algorithm=algorithm, shards=shards, operator=operator,
                exec_backend=exec_backend, partitioner=partitioner,
                kernel=kernel,
            )
        else:
            decision = self._plan_multiway(
                relations, list(join_attrs), k, scoring, algorithm=algorithm
            )
        decision = PlanDecision(
            chosen=decision.chosen,
            candidates=decision.candidates,
            join_size=decision.join_size,
            depth=decision.depth,
            key_zipf=decision.key_zipf,
            hot_share=decision.hot_share,
            planning_seconds=time.perf_counter() - started,
        )
        if self.obs is not None:
            self.obs.metrics.counter(
                "planner_decisions_total",
                algorithm=decision.algorithm,
                shards=str(decision.shards),
            ).inc()
        return decision

    # -- binary ---------------------------------------------------------

    def _plan_binary(
        self,
        relations: list[Relation],
        k: int,
        scoring: ScoringFunction,
        *,
        algorithm: str,
        shards: int | str,
        operator: str | None,
        exec_backend: str | None,
        partitioner: str | None,
        kernel: str | None,
    ) -> PlanDecision:
        left, right = relations
        profile = collect_join_stats(left, right)
        depth = self._depth_estimate(left, right, k, scoring)
        total_tuples = profile.left.cardinality + profile.right.cardinality
        coeffs = self.coeffs
        config = self.config

        algorithms = (algorithm,) if algorithm != "auto" else (
            ("pbrj", "anyk") if config.include_anyk else ("pbrj",)
        )
        shard_options: tuple[int, ...]
        if shards == "auto":
            shard_options = config.shard_choices
        else:
            shard_options = (int(shards),)
        operators = (operator,) if operator else config.operators
        kernels = (kernel,) if kernel else config.kernels

        shares_cache: dict[tuple[int, str], tuple[float, ...]] = {}

        def shares_for(count: int, part: str) -> tuple[float, ...]:
            cached = shares_cache.get((count, part))
            if cached is None:
                cached = shard_shares(profile, count, part)
                shares_cache[(count, part)] = cached
            return cached

        candidates: list[CandidateCost] = []
        for algo in algorithms:
            for shard_count in shard_options:
                if shard_count == 1:
                    backend_options = ("serial",)
                    partitioner_options = ("hash",)
                else:
                    backend_options = (
                        (exec_backend,) if exec_backend else config.backends
                    )
                    partitioner_options = (
                        (partitioner,) if partitioner else ("hash", "skew")
                    )
                for part in partitioner_options:
                    shares = shares_for(shard_count, part)
                    for backend in backend_options:
                        if algo == "anyk":
                            # Sharding buys the DP nothing — only cost it
                            # when the user pinned shards > 1.
                            if shard_count > 1 and shards == "auto":
                                continue
                            candidate = PlanCandidate(
                                algorithm="anyk",
                                operator=ANYK_OPERATOR,
                                shards=shard_count,
                                partitioner=part,
                                backend=backend,
                                kernel="auto",
                            )
                            candidates.append(score_anyk_candidate(
                                candidate, coeffs=coeffs,
                                total_tuples=total_tuples, k=k, shares=shares,
                                join_size=float(profile.join_size),
                            ))
                            break  # kernel axis does not apply to any-k
                        for kern in kernels:
                            for op_name in operators:
                                candidates.append(score_pbrj_candidate(
                                    PlanCandidate(
                                        algorithm="pbrj",
                                        operator=op_name,
                                        shards=shard_count,
                                        partitioner=part,
                                        backend=backend,
                                        kernel=kern or "auto",
                                    ),
                                    coeffs=coeffs,
                                    depth=depth.sum_depths,
                                    total_tuples=total_tuples,
                                    shares=shares,
                                ))
        return self._decide(
            candidates,
            join_size=float(profile.join_size),
            depth=depth.sum_depths,
            key_zipf=profile.key_zipf,
            hot_share=profile.hot_pair_share,
        )

    # -- multiway -------------------------------------------------------

    def _plan_multiway(
        self,
        relations: list[Relation],
        join_attrs: list[str],
        k: int,
        scoring: ScoringFunction,
        *,
        algorithm: str,
    ) -> PlanDecision:
        coeffs = self.coeffs
        total_tuples = sum(len(rel) for rel in relations)
        if len(join_attrs) == len(relations) - 1:
            depth = estimate_chain_depths(
                relations, join_attrs, k, scoring,
                samples=self.config.samples, seed=self.config.seed,
            )
            join_size = depth.join_size
            sum_depths = depth.sum_depths
        else:
            # No chain attributes supplied: assume the pessimistic regime
            # (the multiway operator reads everything).
            join_size = float(total_tuples)
            sum_depths = total_tuples
        candidates: list[CandidateCost] = []
        if algorithm in ("auto", "pbrj"):
            candidates.append(score_multiway_pbrj(
                PlanCandidate(
                    algorithm="pbrj", operator="HRJN*", shards=1,
                    partitioner="hash", backend="serial", kernel="auto",
                ),
                coeffs=coeffs, depth=float(sum_depths), arity=len(relations),
            ))
        if algorithm in ("auto", "anyk") and self.config.include_anyk:
            candidates.append(score_anyk_candidate(
                PlanCandidate(
                    algorithm="anyk", operator=ANYK_OPERATOR, shards=1,
                    partitioner="hash", backend="serial", kernel="auto",
                ),
                coeffs=coeffs, total_tuples=total_tuples, k=k,
            ))
        return self._decide(
            candidates,
            join_size=float(join_size),
            depth=sum_depths,
            key_zipf=0.0,
            hot_share=0.0,
        )

    # -- shared ---------------------------------------------------------

    def _depth_estimate(
        self,
        left: Relation,
        right: Relation,
        k: int,
        scoring: ScoringFunction,
    ) -> DepthEstimate:
        key = (
            left.fingerprint(), right.fingerprint(), k,
            _scoring_key(scoring), self.config.samples, self.config.seed,
        )
        cached = _depth_cache.get(key)
        if cached is None:
            instance = RankJoinInstance(left, right, scoring, k)
            cached = estimate_binary_depths(
                instance, samples=self.config.samples, seed=self.config.seed
            )
            _depth_cache[key] = cached
        return cached

    @staticmethod
    def _decide(
        candidates: list[CandidateCost],
        *,
        join_size: float,
        depth: int,
        key_zipf: float,
        hot_share: float,
    ) -> PlanDecision:
        if not candidates:
            raise InstanceError("the pinned axes leave no candidate plans")
        ordered = sorted(
            candidates, key=lambda c: (c.cost, c.candidate.label())
        )
        return PlanDecision(
            chosen=ordered[0],
            candidates=tuple(ordered),
            join_size=join_size,
            depth=depth,
            key_zipf=key_zipf,
            hot_share=hot_share,
        )


def clear_depth_cache() -> None:
    """Drop the planner's depth-estimate cache (tests)."""
    _depth_cache.clear()
