"""Statistics collection for the cost-based planner.

Everything the cost model needs about an input is condensed into two
deterministic, cheaply-cached profiles:

* :class:`RelationProfile` — per-relation cardinality, distinct join-key
  count, heavy-hitter key frequencies, a fitted Zipf exponent for the key
  distribution, and a decile sketch of per-tuple scores.  Cached process-
  wide keyed by :meth:`Relation.fingerprint` (content-addressed, so two
  relations with equal tuples share one profile and re-planning a cached
  query costs a dict lookup).
* :class:`JoinProfile` — the binary-join view: exact join cardinality,
  per-key pair counts (``|L_k| · |R_k|``), the hottest key's result share
  and a Zipf fit over the *pair* distribution (join skew can be much worse
  than either input's skew — "Skew Strikes Back").

The join profile also answers the planner's partitioning question
directly: :func:`shard_shares` simulates any candidate partition plan over
the pair counts, giving the exact per-shard result shares (and thus the
imbalance) that a configuration would see — no sampling, no guessing.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Hashable

from repro.exec.partition import (
    HashPartitionPlan,
    skew_plan_from_pairs,
)
from repro.relation.relation import Relation

#: Heavy-hitter keys retained per profile (enough to seed a skew plan for
#: any shard count the planner enumerates).
MAX_HEAVY_HITTERS = 16

#: Leading frequency ranks used in the log-log Zipf-exponent fit.
ZIPF_FIT_RANKS = 64

_relation_cache: dict[str, "RelationProfile"] = {}
_join_cache: dict[tuple[str, str], "JoinProfile"] = {}


def fit_zipf_exponent(counts_desc: list[int]) -> float:
    """Least-squares slope of ``log freq`` vs ``log rank`` (negated).

    0.0 means uniform; larger is more skewed.  Fewer than two distinct
    ranks cannot constrain a slope and report 0.0.
    """
    ranks = [c for c in counts_desc[:ZIPF_FIT_RANKS] if c > 0]
    if len(ranks) < 2:
        return 0.0
    xs = [math.log(i + 1.0) for i in range(len(ranks))]
    ys = [math.log(c) for c in ranks]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0.0:
        return 0.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return max(0.0, -cov / var_x)


@dataclass(frozen=True)
class RelationProfile:
    """Planner-facing summary of one relation's content."""

    fingerprint: str
    cardinality: int
    dimension: int
    distinct_keys: int
    heavy_hitters: tuple[tuple[Hashable, int], ...]
    zipf_exponent: float
    score_deciles: tuple[float, ...]

    @property
    def max_key_share(self) -> float:
        """Fraction of tuples carried by the most frequent join key."""
        if not self.cardinality or not self.heavy_hitters:
            return 0.0
        return self.heavy_hitters[0][1] / self.cardinality


def collect_stats(relation: Relation) -> RelationProfile:
    """Profile a relation, cached by its content fingerprint."""
    fingerprint = relation.fingerprint()
    cached = _relation_cache.get(fingerprint)
    if cached is not None:
        return cached
    counts = Counter(t.key for t in relation.tuples)
    ordered = counts.most_common()
    sums = sorted(sum(t.scores) for t in relation.tuples)
    if sums:
        last = len(sums) - 1
        deciles = tuple(
            sums[min(last, round(q * last / 10))] for q in range(11)
        )
    else:
        deciles = ()
    profile = RelationProfile(
        fingerprint=fingerprint,
        cardinality=len(relation.tuples),
        dimension=relation.dimension,
        distinct_keys=len(counts),
        heavy_hitters=tuple(ordered[:MAX_HEAVY_HITTERS]),
        zipf_exponent=fit_zipf_exponent([c for _, c in ordered]),
        score_deciles=deciles,
    )
    _relation_cache[fingerprint] = profile
    return profile


@dataclass(frozen=True)
class JoinProfile:
    """Summary of one binary equi-join's key structure."""

    left: RelationProfile
    right: RelationProfile
    join_size: int
    pair_counts: dict[Hashable, int]
    key_zipf: float

    @property
    def hot_pair_share(self) -> float:
        """Result share of the hottest join key (1.0 = one key is the join)."""
        if not self.join_size:
            return 0.0
        return max(self.pair_counts.values()) / self.join_size


def collect_join_stats(left: Relation, right: Relation) -> JoinProfile:
    """Join-level statistics, cached by the pair of fingerprints."""
    key = (left.fingerprint(), right.fingerprint())
    cached = _join_cache.get(key)
    if cached is not None:
        return cached
    left_counts = Counter(t.key for t in left.tuples)
    right_counts = Counter(t.key for t in right.tuples)
    pairs = {
        k: n * right_counts[k] for k, n in left_counts.items() if k in right_counts
    }
    profile = JoinProfile(
        left=collect_stats(left),
        right=collect_stats(right),
        join_size=sum(pairs.values()),
        pair_counts=pairs,
        key_zipf=fit_zipf_exponent(sorted(pairs.values(), reverse=True)),
    )
    _join_cache[key] = profile
    return profile


def shard_shares(
    profile: JoinProfile,
    shards: int,
    partitioner: str,
    *,
    heavy_fraction: float | None = None,
) -> tuple[float, ...]:
    """Exact per-shard result-share a candidate partitioning would see.

    Simulates the same deterministic plan the engine would build (hash or
    skew-aware) over the profile's pair counts.  Returns ``shards``
    fractions summing to 1.0 (uniform shares for an empty join, so cost
    formulas stay finite).
    """
    if shards == 1:
        return (1.0,)
    if partitioner == "skew":
        plan = skew_plan_from_pairs(
            profile.pair_counts, shards, heavy_fraction=heavy_fraction
        )
    else:
        plan = HashPartitionPlan(shards)
    per_shard = [0] * shards
    for key, count in profile.pair_counts.items():
        per_shard[plan.shard_of(key)] += count
    total = sum(per_shard)
    if total == 0:
        return tuple(1.0 / shards for _ in range(shards))
    return tuple(count / total for count in per_shard)


def predicted_imbalance(shares: tuple[float, ...]) -> float:
    """Max share over fair share — same scale as ``PartitionStats.imbalance``."""
    if not shares:
        return 1.0
    return max(shares) * len(shares)


def clear_stats_caches() -> None:
    """Drop the process-wide profile caches (tests, memory pressure)."""
    _relation_cache.clear()
    _join_cache.clear()
