"""Geometric substrate: dominance relations, skylines, covers, grid trees.

These data structures implement the feasible-region machinery that the FR,
FR* and aFR bounding schemes are built on (Sections 4 and 5 of the paper).
"""

from repro.geometry.dominance import (
    dominates,
    strictly_dominates,
    strongly_dominates,
    substitute,
)
from repro.geometry.skyline import IncrementalSkyline, is_skyline, skyline
from repro.geometry.cover import CoverRegion, covers, update_cover
from repro.geometry.gridtree import GridTree

__all__ = [
    "dominates",
    "strictly_dominates",
    "strongly_dominates",
    "substitute",
    "skyline",
    "is_skyline",
    "IncrementalSkyline",
    "CoverRegion",
    "covers",
    "update_cover",
    "GridTree",
]
