"""Geometric substrate: dominance relations, skylines, covers, grid trees.

These data structures implement the feasible-region machinery that the FR,
FR* and aFR bounding schemes are built on (Sections 4 and 5 of the paper).
The batch forms of these operations (and the columnar storage behind
``CoverRegion``/``IncrementalSkyline``/``GridTree``) live in
:mod:`repro.kernels`.
"""

from repro.geometry.dominance import (
    Point,
    as_point,
    dominates,
    ones,
    strictly_dominates,
    strongly_dominates,
    substitute,
)
from repro.geometry.skyline import IncrementalSkyline, is_skyline, skyline
from repro.geometry.cover import CoverRegion, covers, update_cover
from repro.geometry.gridtree import GridTree

__all__ = [
    "Point",
    "as_point",
    "ones",
    "dominates",
    "strictly_dominates",
    "strongly_dominates",
    "substitute",
    "skyline",
    "is_skyline",
    "IncrementalSkyline",
    "CoverRegion",
    "covers",
    "update_cover",
    "GridTree",
]
