"""Grid tree: adaptive, size-bounded covers (Section 5.1.2 of the paper).

The grid tree maintains a cover for the unseen score vectors of one input
while guaranteeing an upper bound on the number of cover points.  It views
the unit hypercube as a uniform grid of ``resolution`` cells per dimension
(``resolution`` is a power of two; the paper's quad-tree level ``L``
corresponds to ``resolution = 2**L``).  A *marked* cell contributes a cover
point at its upper-right corner.  The structure maintains the

    **grid tree invariant**: the set of marked cells is an antichain under
    strict dominance (equivalently, every marked cell has ``covered == 0``
    in the paper's counter formulation),

so the induced cover points always form a skyline — which is what the FR*
cover-bound computation wants.

Implementation notes (see DESIGN.md):

* The structure is stored **sparsely** — marked cells live in an ``(n, e)``
  table; a 64x64x64 grid costs memory proportional to the number of marked
  cells, never the number of grid cells.
* The batch set operations (carve, antichain reduction, bulk quantization)
  are delegated to :mod:`repro.kernels` — :func:`~repro.kernels.grid_carve`,
  :func:`~repro.kernels.antichain` and
  :func:`~repro.kernels.grid_cell_assign` — so the grid tree runs on
  whichever tier the per-call dispatcher picks for the batch at hand
  (loops for small marked sets, vectorized/compiled for bulk), with
  identical marked sets under every backend.
* ``UpdateGridCR``'s recursive unmark-and-slide (which walks the grid cell
  by cell) is implemented as an equivalent *batch carve*: a marked cell is
  unmarked iff its corner strictly dominates the up-quantized vector, and
  its replacement corners are the single-coordinate projections onto the
  quantized value — exactly where the paper's cascade terminates.  The
  antichain invariant is restored by cross-filtering new points against
  survivors.  Update vectors are quantized **up** to the nearest cell
  corner first, matching the "s is quantized on the grid" premise of the
  paper's Theorem 5.1, which keeps the carved region inside the truly
  infeasible region.
* At the minimum resolution (one cell per dimension — the paper's ``L = 0``)
  updates are no-ops and the single cover point is ``(1, …, 1)``: the grid
  tree degenerates to HRJN*'s corner bound.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Sequence

from repro import kernels
from repro.geometry.dominance import Point, as_point
from repro.kernels.pointset import HAS_NUMPY
from repro.kernels.types import Cell

#: guard against float fuzz when mapping real coordinates onto grid corners
_EPS = 1e-9


def _partial_deltas(dimension: int) -> list[Cell]:
    """Non-zero 0/1 offsets that are not the all-ones diagonal.

    These define the "adjacent, dominating but not strongly dominating"
    neighbourhood used by the paper's ``covered`` counters.
    """
    deltas = []
    for combo in itertools.product((0, 1), repeat=dimension):
        if any(combo) and not all(combo):
            deltas.append(combo)
    return deltas


def _as_cells(cells) -> list[Cell]:
    """Normalize a kernel result (ndarray or tuple list) to ``list[Cell]``."""
    if hasattr(cells, "tolist"):
        cells = cells.tolist()
    return [tuple(int(v) for v in row) for row in cells]


class GridTree:
    """A size-bounded adaptive cover over ``[0, 1]^dimension``.

    Parameters
    ----------
    dimension:
        Number of score attributes (``e``); must be >= 1.
    resolution:
        Initial cells per dimension; must be a power of two (the paper's
        ``L_0`` expressed in cells, e.g. 64 means quad-tree depth 6).
    """

    def __init__(self, dimension: int, resolution: int) -> None:
        if dimension < 1:
            raise ValueError("grid tree requires dimension >= 1")
        if resolution < 1 or resolution & (resolution - 1):
            raise ValueError("resolution must be a positive power of two")
        self.dimension = dimension
        self.resolution = resolution
        self._deltas = _partial_deltas(dimension)
        # Initially only the cell touching the ideal corner (1, …, 1) is
        # marked, inducing the trivial cover {(1, …, 1)} (Figure 6(a)).
        self._cells: list[Cell] = [(resolution - 1,) * dimension]

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def upper_corner(self, cell: Sequence[int]) -> Point:
        """The cover point induced by ``cell`` — its upper-right corner."""
        return tuple((int(coord) + 1) / self.resolution for coord in cell)

    def cell_containing(self, point: Sequence[float]) -> Cell:
        """The cell whose upper corner weakly dominates ``point``.

        Used when bulk-loading an exact cover into the grid: each exact
        cover point is rounded *up* onto the grid so the grid cover encloses
        the exact one.
        """
        cell = []
        for value in point:
            # Exact ceil: any float fuzz can only push the corner upward,
            # which keeps the corner weakly dominating the point (safe).
            index = math.ceil(value * self.resolution) - 1
            cell.append(min(max(index, 0), self.resolution - 1))
        return tuple(cell)

    def quantize_up(self, point: Sequence[float]) -> Point:
        """Round each coordinate up to the nearest cell-corner multiple."""
        quantized = []
        for value in point:
            # Exact ceil: the quantized point must weakly dominate the raw
            # one or the carve would remove feasible space.
            corner = math.ceil(value * self.resolution) / self.resolution
            quantized.append(min(max(corner, 0.0), 1.0))
        return tuple(quantized)

    # ------------------------------------------------------------------
    # Marked-set queries
    # ------------------------------------------------------------------
    @property
    def marked_cells(self) -> set[Cell]:
        """The currently marked cells as a set of coordinate tuples."""
        return set(self._cells)

    @marked_cells.setter
    def marked_cells(self, cells: Iterable[Sequence[int]]) -> None:
        self._cells = sorted(tuple(int(c) for c in cell) for cell in cells)

    @property
    def num_marked(self) -> int:
        return len(self._cells)

    def cover_points(self) -> list[Point]:
        """Cover points induced by the marked cells, in sorted order."""
        return sorted(self.upper_corner(row) for row in self._cells)

    def cover_array(self):
        """Cover points as an ``(n, e)`` float array (requires numpy)."""
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            raise RuntimeError("GridTree.cover_array requires numpy")
        import numpy as np

        cells = np.asarray(self._cells, dtype=np.int64).reshape(
            -1, self.dimension
        )
        return (cells + 1) / self.resolution

    def covers(self, point: Sequence[float]) -> bool:
        """True if some induced cover point weakly dominates ``point``."""
        if not self._cells:
            return False
        target = tuple(v - _EPS for v in as_point(point))
        corners = [self.upper_corner(cell) for cell in self._cells]
        return kernels.dominates_any(corners, target)

    def _dominated_by_marked(self, cell: Cell) -> bool:
        """True if a marked cell strictly dominates ``cell``."""
        for row in self._cells:
            if row != cell and all(r >= c for r, c in zip(row, cell)):
                return True
        return False

    def covered_count(self, cell: Cell) -> int:
        """The paper's ``covered`` counter, computed from the marked set.

        Counts adjacent cells ``v`` with ``cell ≺ v``, ``cell ⊀⊀ v`` that are
        marked or strictly dominated by a marked cell.
        """
        marked = self.marked_cells
        count = 0
        for delta in self._deltas:
            neighbour = tuple(c + d for c, d in zip(cell, delta))
            if any(coord >= self.resolution for coord in neighbour):
                continue
            if neighbour in marked or self._dominated_by_marked(neighbour):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def load_points(self, points: Iterable[Sequence[float]]) -> None:
        """Bulk-replace the marked set with the cells covering ``points``.

        This is the aFR transition step: an exact cover that outgrew its
        budget is transferred onto the grid.  ``initialize`` (the invariant
        enforcement of ``aFR::InitializeGridCR``) is applied automatically.
        """
        batch = [as_point(p) for p in points]
        self._cells = _as_cells(
            kernels.grid_cell_assign(batch, self.resolution)
        )
        self.initialize()

    def initialize(self) -> None:
        """Enforce the grid tree invariant (``aFR::InitializeGridCR``).

        Unmarks every marked cell that is strictly dominated by another
        marked cell, leaving an antichain — equivalent to unmarking cells
        with ``covered > 0`` (see DESIGN.md for the equivalence argument).
        """
        self._cells = _as_cells(kernels.antichain(self._cells))

    def update(self, point: Sequence[float]) -> bool:
        """Carve the region dominating ``point`` (``aFR::UpdateGridCR``).

        ``point`` is an observed score vector certifying that no unseen
        vector weakly dominates it.  Returns True iff the marked set changed.
        At the minimum resolution the call is a no-op (corner-bound regime).
        """
        if self.resolution == 1:
            return False
        new_cells, changed = kernels.grid_carve(
            self._cells, as_point(point), self.resolution
        )
        if changed:
            self._cells = _as_cells(new_cells)
        return changed

    def reduce_resolution(self) -> int:
        """Halve the cells per dimension (paper: ``L ← L - 1``).

        Marked cells are replaced by their parents and the invariant is
        re-enforced.  Returns the new resolution.  Raises ``ValueError`` at
        the minimum resolution (callers should stop reducing at 1).
        """
        if self.resolution == 1:
            raise ValueError("already at minimum resolution")
        self.resolution //= 2
        self._cells = [tuple(c // 2 for c in cell) for cell in self._cells]
        self.initialize()
        return self.resolution

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridTree(dim={self.dimension}, resolution={self.resolution}, "
            f"marked={self.num_marked})"
        )
