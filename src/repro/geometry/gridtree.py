"""Grid tree: adaptive, size-bounded covers (Section 5.1.2 of the paper).

The grid tree maintains a cover for the unseen score vectors of one input
while guaranteeing an upper bound on the number of cover points.  It views
the unit hypercube as a uniform grid of ``resolution`` cells per dimension
(``resolution`` is a power of two; the paper's quad-tree level ``L``
corresponds to ``resolution = 2**L``).  A *marked* cell contributes a cover
point at its upper-right corner.  The structure maintains the

    **grid tree invariant**: the set of marked cells is an antichain under
    strict dominance (equivalently, every marked cell has ``covered == 0``
    in the paper's counter formulation),

so the induced cover points always form a skyline — which is what the FR*
cover-bound computation wants.

Implementation notes (see DESIGN.md):

* The structure is stored **sparsely** — marked cells live in an ``(n, e)``
  integer array; a 64x64x64 grid costs memory proportional to the number of
  marked cells, never the number of grid cells.
* ``UpdateGridCR``'s recursive unmark-and-slide (which walks the grid cell
  by cell) is implemented as an equivalent *vectorized carve*: a marked
  cell is unmarked iff its corner strictly dominates the up-quantized
  vector, and its replacement corners are the single-coordinate projections
  onto the quantized value — exactly where the paper's cascade terminates.
  The antichain invariant is restored by cross-filtering new points against
  survivors.  Update vectors are quantized **up** to the nearest cell
  corner first, matching the "s is quantized on the grid" premise of the
  paper's Theorem 5.1, which keeps the carved region inside the truly
  infeasible region.
* At the minimum resolution (one cell per dimension — the paper's ``L = 0``)
  updates are no-ops and the single cover point is ``(1, …, 1)``: the grid
  tree degenerates to HRJN*'s corner bound.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.geometry.dominance import Point, as_point

Cell = tuple[int, ...]

#: guard against float fuzz when mapping real coordinates onto grid corners
_EPS = 1e-9


def _partial_deltas(dimension: int) -> list[Cell]:
    """Non-zero 0/1 offsets that are not the all-ones diagonal.

    These define the "adjacent, dominating but not strongly dominating"
    neighbourhood used by the paper's ``covered`` counters.
    """
    deltas = []
    for combo in itertools.product((0, 1), repeat=dimension):
        if any(combo) and not all(combo):
            deltas.append(combo)
    return deltas


def _antichain(cells: np.ndarray) -> np.ndarray:
    """Reduce an ``(n, e)`` integer cell array to its dominance antichain."""
    if cells.shape[0] <= 1:
        return cells
    cells = np.unique(cells, axis=0)
    n = cells.shape[0]
    dominated = np.zeros(n, dtype=bool)
    ge = (cells[:, None, :] >= cells[None, :, :]).all(axis=2)
    np.fill_diagonal(ge, False)
    dominated = ge.any(axis=0)
    return cells[~dominated]


class GridTree:
    """A size-bounded adaptive cover over ``[0, 1]^dimension``.

    Parameters
    ----------
    dimension:
        Number of score attributes (``e``); must be >= 1.
    resolution:
        Initial cells per dimension; must be a power of two (the paper's
        ``L_0`` expressed in cells, e.g. 64 means quad-tree depth 6).
    """

    def __init__(self, dimension: int, resolution: int) -> None:
        if dimension < 1:
            raise ValueError("grid tree requires dimension >= 1")
        if resolution < 1 or resolution & (resolution - 1):
            raise ValueError("resolution must be a positive power of two")
        self.dimension = dimension
        self.resolution = resolution
        self._deltas = _partial_deltas(dimension)
        # Initially only the cell touching the ideal corner (1, …, 1) is
        # marked, inducing the trivial cover {(1, …, 1)} (Figure 6(a)).
        self._cells = np.full((1, dimension), resolution - 1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def upper_corner(self, cell: Sequence[int]) -> Point:
        """The cover point induced by ``cell`` — its upper-right corner."""
        return tuple((int(coord) + 1) / self.resolution for coord in cell)

    def cell_containing(self, point: Sequence[float]) -> Cell:
        """The cell whose upper corner weakly dominates ``point``.

        Used when bulk-loading an exact cover into the grid: each exact
        cover point is rounded *up* onto the grid so the grid cover encloses
        the exact one.
        """
        cell = []
        for value in point:
            # Exact ceil: any float fuzz can only push the corner upward,
            # which keeps the corner weakly dominating the point (safe).
            index = math.ceil(value * self.resolution) - 1
            cell.append(min(max(index, 0), self.resolution - 1))
        return tuple(cell)

    def quantize_up(self, point: Sequence[float]) -> Point:
        """Round each coordinate up to the nearest cell-corner multiple."""
        quantized = []
        for value in point:
            # Exact ceil: the quantized point must weakly dominate the raw
            # one or the carve would remove feasible space.
            corner = math.ceil(value * self.resolution) / self.resolution
            quantized.append(min(max(corner, 0.0), 1.0))
        return tuple(quantized)

    # ------------------------------------------------------------------
    # Marked-set queries
    # ------------------------------------------------------------------
    @property
    def marked_cells(self) -> set[Cell]:
        """The currently marked cells as a set of coordinate tuples."""
        return {tuple(int(c) for c in row) for row in self._cells}

    @marked_cells.setter
    def marked_cells(self, cells: Iterable[Sequence[int]]) -> None:
        rows = [tuple(int(c) for c in cell) for cell in cells]
        self._cells = np.array(sorted(rows), dtype=np.int64).reshape(
            -1, self.dimension
        )

    @property
    def num_marked(self) -> int:
        return self._cells.shape[0]

    def cover_points(self) -> list[Point]:
        """Cover points induced by the marked cells, in sorted order."""
        return sorted(self.upper_corner(row) for row in self._cells)

    def cover_array(self) -> np.ndarray:
        """Cover points as an ``(n, e)`` float array."""
        return (self._cells + 1) / self.resolution

    def covers(self, point: Sequence[float]) -> bool:
        """True if some induced cover point weakly dominates ``point``."""
        if not self._cells.shape[0]:
            return False
        target = np.asarray(as_point(point))
        return bool((self.cover_array() >= target - _EPS).all(axis=1).any())

    def _dominated_by_marked(self, cell: Cell) -> bool:
        """True if a marked cell strictly dominates ``cell``."""
        target = np.asarray(cell, dtype=np.int64)
        ge = (self._cells >= target).all(axis=1)
        neq = (self._cells != target).any(axis=1)
        return bool((ge & neq).any())

    def covered_count(self, cell: Cell) -> int:
        """The paper's ``covered`` counter, computed from the marked set.

        Counts adjacent cells ``v`` with ``cell ≺ v``, ``cell ⊀⊀ v`` that are
        marked or strictly dominated by a marked cell.
        """
        marked = self.marked_cells
        count = 0
        for delta in self._deltas:
            neighbour = tuple(c + d for c, d in zip(cell, delta))
            if any(coord >= self.resolution for coord in neighbour):
                continue
            if neighbour in marked or self._dominated_by_marked(neighbour):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def load_points(self, points: Iterable[Sequence[float]]) -> None:
        """Bulk-replace the marked set with the cells covering ``points``.

        This is the aFR transition step: an exact cover that outgrew its
        budget is transferred onto the grid.  ``initialize`` (the invariant
        enforcement of ``aFR::InitializeGridCR``) is applied automatically.
        """
        cells = np.array(
            [self.cell_containing(p) for p in points], dtype=np.int64
        ).reshape(-1, self.dimension)
        self._cells = cells
        self.initialize()

    def initialize(self) -> None:
        """Enforce the grid tree invariant (``aFR::InitializeGridCR``).

        Unmarks every marked cell that is strictly dominated by another
        marked cell, leaving an antichain — equivalent to unmarking cells
        with ``covered > 0`` (see DESIGN.md for the equivalence argument).
        """
        self._cells = _antichain(self._cells)

    def update(self, point: Sequence[float]) -> bool:
        """Carve the region dominating ``point`` (``aFR::UpdateGridCR``).

        ``point`` is an observed score vector certifying that no unseen
        vector weakly dominates it.  Returns True iff the marked set changed.
        At the minimum resolution the call is a no-op (corner-bound regime).
        """
        if self.resolution == 1:
            return False
        # Integer grid coordinates of the up-quantized vector: a marked
        # cell's corner strictly dominates the quantized point iff
        # cell >= m component-wise.
        m = np.array(
            [
                min(max(math.ceil(v * self.resolution), 0), self.resolution)
                for v in point
            ],
            dtype=np.int64,
        )
        cells = self._cells
        removed_mask = (cells >= m).all(axis=1)
        if not removed_mask.any():
            return False
        removed = cells[removed_mask]
        survivors = cells[~removed_mask]
        # Slide each removed corner down onto the carved boundary: one
        # projection per axis, at cell index m_i - 1 (dropped if below the
        # grid) — where the paper's cell-by-cell cascade terminates.
        projected = np.repeat(removed, self.dimension, axis=0)
        cols = np.tile(np.arange(self.dimension), removed.shape[0])
        projected[np.arange(projected.shape[0]), cols] = m[cols] - 1
        projected = projected[(projected >= 0).all(axis=1)]
        fresh = _antichain(projected)
        if survivors.shape[0] and fresh.shape[0]:
            dominated_new = (
                (survivors[:, None, :] >= fresh[None, :, :]).all(axis=2).any(axis=0)
            )
            fresh = fresh[~dominated_new]
        if survivors.shape[0] and fresh.shape[0]:
            strictly = (
                (fresh[:, None, :] >= survivors[None, :, :]).all(axis=2)
                & (fresh[:, None, :] > survivors[None, :, :]).any(axis=2)
            ).any(axis=0)
            survivors = survivors[~strictly]
        self._cells = np.concatenate([survivors, fresh], axis=0)
        return True

    def reduce_resolution(self) -> int:
        """Halve the cells per dimension (paper: ``L ← L - 1``).

        Marked cells are replaced by their parents and the invariant is
        re-enforced.  Returns the new resolution.  Raises ``ValueError`` at
        the minimum resolution (callers should stop reducing at 1).
        """
        if self.resolution == 1:
            raise ValueError("already at minimum resolution")
        self.resolution //= 2
        self._cells = self._cells // 2
        self.initialize()
        return self.resolution

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridTree(dim={self.dimension}, resolution={self.resolution}, "
            f"marked={self.num_marked})"
        )
