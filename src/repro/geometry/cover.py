"""Exact feasible-region covers (functions ``FR::UpdateCR`` / ``FR*::UpdateCR``).

A *cover* for a point set ``X`` is a set of points ``C`` such that every
``x ∈ X`` is weakly dominated by some ``c ∈ C``.  The FR bound maintains a
cover ``CR_i`` of the score vectors of the **unseen** tuples of input ``R_i``.
Whenever a group of tuples with equal score bound finishes, each of its score
vectors ``y`` certifies that no unseen vector weakly dominates ``y`` — so the
region ``{x : x ⪰ y}`` is carved out of the feasible region (Figure 4(b)).

``update_cover`` implements the carving exactly as in the paper's pseudo-code:
cover points dominating ``y`` are removed and replaced by their projections
``s[i ↦ y_i]``, clipped to ``(0, 1]^e`` (projections with a zero coordinate
cover nothing and are dropped).  It is a deliberately loop-based oracle; the
production path is :class:`CoverRegion`, which keeps its points in a columnar
:class:`~repro.kernels.PointSet` and carves through the batch kernel
:func:`repro.kernels.cover_carve` — dispatched per call by cover size, so
small covers stay on the early-exit loops and bulk carves go vectorized.

The FR* variant additionally skylines the result.  Note a deliberate
deviation documented in DESIGN.md: the paper skylines only the new points
``S⁺``, but for ``e >= 3`` a new point can dominate a surviving old point, so
we skyline the full union.  Dropping dominated cover points never changes the
covered region, hence every correctness/tightness property is preserved.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro import kernels
from repro.geometry.dominance import (
    Point,
    as_point,
    dominates,
    ones,
    strictly_dominates,
    substitute,
)
from repro.geometry.skyline import skyline
from repro.kernels import PointSet


def covers(cover: Iterable[Sequence[float]], point: Sequence[float]) -> bool:
    """True if some point of ``cover`` weakly dominates ``point``."""
    target = as_point(point)
    return any(dominates(c, target) for c in cover)


def update_cover(
    cover: Iterable[Sequence[float]],
    observed: Iterable[Sequence[float]],
    *,
    skyline_result: bool = False,
) -> list[Point]:
    """Carve the regions dominating each observed vector out of ``cover``.

    Implements ``FR::UpdateCR`` (and, with ``skyline_result=True``, the FR*
    variant).  ``observed`` is the batch ``b[G_i]`` of score vectors from the
    group that just finished.
    """
    current: list[Point] = [as_point(c) for c in cover]
    for raw in observed:
        y = as_point(raw)
        if current and len(y) != len(current[0]):
            raise ValueError(
                f"dimension mismatch: cover is {len(current[0])}-d, point is {len(y)}-d"
            )
        removed = [s for s in current if dominates(s, y)]
        if not removed:
            continue
        survivors = [s for s in current if not dominates(s, y)]
        projected: set[Point] = set()
        for s in removed:
            for axis, value in enumerate(y):
                candidate = substitute(s, axis, value)
                if all(coord > 0.0 for coord in candidate):
                    projected.add(candidate)
        if skyline_result:
            # Keep the cover an antichain incrementally: the survivors are
            # one by induction, so only new-vs-new and new-vs-survivor
            # dominations need resolving — O(|new|·|cover|), not O(|cover|²).
            fresh = [
                p
                for p in skyline(projected)
                if not any(dominates(s, p) for s in survivors)
            ]
            survivors = [
                s
                for s in survivors
                if not any(strictly_dominates(p, s) for p in fresh)
            ]
            current = survivors + fresh
        else:
            current = survivors + sorted(projected)
    return current


class CoverRegion:
    """A maintained cover of the unseen score vectors of one input.

    Starts as ``{(1, …, 1)}`` — everything is feasible before any group
    completes — and shrinks through :meth:`update` calls.  With
    ``skyline_mode=True`` the point set is kept as a skyline (FR* behaviour).

    The point set lives in a columnar :class:`~repro.kernels.PointSet` and
    each :meth:`update` is a single :func:`repro.kernels.cover_carve` batch
    call — cover maintenance runs on every pull of the FR-family bounds and
    is their hottest loop.  The semantics are identical to the reference
    :func:`update_cover` under every kernel backend and under size-aware
    auto dispatch (the test suite asserts the equivalence property-based).
    """

    def __init__(self, dimension: int, *, skyline_mode: bool = False) -> None:
        if dimension < 0:
            raise ValueError("dimension must be non-negative")
        self.dimension = dimension
        self.skyline_mode = skyline_mode
        self._ps = PointSet(dimension, [ones(dimension)])

    @property
    def pointset(self) -> PointSet:
        """The columnar cover storage (shared; do not mutate)."""
        return self._ps

    @property
    def array(self):
        """Current cover points as an ``(n, e)`` array (do not mutate)."""
        return self._ps.array

    @property
    def points(self) -> list[Point]:
        """Current cover points as tuples (a fresh list)."""
        return list(self._ps.tuples())

    def __len__(self) -> int:
        return len(self._ps)

    def __iter__(self):
        return iter(self._ps.tuples())

    def update(self, observed: Iterable[Sequence[float]]) -> None:
        """Carve out the regions dominating each vector in ``observed``."""
        batch = [as_point(raw) for raw in observed]
        for y in batch:
            if len(y) != self.dimension:
                raise ValueError(
                    f"dimension mismatch: cover is {self.dimension}-d, "
                    f"point is {(len(y),)}-d"
                )
        if not batch or not len(self._ps):
            return
        self._ps.replace(
            kernels.cover_carve(self._ps, batch, skyline_mode=self.skyline_mode)
        )

    def covers(self, point: Sequence[float]) -> bool:
        """True if ``point`` lies inside the covered (feasible) region."""
        if not len(self._ps):
            return False
        return kernels.dominates_any(self._ps, as_point(point))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoverRegion(dim={self.dimension}, points={len(self)})"
