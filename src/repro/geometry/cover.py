"""Exact feasible-region covers (functions ``FR::UpdateCR`` / ``FR*::UpdateCR``).

A *cover* for a point set ``X`` is a set of points ``C`` such that every
``x ∈ X`` is weakly dominated by some ``c ∈ C``.  The FR bound maintains a
cover ``CR_i`` of the score vectors of the **unseen** tuples of input ``R_i``.
Whenever a group of tuples with equal score bound finishes, each of its score
vectors ``y`` certifies that no unseen vector weakly dominates ``y`` — so the
region ``{x : x ⪰ y}`` is carved out of the feasible region (Figure 4(b)).

``update_cover`` implements the carving exactly as in the paper's pseudo-code:
cover points dominating ``y`` are removed and replaced by their projections
``s[i ↦ y_i]``, clipped to ``(0, 1]^e`` (projections with a zero coordinate
cover nothing and are dropped).

The FR* variant additionally skylines the result.  Note a deliberate
deviation documented in DESIGN.md: the paper skylines only the new points
``S⁺``, but for ``e >= 3`` a new point can dominate a surviving old point, so
we skyline the full union.  Dropping dominated cover points never changes the
covered region, hence every correctness/tightness property is preserved.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.geometry.dominance import (
    Point,
    as_point,
    dominates,
    ones,
    strictly_dominates,
    substitute,
)
from repro.geometry.skyline import skyline


def covers(cover: Iterable[Sequence[float]], point: Sequence[float]) -> bool:
    """True if some point of ``cover`` weakly dominates ``point``."""
    target = as_point(point)
    return any(dominates(c, target) for c in cover)


def update_cover(
    cover: Iterable[Sequence[float]],
    observed: Iterable[Sequence[float]],
    *,
    skyline_result: bool = False,
) -> list[Point]:
    """Carve the regions dominating each observed vector out of ``cover``.

    Implements ``FR::UpdateCR`` (and, with ``skyline_result=True``, the FR*
    variant).  ``observed`` is the batch ``b[G_i]`` of score vectors from the
    group that just finished.
    """
    current: list[Point] = [as_point(c) for c in cover]
    for raw in observed:
        y = as_point(raw)
        if current and len(y) != len(current[0]):
            raise ValueError(
                f"dimension mismatch: cover is {len(current[0])}-d, point is {len(y)}-d"
            )
        removed = [s for s in current if dominates(s, y)]
        if not removed:
            continue
        survivors = [s for s in current if not dominates(s, y)]
        projected: set[Point] = set()
        for s in removed:
            for axis, value in enumerate(y):
                candidate = substitute(s, axis, value)
                if all(coord > 0.0 for coord in candidate):
                    projected.add(candidate)
        if skyline_result:
            # Keep the cover an antichain incrementally: the survivors are
            # one by induction, so only new-vs-new and new-vs-survivor
            # dominations need resolving — O(|new|·|cover|), not O(|cover|²).
            fresh = [
                p
                for p in skyline(projected)
                if not any(dominates(s, p) for s in survivors)
            ]
            survivors = [
                s
                for s in survivors
                if not any(strictly_dominates(p, s) for p in fresh)
            ]
            current = survivors + fresh
        else:
            current = survivors + sorted(projected)
    return current


class CoverRegion:
    """A maintained cover of the unseen score vectors of one input.

    Starts as ``{(1, …, 1)}`` — everything is feasible before any group
    completes — and shrinks through :meth:`update` calls.  With
    ``skyline_mode=True`` the point set is kept as a skyline (FR* behaviour).

    The point set is stored as an ``(n, e)`` numpy array so the dominance
    scans inside :meth:`update` are vectorized — cover maintenance runs on
    every pull of the FR-family bounds and is their hottest loop.  The
    semantics are identical to the reference :func:`update_cover` (the test
    suite asserts the equivalence property-based).
    """

    def __init__(self, dimension: int, *, skyline_mode: bool = False) -> None:
        if dimension < 0:
            raise ValueError("dimension must be non-negative")
        self.dimension = dimension
        self.skyline_mode = skyline_mode
        self._array = np.ones((1, dimension), dtype=float)

    @property
    def array(self) -> np.ndarray:
        """Current cover points as an ``(n, e)`` array (do not mutate)."""
        return self._array

    @property
    def points(self) -> list[Point]:
        """Current cover points as tuples (a fresh list)."""
        return [tuple(row) for row in self._array]

    def __len__(self) -> int:
        return self._array.shape[0]

    def __iter__(self):
        return iter(self.points)

    def update(self, observed: Iterable[Sequence[float]]) -> None:
        """Carve out the regions dominating each vector in ``observed``."""
        current = self._array
        for raw in observed:
            y = np.asarray(raw, dtype=float)
            if y.shape != (self.dimension,):
                raise ValueError(
                    f"dimension mismatch: cover is {self.dimension}-d, "
                    f"point is {y.shape}-d"
                )
            if not current.size and current.shape[0] == 0:
                break
            removed_mask = (current >= y).all(axis=1)
            if not removed_mask.any():
                continue
            removed = current[removed_mask]
            survivors = current[~removed_mask]
            # Project each removed point one coordinate down onto y.
            projected = np.repeat(removed, self.dimension, axis=0)
            cols = np.tile(np.arange(self.dimension), removed.shape[0])
            projected[np.arange(projected.shape[0]), cols] = y[cols]
            projected = projected[(projected > 0.0).all(axis=1)]
            projected = np.unique(projected, axis=0)
            if self.skyline_mode and projected.shape[0]:
                fresh = np.array(
                    skyline([tuple(row) for row in projected]), dtype=float
                ).reshape(-1, self.dimension)
                if survivors.shape[0] and fresh.shape[0]:
                    # new-vs-survivor dominations, both directions
                    dominated_new = (
                        (survivors[:, None, :] >= fresh[None, :, :])
                        .all(axis=2)
                        .any(axis=0)
                    )
                    fresh = fresh[~dominated_new]
                if survivors.shape[0] and fresh.shape[0]:
                    strictly = (
                        (fresh[:, None, :] >= survivors[None, :, :]).all(axis=2)
                        & (fresh[:, None, :] > survivors[None, :, :]).any(axis=2)
                    ).any(axis=0)
                    survivors = survivors[~strictly]
                current = np.concatenate([survivors, fresh], axis=0)
            else:
                current = np.concatenate([survivors, projected], axis=0)
        self._array = current

    def covers(self, point: Sequence[float]) -> bool:
        """True if ``point`` lies inside the covered (feasible) region."""
        if not self._array.shape[0]:
            return False
        target = np.asarray(point, dtype=float)
        return bool((self._array >= target).all(axis=1).any())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoverRegion(dim={self.dimension}, points={len(self)})"
