"""Skyline computation and incremental skyline maintenance.

A *skyline* of a point set ``X`` is the minimal subset ``C ⊆ X`` that covers
``X`` (every ``x ∈ X`` is weakly dominated by some ``c ∈ C``) such that no
skyline point strictly dominates another.  The FR* bound (Section 4.2.1)
maintains the skyline ``SHR_i`` of the seen score vectors incrementally, and
relies on the "early freeze" property: because inputs arrive in decreasing
score-bound order, dominating points tend to arrive first and the skyline
stabilizes quickly.

The data plane is columnar: :class:`IncrementalSkyline` holds its points
in a :class:`~repro.kernels.PointSet` and filters candidates in one
kernel call per insertion (:func:`repro.kernels.dominates_any` +
:func:`repro.kernels.strict_dominance_mask`).  Calls go through the
size-aware dispatcher: under the default ``auto`` kernel each insertion
is routed to the early-exit loops while the skyline is small and to the
vectorized/compiled tiers once it grows past the calibrated crossover —
all tiers are bit-identical, so the choice is purely a speed matter.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro import kernels
from repro.kernels import PointSet
from repro.kernels.types import Point, as_point


def skyline(points: Iterable[Sequence[float]]) -> list[Point]:
    """Return the skyline (maxima under ⪯) of ``points``.

    Duplicates collapse to a single representative (the first occurrence).
    The result preserves the input order of the surviving points.
    Complexity is O(n * s) where ``s`` is the skyline size, which is what
    the paper's structures need (s stays small in practice).
    """
    normalized = [as_point(p) for p in points]
    return [normalized[i] for i in kernels.skyline_filter(normalized)]


def is_skyline(points: Iterable[Sequence[float]]) -> bool:
    """Check that no point in ``points`` strictly dominates another."""
    normalized = [as_point(p) for p in points]
    for i, p in enumerate(normalized):
        mask = kernels.strict_dominance_mask(normalized, p)
        for j, dominated in enumerate(mask):
            if j != i and dominated:
                return False
    return True


class IncrementalSkyline:
    """Maintains the skyline of a growing point set.

    ``add`` runs in time linear to the current skyline size (one batch
    kernel call against the columnar point set).  The structure also
    exposes :attr:`frozen_since` — the number of consecutive ``add`` calls
    that left the skyline unchanged — which quantifies the paper's
    early-freeze property and is handy for diagnostics.
    """

    def __init__(self, points: Iterable[Sequence[float]] = ()) -> None:
        self._ps = PointSet()
        self._inserted = 0
        self.frozen_since = 0
        for point in points:
            self.add(point)

    def add(self, raw: Sequence[float]) -> bool:
        """Insert a point; return True iff the skyline changed."""
        point = as_point(raw)
        self._inserted += 1
        if len(self._ps):
            if kernels.dominates_any(self._ps, point):
                self.frozen_since += 1
                return False
            dominated = kernels.strict_dominance_mask(self._ps, point)
            if kernels.mask_any(dominated):
                self._ps.compress([not d for d in dominated])
        self._ps.append(point)
        self.frozen_since = 0
        return True

    @property
    def pointset(self) -> PointSet:
        """The columnar skyline storage (shared; do not mutate)."""
        return self._ps

    @property
    def points(self) -> list[Point]:
        """The current skyline points (a copy; safe to mutate)."""
        return list(self._ps.tuples())

    @property
    def inserted(self) -> int:
        """Total number of points ever inserted."""
        return self._inserted

    def __len__(self) -> int:
        return len(self._ps)

    def __iter__(self):
        return iter(self._ps.tuples())

    def __contains__(self, raw: Sequence[float]) -> bool:
        return as_point(raw) in self._ps

    def covers(self, raw: Sequence[float]) -> bool:
        """True if some skyline point weakly dominates ``raw``."""
        if not len(self._ps):
            return False
        return kernels.dominates_any(self._ps, as_point(raw))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IncrementalSkyline({self._ps.tuples()!r})"
