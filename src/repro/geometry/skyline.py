"""Skyline computation and incremental skyline maintenance.

A *skyline* of a point set ``X`` is the minimal subset ``C ⊆ X`` that covers
``X`` (every ``x ∈ X`` is weakly dominated by some ``c ∈ C``) such that no
skyline point strictly dominates another.  The FR* bound (Section 4.2.1)
maintains the skyline ``SHR_i`` of the seen score vectors incrementally, and
relies on the "early freeze" property: because inputs arrive in decreasing
score-bound order, dominating points tend to arrive first and the skyline
stabilizes quickly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.geometry.dominance import Point, as_point, dominates, strictly_dominates


def skyline(points: Iterable[Sequence[float]]) -> list[Point]:
    """Return the skyline (maxima under ⪯) of ``points``.

    Duplicates collapse to a single representative.  The result preserves no
    particular order.  Complexity is O(n * s) where ``s`` is the skyline size,
    which is what the paper's structures need (s stays small in practice).
    """
    result: list[Point] = []
    for raw in points:
        point = as_point(raw)
        if any(dominates(kept, point) for kept in result):
            continue
        result = [kept for kept in result if not strictly_dominates(point, kept)]
        result.append(point)
    return result


def is_skyline(points: Iterable[Sequence[float]]) -> bool:
    """Check that no point in ``points`` strictly dominates another."""
    normalized = [as_point(p) for p in points]
    for i, p in enumerate(normalized):
        for j, q in enumerate(normalized):
            if i != j and strictly_dominates(p, q):
                return False
    return True


class IncrementalSkyline:
    """Maintains the skyline of a growing point set.

    ``add`` runs in time linear to the current skyline size.  The structure
    also exposes :attr:`frozen_since` — the number of consecutive ``add``
    calls that left the skyline unchanged — which quantifies the paper's
    early-freeze property and is handy for diagnostics.
    """

    def __init__(self, points: Iterable[Sequence[float]] = ()) -> None:
        self._points: list[Point] = []
        self._inserted = 0
        self.frozen_since = 0
        for point in points:
            self.add(point)

    def add(self, raw: Sequence[float]) -> bool:
        """Insert a point; return True iff the skyline changed."""
        point = as_point(raw)
        self._inserted += 1
        if any(dominates(kept, point) for kept in self._points):
            self.frozen_since += 1
            return False
        self._points = [
            kept for kept in self._points if not strictly_dominates(point, kept)
        ]
        self._points.append(point)
        self.frozen_since = 0
        return True

    @property
    def points(self) -> list[Point]:
        """The current skyline points (a copy; safe to mutate)."""
        return list(self._points)

    @property
    def inserted(self) -> int:
        """Total number of points ever inserted."""
        return self._inserted

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __contains__(self, raw: Sequence[float]) -> bool:
        return as_point(raw) in self._points

    def covers(self, raw: Sequence[float]) -> bool:
        """True if some skyline point weakly dominates ``raw``."""
        point = as_point(raw)
        return any(dominates(kept, point) for kept in self._points)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IncrementalSkyline({self._points!r})"
