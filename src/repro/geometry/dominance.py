"""Dominance relations over score vectors.

The paper (Section 4) defines three binary relations over e-dimensional
points ``x`` and ``y``:

* ``x ⪯ y`` (:func:`dominates` with arguments ``(y, x)`` — we phrase it as
  "``y`` dominates ``x``"): ``x_i <= y_i`` for all ``i``.
* ``x ≺ y`` (:func:`strictly_dominates`): ``x ⪯ y`` and ``x != y``.
* ``x ≪ y`` (:func:`strongly_dominates`): ``x_i < y_i`` for all ``i``.

Score vectors are plain tuples of floats in ``[0, 1]``.  Tuples are used
rather than numpy arrays because the vectors are tiny (e <= 4 in the paper's
experiments) and hashing/equality on tuples is what the skyline and cover
structures need.
"""

from __future__ import annotations

from collections.abc import Sequence

Point = tuple[float, ...]


def dominates(y: Sequence[float], x: Sequence[float]) -> bool:
    """Return True if ``x ⪯ y``, i.e. ``y`` weakly dominates ``x``.

    Both points must have the same dimensionality.
    """
    if len(x) != len(y):
        raise ValueError(f"dimension mismatch: {len(y)} vs {len(x)}")
    return all(xi <= yi for xi, yi in zip(x, y))


def strictly_dominates(y: Sequence[float], x: Sequence[float]) -> bool:
    """Return True if ``x ≺ y``: ``x ⪯ y`` and ``x != y``."""
    return dominates(y, x) and tuple(x) != tuple(y)


def strongly_dominates(y: Sequence[float], x: Sequence[float]) -> bool:
    """Return True if ``x ≪ y``: every coordinate of ``y`` exceeds ``x``'s."""
    if len(x) != len(y):
        raise ValueError(f"dimension mismatch: {len(y)} vs {len(x)}")
    return all(xi < yi for xi, yi in zip(x, y))


def substitute(point: Sequence[float], index: int, value: float) -> Point:
    """Return ``point[index ↦ value]`` — the paper's coordinate substitution."""
    if not 0 <= index < len(point):
        raise IndexError(f"coordinate {index} out of range for {len(point)}-d point")
    replaced = list(point)
    replaced[index] = value
    return tuple(replaced)


def as_point(values: Sequence[float]) -> Point:
    """Normalize any sequence of floats into the canonical tuple form."""
    return tuple(float(v) for v in values)


def ones(dimension: int) -> Point:
    """The ideal point ``(1, …, 1)`` of the given dimension."""
    return (1.0,) * dimension
