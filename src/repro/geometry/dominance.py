"""Dominance relations over score vectors.

The paper (Section 4) defines three binary relations over e-dimensional
points ``x`` and ``y``:

* ``x ⪯ y`` (:func:`dominates` with arguments ``(y, x)`` — we phrase it as
  "``y`` dominates ``x``"): ``x_i <= y_i`` for all ``i``.
* ``x ≺ y`` (:func:`strictly_dominates`): ``x ⪯ y`` and ``x != y``.
* ``x ≪ y`` (:func:`strongly_dominates`): ``x_i < y_i`` for all ``i``.

These are the scalar (one-pair-at-a-time) forms; the batch forms over
columnar point sets live in :mod:`repro.kernels`.  The canonical
``Point`` type and its constructors are defined in
:mod:`repro.kernels.types` and re-exported here for backward
compatibility.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.kernels.types import Point, as_point, ones, substitute

__all__ = [
    "Point",
    "as_point",
    "dominates",
    "ones",
    "strictly_dominates",
    "strongly_dominates",
    "substitute",
]


def dominates(y: Sequence[float], x: Sequence[float]) -> bool:
    """Return True if ``x ⪯ y``, i.e. ``y`` weakly dominates ``x``.

    Both points must have the same dimensionality.
    """
    if len(x) != len(y):
        raise ValueError(f"dimension mismatch: {len(y)} vs {len(x)}")
    for xi, yi in zip(x, y):
        if not xi <= yi:
            return False
    return True


def strictly_dominates(y: Sequence[float], x: Sequence[float]) -> bool:
    """Return True if ``x ≺ y``: ``x ⪯ y`` and ``x != y``.

    Coordinates are compared directly — no per-call tuple materialization
    — so mixed ``Sequence`` inputs (lists vs tuples) behave identically.
    """
    if len(x) != len(y):
        raise ValueError(f"dimension mismatch: {len(y)} vs {len(x)}")
    strict = False
    for xi, yi in zip(x, y):
        if not xi <= yi:
            return False
        if xi != yi:  # xi < yi given the check above
            strict = True
    return strict


def strongly_dominates(y: Sequence[float], x: Sequence[float]) -> bool:
    """Return True if ``x ≪ y``: every coordinate of ``y`` exceeds ``x``'s."""
    if len(x) != len(y):
        raise ValueError(f"dimension mismatch: {len(y)} vs {len(x)}")
    for xi, yi in zip(x, y):
        if not xi < yi:
            return False
    return True
