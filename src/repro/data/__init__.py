"""Synthetic data generation (skewed TPC-H-like tables, scores, workloads)."""

from repro.data.io import (
    load_csv,
    load_relation_csv,
    save_relation_csv,
    save_tables_csv,
)
from repro.data.scores import (
    DEFAULT_NUM_VALUES,
    generate_score_vectors,
    ideal_point_present,
    score_levels,
)
from repro.data.tpch import Table, TPCHConfig, generate_tpch
from repro.data.workload import (
    WorkloadParams,
    anti_correlated_instance,
    lineitem_orders_instance,
    load_workload,
    pipeline_tables,
    random_instance,
)
from repro.data.zipf import sample_zipf_ranks, zipf_probabilities, zipf_weights

__all__ = [
    "DEFAULT_NUM_VALUES",
    "TPCHConfig",
    "Table",
    "WorkloadParams",
    "anti_correlated_instance",
    "generate_score_vectors",
    "generate_tpch",
    "ideal_point_present",
    "lineitem_orders_instance",
    "load_csv",
    "load_relation_csv",
    "load_workload",
    "pipeline_tables",
    "random_instance",
    "sample_zipf_ranks",
    "save_relation_csv",
    "save_tables_csv",
    "score_levels",
    "zipf_probabilities",
    "zipf_weights",
]
