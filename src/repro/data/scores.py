"""Score-vector generation following the paper's (e, z, c) methodology.

Section 6.1: each tuple gets ``e`` score values drawn independently from a
Zipfian distribution with skew ``z``; the only constraint is that no score
vector may dominate the point ``(c, …, c)``.  Figure 9 visualizes the
resulting support: the unit hypercube minus the open upper-right box
``(c, 1]^e``.  ``c = 1`` therefore leaves the distribution unconstrained
(the paper's "volume c^e" phrasing is a typo for ``(1-c)^e``; the point-
domination definition is the operative one — see DESIGN.md).

Skew maps the most probable rank to the **lowest** score, so increasing
``z`` thins out high scores and deepens searches; ``z = 0`` is uniform over
an evenly spaced grid of ``num_values`` levels in ``(0, 1]``.
"""

from __future__ import annotations

import numpy as np

from repro.data.zipf import sample_zipf_ranks

DEFAULT_NUM_VALUES = 1000


def score_levels(num_values: int = DEFAULT_NUM_VALUES) -> np.ndarray:
    """The discrete score domain: ``1/M, 2/M, …, 1`` for ``M = num_values``."""
    if num_values < 1:
        raise ValueError("num_values must be positive")
    return np.arange(1, num_values + 1, dtype=float) / num_values


def generate_score_vectors(
    rng: np.random.Generator,
    n: int,
    e: int,
    *,
    skew: float = 0.5,
    cut: float = 0.5,
    num_values: int = DEFAULT_NUM_VALUES,
    max_rounds: int = 64,
) -> np.ndarray:
    """Generate an ``(n, e)`` array of score vectors.

    Vectors whose coordinates are **all** strictly greater than ``cut`` —
    i.e. that dominate ``(cut, …, cut)`` — are rejected and resampled.

    Raises ``ValueError`` if the cut makes acceptance impossible (never the
    case for ``cut > 0`` with this score domain, since the lowest level
    ``1/num_values`` is below any positive cut) or if resampling fails to
    converge within ``max_rounds``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if e < 1:
        raise ValueError("e must be at least 1")
    if not 0.0 < cut <= 1.0:
        raise ValueError("cut must be in (0, 1]")
    levels = score_levels(num_values)

    def draw(count: int) -> np.ndarray:
        ranks = sample_zipf_ranks(rng, count * e, num_values, skew)
        # Most probable rank (0) maps to the lowest score level.
        return levels[ranks].reshape(count, e)

    vectors = draw(n)
    for _ in range(max_rounds):
        rejected = (vectors > cut).all(axis=1)
        bad = int(rejected.sum())
        if bad == 0:
            return vectors
        vectors[rejected] = draw(bad)
    raise ValueError(
        f"rejection sampling did not converge (cut={cut}, skew={skew}); "
        "the acceptance region is too small"
    )


def ideal_point_present(vectors: np.ndarray) -> bool:
    """True if the ideal vector ``(1, …, 1)`` occurs in ``vectors``.

    The corner bound implicitly assumes it does; this helper lets tests and
    examples quantify how unrealistic that assumption is for a given cut.
    """
    return bool((np.asarray(vectors) == 1.0).all(axis=1).any())
