"""CSV persistence for relations and generated tables.

Lets users export the synthetic workloads for inspection or reuse, and
load their own data into the operators.  Format: one header row; a ``key``
column, ``score_0..score_{e-1}`` columns, and any further columns become
the tuple payload dict (values parsed as int/float when possible).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.tuples import RankTuple
from repro.errors import InstanceError, WorkloadError
from repro.relation.relation import Relation

KEY_COLUMN = "key"
SCORE_PREFIX = "score_"


def _parse_value(text: str):
    """Best-effort typed parsing: int, then float, else string."""
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            continue
    return text


def save_relation_csv(relation: Relation, path) -> None:
    """Write a relation to CSV (key + score columns + payload columns)."""
    path = Path(path)
    payload_columns: list[str] = []
    for tup in relation.tuples:
        if isinstance(tup.payload, dict):
            for column in tup.payload:
                if column not in payload_columns:
                    payload_columns.append(column)
    headers = (
        [KEY_COLUMN]
        + [f"{SCORE_PREFIX}{i}" for i in range(relation.dimension)]
        + payload_columns
    )
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for tup in relation.tuples:
            payload = tup.payload if isinstance(tup.payload, dict) else {}
            writer.writerow(
                [tup.key]
                + list(tup.scores)
                + [payload.get(column, "") for column in payload_columns]
            )


def load_relation_csv(path, name: str | None = None) -> Relation:
    """Read a relation written by :func:`save_relation_csv`.

    Score columns are recognized by the ``score_`` prefix (in index order);
    all other non-key columns become the payload dict.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            headers = next(reader)
        except StopIteration:
            raise InstanceError(f"{path}: empty file") from None
        if KEY_COLUMN not in headers:
            raise InstanceError(f"{path}: no {KEY_COLUMN!r} column")
        key_index = headers.index(KEY_COLUMN)
        score_indexes = sorted(
            (int(h[len(SCORE_PREFIX):]), i)
            for i, h in enumerate(headers)
            if h.startswith(SCORE_PREFIX) and h[len(SCORE_PREFIX):].isdigit()
        )
        payload_indexes = [
            i
            for i, h in enumerate(headers)
            if i != key_index and i not in {i for __, i in score_indexes}
        ]
        tuples = []
        for row_number, row in enumerate(reader, start=2):
            if len(row) != len(headers):
                raise InstanceError(
                    f"{path}:{row_number}: expected {len(headers)} cells, "
                    f"got {len(row)}"
                )
            scores = tuple(float(row[i]) for __, i in score_indexes)
            payload = {
                headers[i]: _parse_value(row[i])
                for i in payload_indexes
                if row[i] != ""
            }
            tuples.append(
                RankTuple(
                    key=_parse_value(row[key_index]),
                    scores=scores,
                    payload=payload or None,
                )
            )
    return Relation(name or path.stem, tuples)


def load_csv(
    path,
    score_col: str | list[str] | tuple[str, ...] = "score",
    *,
    key_col: str = KEY_COLUMN,
    name: str | None = None,
) -> Relation:
    """Load user data from an arbitrary CSV into a :class:`Relation`.

    Unlike :func:`load_relation_csv` (the round-trip reader for files this
    library wrote, with its ``score_i`` naming convention), this loader
    ingests *external* data: ``score_col`` names the column(s) holding the
    tuple's base score(s) — a single name or a list for multi-dimensional
    scoring — and ``key_col`` names the join column.  Every other column
    becomes the payload dict, so loaded relations join on any attribute in
    any-k queries or on ``key`` in the binary operators.

    Validation is strict and one-line: a missing file, absent columns,
    ragged rows, or a score that is not a finite number raises
    :class:`~repro.errors.WorkloadError` pinpointing ``file:row``.
    """
    path = Path(path)
    score_cols = [score_col] if isinstance(score_col, str) else list(score_col)
    if not score_cols:
        raise WorkloadError(f"{path}: need at least one score column")
    try:
        handle = path.open(newline="")
    except OSError as exc:
        raise WorkloadError(
            f"cannot read CSV file {path}: {exc.strerror or exc}"
        ) from exc
    with handle:
        reader = csv.reader(handle)
        try:
            headers = next(reader)
        except StopIteration:
            raise WorkloadError(f"{path}: empty file (no header row)") from None
        missing = [c for c in [key_col, *score_cols] if c not in headers]
        if missing:
            raise WorkloadError(
                f"{path}: missing column(s) {missing}; header has {headers}"
            )
        key_index = headers.index(key_col)
        score_indexes = [headers.index(c) for c in score_cols]
        payload_indexes = [
            i
            for i in range(len(headers))
            if i != key_index and i not in score_indexes
        ]
        tuples = []
        for row_number, row in enumerate(reader, start=2):
            if len(row) != len(headers):
                raise WorkloadError(
                    f"{path}:{row_number}: expected {len(headers)} cells, "
                    f"got {len(row)}"
                )
            scores = []
            for column, index in zip(score_cols, score_indexes):
                try:
                    value = float(row[index])
                except ValueError:
                    raise WorkloadError(
                        f"{path}:{row_number}: score column {column!r} "
                        f"holds {row[index]!r}, not a number"
                    ) from None
                if value != value or value in (float("inf"), float("-inf")):
                    raise WorkloadError(
                        f"{path}:{row_number}: score column {column!r} "
                        f"must be finite, got {row[index]!r}"
                    )
                scores.append(value)
            key = _parse_value(row[key_index])
            if row[key_index] == "":
                raise WorkloadError(
                    f"{path}:{row_number}: empty join key in column {key_col!r}"
                )
            payload = {
                headers[i]: _parse_value(row[i])
                for i in payload_indexes
                if row[i] != ""
            }
            tuples.append(
                RankTuple(key=key, scores=tuple(scores), payload=payload or None)
            )
    if not tuples:
        raise WorkloadError(f"{path}: no data rows")
    return Relation(name or path.stem, tuples)


def save_tables_csv(tables: dict, directory) -> list[Path]:
    """Persist generated TPC-H tables (one CSV per table, keyed naturally)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    natural_keys = {
        "customer": "custkey",
        "orders": "orderkey",
        "lineitem": "orderkey",
        "part": "partkey",
    }
    written = []
    for name, table in tables.items():
        key = natural_keys.get(name, next(iter(table.columns)))
        relation = table.to_relation(key)
        target = directory / f"{name}.csv"
        save_relation_csv(relation, target)
        written.append(target)
    return written
