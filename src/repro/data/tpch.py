"""Synthetic skewed TPC-H-like data (the paper's evaluation substrate).

The paper uses TPC-H at scale factor 1, generated with Vivek Narasayya's
skewed generator, and extends each relation with ``e`` random score
attributes following the (e, z, c) methodology.  We reproduce this with a
deterministic synthetic generator (see DESIGN.md §4 for the substitution
argument): four tables — Customer, Orders, Lineitem, Part — with Zipf-skewed
foreign-key fan-out and the same score extension.  Rank join operators read
only a prefix of each input, so the (configurable) smaller default scale
exercises identical code paths.

Cardinalities at scale factor ``s`` mirror TPC-H ratios:
Customer ``150_000·s``, Orders ``1_500_000·s``, Lineitem ``≈ 4`` per order,
Part ``200_000·s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tuples import RankTuple
from repro.data.scores import DEFAULT_NUM_VALUES, generate_score_vectors
from repro.data.zipf import sample_zipf_ranks
from repro.relation.relation import Relation


@dataclass(frozen=True)
class TPCHConfig:
    """Parameters of the synthetic skewed TPC-H instance."""

    scale: float = 0.01
    num_scores: int = 2  # the paper's e
    score_skew: float = 0.5  # the paper's z
    score_cut: float = 0.5  # the paper's c
    join_skew: float = 0.5  # Narasayya-style foreign-key skew
    num_values: int = DEFAULT_NUM_VALUES
    lineitems_per_order: float = 4.0

    def cardinalities(self) -> dict[str, int]:
        """Table sizes implied by the scale factor (at least 1 row each)."""
        orders = max(int(1_500_000 * self.scale), 4)
        return {
            "customer": max(int(150_000 * self.scale), 2),
            "orders": orders,
            "lineitem": max(int(orders * self.lineitems_per_order), 4),
            "part": max(int(200_000 * self.scale), 2),
        }


@dataclass
class Table:
    """A generated table: parallel numpy columns plus an (n, e) score block."""

    name: str
    columns: dict[str, np.ndarray]
    scores: np.ndarray
    payload_keys: tuple[str, ...] = field(default=())

    @property
    def size(self) -> int:
        return self.scores.shape[0]

    def to_relation(self, key_column: str) -> Relation:
        """Materialize as a :class:`Relation` keyed on ``key_column``.

        Tuple payloads carry the remaining key columns as a dict so that
        pipelined plans can re-key intermediate results.
        """
        keys = self.columns[key_column]
        carried = [c for c in self.payload_keys if c != key_column]
        rows = []
        for index in range(self.size):
            payload = {name: int(self.columns[name][index]) for name in carried}
            payload[key_column] = int(keys[index])
            rows.append(
                RankTuple(
                    key=int(keys[index]),
                    scores=tuple(self.scores[index]),
                    payload=payload,
                )
            )
        return Relation(self.name, rows)


def generate_tpch(config: TPCHConfig, seed: int = 0) -> dict[str, Table]:
    """Generate the four-table skewed instance deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    sizes = config.cardinalities()

    def scores_for(n: int) -> np.ndarray:
        return generate_score_vectors(
            rng,
            n,
            config.num_scores,
            skew=config.score_skew,
            cut=config.score_cut,
            num_values=config.num_values,
        )

    customer = Table(
        name="customer",
        columns={"custkey": np.arange(sizes["customer"], dtype=np.int64)},
        scores=scores_for(sizes["customer"]),
        payload_keys=("custkey",),
    )

    order_custkeys = sample_zipf_ranks(
        rng, sizes["orders"], sizes["customer"], config.join_skew
    )
    orders = Table(
        name="orders",
        columns={
            "orderkey": np.arange(sizes["orders"], dtype=np.int64),
            "custkey": order_custkeys.astype(np.int64),
        },
        scores=scores_for(sizes["orders"]),
        payload_keys=("orderkey", "custkey"),
    )

    lineitem_orderkeys = sample_zipf_ranks(
        rng, sizes["lineitem"], sizes["orders"], config.join_skew
    )
    lineitem_partkeys = sample_zipf_ranks(
        rng, sizes["lineitem"], sizes["part"], config.join_skew
    )
    lineitem = Table(
        name="lineitem",
        columns={
            "orderkey": lineitem_orderkeys.astype(np.int64),
            "partkey": lineitem_partkeys.astype(np.int64),
        },
        scores=scores_for(sizes["lineitem"]),
        payload_keys=("orderkey", "partkey"),
    )

    part = Table(
        name="part",
        columns={"partkey": np.arange(sizes["part"], dtype=np.int64)},
        scores=scores_for(sizes["part"]),
        payload_keys=("partkey",),
    )

    return {
        "customer": customer,
        "orders": orders,
        "lineitem": lineitem,
        "part": part,
    }
