"""Zipfian sampling over a bounded discrete domain.

The paper's methodology (Section 6.1) draws score values from a Zipfian
distribution with skew ``z`` and injects skew into join-key multiplicities
(Narasayya's skewed TPC-H generator).  ``numpy.random.zipf`` is unbounded
and requires exponent > 1, so we implement bounded Zipf directly:
``P(rank r) ∝ 1 / (r + 1)^z`` for ranks ``0 .. n-1``; ``z = 0`` is uniform.
"""

from __future__ import annotations

import numpy as np


def zipf_weights(num_ranks: int, skew: float) -> np.ndarray:
    """Unnormalized Zipf weights for ranks ``0 .. num_ranks - 1``."""
    if num_ranks < 1:
        raise ValueError("num_ranks must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    ranks = np.arange(1, num_ranks + 1, dtype=float)
    return ranks**-skew


def zipf_probabilities(num_ranks: int, skew: float) -> np.ndarray:
    """Normalized Zipf probabilities (sum to 1)."""
    weights = zipf_weights(num_ranks, skew)
    return weights / weights.sum()


def sample_zipf_ranks(
    rng: np.random.Generator,
    size: int,
    num_ranks: int,
    skew: float,
) -> np.ndarray:
    """Sample ``size`` ranks in ``[0, num_ranks)`` from bounded Zipf(skew).

    Uses inverse-CDF sampling (searchsorted over the cumulative weights),
    which is exact and vectorized.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if skew == 0.0:
        return rng.integers(0, num_ranks, size=size)
    cumulative = np.cumsum(zipf_probabilities(num_ranks, skew))
    draws = rng.random(size)
    return np.searchsorted(cumulative, draws, side="right").clip(0, num_ranks - 1)
