"""Workload factory: paper-style problem instances from synthetic data.

The paper's binary experiments run Lineitem ⋈ Orders (the two largest
tables) with ``S`` summing all score attributes; the pipeline experiments
(Section 6.2.3) chain L ⋈ O ⋈ C ⋈ P with one score attribute per relation.
This module builds those instances (and arbitrary custom ones) from the
synthetic generator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from pathlib import Path

import numpy as np

from repro.core.operators import ALGORITHMS
from repro.core.scoring import ScoringFunction, SumScore
from repro.data.scores import generate_score_vectors
from repro.data.tpch import Table, TPCHConfig, generate_tpch
from repro.errors import WorkloadError
from repro.relation.cost import CostModel
from repro.relation.relation import RankJoinInstance, Relation


@dataclass(frozen=True)
class WorkloadParams:
    """The knobs of Table 2, plus data scale and seed.

    Defaults are the paper's defaults: ``e=2, c=.5, z=.5, K=10``.
    """

    e: int = 2
    c: float = 0.5
    z: float = 0.5
    k: int = 10
    scale: float = 0.01
    join_skew: float = 0.5
    seed: int = 0
    #: Evaluation core: ``"pbrj"`` (paper default), ``"anyk"``, or
    #: ``"auto"`` (cost-based planner).
    algorithm: str = "pbrj"
    #: Shard count for sharded execution: a positive integer, or
    #: ``"auto"`` to let the planner choose (1 = plain serial operator).
    shards: int | str = 1
    #: Execution backend for sharded runs (``serial``/``thread``/
    #: ``process``); ignored when ``shards`` is 1.
    exec_backend: str = "thread"

    def tpch_config(self) -> TPCHConfig:
        return TPCHConfig(
            scale=self.scale,
            num_scores=self.e,
            score_skew=self.z,
            score_cut=self.c,
            join_skew=self.join_skew,
        )


def load_workload(path: str | Path) -> WorkloadParams:
    """Load :class:`WorkloadParams` from a JSON file.

    The file must hold one JSON object whose keys are a subset of the
    ``WorkloadParams`` fields (``e``, ``c``, ``z``, ``k``, ``scale``,
    ``join_skew``, ``seed``, ``algorithm``, ``shards``,
    ``exec_backend``).  Any problem — missing file, invalid JSON, unknown
    keys, non-numeric values, an unknown ``algorithm``, an invalid
    ``shards``/``exec_backend`` combination — raises
    :class:`~repro.errors.WorkloadError` with a one-line message suitable
    for direct CLI display (the CLI exits 2), instead of failing deep
    inside engine construction.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise WorkloadError(f"cannot read workload file {path}: {exc.strerror or exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"workload file {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise WorkloadError(
            f"workload file {path} must hold a JSON object, got {type(payload).__name__}"
        )
    known = {f.name: f.type for f in fields(WorkloadParams)}
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise WorkloadError(
            f"workload file {path} has unknown keys {unknown}; "
            f"known keys: {sorted(known)}"
        )
    for key, value in payload.items():
        if key == "algorithm":
            if value not in ALGORITHMS + ("auto",):
                raise WorkloadError(
                    f"workload file {path}: unknown algorithm {value!r}; "
                    f"choose from {list(ALGORITHMS) + ['auto']}"
                )
            continue
        if key == "shards":
            valid = value == "auto" or (
                isinstance(value, int) and not isinstance(value, bool)
                and value >= 1
            )
            if not valid:
                raise WorkloadError(
                    f"workload file {path}: shards must be a positive "
                    f"integer or 'auto', got {value!r}"
                )
            continue
        if key == "exec_backend":
            from repro.exec.worker import BACKENDS

            if value not in BACKENDS:
                raise WorkloadError(
                    f"workload file {path}: unknown exec_backend {value!r}; "
                    f"choose from {list(BACKENDS)}"
                )
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise WorkloadError(
                f"workload file {path}: key {key!r} must be a number, "
                f"got {value!r}"
            )
    try:
        return WorkloadParams(**payload)
    except TypeError as exc:  # pragma: no cover - defensive
        raise WorkloadError(f"workload file {path}: {exc}") from exc


def lineitem_orders_instance(
    params: WorkloadParams,
    *,
    scoring: ScoringFunction | None = None,
    cost_model: CostModel | None = None,
) -> RankJoinInstance:
    """The paper's default binary instance: Lineitem ⋈ Orders on orderkey."""
    tables = generate_tpch(params.tpch_config(), seed=params.seed)
    left = tables["lineitem"].to_relation("orderkey")
    right = tables["orders"].to_relation("orderkey")
    return RankJoinInstance(
        left,
        right,
        scoring or SumScore(),
        params.k,
        cost_model=cost_model,
    )


def pipeline_tables(params: WorkloadParams) -> dict[str, Table]:
    """Tables for the pipelined-plan experiments (one score per relation)."""
    config = replace(params.tpch_config(), num_scores=params.e)
    return generate_tpch(config, seed=params.seed)


def anti_correlated_instance(
    *,
    n_left: int,
    n_right: int,
    num_keys: int,
    k: int,
    jitter: float = 0.05,
    seed: int = 0,
    scoring: ScoringFunction | None = None,
) -> RankJoinInstance:
    """An instance with anti-correlated 2-d scores on both inputs.

    Scores hug the diagonal ``x + y ≈ 1``, so nearly every tuple is a
    skyline point and the feasible-region covers keep gaining staircase
    steps — the stress regime for cover maintenance that Section 5 of the
    paper targets (and the one where the naive frozen/fixed-grid cover
    alternatives measurably lose to the adaptive cover).
    """
    rng = np.random.default_rng(seed)

    def side(name: str, n: int) -> Relation:
        first = rng.random(n)
        second = np.clip(1.0 - first + rng.normal(0.0, jitter, n), 0.001, 1.0)
        keys = rng.integers(0, num_keys, size=n)
        scores = np.column_stack([first, second])
        return Relation.from_arrays(name, keys.tolist(), scores)

    return RankJoinInstance(
        side("R1", n_left), side("R2", n_right), scoring or SumScore(), k
    )


def random_instance(
    *,
    n_left: int,
    n_right: int,
    e_left: int,
    e_right: int,
    num_keys: int,
    k: int,
    skew: float = 0.5,
    cut: float = 1.0,
    seed: int = 0,
    scoring: ScoringFunction | None = None,
) -> RankJoinInstance:
    """A fully synthetic instance with independent per-side dimensions.

    Useful for tests and for exploring asymmetric inputs the TPC-H schema
    cannot express (e.g. ``e_left != e_right``).  Keys are uniform over
    ``num_keys`` values, so the expected join size is
    ``n_left * n_right / num_keys``.
    """
    rng = np.random.default_rng(seed)
    left_scores = generate_score_vectors(rng, n_left, e_left, skew=skew, cut=cut)
    right_scores = generate_score_vectors(rng, n_right, e_right, skew=skew, cut=cut)
    left_keys = rng.integers(0, num_keys, size=n_left)
    right_keys = rng.integers(0, num_keys, size=n_right)
    left = Relation.from_arrays("R1", left_keys.tolist(), left_scores)
    right = Relation.from_arrays("R2", right_keys.tolist(), right_scores)
    return RankJoinInstance(left, right, scoring or SumScore(), k)
