"""Ranked enumeration (any-k) — a second interchangeable rank join core.

Where the PBRJ family (the source paper) pulls from sorted inputs and
maintains score bounds, any-k (Tziavelis et al., "Optimal Join
Algorithms Meet Top-k" / "Ranked Enumeration for Database Queries")
decomposes the query into a join tree, runs one bottom-up DP pass, and
then streams results in exact rank order with logarithmic-ish delay —
no K fixed up front, no pull-depth blowup on n-ary joins.

The package splits the construction the way the papers do:

* :mod:`repro.anyk.jointree` — bags, node tuples, additive weights;
* :mod:`repro.anyk.decompose` — GYO ear removal + GHD bag merges;
* :mod:`repro.anyk.dp` — budgeted suffix-optimal DP;
* :mod:`repro.anyk.enumerate` — Lawler/REA successor generation;
* :mod:`repro.anyk.engine` — the :class:`AnyKRankJoin` facade speaking
  the :class:`~repro.core.stepping.ResumableOperator` contract, so the
  service, sharding, resilience and telemetry layers drive it unchanged
  (select it with ``QuerySpec(algorithm="anyk")`` or ``--algorithm``).
"""

from repro.anyk.decompose import AnyKQuery, decompose
from repro.anyk.dp import DPState
from repro.anyk.engine import (
    ANYK_OPERATOR,
    AnyKRankJoin,
    anyk_from_chain,
    anyk_operator,
)
from repro.anyk.enumerate import Enumerator
from repro.anyk.jointree import KEY_ATTR, JoinTree, JoinTreeNode, NodeTuple

__all__ = [
    "ANYK_OPERATOR",
    "AnyKQuery",
    "AnyKRankJoin",
    "DPState",
    "Enumerator",
    "JoinTree",
    "JoinTreeNode",
    "KEY_ATTR",
    "NodeTuple",
    "anyk_from_chain",
    "anyk_operator",
    "decompose",
]
