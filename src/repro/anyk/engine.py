"""`AnyKRankJoin` — the any-k core behind the PBRJ operator contract.

The facade glues decomposition (:mod:`repro.anyk.decompose`), the
budgeted DP pass (:mod:`repro.anyk.dp`) and ranked enumeration
(:mod:`repro.anyk.enumerate`) into a :class:`~repro.core.stepping.
ResumableOperator`: ``try_next(max_pulls)`` / ``get_next`` /
history-retaining ``top_k`` / ``frontier()`` / ``clone_fresh()`` — the
exact surface :class:`~repro.service.session.QuerySession`,
:class:`~repro.exec.worker.ShardWorker`, the resilient backend and the
chaos harness already drive, so the whole service/exec/resilience stack
runs any-k with zero changes.

Cost accounting: a *pull* is one unit of work — one bag tuple processed
by the DP or one candidate heap pop during enumeration.  ``try_next``
returns :data:`~repro.core.stepping.PENDING` once its quantum is spent
mid-build, exactly like a PBRJ pull quantum; emission may overshoot a
quantum by at most one tie batch (documented, bounded by the largest
exact-score tie group).

``frontier()`` is *exact* once the DP is complete: the engine holds the
next tie batch buffered, so the bound equals the next emission's score
(PBRJ's frontier is only an upper bound).  During the build it is
``+inf`` — nothing is provable yet — which keeps the sharded merge gate
conservative and correct.
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from repro.anyk.decompose import AnyKQuery, decompose
from repro.anyk.dp import DPState
from repro.anyk.enumerate import Enumerator
from repro.core.scoring import ScoringFunction, SumScore
from repro.core.stepping import PENDING
from repro.core.tuples import JoinResult, RankTuple
from repro.errors import PullBudgetExceeded, TimeBudgetExceeded
from repro.obs import NULL_OBS, TraceContext, span_record
from repro.relation.relation import RankJoinInstance, _canonical_payload
from repro.stats.metrics import (
    DepthReport,
    MemoryHighWater,
    OperatorStats,
    TimingBreakdown,
)

#: Registry name of the any-k core (resolved by
#: :func:`repro.core.operators.make_operator` alongside the PBRJ family).
ANYK_OPERATOR = "AnyK"


def _identity(tuples: tuple[RankTuple, ...]) -> tuple:
    """Canonical content identity of a result's relation-ordered tuples.

    For binary results this flattens to exactly the fields (and order)
    of :func:`repro.exec.merge.result_identity`, so serial any-k ties
    sort the way the sharded merge sorts them.
    """
    return tuple(
        part
        for tup in tuples
        for part in (repr(tup.key), tuple(tup.scores), _canonical_payload(tup.payload))
    )


class AnyKRankJoin:
    """Ranked enumeration (any-k) as a resumable rank join operator.

    Parameters
    ----------
    query:
        The :class:`~repro.anyk.decompose.AnyKQuery` to enumerate.
    scoring:
        Additive scoring function (``SumScore``/``WeightedSum``/
        ``AverageScore``); anything else raises at construction.
    name:
        Operator display name (metric/span label).
    track_time:
        Record wall-clock timing (disabled on shard workers, which time
        whole quanta instead).
    max_pulls / max_seconds:
        Operator-level run budgets, raising
        :class:`~repro.errors.PullBudgetExceeded` /
        :class:`~repro.errors.TimeBudgetExceeded` like PBRJ's.
    obs / trace:
        Optional observability pipeline and parent trace context.
    """

    def __init__(
        self,
        query: AnyKQuery,
        scoring: ScoringFunction | None = None,
        *,
        name: str = ANYK_OPERATOR,
        track_time: bool = True,
        max_pulls: int | None = None,
        max_seconds: float | None = None,
        obs=None,
        trace=None,
    ) -> None:
        self.name = name
        self.query = query
        self.scoring = scoring if scoring is not None else SumScore()
        self._obs = obs if obs is not None else NULL_OBS
        self._track_time = track_time
        self._max_pulls = max_pulls
        self._max_seconds = max_seconds
        self._ctor_kwargs = dict(
            name=name, track_time=track_time, max_pulls=max_pulls,
            max_seconds=max_seconds, obs=obs, trace=trace,
        )
        self.tree = decompose(query, self.scoring)
        self._dp = DPState(self.tree)
        self._enum: Enumerator | None = None
        self._batch: list = []  # buffered (exact score, tuples) pairs
        self._history: list = []
        self._exhausted = False
        self._pulls = 0
        self._binary = len(query.relations) == 2
        self._started_at: float | None = None
        self._dp_seconds = 0.0
        self._total_seconds = 0.0
        self._buffer_peak = 0

        if self._obs.enabled:
            self.trace = trace.child() if trace is not None else TraceContext.root()
            self._obs.trace(span_record(
                self.trace, "anyk", op=name,
                relations=len(query.relations), width=self.tree.width,
            ))
        else:
            self.trace = None
        metrics = self._obs.metrics
        self._m_dp_tuples = metrics.counter("anyk_dp_tuples_total", op=name)
        self._m_pops = metrics.counter("anyk_successor_pops_total", op=name)
        self._m_emitted = metrics.counter("results_emitted_total", op=name)

    # ------------------------------------------------------------------
    # ResumableOperator interface
    # ------------------------------------------------------------------
    def get_next(self):
        """The next result in rank order, or ``None`` when enumerated."""
        result = self.try_next(max_pulls=None)
        assert result is not PENDING
        return result

    def try_next(self, max_pulls: int | None = None):
        """Bounded step: a result, ``None`` (exhausted), or ``PENDING``.

        ``max_pulls`` caps the work units (DP tuples + heap pops) spent
        in this call; ``try_next(max_pulls=0)`` drains the buffered tie
        batch without doing any work, mirroring the PBRJ zero-pull
        contract.
        """
        started = time.perf_counter() if self._track_time else 0.0
        try:
            return self._step(max_pulls)
        finally:
            if self._track_time:
                self._total_seconds += time.perf_counter() - started

    def _step(self, max_pulls: int | None):
        if self._batch:
            return self._emit(self._batch.pop(0))
        if self._exhausted:
            return None
        spent = 0
        if not self._dp.done:
            budget = None if max_pulls is None else max_pulls - spent
            if budget is not None and budget <= 0:
                return PENDING
            dp_started = time.perf_counter() if self._track_time else 0.0
            consumed = self._dp.run(budget)
            if self._track_time:
                self._dp_seconds += time.perf_counter() - dp_started
            spent += consumed
            self._charge(consumed, self._m_dp_tuples)
            if not self._dp.done:
                return PENDING
            if self.trace is not None:
                self._obs.trace(span_record(
                    self.trace.child(), "anyk_dp", op=self.name,
                    seconds=self._dp_seconds if self._track_time else None,
                    tuples=self._dp.tuples_processed, pruned=self._dp.pruned,
                ))
        if self._enum is None:
            self._enum = Enumerator(self._dp)
        if max_pulls is not None and spent >= max_pulls:
            return PENDING
        before = self._enum.pops
        batch = self._enum.next_batch()
        self._charge(self._enum.pops - before, self._m_pops)
        if not batch:
            self._exhausted = True
            return None
        # Exact re-scoring + canonical sort: DP scores order the batches,
        # the scoring function (same call as PBRJ/multiway) scores the
        # emitted results bit-identically across cores.
        scored = [
            (self.scoring(tuple(s for t in tuples for s in t.scores)), tuples)
            for _, tuples in batch
        ]
        scored.sort(key=lambda pair: (-pair[0], _identity(pair[1])))
        self._batch = scored
        self._buffer_peak = max(self._buffer_peak, len(scored))
        return self._emit(self._batch.pop(0))

    def top_k(self, k: int) -> list:
        """First ``k`` results; resumable and history-retaining."""
        while len(self._history) < k:
            if self.get_next() is None:
                break
        return self._history[:k]

    def __iter__(self) -> Iterator:
        while True:
            result = self.get_next()
            if result is None:
                return
            yield result

    @property
    def pulls(self) -> int:
        """Work units spent: DP tuples processed + successor heap pops."""
        return self._pulls

    # ------------------------------------------------------------------
    # Emission and accounting
    # ------------------------------------------------------------------
    def _emit(self, pair):
        score, tuples = pair
        if self._binary:
            result = JoinResult.combine(tuples[0], tuples[1], score)
        else:
            from repro.core.multiway import MultiwayResult

            result = MultiwayResult(tuples, score)
        self._history.append(result)
        self._m_emitted.inc()
        return result

    def _charge(self, units: int, metric) -> None:
        if not units:
            return
        self._pulls += units
        metric.inc(units)
        if self._max_pulls is not None and self._pulls > self._max_pulls:
            raise PullBudgetExceeded(self._pulls, self._max_pulls)
        if self._max_seconds is not None:
            if self._started_at is None:
                self._started_at = time.perf_counter()
            elapsed = time.perf_counter() - self._started_at
            if elapsed > self._max_seconds:
                raise TimeBudgetExceeded(elapsed, self._max_seconds)

    # ------------------------------------------------------------------
    # Reporting (the PBRJ-compatible surface)
    # ------------------------------------------------------------------
    @property
    def emitted_results(self) -> list:
        """All results emitted so far (the retained resumable prefix)."""
        return self._history

    @property
    def bound_value(self) -> float:
        """Upper bound on any still-unemitted result (exact post-DP)."""
        return self.frontier()

    def frontier(self) -> float:
        """Best score this operator can still emit.

        ``+inf`` while the DP is building (nothing provable yet, the
        conservative bound), the buffered batch head once enumeration is
        live (exact), ``-inf`` when drained.
        """
        if self._batch:
            return self._batch[0][0]
        if self._exhausted:
            return float("-inf")
        if not self._dp.done or self._enum is None:
            return float("inf")
        return self._enum.peek()

    def depth(self, side: int) -> int:
        """Tuples of relation ``side`` ingested by the DP so far."""
        return self._dp.ingested[side]

    def depths(self):
        """Per-input depths: a DepthReport (binary) or list (n-ary)."""
        if self._binary:
            return DepthReport(self.depth(0), self.depth(1))
        return [self.depth(i) for i in range(len(self.query.relations))]

    def stats(self) -> OperatorStats:
        """Measurement snapshot in the harness's PBRJ vocabulary.

        ``sumDepths`` counts DP-ingested input tuples; ``bound`` time is
        the DP build (the analogue of bound maintenance); ``io_cost`` is
        the ingested-tuple count (unit cost per tuple read).
        """
        if self._binary:
            depths = DepthReport(self.depth(0), self.depth(1))
        else:
            counts = [self.depth(i) for i in range(len(self.query.relations))]
            depths = DepthReport(counts[0], sum(counts[1:]))
        return OperatorStats(
            operator=self.name,
            depths=depths,
            timing=TimingBreakdown(
                io=0.0, bound=self._dp_seconds, total=self._total_seconds
            ),
            io_cost=float(sum(self._dp.ingested.values())),
            bound_recomputations=0,
            results=len(self._history),
            memory=MemoryHighWater(
                hash_left=self._dp.tuples_processed,
                hash_right=0,
                output=self._buffer_peak,
            ),
        )

    def timing(self) -> TimingBreakdown:
        return TimingBreakdown(
            io=0.0, bound=self._dp_seconds, total=self._total_seconds
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def clone_fresh(self) -> "AnyKRankJoin":
        """A pristine operator over the same query (the respawn recipe)."""
        return AnyKRankJoin(self.query, self.scoring, **self._ctor_kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnyKRankJoin({self.name!r}, relations={len(self.query.relations)}, "
            f"pulls={self._pulls}, emitted={len(self._history)})"
        )


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def anyk_operator(instance: RankJoinInstance, **kwargs) -> AnyKRankJoin:
    """The binary any-k operator over a :class:`RankJoinInstance`.

    Signature-compatible with the PBRJ factories in
    :data:`repro.core.operators.OPERATORS`, so shard workers, the chaos
    harness and ``make_operator`` callers build it the same way.
    """
    return AnyKRankJoin(
        AnyKQuery.binary(instance.left, instance.right),
        instance.scoring,
        **kwargs,
    )


def anyk_from_chain(
    relations,
    join_attrs,
    scoring: ScoringFunction | None = None,
    **kwargs,
) -> AnyKRankJoin:
    """An any-k engine over a chain query (the multiway-operator shape)."""
    return AnyKRankJoin(
        AnyKQuery.chain(tuple(relations), tuple(join_attrs)), scoring, **kwargs
    )
