"""Ranked enumeration over the DP-annotated join tree.

The classic any-k construction (Lawler procedure specialized to trees,
a.k.a. REA / take2 in Tziavelis et al.): every connection-value group
maintains a lazily-materialized *sorted list of suffix solutions*.  A
suffix solution of a group is one entry (bag tuple) plus a rank choice
into each child group; its score is the entry's weight plus the chosen
child solutions' scores.  Two successor moves generate every solution
exactly once from the group's best one:

* advance to the *next entry* of the sorted group (only from the
  all-ranks-1 solution of the current entry, which chains entries
  without flooding the heap), or
* increment a *single child rank* by one.

A per-group candidate heap ordered by ``(-score, entry, ranks)`` plus a
seen-set makes the materialization lazy and duplicate-free; asking for a
group's ``j``-th solution pops at most the candidates needed to reach
it, recursing into child groups on demand.  The global priority queue of
the construction is simply the root group's heap.

**Canonical tie order.**  Emission must be deterministic and content-only
(bit-identical across serial, sharded and fault-injected runs), while DP
scores carry float-association noise relative to the true scores.  The
enumerator therefore releases *tie batches*: it drains every root
solution within ``SCORE_EPS`` of the batch head (DP scores are
non-increasing, so the batch is complete when the next one falls below),
and the engine re-scores each batch member exactly and sorts the batch
by ``(-score, canonical identity)`` — the same order the sharded
merge's :func:`~repro.exec.merge.result_identity` imposes.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.anyk.dp import DPState, Group
from repro.core.pbrj import SCORE_EPS
from repro.core.tuples import RankTuple

#: One group solution: (DP score, entry index, child rank vector).
Solution = tuple[float, int, tuple[int, ...]]


class GroupEnum:
    """Lazy sorted solution list of one (node, connection-value) group."""

    __slots__ = ("group", "solutions", "heap", "seen")

    def __init__(self, group: Group) -> None:
        self.group = group
        self.solutions: list[Solution] = []
        first = group.entries[0]
        ranks = (1,) * len(first.child_groups)
        #: Candidate heap: (-score, entry index, ranks).  Entry index and
        #: ranks break score ties deterministically.
        self.heap: list[tuple[float, int, tuple[int, ...]]] = [
            (-first.best, 0, ranks)
        ]
        self.seen: set[tuple[int, tuple[int, ...]]] = {(0, ranks)}


class Enumerator:
    """Global ranked enumeration driven from the root group."""

    def __init__(self, dp: DPState) -> None:
        if not dp.done:
            raise RuntimeError("enumeration needs a completed DP pass")
        self.dp = dp
        #: Heap pops performed (the enumeration work counter).
        self.pops = 0
        self._enums: dict[int, GroupEnum] = {}
        root_group = dp.root_group
        self._root = self._enum_for(root_group) if root_group is not None else None
        self._next_rank = 1

    # ------------------------------------------------------------------
    # Lazy per-group solution lists
    # ------------------------------------------------------------------
    def _enum_for(self, group: Group) -> GroupEnum:
        enum = self._enums.get(id(group))
        if enum is None:
            enum = self._enums[id(group)] = GroupEnum(group)
        return enum

    def solution(self, enum: GroupEnum, j: int) -> Solution | None:
        """The group's ``j``-th best solution (1-indexed), or ``None``."""
        solutions = enum.solutions
        heap = enum.heap
        entries = enum.group.entries
        while len(solutions) < j and heap:
            neg_score, entry_index, ranks = heappop(heap)
            self.pops += 1
            score = -neg_score
            solutions.append((score, entry_index, ranks))
            entry = entries[entry_index]
            if entry_index + 1 < len(entries) and all(r == 1 for r in ranks):
                successor = (entry_index + 1, ranks)
                if successor not in enum.seen:
                    enum.seen.add(successor)
                    heappush(
                        heap, (-entries[entry_index + 1].best, *successor)
                    )
            for i, child_group in enumerate(entry.child_groups):
                rank = ranks[i]
                child_enum = self._enum_for(child_group)
                bumped = self.solution(child_enum, rank + 1)
                if bumped is None:
                    continue
                next_ranks = ranks[:i] + (rank + 1,) + ranks[i + 1:]
                successor = (entry_index, next_ranks)
                if successor in enum.seen:
                    continue
                enum.seen.add(successor)
                current = child_enum.solutions[rank - 1]
                heappush(
                    heap,
                    (-(score - current[0] + bumped[0]), *successor),
                )
        return solutions[j - 1] if len(solutions) >= j else None

    def _assignment(self, enum: GroupEnum, j: int) -> list[tuple[int, RankTuple]]:
        """Flatten the group's ``j``-th solution to (relation, tuple) pairs."""
        _, entry_index, ranks = enum.solutions[j - 1]
        entry = enum.group.entries[entry_index]
        node = enum.group.node
        pairs = list(zip(node.members, entry.node_tuple.components))
        for i, child_group in enumerate(entry.child_groups):
            pairs.extend(self._assignment(self._enums[id(child_group)], ranks[i]))
        return pairs

    # ------------------------------------------------------------------
    # Root enumeration
    # ------------------------------------------------------------------
    def next_batch(self) -> list[tuple[float, tuple[RankTuple, ...]]]:
        """The next tie batch: (DP score, relation-ordered tuples) pairs.

        Empty once the output is fully enumerated.  The batch contains
        every remaining solution within ``SCORE_EPS`` of its head, so
        exact re-scoring plus an identity sort inside the batch yields
        the canonical global order.
        """
        if self._root is None:
            return []
        head = self.solution(self._root, self._next_rank)
        if head is None:
            return []
        count = 1
        while True:
            follower = self.solution(self._root, self._next_rank + count)
            if follower is None or follower[0] < head[0] - SCORE_EPS:
                break
            count += 1
        batch = []
        for rank in range(self._next_rank, self._next_rank + count):
            pairs = self._assignment(self._root, rank)
            pairs.sort(key=lambda pair: pair[0])
            batch.append(
                (self._root.solutions[rank - 1][0], tuple(t for _, t in pairs))
            )
        self._next_rank += count
        return batch

    def peek(self) -> float:
        """Upper bound (DP score) on the next unconsumed root solution."""
        if self._root is None:
            return float("-inf")
        if len(self._root.solutions) >= self._next_rank:
            return self._root.solutions[self._next_rank - 1][0]
        if self._root.heap:
            return -self._root.heap[0][0]
        return float("-inf")
