"""Join-tree representation for ranked enumeration (any-k).

A :class:`JoinTree` is the evaluation plan of an any-k query: each
:class:`JoinTreeNode` is a *bag* covering one or more input relations,
edges are equi-joins on shared attribute names, and every node holds its
materialized :class:`NodeTuple` list (one entry per combination of member
tuples that agrees on the bag-internal join attributes).  Acyclic queries
decompose into singleton bags; simple cyclic queries get one merged bag
per broken cycle (see :mod:`repro.anyk.decompose`).

Join attributes are plain names resolved against tuple payload dicts;
the sentinel :data:`KEY_ATTR` names the :attr:`~repro.core.tuples.
RankTuple.key` column, so the paper's binary key-join is expressible in
the same vocabulary as the payload-attribute chains of the multiway
operator.

Scores: any-k's dynamic program needs the aggregate to *decompose* over
the inputs — ``S(b(τ1) ⊕ … ⊕ b(τn)) = Σ_i w_i(τ_i)`` up to float
rounding.  :func:`weight_functions` derives the per-relation weights for
the additive family (:class:`~repro.core.scoring.SumScore`,
:class:`~repro.core.scoring.WeightedSum`,
:class:`~repro.core.scoring.AverageScore`) and rejects everything else
with a clear error.  DP weights order the enumeration only; every emitted
result recomputes its score through the scoring function on the full
concatenated vector, exactly like PBRJ and the multiway operator, so
scores are bit-identical across cores.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.scoring import AverageScore, ScoringFunction, SumScore, WeightedSum
from repro.core.tuples import RankTuple
from repro.errors import InstanceError
from repro.relation.relation import Relation, _canonical_payload

#: Sentinel attribute name resolving to ``RankTuple.key`` (the binary
#: rank join's join column, which lives outside the payload dict).
KEY_ATTR = "@key"


def attr_value(tup: RankTuple, attr: str):
    """The value of join attribute ``attr`` on ``tup``.

    ``KEY_ATTR`` reads the tuple key; anything else reads the payload
    dict.  A missing attribute is a malformed query, reported eagerly.
    """
    if attr == KEY_ATTR:
        return tup.key
    payload = tup.payload
    if isinstance(payload, dict) and attr in payload:
        return payload[attr]
    raise InstanceError(
        f"tuple {tup.key!r} has no join attribute {attr!r} "
        f"(payload keys: {sorted(payload) if isinstance(payload, dict) else 'none'})"
    )


def tuple_identity(tup: RankTuple) -> tuple:
    """Canonical per-tuple identity (key, scores, payload) for tie order.

    Matches the fields :func:`repro.exec.merge.result_identity` reads, so
    any-k's tie order over a flattened result equals the sharded merge's.
    """
    return (repr(tup.key), tuple(tup.scores), _canonical_payload(tup.payload))


def weight_functions(
    scoring: ScoringFunction, dimensions: list[int]
) -> list[Callable[[RankTuple], float]]:
    """Per-relation additive weight functions ``w_i`` for ``scoring``.

    ``dimensions[i]`` is the score dimension of relation ``i``; the
    concatenated vector lays relations out in index order, which fixes
    the weight slice each relation owns under :class:`WeightedSum`.
    """
    if isinstance(scoring, WeightedSum):
        total = sum(dimensions)
        if len(scoring.weights) != total:
            raise InstanceError(
                f"WeightedSum has {len(scoring.weights)} weights but the "
                f"query concatenates {total} score coordinates"
            )
        functions = []
        offset = 0
        for dim in dimensions:
            weights = scoring.weights[offset:offset + dim]

            def weigh(tup: RankTuple, weights=weights) -> float:
                return float(sum(w * s for w, s in zip(weights, tup.scores)))

            functions.append(weigh)
            offset += dim
        return functions
    if isinstance(scoring, AverageScore):
        total = sum(dimensions) or 1

        def weigh_mean(tup: RankTuple) -> float:
            return float(sum(tup.scores)) / total

        return [weigh_mean] * len(dimensions)
    if isinstance(scoring, SumScore):
        return [lambda tup: float(sum(tup.scores))] * len(dimensions)
    raise InstanceError(
        f"any-k needs an additive scoring function (SumScore, WeightedSum "
        f"or AverageScore); got {type(scoring).__name__}"
    )


class NodeTuple:
    """One bag tuple: member-relation tuples plus its additive weight."""

    __slots__ = ("components", "weight", "identity")

    def __init__(self, components: tuple[RankTuple, ...], weight: float) -> None:
        self.components = components
        self.weight = weight
        #: Deterministic tie-break key (content only, discovery-free).
        self.identity = tuple(tuple_identity(t) for t in components)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        keys = ",".join(repr(t.key) for t in self.components)
        return f"NodeTuple([{keys}], w={self.weight:.4f})"


class JoinTreeNode:
    """One bag of the join tree with its materialized tuples."""

    __slots__ = (
        "members",
        "varset",
        "tuples",
        "children",
        "child_attrs",
        "parent_attrs",
        "_positions",
    )

    def __init__(
        self,
        members: tuple[int, ...],
        varset: frozenset[str],
        tuples: list[NodeTuple],
        attr_positions: dict[str, int],
    ) -> None:
        #: Relation indices this bag covers, in query order.
        self.members = members
        self.varset = varset
        self.tuples = tuples
        self.children: list[JoinTreeNode] = []
        #: Shared join attributes per child edge (sorted, aligned with
        #: :attr:`children`).
        self.child_attrs: list[tuple[str, ...]] = []
        #: Shared attributes toward the parent; ``None`` for the root.
        self.parent_attrs: tuple[str, ...] | None = None
        #: attr name -> component position providing it.
        self._positions = attr_positions

    def connection(self, node_tuple: NodeTuple, attrs: tuple[str, ...]) -> tuple:
        """The value tuple of ``attrs`` on ``node_tuple`` (the group key)."""
        return tuple(
            attr_value(node_tuple.components[self._positions[attr]], attr)
            for attr in attrs
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JoinTreeNode(members={self.members}, vars={sorted(self.varset)}, "
            f"tuples={len(self.tuples)}, children={len(self.children)})"
        )


class JoinTree:
    """A rooted join tree over the query's relations."""

    def __init__(self, root: JoinTreeNode, relations: tuple[Relation, ...]) -> None:
        self.root = root
        self.relations = relations
        #: Children-before-parents order (the DP processing order).
        self.postorder: list[JoinTreeNode] = []
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                self.postorder.append(node)
                continue
            stack.append((node, True))
            for child in node.children:
                stack.append((child, False))

    @property
    def width(self) -> int:
        """Largest bag size (1 for acyclic queries, >1 once GHD merged)."""
        return max(len(node.members) for node in self.postorder)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JoinTree(nodes={len(self.postorder)}, width={self.width}, "
            f"relations={len(self.relations)})"
        )
